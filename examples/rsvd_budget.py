"""RSVD-1 under a money budget: the paper's running optimization example.

Given the randomized-SVD sampling pipeline ``B = (A A')^q A G`` over a large
matrix, the analyst asks: "I have $X — how fast can I get my sketch?", and
the dual: "I need it by t — what is the cheapest cluster?".  This script
sweeps both constraints, contrasts hourly vs per-second billing, and shows
hill-climbing reaching the grid search's answer at a fraction of the cost.

Run with:  python examples/rsvd_budget.py
"""

import time

from repro.cloud import PerSecondBilling, get_instance_type
from repro.core import DeploymentOptimizer, SearchSpace
from repro.errors import InfeasibleConstraintError
from repro.workloads import build_rsvd_program


def make_space() -> SearchSpace:
    return SearchSpace(
        instance_types=(get_instance_type("m1.large"),
                        get_instance_type("c1.xlarge"),
                        get_instance_type("m2.4xlarge")),
        node_counts=(2, 4, 8, 16, 32),
        slots_options=(2, 4, 8),
    )


def main() -> None:
    program = build_rsvd_program(rows=131072, cols=32768, sketch_cols=2048,
                                 power_iterations=1)
    optimizer = DeploymentOptimizer(program, tile_size=2048)
    space = make_space()

    print("budget sweep (hourly billing):")
    for budget in (2.0, 5.0, 10.0, 25.0, 50.0):
        try:
            plan = optimizer.minimize_time_under_budget(budget, space)
            print(f"  ${budget:>5.2f} -> {plan.estimated_seconds / 60:6.1f} "
                  f"min on {plan.spec.describe()}")
        except InfeasibleConstraintError:
            print(f"  ${budget:>5.2f} -> infeasible")

    print("\ndeadline sweep, hourly vs per-second billing:")
    exact = DeploymentOptimizer(program, tile_size=2048,
                                billing=PerSecondBilling())
    for minutes in (20, 40, 60, 120, 240):
        deadline = minutes * 60.0
        hourly_plan = optimizer.minimize_cost_under_deadline(deadline, space)
        exact_plan = exact.minimize_cost_under_deadline(deadline, space)
        print(f"  {minutes:>4d} min -> hourly ${hourly_plan.estimated_cost:6.2f}"
              f"   per-second ${exact_plan.estimated_cost:6.2f}")

    print("\nhill climbing vs exhaustive grid (deadline = 60 min):")
    started = time.perf_counter()
    grid_plan = optimizer.minimize_cost_under_deadline(3600.0, space)
    grid_seconds = time.perf_counter() - started
    started = time.perf_counter()
    climbed_plan = optimizer.hill_climb_under_deadline(3600.0, space)
    climb_seconds = time.perf_counter() - started
    print(f"  grid : {grid_plan.describe()}  ({grid_seconds:.2f}s search)")
    print(f"  climb: {climbed_plan.describe()}  ({climb_seconds:.2f}s search)")


if __name__ == "__main__":
    main()
