"""A full PCA pipeline: ingest text -> standardize -> sketch -> components.

Exercises the whole library surface on one realistic task:

1. a CSV dataset is parsed and tiled into a simulated HDFS cluster,
2. the PCA program (broadcast standardization + covariance + randomized
   sketch) compiles to map-only jobs — shown via EXPLAIN,
3. it executes for real, components are extracted locally, and
4. the cloud-scale variant is priced, with a cluster-utilization timeline.

Run with:  python examples/pca_pipeline.py
"""

import numpy as np

from repro.cloud import ClusterSpec, get_instance_type, provision
from repro.core import (
    CompilerParams,
    CumulonCostModel,
    CumulonExecutor,
    PhysicalContext,
    compile_program,
    explain_program,
    simulate_program,
)
from repro.core.optimizer import DEFAULT_MATMUL_OPTIONS
from repro.hadoop.metrics import render_timeline, utilization
from repro.hdfs.tilestore import TileStore
from repro.ingest import format_csv_matrix, ingest_csv
from repro.workloads import (
    build_pca_program,
    explained_variance_ratio,
    principal_components,
)


def make_dataset(rows=300, features=16, seed=29) -> np.ndarray:
    """Data with 3 planted directions plus noise, serialized as CSV."""
    rng = np.random.default_rng(seed)
    basis = rng.standard_normal((features, 3))
    scores = rng.standard_normal((rows, 3)) * np.array([6.0, 4.0, 2.0])
    return scores @ basis.T + 0.2 * rng.standard_normal((rows, features))


def main() -> None:
    rows, features, sketch = 300, 16, 6

    # -- 1. ingest CSV into a provisioned (simulated) HDFS cluster --------
    data = make_dataset(rows, features)
    csv_text = format_csv_matrix(data, precision=10)
    spec = ClusterSpec(get_instance_type("m1.large"), 3, 2)
    cluster = provision(spec, replication=2)
    store = TileStore(cluster.namenode)
    matrix = ingest_csv("X", csv_text, tile_size=64, backing=store)
    print(f"ingested {len(csv_text) / 1024:.0f} KB of text into "
          f"{matrix.nbytes() / 1024:.0f} KB of tiles "
          f"({matrix.grid.num_tiles} tiles, replication 2)\n")

    # -- 2. compile and explain the PCA program ---------------------------
    program = build_pca_program(rows, features, sketch)
    compiled = compile_program(program, PhysicalContext(64))
    print(explain_program(compiled))

    # -- 3. execute and extract components ---------------------------------
    rng = np.random.default_rng(0)
    g = rng.standard_normal((features, sketch))
    executor = CumulonExecutor(tile_size=64, backing=store)
    result = executor.run(program, {"X": data, "G": g})
    components = principal_components(result.output("S"), 3)
    ratio = explained_variance_ratio(result.output("C"), components)
    print(f"\ntop-3 components capture {ratio:.1%} of the variance")

    # -- 4. price the cloud-scale version ----------------------------------
    # The Gram multiply Z'Z over a 1M-row Z needs a deep inner-dimension
    # split (a 2048-tile strip would never fit slot memory): tune the split
    # factors the way the deployment optimizer does.
    big = build_pca_program(1048576, 4096, 512)
    big_spec = ClusterSpec(get_instance_type("c1.xlarge"), 8, 4)
    best = None
    for matmul in DEFAULT_MATMUL_OPTIONS:
        compiled_big = compile_program(big, PhysicalContext(2048),
                                       CompilerParams(matmul=matmul))
        estimate = simulate_program(compiled_big.dag, big_spec,
                                    CumulonCostModel())
        if best is None or estimate.seconds < best[0].seconds:
            best = (estimate, matmul)
    estimate, matmul = best
    report = utilization(estimate.simulation)
    print(f"\nat 1M x 4096 on {big_spec.describe()} "
          f"(tuned split {matmul.k_splits}-way): "
          f"{estimate.seconds / 60:.1f} min, "
          f"{report.utilization:.0%} slot utilization")
    print(render_timeline(estimate.simulation, width=60))


if __name__ == "__main__":
    main()
