"""Linear regression: real execution plus what-if capacity planning.

1. Fits an OLS model by running the normal-equations program end-to-end on
   synthetic data (the heavy X'X / X'y part runs through Cumulon's tiled
   executor; the k x k solve is local) and checks weight recovery.
2. What-if analysis: as the training set grows 1M -> 16M rows, how do the
   optimizer's cluster choice and cost evolve under a fixed 1-hour deadline?

Run with:  python examples/regression_whatif.py
"""

import numpy as np

from repro.cloud import get_instance_type
from repro.core import DeploymentOptimizer, SearchSpace, run_program
from repro.data import regression_dataset
from repro.errors import InfeasibleConstraintError
from repro.workloads import (
    build_normal_equations_program,
    solve_normal_equations,
)


def fit_small_model() -> None:
    rows, features = 2000, 8
    x, y, w_true = regression_dataset(rows, features, seed=13, noise=0.05)
    program = build_normal_equations_program(rows, features)
    result = run_program(program,
                         {"X": x.to_numpy(), "y": y.to_numpy()},
                         tile_size=256)
    w_hat = solve_normal_equations(result.output("XtX"),
                                   result.output("Xty"))
    error = np.max(np.abs(w_hat.ravel() - w_true))
    print(f"fit {rows} x {features} OLS; max weight error = {error:.4f}")


def what_if_growth() -> None:
    space = SearchSpace(
        instance_types=(get_instance_type("m1.large"),
                        get_instance_type("c1.xlarge")),
        node_counts=(2, 4, 8, 16, 32),
        slots_options=(2, 4),
    )
    deadline = 3600.0
    print("\nwhat-if: cheapest cluster for X'X under a 1-hour deadline")
    print(f"{'rows':>12}  {'chosen cluster':<34} {'time':>8} {'cost':>8}")
    for millions in (1, 2, 4, 8, 16):
        rows = millions * 1024 * 1024
        program = build_normal_equations_program(rows, 4096)
        optimizer = DeploymentOptimizer(program, tile_size=2048)
        try:
            plan = optimizer.minimize_cost_under_deadline(deadline, space)
            print(f"{rows:>12,}  {plan.spec.describe():<34}"
                  f" {plan.estimated_seconds / 60:6.1f}m"
                  f" ${plan.estimated_cost:7.2f}")
        except InfeasibleConstraintError:
            print(f"{rows:>12,}  -- no feasible plan --")


def main() -> None:
    fit_small_model()
    what_if_growth()


if __name__ == "__main__":
    main()
