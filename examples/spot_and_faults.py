"""Running on unreliable infrastructure: failures, stragglers, and spot.

Demonstrates the reproduction's extensions on one GNMF deployment:

1. how injected task failures stretch the predicted wall-clock,
2. how speculative execution rescues a degraded (slow) node, and
3. what the same work costs on the spot market at several bid levels.

Run with:  python examples/spot_and_faults.py
"""

from repro.cloud import ClusterSpec, get_instance_type
from repro.cloud.spot import (
    SpotMarket,
    estimate_spot_deployment,
    on_demand_cost,
)
from repro.core import CumulonCostModel, PhysicalContext, compile_program
from repro.hadoop.faults import RandomFailures
from repro.hadoop.simulator import ClusterSimulator, KILLED
from repro.workloads import build_gnmf_program


def make_dag():
    program = build_gnmf_program(40960, 20480, 128, iterations=5)
    return compile_program(program, PhysicalContext(2048)).dag


def main() -> None:
    spec = ClusterSpec(get_instance_type("m1.large"), 8, 2)
    model = CumulonCostModel()

    baseline = ClusterSimulator(spec, model).run(make_dag()).makespan
    print(f"GNMF x5 on {spec.describe()}: {baseline / 60:.1f} min clean\n")

    print("task failures:")
    for rate in (0.02, 0.05, 0.10):
        failures = RandomFailures(probability=rate, seed=1, max_attempts=10)
        result = ClusterSimulator(spec, model,
                                  failures=failures).run(make_dag())
        print(f"  {rate:4.0%} failure rate -> {result.makespan / 60:5.1f} min"
              f"  (+{result.makespan / baseline - 1:.1%})")

    print("\none node 8x degraded:")
    for speculative in (False, True):
        sim = ClusterSimulator(spec, model, speculative=speculative,
                               slow_nodes={"m1.large-0": 8.0})
        result = sim.run(make_dag())
        label = "speculation on " if speculative else "speculation off"
        print(f"  {label}: {result.makespan / 60:5.1f} min"
              f"  ({result.count_attempts(KILLED)} duplicates killed)")

    work = baseline
    print(f"\nspot market (on-demand cost ${on_demand_cost(spec, work):.2f}):")
    market = SpotMarket(base_discount=0.3, volatility=0.8)
    for bid in (0.25, 0.5, 1.0):
        estimate = estimate_spot_deployment(spec, work, bid, market,
                                            checkpointing=True, samples=200)
        print(f"  bid {bid:4.2f}x on-demand -> "
              f"${estimate.mean_cost:5.2f} mean, "
              f"{estimate.mean_seconds / 3600:4.1f}h mean, "
              f"{estimate.p95_seconds / 3600:4.1f}h p95")


if __name__ == "__main__":
    main()
