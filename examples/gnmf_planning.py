"""GNMF in the cloud: correctness at laptop scale, planning at cloud scale.

The scenario from the paper's introduction: an analyst has a non-negative
matrix factorization to run for ten iterations and a deadline.  The script

1. runs a small GNMF instance end-to-end and checks it against numpy,
2. compares Cumulon's compiled plan against a SystemML-style MapReduce plan
   for the cloud-scale instance, and
3. prices deployments and picks the cheapest cluster that meets a deadline.

Run with:  python examples/gnmf_planning.py
"""

import numpy as np

from repro.baselines import compile_systemml_program
from repro.cloud import get_instance_type
from repro.core import (
    CumulonCostModel,
    DeploymentOptimizer,
    PhysicalContext,
    SearchSpace,
    compile_program,
    run_program,
    simulate_program,
)
from repro.cloud import ClusterSpec
from repro.workloads import build_gnmf_program, reference_gnmf


def verify_small_instance() -> None:
    rng = np.random.default_rng(7)
    v = rng.random((120, 80)) + 0.01
    w0 = rng.random((120, 8)) + 0.01
    h0 = rng.random((8, 80)) + 0.01
    program = build_gnmf_program(120, 80, 8, iterations=5)
    result = run_program(program, {"V": v, "W0": w0, "H0": h0}, tile_size=32)
    w_ref, h_ref = reference_gnmf(v, w0, h0, 5)
    residual = np.linalg.norm(v - result.output("W") @ result.output("H"))
    print("small GNMF matches numpy:",
          np.allclose(result.output("W"), w_ref))
    print(f"factorization residual ||V - WH||_F = {residual:.3f}")


def compare_with_systemml(program) -> None:
    spec = ClusterSpec(get_instance_type("m1.large"), 16, 2)
    model = CumulonCostModel()
    cumulon = compile_program(program, PhysicalContext(2048))
    systemml = compile_systemml_program(program, PhysicalContext(2048))
    t_cumulon = simulate_program(cumulon.dag, spec, model).seconds
    t_systemml = simulate_program(systemml.dag, spec, model).seconds
    print(f"\non {spec.describe()}:")
    print(f"  Cumulon : {len(list(cumulon.dag)):3d} jobs, "
          f"{t_cumulon / 60:.1f} min")
    print(f"  SystemML: {len(list(systemml.dag)):3d} jobs, "
          f"{t_systemml / 60:.1f} min  "
          f"({t_systemml / t_cumulon:.2f}x slower)")


def plan_deployment(program) -> None:
    optimizer = DeploymentOptimizer(program, tile_size=2048)
    space = SearchSpace(
        instance_types=(get_instance_type("m1.large"),
                        get_instance_type("c1.xlarge"),
                        get_instance_type("m2.xlarge")),
        node_counts=(4, 8, 16, 32),
        slots_options=(2, 4, 8),
    )
    print("\ndeployment skyline (10 GNMF iterations):")
    for plan in optimizer.skyline(space):
        print(f"  {plan.describe()}")
    for hours in (1.0, 2.0, 6.0):
        plan = optimizer.minimize_cost_under_deadline(hours * 3600.0, space)
        print(f"deadline {hours:>4.1f}h -> {plan.describe()}")


def main() -> None:
    verify_small_instance()
    # Cloud-scale instance: a 40960 x 20480 matrix at rank 128.
    cloud = build_gnmf_program(40960, 20480, 128, iterations=10)
    compare_with_systemml(cloud)
    plan_deployment(cloud)


if __name__ == "__main__":
    main()
