"""Quickstart: write a matrix program, run it, and plan its cloud deployment.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    CumulonExecutor,
    DeploymentOptimizer,
    Program,
    SearchSpace,
    SearchSpec,
    search,
)
from repro.cloud import get_instance_type


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Write a program in Cumulon's expression language.
    # ------------------------------------------------------------------
    program = Program("quickstart")
    a = program.declare_input("A", 512, 512)
    b = program.declare_input("B", 512, 512)
    c = program.assign("C", (a @ b) * 0.5 + a)     # multiply + fused ops
    program.assign("D", c.T @ c)                    # transposed reuse
    program.mark_output("C", "D")
    print(program.describe())

    # ------------------------------------------------------------------
    # 2. Execute it for real (tiled, parallel, verified against numpy).
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    inputs = {"A": rng.random((512, 512)), "B": rng.random((512, 512))}
    executor = CumulonExecutor(tile_size=128, max_workers=4)
    result = executor.run(program, inputs)
    expected = (inputs["A"] @ inputs["B"]) * 0.5 + inputs["A"]
    print(f"\nC matches numpy: {np.allclose(result.output('C'), expected)}")
    print(f"compiled into {len(list(result.compiled.dag))} map-only jobs, "
          f"{result.compiled.dag.num_tasks()} tasks")

    # ------------------------------------------------------------------
    # 3. Ask the optimizer how to deploy the same program at cloud scale.
    # ------------------------------------------------------------------
    big = Program("quickstart-at-scale")
    a = big.declare_input("A", 32768, 32768)
    b = big.declare_input("B", 32768, 32768)
    c = big.assign("C", (a @ b) * 0.5 + a)
    big.assign("D", c.T @ c)
    big.mark_output("D")

    optimizer = DeploymentOptimizer(big, tile_size=2048)
    space = SearchSpace(
        instance_types=(get_instance_type("m1.large"),
                        get_instance_type("c1.xlarge")),
        node_counts=(4, 8, 16, 32),
        slots_options=(2, 4, 8),
    )
    print("\nTime/cost skyline for the 32768^2 version:")
    for plan in optimizer.skyline(space):
        print(f"  {plan.describe()}")

    spec = SearchSpec(objective="min-cost", deadline_seconds=3 * 3600.0,
                      space=space)
    best = search(optimizer, spec).plan
    print(f"\nCheapest plan finishing within 3 hours:\n  {best.describe()}")
    print(f"  physical parameters: {best.compiler_params.matmul}")


if __name__ == "__main__":
    main()
