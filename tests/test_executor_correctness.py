"""End-to-end execution correctness across physical-parameter choices.

Whatever split factors, fusion settings, tile sizes, or worker counts the
optimizer picks, the computed numbers must be identical — these tests pin
that invariant.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerParams
from repro.core.executor import CumulonExecutor, run_program
from repro.core.expr import evaluate_with_numpy
from repro.core.physical import ElementwiseParams, MatMulParams
from repro.core.program import Program
from repro.errors import ValidationError

RNG = np.random.default_rng(21)

# Every correctness invariant in this module must hold on both local
# backends; the process backend rides the tier-2 gate (tests/conftest.py).
BACKENDS = ["thread",
            pytest.param("process", marks=pytest.mark.process_backend)]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def make_env():
    return {
        "A": RNG.random((36, 20)),
        "B": RNG.random((20, 44)),
        "C": RNG.random((36, 44)),
    }


def make_program():
    program = Program("mixed")
    a = program.declare_input("A", 36, 20)
    b = program.declare_input("B", 20, 44)
    c = program.declare_input("C", 36, 44)
    d = program.assign("D", (a @ b) * 0.5 + c)
    program.assign("E", (d.T @ d).apply("sqrt"))
    program.mark_output("D", "E")
    return program


def expected_outputs(env):
    d = (env["A"] @ env["B"]) * 0.5 + env["C"]
    e = np.sqrt(d.T @ d)
    return d, e


@pytest.mark.parametrize("matmul", [
    MatMulParams(1, 1, 1),
    MatMulParams(2, 2, 1),
    MatMulParams(1, 1, 3),
    MatMulParams(3, 2, 2),
    MatMulParams(5, 5, 5),
])
def test_matmul_params_do_not_change_results(matmul, backend):
    env = make_env()
    program = make_program()
    params = CompilerParams(matmul=matmul)
    result = run_program(program, env, tile_size=8, params=params,
                         backend=backend)
    d, e = expected_outputs(env)
    np.testing.assert_allclose(result.output("D"), d, rtol=1e-9)
    np.testing.assert_allclose(result.output("E"), e, rtol=1e-9)


@pytest.mark.parametrize("tile_size", [4, 7, 16, 64])
def test_tile_size_does_not_change_results(tile_size, backend):
    env = make_env()
    result = run_program(make_program(), env, tile_size=tile_size,
                         backend=backend)
    d, e = expected_outputs(env)
    np.testing.assert_allclose(result.output("D"), d, rtol=1e-9)
    np.testing.assert_allclose(result.output("E"), e, rtol=1e-9)


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_worker_count_does_not_change_results(workers, backend):
    env = make_env()
    result = run_program(make_program(), env, tile_size=8,
                         max_workers=workers, backend=backend)
    d, __ = expected_outputs(env)
    np.testing.assert_allclose(result.output("D"), d, rtol=1e-9)


def test_fusion_ablation_same_results(backend):
    env = make_env()
    fused = run_program(make_program(), env, tile_size=8,
                        params=CompilerParams(fusion_enabled=True),
                        backend=backend)
    unfused = run_program(make_program(), env, tile_size=8,
                          params=CompilerParams(fusion_enabled=False),
                          backend=backend)
    np.testing.assert_allclose(fused.output("D"), unfused.output("D"))
    np.testing.assert_allclose(fused.output("E"), unfused.output("E"))


def test_elementwise_chunking_does_not_change_results():
    env = make_env()
    for tiles_per_task in (1, 3, 100):
        params = CompilerParams(
            elementwise=ElementwiseParams(tiles_per_task=tiles_per_task))
        result = run_program(make_program(), env, tile_size=8, params=params)
        d, __ = expected_outputs(env)
        np.testing.assert_allclose(result.output("D"), d, rtol=1e-9)


def test_executor_validates_inputs():
    program = make_program()
    env = make_env()
    with pytest.raises(ValidationError, match="missing inputs"):
        run_program(program, {"A": env["A"]}, tile_size=8)
    with pytest.raises(ValidationError, match="unknown inputs"):
        run_program(program, dict(env, Z=env["A"]), tile_size=8)
    with pytest.raises(ValidationError, match="shape"):
        run_program(program, dict(env, A=np.ones((2, 2))), tile_size=8)


def test_outputs_default_to_last_statement():
    program = Program("implicit")
    a = program.declare_input("A", 8, 8)
    program.assign("X", a @ a)
    result = run_program(program, {"A": np.eye(8)}, tile_size=4)
    np.testing.assert_allclose(result.output("X"), np.eye(8))


def test_executor_reuse_across_programs(backend):
    with CumulonExecutor(tile_size=8, backend=backend) as executor:
        env = make_env()
        first = executor.run(make_program(), env)
        second = executor.run(make_program(), env)
    np.testing.assert_allclose(first.output("D"), second.output("D"))


def test_transposed_everything(backend):
    program = Program("tt")
    a = program.declare_input("A", 24, 16)
    b = program.declare_input("B", 24, 16)
    program.assign("OUT", ((a.T @ b) + (b.T @ a)).T * 2.0)
    program.mark_output("OUT")
    env = {"A": RNG.random((24, 16)), "B": RNG.random((24, 16))}
    result = run_program(program, env, tile_size=8, backend=backend)
    expected = ((env["A"].T @ env["B"]) + (env["B"].T @ env["A"])).T * 2.0
    np.testing.assert_allclose(result.output("OUT"), expected, rtol=1e-9)


def test_compiled_dag_matches_numpy_interpreter():
    program = make_program()
    env = make_env()
    result = run_program(program, env, tile_size=8)
    # Re-derive D via the logical-layer interpreter for a third opinion.
    d_expr = program.statements[0].expr
    np.testing.assert_allclose(result.output("D"),
                               evaluate_with_numpy(d_expr, env), rtol=1e-9)
