"""The wall-clock socket server, tick drivers, and load-test harness.

Fast tier-1 coverage runs the server in-process (a thread + unix
socket): batched admission, group commit, drain semantics, journal
audit, and wall-clock recovery.  The ``slow``-marked tests exercise the
real subprocess path — ``repro serve --listen`` spawned by
:func:`~repro.service.loadgen.run_loadtest` and the SIGKILL chaos
harness — exactly as benchmark E26 and CI's loadtest smoke job do.
"""

import io

import pytest

from repro.cli import main
from repro.cloud import ClusterSpec, get_instance_type
from repro.errors import ValidationError
from repro.service.durability import DurabilityStore, recover
from repro.service.jobs import JobService
from repro.service.loadgen import (
    JournalAudit,
    ProtocolClient,
    ServerThread,
    audit_journal,
    run_loadtest,
    wall_clock_kill_and_recover,
)
from repro.service.server import ReproServer, parse_listen
from repro.service.ticks import VirtualClockDriver, WallClockDriver
from repro.workloads import build_workload


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def make_service(**kwargs):
    spec = ClusterSpec(get_instance_type("m1.large"), 4, 2)
    kwargs.setdefault("tune_physical", False)
    return JobService(spec, **kwargs)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class TestParseListen:
    def test_unix_path(self):
        assert parse_listen("/tmp/x.sock") == ("unix", "/tmp/x.sock", None)

    def test_tcp_host_port(self):
        assert parse_listen("127.0.0.1:9000") == ("tcp", "127.0.0.1", 9000)

    def test_relative_path_with_colon_free_name(self):
        kind, __, __ = parse_listen("run/server.sock")
        assert kind == "unix"


class TestTickDrivers:
    def test_virtual_driver_passthrough(self):
        service = make_service()
        driver = VirtualClockDriver(service)
        assert driver.mode == "virtual"
        driver.advance(5.0)
        assert service.now == 5.0
        assert driver.now_virtual() == 5.0

    def test_wall_driver_maps_time_scale(self):
        service = make_service()
        clock = FakeClock(100.0)
        driver = WallClockDriver(service, time_scale=60.0, clock=clock)
        assert driver.mode == "wall"
        clock.now = 102.0  # 2 wall seconds = 120 virtual seconds
        assert driver.now_virtual() == pytest.approx(120.0)
        driver.advance()
        assert service.now == pytest.approx(120.0)

    def test_wall_driver_never_runs_backwards(self):
        service = make_service()
        clock = FakeClock(0.0)
        driver = WallClockDriver(service, time_scale=1.0, clock=clock)
        service.run_until(50.0)  # something raced ahead of the clock
        clock.now = 10.0
        driver.advance()
        assert service.now == 50.0

    def test_wall_driver_rebase_after_jump(self):
        service = make_service()
        clock = FakeClock(0.0)
        driver = WallClockDriver(service, time_scale=10.0, clock=clock)
        service.run_until(1000.0)  # e.g. a recovery replayed the clock
        clock.now = 3.0
        driver.rebase()
        clock.now = 4.0
        assert driver.now_virtual() == pytest.approx(1010.0)

    def test_wall_driver_seconds_until(self):
        service = make_service()
        clock = FakeClock(0.0)
        driver = WallClockDriver(service, time_scale=10.0, clock=clock)
        assert driver.seconds_until(25.0) == pytest.approx(2.5)
        assert driver.seconds_until(-5.0) == 0.0

    def test_wall_driver_rejects_bad_scale(self):
        with pytest.raises(ValidationError):
            WallClockDriver(make_service(), time_scale=0.0)


class TestPriceMemo:
    def test_repeat_submissions_hit_the_memo(self):
        service = make_service()
        program, tile = build_workload("multiply", "tiny")
        service.add_tenant("a")
        for __ in range(5):
            service.submit(program, "a", tile_size=tile)
        service.drain()
        assert service.admission.price_misses == 1
        assert service.admission.price_hits == 4

    def test_next_event_at_tracks_queue(self):
        service = make_service()
        program, tile = build_workload("multiply", "tiny")
        service.add_tenant("a")
        assert service.next_event_at is None
        service.submit(program, "a", submit_at=7.0, tile_size=tile)
        assert service.next_event_at == 7.0
        service.drain()
        assert service.next_event_at is None


class TestInProcessServer:
    def serve(self, tmp_path, journal=False, **kwargs):
        service = make_service()
        if journal:
            store = DurabilityStore(tmp_path / "state", fsync_every=4)
            service.attach_durability(store)
        kwargs.setdefault("tick_interval", 0.01)
        kwargs.setdefault("time_scale", 5000.0)
        return ReproServer(service, str(tmp_path / "server.sock"), **kwargs)

    def test_submissions_batch_group_commit_and_audit(self, tmp_path):
        server = self.serve(tmp_path, journal=True)
        acked = []
        with ServerThread(server):
            with ProtocolClient(server.listen) as client:
                for index in range(8):
                    client.send({"type": "submit", "tenant": f"t{index % 3}",
                                 "workload": "multiply", "scale": "tiny",
                                 "req": index})
                seen = 0
                while seen < 8:
                    doc = client.recv()
                    if doc["type"] == "ack":
                        acked.append(doc["job_id"])
                        assert "estimated_dollars" in doc
                        seen += 1
                client.send({"type": "drain", "scope": "all"})
                client.recv_until("drained")
        assert server.stats.accepted == 8
        assert server.stats.group_commits >= 1
        # One cached Program -> one real pricing, the rest memo hits.
        assert server.service.admission.price_misses == 1
        assert server.service.admission.price_hits == 7
        audit = audit_journal(tmp_path / "state", acked=acked)
        assert audit.ok
        assert audit.submitted == 8
        assert audit.admitted == 8
        assert audit.lost == 0 and audit.double_billed == 0

    def test_wall_clock_journal_recovers_cleanly(self, tmp_path):
        server = self.serve(tmp_path, journal=True)
        with ServerThread(server):
            with ProtocolClient(server.listen) as client:
                for index in range(4):
                    client.send({"type": "submit", "tenant": "acme",
                                 "workload": "multiply", "scale": "tiny",
                                 "req": index})
                client.send({"type": "drain", "scope": "all"})
                client.recv_until("drained")
        states = {job_id: record.state
                  for job_id, record in server.service.jobs.items()}
        recovered = recover(tmp_path / "state", fsync_every=4)
        assert {job_id: record.state
                for job_id, record in recovered.jobs.items()} == states
        assert recovered.recovery.decisions_repriced == 0
        recovered.close_durability()

    def test_rejects_bad_arguments(self):
        service = make_service()
        with pytest.raises(ValidationError):
            ReproServer(service, "x.sock", tick_interval=0.0)
        with pytest.raises(ValidationError):
            ReproServer(service, "x.sock", max_batch=0)
        with pytest.raises(ValidationError):
            ReproServer(service, "x.sock", max_wait=-1.0)

    def test_report_shape(self, tmp_path):
        server = self.serve(tmp_path)
        with ServerThread(server):
            with ProtocolClient(server.listen) as client:
                client.send({"type": "submit", "tenant": "a",
                             "workload": "multiply", "scale": "tiny"})
                client.recv_until("result")
        report = server.report()
        assert report["mode"] == "wall"
        assert report["server"]["submissions"] == 1
        assert report["server"]["results_sent"] == 1
        assert report["service"]["throughput_jobs_per_hour"] > 0


class TestJournalAudit:
    def test_empty_directory_is_trivially_ok(self, tmp_path):
        audit = JournalAudit()
        assert audit.ok
        assert audit.to_doc()["ok"] is True

    def test_virtual_run_audits_clean(self, tmp_path):
        service = make_service()
        store = DurabilityStore(tmp_path / "state", fsync_every=1)
        service.attach_durability(store)
        program, tile = build_workload("multiply", "tiny")
        service.add_tenant("a")
        handles = [service.submit(program, "a", tile_size=tile)
                   for __ in range(3)]
        service.cancel(handles[2].job_id)
        service.drain()
        service.close_durability()
        audit = audit_journal(tmp_path / "state",
                              acked=[handle.job_id for handle in handles])
        assert audit.ok
        assert audit.submitted == 3
        assert audit.completed == 2
        assert audit.cancelled == 1

    def test_detects_unjournaled_acks(self, tmp_path):
        service = make_service()
        store = DurabilityStore(tmp_path / "state", fsync_every=1)
        service.attach_durability(store)
        program, tile = build_workload("multiply", "tiny")
        service.add_tenant("a")
        service.submit(program, "a", tile_size=tile)
        service.drain()
        service.close_durability()
        audit = audit_journal(tmp_path / "state", acked=["phantom-j0001"])
        assert audit.unjournaled_acks == 1
        assert not audit.ok


@pytest.mark.slow
class TestLoadTestSubprocess:
    def test_small_loadtest_end_to_end(self, tmp_path):
        report = run_loadtest(tmp_path, jobs=60, tenants=10, processes=2,
                              arrival="poisson", tick_interval=0.01)
        assert report.ok
        assert report.acked == 60
        assert report.audit.submitted == 60
        assert report.audit.lost == 0
        assert report.audit.double_billed == 0
        assert report.jobs_per_sec > 0
        assert report.admission_p99_ms > 0
        assert report.group_commits >= 1
        assert report.workers_drained == 2
        doc = report.to_doc()
        assert doc["ok"] is True and doc["audit"]["ok"] is True

    def test_burst_arrivals(self, tmp_path):
        report = run_loadtest(tmp_path, jobs=30, tenants=5, processes=1,
                              arrival="burst", rate=500.0, burst_size=10,
                              tick_interval=0.01)
        assert report.ok
        assert report.acked == 30

    def test_wall_clock_kill_and_recover(self, tmp_path):
        report = wall_clock_kill_and_recover(tmp_path, jobs=40, tenants=8,
                                             tick_interval=0.01)
        assert report.killed
        assert report.ok
        assert report.lost_acked == 0
        assert report.lost_jobs == 0
        assert report.double_billed == 0
        assert report.journaled_submits > 0
        assert "OK" in report.describe()

    def test_cli_loadtest_json(self, tmp_path):
        code, text = run_cli("loadtest", "--jobs", "30", "--tenants", "6",
                             "--processes", "2", "--dir", str(tmp_path),
                             "--json")
        assert code == 0
        import json as json_module
        doc = json_module.loads(text)
        assert doc["ok"] is True
        assert doc["acked"] == 30
        assert doc["audit"]["lost"] == 0

    def test_cli_chaos_wall_clock(self):
        code, text = run_cli("chaos", "multiply", "--scale", "tiny",
                             "--scenario", "service-kill", "--wall-clock",
                             "--jobs", "30", "--tenants", "6")
        assert code == 0
        assert "OK" in text


class TestServeCli:
    def test_serve_requires_script_or_listen(self):
        code, __ = run_cli("serve")
        assert code == 1

    def test_loadtest_rejects_bad_arrival(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli("loadtest", "--arrival", "quantum")
