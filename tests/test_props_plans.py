"""Property-based tests: skyline, constraint solvers, billing, cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import ClusterSpec, HourlyBilling, PerSecondBilling, get_instance_type
from repro.core.compiler import CompilerParams
from repro.core.costmodel import CumulonCostModel
from repro.core.plans import (
    DeploymentPlan,
    cheapest_within_deadline,
    fastest_within_budget,
    skyline,
)
from repro.hadoop.task import TaskWork, make_map_task

POINT = st.tuples(st.floats(min_value=1.0, max_value=10_000.0),
                  st.floats(min_value=0.01, max_value=1_000.0))


def make_plans(points):
    spec = ClusterSpec(get_instance_type("m1.large"), 1, 1)
    return [DeploymentPlan(spec, CompilerParams(), seconds, cost)
            for seconds, cost in points]


@given(points=st.lists(POINT, min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_skyline_is_pareto_frontier(points):
    plans = make_plans(points)
    frontier = skyline(plans)
    # 1. Nothing inside the frontier dominates anything else inside.
    for a in frontier:
        for b in frontier:
            if a is not b:
                assert not a.dominates(b)
    # 2. Every excluded plan is dominated or duplicated by a frontier plan.
    for plan in plans:
        if plan in frontier:
            continue
        assert any(other.dominates(plan)
                   or (other.estimated_seconds == plan.estimated_seconds
                       and other.estimated_cost == plan.estimated_cost)
                   for other in frontier)
    # 3. Frontier is sorted by time with strictly decreasing cost.
    times = [plan.estimated_seconds for plan in frontier]
    costs = [plan.estimated_cost for plan in frontier]
    assert times == sorted(times)
    assert all(costs[i] > costs[i + 1] for i in range(len(costs) - 1))


@given(points=st.lists(POINT, min_size=1, max_size=40),
       deadline=st.floats(min_value=1.0, max_value=10_000.0))
@settings(max_examples=60, deadline=None)
def test_deadline_solver_is_optimal(points, deadline):
    plans = make_plans(points)
    chosen = cheapest_within_deadline(plans, deadline)
    feasible = [plan for plan in plans if plan.estimated_seconds <= deadline]
    if not feasible:
        assert chosen is None
    else:
        assert chosen.estimated_seconds <= deadline
        assert chosen.estimated_cost == min(plan.estimated_cost
                                            for plan in feasible)


@given(points=st.lists(POINT, min_size=1, max_size=40),
       budget=st.floats(min_value=0.01, max_value=1_000.0))
@settings(max_examples=60, deadline=None)
def test_budget_solver_is_optimal(points, budget):
    plans = make_plans(points)
    chosen = fastest_within_budget(plans, budget)
    feasible = [plan for plan in plans if plan.estimated_cost <= budget]
    if not feasible:
        assert chosen is None
    else:
        assert chosen.estimated_cost <= budget
        assert chosen.estimated_seconds == min(plan.estimated_seconds
                                               for plan in feasible)


@given(seconds=st.floats(min_value=0.0, max_value=10**6),
       nodes=st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_hourly_at_least_per_second(seconds, nodes):
    spec = ClusterSpec(get_instance_type("c1.medium"), nodes, 2)
    hourly = HourlyBilling().cost(spec, seconds)
    exact = PerSecondBilling(minimum_seconds=0.0).cost(spec, seconds)
    assert hourly >= exact - 1e-9
    assert hourly >= spec.hourly_rate - 1e-9  # minimum one hour


@given(bytes_read=st.integers(0, 10**10), bytes_written=st.integers(0, 10**10),
       flops=st.integers(0, 10**12), element_ops=st.integers(0, 10**11),
       concurrency=st.integers(1, 16))
@settings(max_examples=80, deadline=None)
def test_cost_model_positive_and_monotone(bytes_read, bytes_written, flops,
                                          element_ops, concurrency):
    model = CumulonCostModel()
    instance = get_instance_type("c1.xlarge")
    base = make_map_task("t", TaskWork(bytes_read=bytes_read,
                                       bytes_written=bytes_written,
                                       flops=flops, element_ops=element_ops))
    duration = model.task_duration(base, instance, concurrency, True)
    assert duration > 0
    # Adding work never reduces the duration.
    bigger = make_map_task("t2", TaskWork(
        bytes_read=bytes_read + 10**6, bytes_written=bytes_written,
        flops=flops + 10**6, element_ops=element_ops))
    assert model.task_duration(bigger, instance, concurrency, True) \
        >= duration
    # Remote reads never beat local reads.
    assert model.task_duration(base, instance, concurrency, False) \
        >= duration - 1e-12
