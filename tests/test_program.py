"""Unit tests for program construction."""

import pytest

from repro.core.program import Program, Statement
from repro.errors import ValidationError


class TestProgram:
    def test_declare_and_assign(self):
        program = Program("p")
        a = program.declare_input("A", 4, 5)
        b = program.declare_input("B", 5, 6)
        c = program.assign("C", a @ b)
        assert c.shape == (4, 6)
        assert len(program.statements) == 1

    def test_duplicate_input_rejected(self):
        program = Program("p")
        program.declare_input("A", 4, 5)
        with pytest.raises(ValidationError):
            program.declare_input("A", 4, 5)

    def test_unbound_reference_rejected(self):
        program = Program("p")
        a = program.declare_input("A", 4, 4)
        other = Program("q").declare_input("Z", 4, 4)
        with pytest.raises(ValidationError):
            program.assign("C", a @ other)

    def test_assign_returns_var_for_chaining(self):
        program = Program("p")
        a = program.declare_input("A", 4, 4)
        c = program.assign("C", a @ a)
        d = program.assign("D", c @ c)
        assert d.shape == (4, 4)
        assert len(program.statements) == 2

    def test_rebinding_allowed(self):
        program = Program("p")
        a = program.declare_input("A", 4, 4)
        x = program.assign("X", a @ a)
        program.assign("X", x * 2.0)
        assert len(program.statements) == 2

    def test_loop_unrolls(self):
        program = Program("p")
        a = program.declare_input("A", 4, 4)
        state = {"x": a}

        def body(i):
            state["x"] = program.assign("x", state["x"] @ a)

        program.loop(3, body)
        assert len(program.statements) == 3

    def test_zero_loop(self):
        program = Program("p")
        program.declare_input("A", 4, 4)
        program.loop(0, lambda i: pytest.fail("body must not run"))

    def test_negative_loop_rejected(self):
        program = Program("p")
        with pytest.raises(ValidationError):
            program.loop(-1, lambda i: None)

    def test_mark_output(self):
        program = Program("p")
        a = program.declare_input("A", 4, 4)
        program.assign("C", a @ a)
        program.mark_output("C")
        assert program.outputs == ["C"]

    def test_mark_output_unbound_rejected(self):
        program = Program("p")
        with pytest.raises(ValidationError):
            program.mark_output("Z")

    def test_mark_output_idempotent(self):
        program = Program("p")
        a = program.declare_input("A", 4, 4)
        program.assign("C", a @ a)
        program.mark_output("C")
        program.mark_output("C")
        assert program.outputs == ["C"]

    def test_input_can_be_output(self):
        program = Program("p")
        program.declare_input("A", 4, 4)
        program.mark_output("A")
        assert program.outputs == ["A"]

    def test_describe(self):
        program = Program("demo")
        a = program.declare_input("A", 4, 4)
        program.assign("C", a @ a)
        program.mark_output("C")
        text = program.describe()
        assert "demo" in text
        assert "C = " in text
        assert "output C" in text

    def test_statement_validation(self):
        program = Program("p")
        a = program.declare_input("A", 2, 2)
        with pytest.raises(ValidationError):
            Statement("", a)
