"""Tier-1 tests for the durable control plane (journal + recovery).

The acceptance criteria from the durability PR, locked:

* a journaled run and a plain run of the same script produce bit-equal
  reports (the journal is write-only on the healthy path);
* killing the service after *any* journal record and recovering yields
  byte-equal bills and schedules versus the uninterrupted run
  (determinism sweep, in-process ``raise`` crash hook);
* recovery replays journaled admission decisions verbatim — **zero
  re-pricings** of anything already decided;
* torn tails truncate at the exact record boundary; mid-file corruption
  is detected with the record index and byte offset;
* snapshots compact the journal and recovery composes
  ``snapshot ∘ journal-tail``;
* a real ``SIGKILL`` subprocess run (the chaos harness) recovers with
  zero lost and zero double-billed jobs.
"""

import json
import signal

import pytest

from repro.core.evalcache import EvalCache
from repro.errors import (
    JournalCorruptionError,
    JournalError,
    RecoveryError,
    UnknownJobError,
    ValidationError,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import InMemoryRecorder, PHASE_SPAN
from repro.service import (
    STATE_CANCELLED,
    DurabilityStore,
    Journal,
    kill_and_recover,
    read_journal,
    recover,
    report_digest,
    resume_script,
    run_script,
    scan_journal,
    schedule_digest,
    submit_script_jobs,
    validate_script,
)
from repro.service.durability import (
    ERROR_CORRUPT,
    ERROR_TORN,
    EVENT_KINDS,
    KILL_RAISE,
    JournalKilled,
    encode_record,
    scan_records,
)
from repro.service.jobs import EV_HEADER, EV_RECOVERED, EV_SUBMIT
from repro.service.script import build_service
from repro.workloads import build_workload


def small_script(jobs=4):
    """A tiny two-tenant burst: enough to exercise every record kind."""
    job_docs = []
    for index in range(jobs):
        if index % 2 == 0:
            job_docs.append({"tenant": "heavy", "workload": "gnmf",
                             "scale": "tiny", "submit_at": 0.0})
        else:
            job_docs.append({"tenant": "light", "workload": "multiply",
                             "scale": "tiny",
                             "submit_at": 10.0 + index * 20.0})
    return validate_script({
        "cluster": {"instance": "c1.medium", "nodes": 2,
                    "slots_per_node": 2},
        "policy": "fair",
        "tile_size": 256,
        "tenants": [{"name": "heavy", "weight": 1.0},
                    {"name": "light", "weight": 1.0}],
        "jobs": job_docs,
    })


def baseline_digests(script):
    report, __ = run_script(script)
    service_for_schedule = build_service(script)
    submit_script_jobs(service_for_schedule, script)
    service_for_schedule.drain()
    return report_digest(report), schedule_digest(service_for_schedule)


class TestRecordCodec:
    def test_round_trip(self):
        records = [{"ev": kind, "n": index}
                   for index, kind in enumerate(EVENT_KINDS)]
        data = b"".join(encode_record(r) for r in records)
        scan = scan_records(data)
        assert scan.clean
        assert scan.records == records
        assert scan.valid_bytes == len(data)

    def test_empty_and_missing(self, tmp_path):
        assert scan_records(b"").clean
        assert scan_journal(tmp_path / "nope.wal").records == []

    def test_torn_frame_detected_at_boundary(self):
        good = encode_record({"ev": "tenant", "name": "a"})
        scan = scan_records(good + good[: len(good) - 3])
        assert scan.error == ERROR_TORN
        assert scan.error_index == 1
        assert scan.valid_bytes == len(good)
        assert scan.records == [{"ev": "tenant", "name": "a"}]

    def test_corrupt_payload_detected(self):
        good = encode_record({"ev": "tenant", "name": "a"})
        bad = bytearray(good + good)
        bad[len(good) + 10] ^= 0xFF  # flip one payload byte of record 2
        scan = scan_records(bytes(bad))
        assert scan.error == ERROR_CORRUPT
        assert scan.error_index == 1
        assert scan.valid_bytes == len(good)

    def test_read_journal_raises_with_boundary(self, tmp_path):
        path = tmp_path / "j.wal"
        good = encode_record({"ev": "tenant"})
        path.write_bytes(good + b"\x00\x01")
        with pytest.raises(JournalCorruptionError) as info:
            read_journal(path)
        assert "record #1" in str(info.value)
        assert f"byte {len(good)}" in str(info.value)


class TestJournal:
    def test_append_sync_stats(self, tmp_path):
        journal = Journal(tmp_path / "j.wal", fsync_every=2)
        journal.append({"ev": "tenant", "n": 1})
        journal.append({"ev": "tenant", "n": 2})
        journal.append({"ev": "tenant", "n": 3})
        journal.close()
        assert read_journal(tmp_path / "j.wal") == [
            {"ev": "tenant", "n": 1}, {"ev": "tenant", "n": 2},
            {"ev": "tenant", "n": 3}]
        stats = journal.stats()
        assert stats["records"] == 3
        assert stats["fsyncs"] >= 2  # one batch + the close flush

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = Journal(tmp_path / "j.wal")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError):
            journal.append({"ev": "tenant"})

    def test_rotate_compacts_to_header(self, tmp_path):
        journal = Journal(tmp_path / "j.wal", fsync_every=1)
        for index in range(5):
            journal.append({"ev": "tenant", "n": index})
        journal.rotate({"ev": EV_HEADER, "epoch": 1})
        journal.append({"ev": "tenant", "n": 99})
        journal.close()
        records = read_journal(tmp_path / "j.wal")
        assert records == [{"ev": EV_HEADER, "epoch": 1},
                           {"ev": "tenant", "n": 99}]

    def test_bad_config_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            Journal(tmp_path / "j.wal", fsync_every=0)
        with pytest.raises(ValidationError):
            Journal(tmp_path / "j.wal", kill_mode="sideways")

    def test_raise_mode_kill_hook_fires_after_nth_record(self, tmp_path):
        journal = Journal(tmp_path / "j.wal", fsync_every=1,
                          kill_after=2, kill_mode=KILL_RAISE)
        journal.append({"ev": "tenant", "n": 1})
        with pytest.raises(JournalKilled):
            journal.append({"ev": "tenant", "n": 2})
        # Everything up to and including the kill point is durable.
        assert len(read_journal(tmp_path / "j.wal")) == 2


class TestJournaledRun:
    def test_journal_does_not_change_the_report(self, tmp_path):
        script = small_script()
        plain, __ = run_script(script)
        journaled, __ = run_script(
            script, store=DurabilityStore(tmp_path / "state"))
        assert (json.dumps(plain.summary(), sort_keys=True)
                == json.dumps(journaled.summary(), sort_keys=True))

    def test_journal_contents(self, tmp_path):
        script = small_script()
        run_script(script, store=DurabilityStore(tmp_path / "state",
                                                 fsync_every=1))
        records = read_journal(tmp_path / "state" / "journal.wal")
        assert records[0]["ev"] == EV_HEADER
        kinds = {record["ev"] for record in records}
        assert {"header", "tenant", "submit", "advance", "admit",
                "start", "complete"} <= kinds
        submits = [r for r in records if r["ev"] == EV_SUBMIT]
        assert len(submits) == len(script["jobs"])
        assert all("script_index" in r["source"] for r in submits)

    def test_store_refuses_to_clobber_state(self, tmp_path):
        script = small_script(jobs=2)
        run_script(script, store=DurabilityStore(tmp_path / "state"))
        with pytest.raises(JournalError):
            run_script(script, store=DurabilityStore(tmp_path / "state"))

    def test_recover_completed_run_is_exact(self, tmp_path):
        script = small_script()
        report_dig, schedule_dig = baseline_digests(script)
        run_script(script, store=DurabilityStore(tmp_path / "state"))
        service = recover(tmp_path / "state")
        service.drain()
        assert report_digest(service.report()) == report_dig
        assert schedule_digest(service) == schedule_dig
        # Every decision came back from the journal — zero re-pricings.
        assert service.recovery.decisions_repriced == 0
        assert service.recovery.decisions_replayed == len(script["jobs"])
        service.close_durability()

    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(tmp_path / "void")


class TestKillSweepDeterminism:
    """The core durability lock: kill after ANY record, recover, equal."""

    def test_every_kill_point_recovers_byte_equal(self, tmp_path):
        script = small_script()
        report_dig, schedule_dig = baseline_digests(script)
        probe = tmp_path / "probe"
        run_script(script, store=DurabilityStore(probe, fsync_every=1))
        total = len(read_journal(probe / "journal.wal"))
        assert total > 10
        failures = []
        for kill_after in range(1, total + 1):
            workdir = tmp_path / f"kill{kill_after}"
            store = DurabilityStore(workdir, fsync_every=1,
                                    kill_after=kill_after,
                                    kill_mode=KILL_RAISE)
            try:
                run_script(script, store=store)
            except JournalKilled:
                if store.journal is not None:
                    store.journal.close()
            service = recover(workdir, fsync_every=1)
            resume_script(service, script)
            service.drain()
            if (report_digest(service.report()) != report_dig
                    or schedule_digest(service) != schedule_dig):
                failures.append(kill_after)
            service.close_durability()
        assert failures == []

    def test_recovery_replays_decisions_without_repricing(self, tmp_path):
        script = small_script()
        probe = tmp_path / "probe"
        run_script(script, store=DurabilityStore(probe, fsync_every=1))
        records = read_journal(probe / "journal.wal")
        last_decision = max(index for index, record
                            in enumerate(records, 1)
                            if record["ev"] in ("admit", "reject"))
        workdir = tmp_path / "state"
        store = DurabilityStore(workdir, fsync_every=1,
                                kill_after=last_decision,
                                kill_mode=KILL_RAISE)
        with pytest.raises(JournalKilled):
            run_script(script, store=store)
        store.journal.close()
        service = recover(workdir, fsync_every=1)
        assert service.recovery.decisions_replayed == len(script["jobs"])
        assert service.recovery.decisions_repriced == 0
        resume_script(service, script)
        service.drain()
        assert service.decisions_priced == 0
        service.close_durability()


class TestCancelAndUnknownJob:
    def test_cancel_is_idempotent_and_journaled(self, tmp_path):
        script = small_script()
        store = DurabilityStore(tmp_path / "state", fsync_every=1)
        service = build_service(script, store=store)
        handles = submit_script_jobs(service, script)
        victim = handles[-1].job_id
        service.cancel(victim)
        service.cancel(victim)  # idempotent: no error, no double record
        service.drain()
        assert service.jobs[victim].state == STATE_CANCELLED
        service.cancel(victim)  # cancelling a done job is a no-op too
        service.close_durability()
        records = read_journal(tmp_path / "state" / "journal.wal")
        cancels = [r for r in records if r["ev"] == "cancel"]
        assert len(cancels) == 1

    def test_unknown_job_raises_stable_type(self, tmp_path):
        service = build_service(small_script(jobs=2))
        with pytest.raises(UnknownJobError):
            service.cancel("no-such-job")
        with pytest.raises(UnknownJobError):
            service.status("no-such-job")

    def test_cancel_replays_identically(self, tmp_path):
        script = small_script()

        def run_with_cancel(store):
            service = build_service(script, store=store)
            handles = submit_script_jobs(service, script)
            service.cancel(handles[-1].job_id)
            service.drain()
            return service

        baseline = run_with_cancel(None)
        store = DurabilityStore(tmp_path / "state", fsync_every=1)
        journaled = run_with_cancel(store)
        journaled.close_durability()
        assert schedule_digest(journaled) == schedule_digest(baseline)
        service = recover(tmp_path / "state")
        service.drain()
        assert schedule_digest(service) == schedule_digest(baseline)
        service.close_durability()


class TestSnapshots:
    def test_snapshot_compacts_and_recovery_composes(self, tmp_path):
        script = small_script()
        report_dig, schedule_dig = baseline_digests(script)
        store = DurabilityStore(tmp_path / "state", fsync_every=1,
                                snapshot_every=8)
        run_script(script, store=store)
        assert store.snapshots_taken >= 1
        assert (tmp_path / "state" / "snapshot.json").exists()
        records = read_journal(tmp_path / "state" / "journal.wal")
        assert records[0]["ev"] == EV_HEADER
        assert records[0]["epoch"] == store.epoch
        service = recover(tmp_path / "state")
        service.drain()
        assert report_digest(service.report()) == report_dig
        assert schedule_digest(service) == schedule_dig
        assert service.recovery.snapshot_epoch == store.epoch
        service.close_durability()

    def test_kill_sweep_with_snapshots(self, tmp_path):
        script = small_script()
        report_dig, schedule_dig = baseline_digests(script)
        probe = tmp_path / "probe"
        run_script(script, store=DurabilityStore(probe, fsync_every=1))
        total = len(read_journal(probe / "journal.wal"))
        # Sample a handful of kill points; the full sweep runs above.
        for kill_after in {2, total // 3, total // 2, total - 1}:
            workdir = tmp_path / f"kill{kill_after}"
            store = DurabilityStore(workdir, fsync_every=1,
                                    snapshot_every=6,
                                    kill_after=kill_after,
                                    kill_mode=KILL_RAISE)
            try:
                run_script(script, store=store)
            except JournalKilled:
                if store.journal is not None:
                    store.journal.close()
            service = recover(workdir, fsync_every=1, snapshot_every=6)
            resume_script(service, script)
            service.drain()
            assert report_digest(service.report()) == report_dig, kill_after
            assert schedule_digest(service) == schedule_dig, kill_after
            service.close_durability()


class TestTornAndCorrupt:
    def test_torn_tail_truncates_and_recovers(self, tmp_path):
        script = small_script()
        report_dig, schedule_dig = baseline_digests(script)
        store = DurabilityStore(tmp_path / "state", fsync_every=1)
        run_script(script, store=store)
        path = tmp_path / "state" / "journal.wal"
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear mid-frame
        scan = scan_journal(path)
        assert scan.error == ERROR_TORN
        service = recover(tmp_path / "state")
        assert service.recovery.scan_error == ERROR_TORN
        assert service.recovery.truncated_bytes > 0
        resume_script(service, script)
        service.drain()
        assert report_digest(service.report()) == report_dig
        assert schedule_digest(service) == schedule_dig
        service.close_durability()
        # The reattached journal is clean again after recovery.
        assert scan_journal(path).clean

    def test_strict_recovery_refuses_torn_journal(self, tmp_path):
        script = small_script(jobs=2)
        run_script(script, store=DurabilityStore(tmp_path / "state",
                                                 fsync_every=1))
        path = tmp_path / "state" / "journal.wal"
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(JournalCorruptionError):
            recover(tmp_path / "state", strict=True)

    def test_mid_file_corruption_is_located_exactly(self, tmp_path):
        script = small_script(jobs=2)
        run_script(script, store=DurabilityStore(tmp_path / "state",
                                                 fsync_every=1))
        path = tmp_path / "state" / "journal.wal"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        scan = scan_journal(path)
        assert scan.error == ERROR_CORRUPT
        assert scan.error_index > 0
        assert scan.valid_bytes < len(data)
        with pytest.raises(JournalCorruptionError):
            read_journal(path)


class TestEvalCachePersistence:
    def test_admission_memo_round_trips(self, tmp_path):
        script = small_script()
        registry = MetricsRegistry()
        cache = EvalCache(metrics=registry)
        store = DurabilityStore(tmp_path / "state")
        run_script(script, cache=cache, store=store)
        assert (tmp_path / "state" / "evalcache.json").exists()
        loaded = store.load_cache()
        assert loaded.to_document()["entries"] \
            == cache.to_document()["entries"]


class TestObservability:
    def test_recovery_metrics_and_trace_span(self, tmp_path):
        script = small_script()
        run_script(script, store=DurabilityStore(tmp_path / "state",
                                                 fsync_every=1))
        registry = MetricsRegistry()
        recorder = InMemoryRecorder()
        service = recover(tmp_path / "state", metrics=registry,
                          recorder=recorder)
        assert registry.counter("journal.replay_records").value > 0
        assert registry.counter("journal.replay_commands").value > 0
        spans = [event for event in recorder.trace().events
                 if event.phase == PHASE_SPAN
                 and event.task_id == "recovery"]
        assert len(spans) == 1
        assert "decisions replayed" in spans[0].label
        # The recovery marker landed in the reattached journal.
        service.journal.sync()
        records = read_journal(tmp_path / "state" / "journal.wal")
        assert any(record["ev"] == EV_RECOVERED for record in records)
        stats = service.recovery
        assert stats.records_scanned == len(records) - 1  # marker is new
        assert "recovered from journal" in stats.describe()
        service.close_durability()

    def test_journal_write_metrics(self, tmp_path):
        registry = MetricsRegistry()
        script = small_script(jobs=2)
        run_script(script, metrics=registry,
                   store=DurabilityStore(tmp_path / "state", fsync_every=2,
                                         metrics=registry))
        assert registry.counter("journal.appends").value > 0
        assert registry.counter("journal.bytes").value > 0
        assert registry.counter("journal.fsyncs").value > 0


class TestResumeScript:
    def test_resubmits_only_missing_jobs(self, tmp_path):
        script = small_script()
        store = DurabilityStore(tmp_path / "state", fsync_every=1,
                                kill_after=6, kill_mode=KILL_RAISE)
        with pytest.raises(JournalKilled):
            run_script(script, store=store)
        store.journal.close()
        service = recover(tmp_path / "state")
        durable = {record.source["script_index"]
                   for record in service.jobs.values() if record.source}
        handles = resume_script(service, script)
        assert len(handles) == len(script["jobs"]) - len(durable)
        resubmitted = {record.source["script_index"]
                       for record in service.jobs.values()
                       if record.source}
        assert resubmitted == set(range(len(script["jobs"])))
        # Idempotent: a second resume has nothing left to add.
        assert resume_script(service, script) == []
        service.drain()
        service.close_durability()


@pytest.mark.slow
class TestRealSigkill:
    def test_kill_and_recover_subprocess(self, tmp_path):
        script = small_script()
        probe = tmp_path / "probe"
        run_script(script, store=DurabilityStore(probe, fsync_every=1))
        total = len(read_journal(probe / "journal.wal"))
        chaos = kill_and_recover(script, tmp_path / "chaos",
                                 kill_after=max(2, total // 2),
                                 fsync_every=1)
        assert chaos.killed
        assert chaos.exit_code == -signal.SIGKILL
        assert chaos.ok, chaos.describe()
        assert chaos.lost_jobs == 0
        assert chaos.double_billed_jobs == 0
        assert chaos.bills_match and chaos.schedules_match


class TestRestoreEdgeCases:
    def test_unknown_billing_model_refused(self, tmp_path):
        from repro.service.durability import restore_service
        with pytest.raises(RecoveryError):
            restore_service({"instance": "c1.medium", "nodes": 2,
                             "slots_per_node": 2, "policy": "fair",
                             "tile_size": 256, "tune_physical": True,
                             "billing": "per-photon"})

    def test_malformed_header_refused(self):
        from repro.service.durability import restore_service
        with pytest.raises(RecoveryError):
            restore_service({"instance": "c1.medium"})

    def test_default_resolver_rebuilds_from_provenance(self):
        from repro.service.durability import (
            RecoveredProgram,
            default_resolver,
        )
        program = default_resolver(
            {"workload": "multiply", "scale": "tiny"}, "whatever")
        reference, __ = build_workload("multiply", "tiny")
        assert program.name == reference.name
        placeholder = default_resolver(None, "ghost")
        assert isinstance(placeholder, RecoveredProgram)
        assert placeholder.name == "ghost"
        assert placeholder.inputs == {}
