"""Unit tests for tile grids and tiled matrices."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.matrix.tiled import (
    DenseBacking,
    TileGrid,
    TiledMatrix,
    assert_same_grid,
    multiply_grid,
)


class TestTileGrid:
    def test_exact_division(self):
        grid = TileGrid(100, 60, 20)
        assert grid.tile_rows == 5
        assert grid.tile_cols == 3
        assert grid.num_tiles == 15

    def test_ragged_edges(self):
        grid = TileGrid(105, 61, 20)
        assert grid.tile_rows == 6
        assert grid.tile_cols == 4
        assert grid.tile_shape(5, 3) == (5, 1)

    def test_full_tile_shape(self):
        grid = TileGrid(105, 61, 20)
        assert grid.tile_shape(0, 0) == (20, 20)

    def test_tile_larger_than_matrix(self):
        grid = TileGrid(5, 7, 100)
        assert grid.num_tiles == 1
        assert grid.tile_shape(0, 0) == (5, 7)

    def test_invalid_shape(self):
        with pytest.raises(ValidationError):
            TileGrid(0, 10, 5)
        with pytest.raises(ValidationError):
            TileGrid(10, -1, 5)

    def test_invalid_tile_size(self):
        with pytest.raises(ValidationError):
            TileGrid(10, 10, 0)

    def test_position_bounds_checked(self):
        grid = TileGrid(40, 40, 20)
        with pytest.raises(ValidationError):
            grid.tile_shape(2, 0)
        with pytest.raises(ValidationError):
            grid.slice_for(0, 5)

    def test_positions_cover_grid(self):
        grid = TileGrid(50, 30, 20)
        positions = list(grid.positions())
        assert len(positions) == grid.num_tiles
        assert len(set(positions)) == grid.num_tiles

    def test_slices_partition_matrix(self):
        grid = TileGrid(45, 33, 16)
        covered = np.zeros((45, 33), dtype=int)
        for row, col in grid.positions():
            rows, cols = grid.slice_for(row, col)
            covered[rows, cols] += 1
        assert (covered == 1).all()


class TestTiledMatrix:
    def test_roundtrip(self):
        data = np.arange(35.0).reshape(5, 7)
        matrix = TiledMatrix.from_numpy("A", data, tile_size=3)
        np.testing.assert_array_equal(matrix.to_numpy(), data)

    def test_roundtrip_single_tile(self):
        data = np.eye(4)
        matrix = TiledMatrix.from_numpy("A", data, tile_size=100)
        np.testing.assert_array_equal(matrix.to_numpy(), data)

    def test_name_required(self):
        with pytest.raises(ValidationError):
            TiledMatrix("", TileGrid(4, 4, 2))

    def test_zeros_and_identity(self):
        zeros = TiledMatrix.zeros("Z", 6, 4, tile_size=3)
        assert not zeros.to_numpy().any()
        eye = TiledMatrix.identity("I", 5, tile_size=2)
        np.testing.assert_array_equal(eye.to_numpy(), np.eye(5))

    def test_put_tile_wrong_shape_rejected(self):
        matrix = TiledMatrix.zeros("A", 6, 6, tile_size=3)
        with pytest.raises(ShapeError):
            matrix.put_tile(0, 0, np.zeros((2, 2)))

    def test_get_missing_tile_raises(self):
        matrix = TiledMatrix("A", TileGrid(4, 4, 2), DenseBacking())
        with pytest.raises(ShapeError):
            matrix.get_tile(0, 0)

    def test_tiles_iteration_order(self):
        matrix = TiledMatrix.from_numpy("A", np.arange(16.0).reshape(4, 4), 2)
        ids = [tile.tile_id for tile in matrix.tiles()]
        assert [(t.row, t.col) for t in ids] == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_nbytes_positive(self):
        matrix = TiledMatrix.from_numpy("A", np.ones((10, 10)), 4)
        assert matrix.nbytes() >= 800

    def test_density(self):
        data = np.zeros((10, 10))
        data[0, :5] = 1.0
        matrix = TiledMatrix.from_numpy("A", data, 5)
        assert matrix.density() == pytest.approx(0.05)

    def test_density_empty_matrix_is_zero_free(self):
        matrix = TiledMatrix.from_numpy("A", np.zeros((4, 4)), 2)
        assert matrix.density() == 0.0

    def test_sparse_tiles_compact_automatically(self):
        data = np.zeros((100, 100))
        data[0, 0] = 1.0
        matrix = TiledMatrix.from_numpy("A", data, 50)
        assert matrix.get_tile(0, 0).is_sparse
        np.testing.assert_array_equal(matrix.to_numpy(), data)

    def test_shared_backing(self):
        backing = DenseBacking()
        TiledMatrix.from_numpy("A", np.ones((4, 4)), 2, backing)
        TiledMatrix.from_numpy("B", np.zeros((4, 4)), 2, backing)
        assert len(backing) == 8

    def test_1d_input_promoted(self):
        matrix = TiledMatrix.from_numpy("v", np.arange(5.0), 2)
        assert matrix.shape == (1, 5)


class TestGridHelpers:
    def test_assert_same_grid_ok(self):
        a = TiledMatrix.zeros("A", 6, 4, 2)
        b = TiledMatrix.zeros("B", 6, 4, 2)
        assert_same_grid(a, b)

    def test_assert_same_grid_shape_mismatch(self):
        a = TiledMatrix.zeros("A", 6, 4, 2)
        b = TiledMatrix.zeros("B", 4, 6, 2)
        with pytest.raises(ShapeError):
            assert_same_grid(a, b)

    def test_assert_same_grid_tile_size_mismatch(self):
        a = TiledMatrix.zeros("A", 6, 4, 2)
        b = TiledMatrix.zeros("B", 6, 4, 3)
        with pytest.raises(ShapeError):
            assert_same_grid(a, b)

    def test_multiply_grid(self):
        left = TileGrid(10, 20, 5)
        right = TileGrid(20, 30, 5)
        out = multiply_grid(left, right)
        assert out.shape == (10, 30)
        assert out.tile_size == 5

    def test_multiply_grid_mismatch(self):
        with pytest.raises(ShapeError):
            multiply_grid(TileGrid(10, 20, 5), TileGrid(21, 30, 5))

    def test_multiply_grid_tile_size_mismatch(self):
        with pytest.raises(ShapeError):
            multiply_grid(TileGrid(10, 20, 5), TileGrid(20, 30, 4))
