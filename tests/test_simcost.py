"""Unit tests for program time estimation (simulation + analytic model)."""

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.core.compiler import CompilerParams, compile_program
from repro.core.costmodel import CumulonCostModel
from repro.core.physical import MatrixInfo, PhysicalContext
from repro.core.simcost import (
    analytic_job_time,
    analytic_wave_estimate,
    place_virtual_inputs,
    simulate_program,
)
from repro.errors import ValidationError
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.tilestore import TileStore
from repro.matrix.tile import TileId
from repro.matrix.tiled import TileGrid
from repro.workloads import build_multiply_program


def compiled_multiply(n=4096, tile=1024, params=None, context=None):
    program = build_multiply_program(n, n, n)
    context = context or PhysicalContext(tile)
    return compile_program(program, context, params or CompilerParams())


def spec(nodes=4, slots=2, instance="m1.large"):
    return ClusterSpec(get_instance_type(instance), nodes, slots)


class TestSimulateProgram:
    def test_estimate_positive(self):
        compiled = compiled_multiply()
        estimate = simulate_program(compiled.dag, spec(), CumulonCostModel())
        assert estimate.seconds > 0
        assert estimate.job_seconds

    def test_more_nodes_not_slower(self):
        compiled = compiled_multiply()
        model = CumulonCostModel()
        small = simulate_program(compiled.dag, spec(nodes=2), model).seconds
        large = simulate_program(compiled.dag, spec(nodes=8), model).seconds
        assert large <= small

    def test_describe(self):
        compiled = compiled_multiply()
        estimate = simulate_program(compiled.dag, spec(), CumulonCostModel())
        assert "total" in estimate.describe()


class TestAnalyticModel:
    def test_analytic_close_to_simulation_for_uniform_tasks(self):
        compiled = compiled_multiply()
        model = CumulonCostModel()
        cluster = spec()
        simulated = simulate_program(compiled.dag, cluster, model).seconds
        analytic = analytic_wave_estimate(compiled.dag, cluster, model)
        # Uniform task times, single job: within 30%.
        assert analytic == pytest.approx(simulated, rel=0.3)

    def test_analytic_upper_bounds_overlapping_jobs(self):
        # The analytic model runs jobs sequentially, so on DAGs with
        # independent jobs it should not be below the simulation.
        program = build_multiply_program(2048, 2048, 2048)
        a = program.inputs["A"]
        b = program.inputs["B"]
        program.assign("D", b @ a)  # independent of C
        compiled = compile_program(program, PhysicalContext(1024))
        model = CumulonCostModel()
        cluster = spec(nodes=8)
        simulated = simulate_program(compiled.dag, cluster, model).seconds
        analytic = analytic_wave_estimate(compiled.dag, cluster, model)
        assert analytic >= simulated * 0.99

    def test_analytic_job_time_includes_overhead(self):
        compiled = compiled_multiply()
        job = compiled.dag.topological_order()[0]
        model = CumulonCostModel()
        time = analytic_job_time(job, spec(), model)
        assert time > model.job_overhead(job)


class TestPlaceVirtualInputs:
    def make_store(self, nodes=3):
        namenode = NameNode(replication=2)
        for index in range(nodes):
            namenode.register_datanode(DataNode(f"n{index}", 10**12))
        return namenode, TileStore(namenode)

    def test_creates_metadata_for_every_tile(self):
        namenode, store = self.make_store()
        info = MatrixInfo("A", TileGrid(4096, 4096, 1024))
        place_virtual_inputs(store, [info], ["n0", "n1", "n2"])
        for row, col in info.grid.positions():
            assert store.exists(TileId("A", row, col))

    def test_tiles_spread_across_nodes(self):
        namenode, store = self.make_store()
        info = MatrixInfo("A", TileGrid(4096, 4096, 1024))
        place_virtual_inputs(store, [info], ["n0", "n1", "n2"])
        used = [node.used_bytes for node in namenode.datanodes()]
        assert min(used) > 0

    def test_requires_nodes(self):
        __, store = self.make_store()
        info = MatrixInfo("A", TileGrid(1024, 1024, 1024))
        with pytest.raises(ValidationError):
            place_virtual_inputs(store, [info], [])

    def test_locality_simulation_end_to_end(self):
        # Compile against the store so tasks carry preferred nodes, then
        # check the simulation reports high locality.
        namenode, store = self.make_store(nodes=4)
        info_a = MatrixInfo("A", TileGrid(4096, 4096, 1024))
        info_b = MatrixInfo("B", TileGrid(4096, 4096, 1024))
        place_virtual_inputs(store, [info_a, info_b],
                             [f"n{i}" for i in range(4)])
        context = PhysicalContext(1024, store)
        compiled = compiled_multiply(context=context)
        cluster = ClusterSpec(get_instance_type("m1.large"), 4, 2)
        # Node names won't match "n0..n3"; locality preferences simply have
        # no matching node, so the run still completes.
        estimate = simulate_program(compiled.dag, cluster, CumulonCostModel())
        assert estimate.seconds > 0
