"""Unit tests for the cloud layer: catalog, cluster specs, billing."""

import pytest

from repro.cloud import (
    EC2_CATALOG,
    ClusterSpec,
    HourlyBilling,
    PerSecondBilling,
    get_instance_type,
    provision,
)
from repro.errors import ValidationError


class TestCatalog:
    def test_known_types_present(self):
        for name in ("m1.small", "m1.large", "c1.xlarge", "m2.4xlarge"):
            assert name in EC2_CATALOG

    def test_lookup(self):
        instance = get_instance_type("c1.medium")
        assert instance.cores == 2

    def test_unknown_type(self):
        with pytest.raises(ValidationError):
            get_instance_type("p5.48xlarge")

    def test_no_type_dominates_on_price_per_core_speed(self):
        # The catalog must present real trade-offs: the cheapest
        # core-second is not also the one with the most memory per dollar.
        def core_value(instance):
            return instance.cores * instance.core_speed / instance.price_per_hour

        def memory_value(instance):
            return instance.memory_gb / instance.price_per_hour

        best_compute = max(EC2_CATALOG.values(), key=core_value)
        best_memory = max(EC2_CATALOG.values(), key=memory_value)
        assert best_compute.name != best_memory.name

    def test_max_slots(self):
        assert get_instance_type("m1.large").max_slots == 4


class TestClusterSpec:
    def test_totals(self):
        spec = ClusterSpec(get_instance_type("m1.large"), 4, 2)
        assert spec.total_slots == 8
        assert spec.hourly_rate == pytest.approx(4 * 0.24)

    def test_node_names_unique(self):
        spec = ClusterSpec(get_instance_type("m1.small"), 5, 1)
        names = spec.node_names()
        assert len(set(names)) == 5

    def test_invalid_nodes(self):
        with pytest.raises(ValidationError):
            ClusterSpec(get_instance_type("m1.small"), 0, 1)

    def test_slots_bounds(self):
        instance = get_instance_type("m1.large")
        with pytest.raises(ValidationError):
            ClusterSpec(instance, 2, 0)
        with pytest.raises(ValidationError):
            ClusterSpec(instance, 2, instance.max_slots + 1)

    def test_describe_mentions_type(self):
        spec = ClusterSpec(get_instance_type("c1.xlarge"), 2, 8)
        assert "c1.xlarge" in spec.describe()


class TestBilling:
    def spec(self, nodes=2):
        return ClusterSpec(get_instance_type("m1.large"), nodes, 2)

    def test_hourly_rounds_up(self):
        billing = HourlyBilling()
        spec = self.spec()
        assert billing.cost(spec, 1.0) == pytest.approx(spec.hourly_rate)
        assert billing.cost(spec, 3600.0) == pytest.approx(spec.hourly_rate)
        assert billing.cost(spec, 3601.0) == pytest.approx(2 * spec.hourly_rate)

    def test_hourly_minimum_one_hour(self):
        billing = HourlyBilling()
        spec = self.spec()
        assert billing.cost(spec, 0.0) == pytest.approx(spec.hourly_rate)

    def test_per_second_exact(self):
        billing = PerSecondBilling(minimum_seconds=0.0)
        spec = self.spec()
        assert billing.cost(spec, 1800.0) == pytest.approx(spec.hourly_rate / 2)

    def test_per_second_minimum(self):
        billing = PerSecondBilling(minimum_seconds=60.0)
        spec = self.spec()
        assert billing.cost(spec, 1.0) == pytest.approx(
            spec.hourly_rate * 60 / 3600
        )

    def test_hourly_never_cheaper_than_per_second(self):
        hourly = HourlyBilling()
        per_second = PerSecondBilling(minimum_seconds=0.0)
        spec = self.spec()
        for seconds in (1.0, 100.0, 3599.0, 3600.0, 5000.0, 7200.5):
            assert hourly.cost(spec, seconds) >= per_second.cost(spec, seconds)

    def test_negative_usage_rejected(self):
        with pytest.raises(ValidationError):
            HourlyBilling().cost(self.spec(), -1.0)

    def test_nan_usage_rejected(self):
        with pytest.raises(ValidationError):
            HourlyBilling().cost(self.spec(), float("nan"))

    def test_cost_monotone_in_time(self):
        billing = HourlyBilling()
        spec = self.spec()
        costs = [billing.cost(spec, s) for s in (10, 100, 4000, 8000)]
        assert costs == sorted(costs)


class TestProvisioning:
    def test_provision_registers_datanodes(self):
        spec = ClusterSpec(get_instance_type("m1.large"), 3, 2)
        cluster = provision(spec)
        assert len(cluster.namenode.datanodes()) == 3
        assert cluster.total_slots == 6

    def test_replication_capped_by_nodes(self):
        spec = ClusterSpec(get_instance_type("m1.small"), 2, 1)
        cluster = provision(spec, replication=3)
        assert cluster.namenode.replication == 2

    def test_capacity_from_catalog(self):
        spec = ClusterSpec(get_instance_type("m1.small"), 1, 1)
        cluster = provision(spec)
        node = cluster.namenode.datanodes()[0]
        assert node.capacity_bytes == spec.instance_type.storage_bytes

    def test_negative_startup_rejected(self):
        spec = ClusterSpec(get_instance_type("m1.small"), 1, 1)
        with pytest.raises(ValidationError):
            provision(spec, startup_seconds=-1.0)
