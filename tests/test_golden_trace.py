"""Golden trace test: a fixed GNMF run's Chrome-trace export, pinned.

The simulator is deterministic, so everything *structural* about a GNMF
trace — which jobs and tasks exist, their phases, attempt counts, statuses,
I/O volumes, slot lanes — is pinned against a committed fixture.  Wall-clock
fields (``ts``/``dur``) are stripped before comparison, so recalibrating the
cost model's timing coefficients does not break this test; changing the
compiler's job structure or the trace schema does, which is the point.

A real (thread-pool) run of the same program with fixed-seed inputs is then
checked against the same fixture for task coverage: the actual execution
must produce events for exactly the tasks the prediction did.

Regenerate after a deliberate structural change::

    PYTHONPATH=src python tests/test_golden_trace.py --regenerate
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.cloud import ClusterSpec, get_instance_type
from repro.core.compiler import compile_program
from repro.core.costmodel import CumulonCostModel
from repro.core.executor import CumulonExecutor
from repro.core.physical import PhysicalContext
from repro.core.simcost import simulate_program
from repro.observability import (
    InMemoryRecorder,
    SOURCE_ACTUAL,
    SOURCE_SIMULATED,
    structural_summary,
    to_chrome_events,
)
from repro.workloads import build_gnmf_program

FIXTURE = Path(__file__).parent / "fixtures" / "gnmf_trace_golden.json"

TILE = 64
SEED = 17


def build_program():
    return build_gnmf_program(192, 128, 16, iterations=2)


def simulated_trace():
    compiled = compile_program(build_program(), PhysicalContext(TILE))
    recorder = InMemoryRecorder(source=SOURCE_SIMULATED)
    spec = ClusterSpec(get_instance_type("m1.large"), 2, 2)
    simulate_program(compiled.dag, spec, CumulonCostModel(),
                     recorder=recorder)
    return recorder.trace()


def strip_timing(events):
    return [{key: value for key, value in event.items()
             if key not in ("ts", "dur")} for event in events]


def build_fixture():
    trace = simulated_trace()
    return {
        "chrome_events": strip_timing(to_chrome_events(trace)),
        "summary": structural_summary(trace),
    }


def load_fixture():
    with open(FIXTURE, encoding="utf-8") as handle:
        return json.load(handle)


class TestGoldenTrace:
    def test_chrome_export_structure_matches_fixture(self):
        assert build_fixture()["chrome_events"] \
            == load_fixture()["chrome_events"]

    def test_structural_summary_matches_fixture(self):
        assert build_fixture()["summary"] == load_fixture()["summary"]

    def test_event_counts_pinned(self):
        summary = load_fixture()["summary"]
        trace = simulated_trace()
        assert len(trace.events) == summary["num_events"]
        assert len(trace.task_events()) == summary["num_task_events"]

    def test_actual_run_covers_fixture_tasks(self):
        """A fixed-seed real execution runs exactly the predicted task set."""
        fixture_tasks = sorted(
            event["task_id"] for event in load_fixture()["summary"]["events"]
            if event["phase"] in ("map", "reduce")
        )
        program = build_program()
        rng = np.random.default_rng(SEED)
        inputs = {name: rng.random(var.shape) + 0.01
                  for name, var in program.inputs.items()}
        recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
        CumulonExecutor(tile_size=TILE, max_workers=2,
                        recorder=recorder).run(program, inputs)
        actual_tasks = sorted(
            event.task_id for event in recorder.trace().task_events())
        assert actual_tasks == fixture_tasks


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        with open(FIXTURE, "w", encoding="utf-8") as handle:
            json.dump(build_fixture(), handle, indent=1, sort_keys=True)
        print(f"wrote {FIXTURE}")
    else:
        print(__doc__)
