"""Property-based tests: tiled-matrix algebra is equivalent to numpy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompilerParams
from repro.core.executor import run_program
from repro.core.physical import MatMulParams
from repro.core.program import Program
from repro.matrix.tiled import TiledMatrix

DIMS = st.integers(min_value=1, max_value=24)
TILES = st.integers(min_value=1, max_value=9)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def array(rows, cols, seed, sparse_fraction=0.0):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((rows, cols))
    if sparse_fraction > 0:
        mask = rng.random((rows, cols)) < sparse_fraction
        data[mask] = 0.0
    return data


@given(rows=DIMS, cols=DIMS, tile=TILES, seed=SEEDS,
       sparse_fraction=st.sampled_from([0.0, 0.5, 0.95]))
@settings(max_examples=60, deadline=None)
def test_roundtrip_any_shape(rows, cols, tile, seed, sparse_fraction):
    data = array(rows, cols, seed, sparse_fraction)
    matrix = TiledMatrix.from_numpy("A", data, tile)
    np.testing.assert_array_equal(matrix.to_numpy(), data)


@given(rows=DIMS, inner=DIMS, cols=DIMS, tile=TILES, seed=SEEDS,
       ci=st.integers(1, 3), cj=st.integers(1, 3), ks=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_matmul_equivalent_to_numpy(rows, inner, cols, tile, seed, ci, cj, ks):
    a = array(rows, inner, seed)
    b = array(inner, cols, seed + 1)
    program = Program("prop")
    va = program.declare_input("A", rows, inner)
    vb = program.declare_input("B", inner, cols)
    program.assign("C", va @ vb)
    program.mark_output("C")
    params = CompilerParams(matmul=MatMulParams(ci, cj, ks))
    result = run_program(program, {"A": a, "B": b}, tile_size=tile,
                         params=params, max_workers=1)
    np.testing.assert_allclose(result.output("C"), a @ b, atol=1e-9)


@given(rows=DIMS, cols=DIMS, tile=TILES, seed=SEEDS)
@settings(max_examples=40, deadline=None)
def test_elementwise_equivalent_to_numpy(rows, cols, tile, seed):
    a = array(rows, cols, seed)
    b = array(rows, cols, seed + 1)
    program = Program("prop")
    va = program.declare_input("A", rows, cols)
    vb = program.declare_input("B", rows, cols)
    program.assign("C", (va + vb) * 2.0 - va * vb)
    program.mark_output("C")
    result = run_program(program, {"A": a, "B": b}, tile_size=tile,
                         max_workers=1)
    np.testing.assert_allclose(result.output("C"), (a + b) * 2 - a * b,
                               atol=1e-9)


@given(rows=DIMS, cols=DIMS, tile=TILES, seed=SEEDS)
@settings(max_examples=40, deadline=None)
def test_transpose_equivalent_to_numpy(rows, cols, tile, seed):
    a = array(rows, cols, seed)
    program = Program("prop")
    va = program.declare_input("A", rows, cols)
    program.assign("AtA", va.T @ va)
    program.mark_output("AtA")
    result = run_program(program, {"A": a}, tile_size=tile, max_workers=1)
    np.testing.assert_allclose(result.output("AtA"), a.T @ a, atol=1e-9)


@given(rows=DIMS, cols=DIMS, tile=TILES, seed=SEEDS,
       sparse_fraction=st.sampled_from([0.8, 0.95, 1.0]))
@settings(max_examples=30, deadline=None)
def test_sparse_tiles_preserve_values(rows, cols, tile, seed, sparse_fraction):
    data = array(rows, cols, seed, sparse_fraction)
    matrix = TiledMatrix.from_numpy("S", data, tile)
    assert matrix.nnz() == np.count_nonzero(data)
    np.testing.assert_array_equal(matrix.to_numpy(), data)
