"""Unit tests for transpose normalization, fusion, and job planning."""

import numpy as np
import pytest

from repro.core.compiler import (
    CompilerParams,
    compile_program,
    normalize_transposes,
)
from repro.core.expr import Binary, MatMul, Transpose, Var, evaluate_with_numpy
from repro.core.physical import ElementwiseParams, MatMulParams, PhysicalContext
from repro.core.program import Program
from repro.hadoop.job import JobKind


def var(name="A", rows=6, cols=6):
    return Var(name, (rows, cols))


class TestNormalizeTransposes:
    def assert_equivalent(self, expr, env):
        normalized = normalize_transposes(expr)
        np.testing.assert_allclose(
            evaluate_with_numpy(normalized, env),
            evaluate_with_numpy(expr, env),
        )
        return normalized

    def env(self):
        rng = np.random.default_rng(1)
        return {"A": rng.random((6, 6)), "B": rng.random((6, 6))}

    def test_double_transpose_cancels(self):
        normalized = self.assert_equivalent(var().T.T, self.env())
        assert isinstance(normalized, Var)

    def test_transpose_of_sum_distributes(self):
        normalized = self.assert_equivalent((var("A") + var("B")).T, self.env())
        assert isinstance(normalized, Binary)
        assert isinstance(normalized.left, Transpose)

    def test_transpose_of_product_reverses(self):
        normalized = self.assert_equivalent((var("A") @ var("B")).T, self.env())
        assert isinstance(normalized, MatMul)
        # (AB)' = B'A'
        assert normalized.left.child.name == "B"
        assert normalized.right.child.name == "A"

    def test_transpose_of_scalar_op(self):
        self.assert_equivalent((var("A") * 3.0).T, self.env())

    def test_transpose_of_element_func(self):
        self.assert_equivalent(var("A").apply("sqrt").T, self.env())

    def test_deeply_nested(self):
        expr = ((var("A") @ var("B")).T + var("A")).T
        normalized = self.assert_equivalent(expr, self.env())
        # After normalization, no transpose sits above a non-Var node.
        stack = [normalized]
        while stack:
            node = stack.pop()
            if isinstance(node, Transpose):
                assert isinstance(node.child, Var)
            stack.extend(node.children())

    def test_no_transpose_untouched(self):
        expr = var("A") @ var("B")
        normalized = normalize_transposes(expr)
        assert isinstance(normalized, MatMul)


def compile_simple(expr_builder, params=None, tile_size=3):
    program = Program("t")
    a = program.declare_input("A", 6, 6)
    b = program.declare_input("B", 6, 6)
    program.assign("OUT", expr_builder(a, b))
    program.mark_output("OUT")
    context = PhysicalContext(tile_size)
    return compile_program(program, context, params)


class TestCompilerStructure:
    def test_single_matmul_one_job(self):
        compiled = compile_simple(lambda a, b: a @ b)
        jobs = list(compiled.dag)
        assert len(jobs) == 1
        assert jobs[0].kind is JobKind.MAP_ONLY

    def test_matmul_with_ksplit_adds_add_job(self):
        params = CompilerParams(matmul=MatMulParams(1, 1, 2))
        compiled = compile_simple(lambda a, b: a @ b, params)
        assert len(list(compiled.dag)) == 2

    def test_fused_elementwise_single_job(self):
        compiled = compile_simple(lambda a, b: (a + b) * 2.0 - a)
        jobs = list(compiled.dag)
        assert len(jobs) == 1
        assert "ew" in jobs[0].job_id

    def test_fusion_disabled_one_job_per_operator(self):
        params = CompilerParams(fusion_enabled=False)
        compiled = compile_simple(lambda a, b: (a + b) * 2.0 - a, params)
        # add, scalar-mul, sub: three separate jobs.
        assert len(list(compiled.dag)) == 3

    def test_matmul_then_elementwise_two_jobs(self):
        compiled = compile_simple(lambda a, b: (a @ b) + a)
        jobs = list(compiled.dag)
        assert len(jobs) == 2
        assert jobs[1].depends_on == {jobs[0].job_id}

    def test_alias_statement_costs_nothing(self):
        program = Program("alias")
        a = program.declare_input("A", 6, 6)
        program.assign("B", a)
        compiled = compile_program(program, PhysicalContext(3))
        assert len(list(compiled.dag)) == 0
        assert compiled.bindings["B"].name == "A"

    def test_bare_transpose_materializes(self):
        program = Program("t")
        a = program.declare_input("A", 6, 4)
        program.assign("B", a.T)
        compiled = compile_program(program, PhysicalContext(2))
        assert len(list(compiled.dag)) == 1
        assert compiled.bindings["B"].shape == (4, 6)

    def test_transposed_matmul_operand_needs_no_extra_job(self):
        compiled = compile_simple(lambda a, b: a.T @ b)
        assert len(list(compiled.dag)) == 1

    def test_rebinding_creates_versions(self):
        program = Program("v")
        a = program.declare_input("A", 6, 6)
        x = program.assign("X", a @ a)
        program.assign("X", x @ a)
        compiled = compile_program(program, PhysicalContext(3))
        assert compiled.bindings["X"].name == "X@2"
        assert "X@1" in compiled.materialized

    def test_task_counts_follow_split_params(self):
        # 6x6 with tile 3 -> 2x2 tile grid; chunks of 1 tile -> 4 tasks/seg.
        params = CompilerParams(matmul=MatMulParams(1, 1, 2))
        compiled = compile_simple(lambda a, b: a @ b, params)
        mult_job = compiled.dag.topological_order()[0]
        assert len(mult_job.map_tasks) == 8  # 4 positions x 2 k-segments

    def test_elementwise_tiles_per_task(self):
        params = CompilerParams(elementwise=ElementwiseParams(tiles_per_task=1))
        compiled = compile_simple(lambda a, b: a + b, params, tile_size=2)
        job = compiled.dag.topological_order()[0]
        assert len(job.map_tasks) == 9  # 3x3 tile grid, one tile per task

    def test_shared_subexpression_deduplicated(self):
        # CSE (on by default) compiles the repeated A@B once.
        compiled = compile_simple(lambda a, b: (a @ b) + (a @ b))
        mult_jobs = [j for j in compiled.dag if "mul" in j.job_id]
        assert len(mult_jobs) == 1

    def test_cse_disabled_duplicates(self):
        params = CompilerParams(cse_enabled=False)
        compiled = compile_simple(lambda a, b: (a @ b) + (a @ b), params)
        mult_jobs = [j for j in compiled.dag if "mul" in j.job_id]
        assert len(mult_jobs) == 2

    def test_cse_respects_rebinding(self):
        # X changes between the two uses of X @ A: no reuse allowed.
        program = Program("rebind")
        a = program.declare_input("A", 6, 6)
        x = program.assign("X", a @ a)
        program.assign("Y1", x @ a)
        x = program.assign("X", x + a)
        program.assign("Y2", x @ a)
        compiled = compile_program(program, PhysicalContext(3))
        mult_jobs = [j for j in compiled.dag if "mul" in j.job_id]
        # A@A, X@1 @ A, X@2 @ A: three distinct multiplies.
        assert len(mult_jobs) == 3

    def test_cse_reuse_across_statements_is_correct(self):
        import numpy as np
        from repro.core.executor import run_program
        rng = np.random.default_rng(3)
        env = {"A": rng.random((12, 12)), "B": rng.random((12, 12))}
        program = Program("share")
        a = program.declare_input("A", 12, 12)
        b = program.declare_input("B", 12, 12)
        program.assign("P", a @ b)
        program.assign("Q", (a @ b) * 2.0)
        program.mark_output("P", "Q")
        result = run_program(program, env, tile_size=4)
        np.testing.assert_allclose(result.output("P"), env["A"] @ env["B"])
        np.testing.assert_allclose(result.output("Q"),
                                   2 * (env["A"] @ env["B"]))

    def test_work_accounting_positive(self):
        compiled = compile_simple(lambda a, b: (a @ b) * 3.0)
        for job in compiled.dag:
            assert job.total_bytes_read() > 0
            assert job.total_bytes_written() > 0


class TestCompiledOutputs:
    def test_output_info_lookup(self):
        compiled = compile_simple(lambda a, b: a @ b)
        info = compiled.output_info("OUT")
        assert info.shape == (6, 6)

    def test_output_info_missing(self):
        from repro.errors import CompilationError
        compiled = compile_simple(lambda a, b: a @ b)
        with pytest.raises(CompilationError):
            compiled.output_info("NOPE")
