"""Unit tests for the logical expression language."""

import numpy as np
import pytest

from repro.core.expr import (
    Binary,
    ElementFunc,
    MatMul,
    ScalarOp,
    Transpose,
    Var,
    estimate_binary_density,
    estimate_matmul_density,
    evaluate_with_numpy,
)
from repro.errors import ShapeError, ValidationError


def var(name="A", rows=4, cols=5, density=1.0):
    return Var(name, (rows, cols), density)


class TestVar:
    def test_basic(self):
        v = var()
        assert v.shape == (4, 5)
        assert v.describe() == "A"

    def test_invalid_shape(self):
        with pytest.raises(ShapeError):
            Var("A", (0, 5))

    def test_invalid_density(self):
        with pytest.raises(ValidationError):
            Var("A", (2, 2), density=1.5)

    def test_empty_name(self):
        with pytest.raises(ValidationError):
            Var("", (2, 2))


class TestOperators:
    def test_matmul_shape(self):
        product = var("A", 4, 5) @ var("B", 5, 7)
        assert isinstance(product, MatMul)
        assert product.shape == (4, 7)

    def test_matmul_mismatch(self):
        with pytest.raises(ShapeError):
            var("A", 4, 5) @ var("B", 4, 5)

    def test_add_matrices(self):
        result = var("A") + var("B", 4, 5)
        assert isinstance(result, Binary)
        assert result.op == "add"

    def test_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            var("A", 4, 5) + var("B", 5, 4)

    def test_scalar_ops(self):
        assert isinstance(var() + 2.0, ScalarOp)
        assert isinstance(var() * 3, ScalarOp)
        assert isinstance(2.0 * var(), ScalarOp)
        assert isinstance(2.0 + var(), ScalarOp)

    def test_sub_scalar_becomes_negative_add(self):
        node = var() - 2.0
        assert isinstance(node, ScalarOp)
        assert node.op == "add"
        assert node.scalar == -2.0

    def test_div_scalar_becomes_mul(self):
        node = var() / 4.0
        assert isinstance(node, ScalarOp)
        assert node.op == "mul"
        assert node.scalar == pytest.approx(0.25)

    def test_div_by_zero_scalar(self):
        with pytest.raises(ValidationError):
            var() / 0

    def test_negation(self):
        node = -var()
        assert isinstance(node, ScalarOp)
        assert node.scalar == -1.0

    def test_transpose_shape(self):
        t = var("A", 4, 5).T
        assert isinstance(t, Transpose)
        assert t.shape == (5, 4)

    def test_apply(self):
        node = var().apply("exp")
        assert isinstance(node, ElementFunc)
        assert node.shape == (4, 5)

    def test_apply_unknown(self):
        with pytest.raises(ValidationError):
            var().apply("softmax")

    def test_matmul_with_non_expr(self):
        with pytest.raises(ValidationError):
            var() @ 3.0

    def test_nonfinite_scalar_rejected(self):
        with pytest.raises(ValidationError):
            var() * float("inf")


class TestTraversal:
    def test_free_variables(self):
        expr = (var("A", 4, 5) @ var("B", 5, 6)) + var("C", 4, 6)
        assert expr.free_variables() == {"A", "B", "C"}

    def test_describe(self):
        expr = (var("A", 4, 5) @ var("B", 5, 6)) * 2.0
        text = expr.describe()
        assert "A" in text and "B" in text and "2" in text


class TestDensity:
    def test_matmul_density_dense(self):
        assert estimate_matmul_density(1.0, 1.0, 100) == 1.0

    def test_matmul_density_zero(self):
        assert estimate_matmul_density(0.0, 1.0, 100) == 0.0

    def test_matmul_density_grows_with_inner_dim(self):
        small = estimate_matmul_density(0.01, 0.01, 10)
        large = estimate_matmul_density(0.01, 0.01, 10000)
        assert large > small

    def test_binary_density_add_union(self):
        assert estimate_binary_density("add", 0.5, 0.5) == pytest.approx(0.75)

    def test_binary_density_mul_intersection(self):
        assert estimate_binary_density("mul", 0.5, 0.5) == pytest.approx(0.25)

    def test_binary_density_div_dense(self):
        assert estimate_binary_density("div", 0.1, 0.1) == 1.0

    def test_exp_densifies(self):
        node = Var("A", (3, 3), density=0.1).apply("exp")
        assert node.density == 1.0

    def test_sqrt_preserves_pattern(self):
        node = Var("A", (3, 3), density=0.1).apply("sqrt")
        assert node.density == pytest.approx(0.1)

    def test_scalar_add_densifies(self):
        node = Var("A", (3, 3), density=0.1) + 1.0
        assert node.density == 1.0

    def test_scalar_mul_preserves(self):
        node = Var("A", (3, 3), density=0.1) * 2.0
        assert node.density == pytest.approx(0.1)


class TestNumpyEvaluator:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.env = {
            "A": rng.random((4, 5)),
            "B": rng.random((5, 6)),
            "C": rng.random((4, 6)),
        }

    def test_full_expression(self):
        expr = ((var("A", 4, 5) @ var("B", 5, 6)) * 2.0 + var("C", 4, 6)
                ).apply("sqrt")
        expected = np.sqrt(self.env["A"] @ self.env["B"] * 2 + self.env["C"])
        np.testing.assert_allclose(evaluate_with_numpy(expr, self.env), expected)

    def test_transpose(self):
        expr = var("A", 4, 5).T
        np.testing.assert_allclose(evaluate_with_numpy(expr, self.env),
                                   self.env["A"].T)

    def test_unbound_variable(self):
        with pytest.raises(ValidationError):
            evaluate_with_numpy(var("Z"), self.env)

    def test_binary_ops(self):
        a, c = self.env["A"], self.env["C"]
        env = {"A": a, "C": a + 1.0}
        for op, expected in (
            (var("A", 4, 5) + var("C", 4, 5), env["A"] + env["C"]),
            (var("A", 4, 5) - var("C", 4, 5), env["A"] - env["C"]),
            (var("A", 4, 5) * var("C", 4, 5), env["A"] * env["C"]),
            (var("A", 4, 5) / var("C", 4, 5), env["A"] / env["C"]),
        ):
            np.testing.assert_allclose(evaluate_with_numpy(op, env), expected)


class TestMinMax:
    def test_minimum_maximum_nodes(self):
        node = var("A").minimum(var("B", 4, 5))
        assert isinstance(node, Binary)
        assert node.op == "min"
        node = var("A").maximum(var("B", 4, 5))
        assert node.op == "max"

    def test_describe(self):
        assert "min(" in var("A").minimum(var("B", 4, 5)).describe()

    def test_numpy_evaluation(self):
        rng = np.random.default_rng(1)
        env = {"A": rng.standard_normal((4, 5)),
               "B": rng.standard_normal((4, 5))}
        expr = var("A").minimum(var("B", 4, 5))
        np.testing.assert_allclose(evaluate_with_numpy(expr, env),
                                   np.minimum(env["A"], env["B"]))
        expr = var("A").maximum(var("B", 4, 5))
        np.testing.assert_allclose(evaluate_with_numpy(expr, env),
                                   np.maximum(env["A"], env["B"]))

    def test_density_union(self):
        node = Var("A", (4, 4), density=0.3).maximum(
            Var("B", (4, 4), density=0.2))
        assert node.density == pytest.approx(0.3 + 0.2 - 0.06)

    def test_compiled_execution_clipping(self):
        from repro.core.executor import run_program
        from repro.core.expr import Constant
        from repro.core.program import Program
        rng = np.random.default_rng(2)
        data = rng.standard_normal((12, 10))
        program = Program("relu")
        x = program.declare_input("X", 12, 10)
        program.assign("Y", x.maximum(Constant(0.0, (1, 1))))
        program.mark_output("Y")
        result = run_program(program, {"X": data}, tile_size=4)
        np.testing.assert_allclose(result.output("Y"),
                                   np.maximum(data, 0.0))
