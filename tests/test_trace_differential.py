"""Differential tests: one DAG, two execution paths, one trace schema.

The contract under test is the heart of the observability layer: running the
same :class:`~repro.hadoop.job.JobDag` through the discrete-event simulator
and through the real thread-pool ``LocalExecutor`` must yield traces that

* use the identical :class:`TraceEvent` schema,
* cover the identical set of tasks,
* satisfy the structural invariants of a real execution (no two events
  overlap on one slot, reduces never start before their job's maps finish,
  task durations account for the job's wall time), and
* align under :func:`trace_diff` with full coverage and finite errors.
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.core.executor import CumulonExecutor
from repro.core.program import Program
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.local import LocalExecutor
from repro.hadoop.simulator import ClusterSimulator
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task
from repro.hadoop.timemodel import FixedTimeModel
from repro.observability import (
    InMemoryRecorder,
    PHASE_SHUFFLE,
    SCHEMA_FIELDS,
    SOURCE_ACTUAL,
    SOURCE_SIMULATED,
    TraceEvent,
    trace_diff,
)


def spec(nodes=2, slots=2):
    return ClusterSpec(get_instance_type("m1.large"), nodes, slots)


def busy_task_factory(seconds=0.002):
    def run():
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            pass

    return run


def synthetic_dag():
    """A two-job DAG: a MapReduce job feeding a map-only job."""
    maps = [make_map_task(f"m{i}", TaskWork(bytes_read=100, shuffle_bytes=10),
                          run=busy_task_factory()) for i in range(6)]
    reduces = [make_reduce_task(f"r{i}", TaskWork(bytes_written=50),
                                run=busy_task_factory()) for i in range(2)]
    follow = [make_map_task(f"f{i}", TaskWork(bytes_read=50),
                            run=busy_task_factory()) for i in range(3)]
    return JobDag([
        Job("mr", JobKind.MAPREDUCE, maps, reduces),
        Job("post", JobKind.MAP_ONLY, follow, depends_on={"mr"}),
    ])


def run_both(dag, max_workers=2, nodes=2, slots=2):
    simulated = InMemoryRecorder(source=SOURCE_SIMULATED)
    ClusterSimulator(spec(nodes, slots), FixedTimeModel(1.0),
                     recorder=simulated).run(dag)
    actual = InMemoryRecorder(source=SOURCE_ACTUAL)
    report = LocalExecutor(max_workers=max_workers, recorder=actual).run(dag)
    return simulated.trace(), actual.trace(), report


class TestSchemaAndCoverage:
    def test_same_schema_both_paths(self):
        predicted, actual, __ = run_both(synthetic_dag())
        for trace in (predicted, actual):
            assert trace.events, "both paths must emit events"
            for event in trace.events:
                assert isinstance(event, TraceEvent)
                assert tuple(f.name for f in dataclasses.fields(event)) \
                    == SCHEMA_FIELDS

    def test_same_task_coverage(self):
        dag = synthetic_dag()
        predicted, actual, __ = run_both(dag)
        all_tasks = {task.task_id for job in dag for task in job.all_tasks()}
        assert predicted.task_ids() == all_tasks
        assert actual.task_ids() == all_tasks

    def test_same_job_coverage(self):
        predicted, actual, __ = run_both(synthetic_dag())
        assert predicted.job_ids() == actual.job_ids() == {"mr", "post"}

    def test_phases_agree_per_task(self):
        predicted, actual, __ = run_both(synthetic_dag())
        predicted_phases = {event.task_id: event.phase
                            for event in predicted.task_events()}
        actual_phases = {event.task_id: event.phase
                         for event in actual.task_events()}
        assert predicted_phases == actual_phases


class TestStructuralInvariants:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_no_slot_overlap(self, workers):
        predicted, actual, __ = run_both(synthetic_dag(),
                                         max_workers=workers)
        assert predicted.slot_overlaps() == []
        assert actual.slot_overlaps() == []

    def test_map_reduce_barrier_both_paths(self):
        predicted, actual, __ = run_both(synthetic_dag())
        assert predicted.barrier_violations() == []
        assert actual.barrier_violations() == []

    def test_simulated_shuffle_between_phases(self):
        predicted, __, ___ = run_both(synthetic_dag())
        shuffles = [event for event in predicted.events
                    if event.phase == PHASE_SHUFFLE]
        assert len(shuffles) == 1
        last_map = max(event.end for event in predicted.task_events()
                       if event.phase == "map" and event.job_id == "mr")
        first_reduce = min(event.start for event in predicted.task_events()
                           if event.phase == "reduce")
        assert last_map <= shuffles[0].start + 1e-9
        assert shuffles[0].end <= first_reduce + 1e-9

    def test_durations_account_for_job_time(self):
        """Sequential execution: task durations must sum to the job's wall
        time, up to dispatch overhead."""
        dag = synthetic_dag()
        __, actual, report = run_both(dag, max_workers=1)
        for job_report in report.job_reports:
            events = [event for event in actual.task_events()
                      if event.job_id == job_report.job_id]
            total = sum(event.duration for event in events)
            assert total <= job_report.seconds + 1e-6
            # Dispatch overhead is small; the bulk of the wall time must be
            # accounted for by the per-task events.
            assert total >= 0.5 * job_report.seconds

    def test_simulated_durations_exact_on_one_slot(self):
        maps = [make_map_task(f"m{i}", TaskWork()) for i in range(5)]
        dag = JobDag([Job("solo", JobKind.MAP_ONLY, maps)])
        recorder = InMemoryRecorder(source=SOURCE_SIMULATED)
        result = ClusterSimulator(spec(nodes=1, slots=1), FixedTimeModel(2.0),
                                  recorder=recorder).run(dag)
        trace = recorder.trace()
        assert sum(event.duration for event in trace.task_events()) \
            == pytest.approx(result.job("solo").duration)


class TestTraceDiff:
    def test_full_coverage_and_finite_errors(self):
        predicted, actual, __ = run_both(synthetic_dag())
        diff = trace_diff(predicted, actual)
        assert diff.task_coverage == 1.0
        assert not diff.only_predicted and not diff.only_actual
        assert set(diff.task_diffs) == predicted.task_ids()
        for task_diff in diff.task_diffs.values():
            assert task_diff.predicted_seconds > 0
            assert task_diff.actual_seconds > 0
            assert np.isfinite(task_diff.relative_error)
        assert diff.predicted_makespan > 0
        assert diff.actual_makespan > 0

    def test_per_job_errors_reported(self):
        predicted, actual, __ = run_both(synthetic_dag())
        diff = trace_diff(predicted, actual)
        assert set(diff.job_diffs) == {"mr", "post"}
        for job_diff in diff.job_diffs.values():
            assert job_diff.predicted_seconds > 0
            assert job_diff.actual_seconds > 0

    def test_detects_missing_tasks(self):
        dag = synthetic_dag()
        predicted, actual, __ = run_both(dag)
        truncated = type(actual)(source=actual.source,
                                 events=[event for event in actual.events
                                         if event.task_id != "m0"])
        diff = trace_diff(predicted, truncated)
        assert diff.only_predicted == {"m0"}
        assert diff.task_coverage < 1.0

    def test_describe_mentions_jobs(self):
        predicted, actual, __ = run_both(synthetic_dag())
        text = trace_diff(predicted, actual).describe()
        assert "mr" in text and "post" in text
        assert "coverage 100%" in text


class TestCompiledProgramDifferential:
    """The same invariants on a *compiled* program, not a synthetic DAG."""

    def build(self):
        program = Program("difftest")
        a = program.declare_input("A", 96, 96)
        b = program.declare_input("B", 96, 96)
        c = program.assign("C", a @ b)
        program.assign("D", (c + a) * 0.5)
        program.mark_output("D")
        rng = np.random.default_rng(3)
        inputs = {"A": rng.random((96, 96)), "B": rng.random((96, 96))}
        return program, inputs

    def test_compiled_program_traces_align(self):
        program, inputs = self.build()
        recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
        executor = CumulonExecutor(tile_size=32, max_workers=2,
                                   recorder=recorder)
        result = executor.run(program, inputs)
        actual = recorder.trace()

        simulated = InMemoryRecorder(source=SOURCE_SIMULATED)
        ClusterSimulator(spec(), FixedTimeModel(1.0),
                         recorder=simulated).run(result.compiled.dag)
        predicted = simulated.trace()

        assert predicted.task_ids() == actual.task_ids()
        assert predicted.slot_overlaps() == []
        assert actual.slot_overlaps() == []
        diff = trace_diff(predicted, actual)
        assert diff.task_coverage == 1.0
        # Numeric result is still correct with tracing on.
        expected = (inputs["A"] @ inputs["B"] + inputs["A"]) * 0.5
        np.testing.assert_allclose(result.output("D"), expected)

    def test_execution_result_carries_trace(self):
        program, inputs = self.build()
        recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
        result = CumulonExecutor(tile_size=32, max_workers=2,
                                 recorder=recorder).run(program, inputs)
        assert result.trace is not None
        assert result.trace.task_events()
        assert {event.task_id for event in result.trace.span_events()} >= {
            f"compile:{program.name}", f"execute:{program.name}"}

    def test_null_recorder_produces_no_trace(self):
        program, inputs = self.build()
        result = CumulonExecutor(tile_size=32, max_workers=2).run(
            program, inputs)
        assert result.trace is None
