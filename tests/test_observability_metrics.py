"""Unit tests for the metrics layer: registry, exporters, cost meter,
and producer instrumentation (simulator, local executor, tile store)."""

import json

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.cloud.pricing import HourlyBilling, PerSecondBilling
from repro.errors import ValidationError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.local import LocalExecutor
from repro.hadoop.simulator import ClusterSimulator
from repro.hadoop.task import TaskWork, make_map_task
from repro.hadoop.timemodel import FixedTimeModel
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.tilestore import TileStore
from repro.matrix.tile import Tile, TileId
from repro.observability import (
    COST_SERIES,
    CostMeter,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    OVERRUN_BUDGET,
    OVERRUN_DEADLINE,
    metrics_to_csv,
    metrics_to_json,
    render_dashboard,
    render_sparkline,
    to_prometheus,
)
from repro.observability.metrics_export import METRICS_CSV_COLUMNS

import numpy as np


def spec(nodes=2, slots=2, instance="m1.large"):
    return ClusterSpec(get_instance_type(instance), nodes, slots)


def hdfs_store(metrics):
    namenode = NameNode(replication=2)
    for index in range(2):
        namenode.register_datanode(DataNode(f"node-{index}", 10**9))
    return TileStore(namenode, metrics=metrics)


def uniform_dag(n_tasks=8, seconds=2.0, nbytes=1000):
    work = TaskWork(bytes_read=nbytes, bytes_written=nbytes // 2)
    tasks = [make_map_task(f"t{i}", work) for i in range(n_tasks)]
    return JobDag([Job("j", JobKind.MAP_ONLY, tasks)])


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("x", 2)
        registry.inc("x")
        assert registry.counter("x").value == 3.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("x").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3.0

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 2, 3]
        assert hist.count == 3
        assert hist.mean == pytest.approx(55.5 / 3)
        assert hist.min == 0.5 and hist.max == 50.0

    def test_series_ring_buffer_caps(self):
        registry = MetricsRegistry(max_samples=4)
        for t in range(10):
            registry.sample("s", float(t), t=float(t))
        samples = registry.series("s").samples()
        assert len(samples) == 4
        assert samples[0] == (6.0, 6.0)

    def test_same_name_different_kind_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValidationError, match="already registered"):
            registry.gauge("x")

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        registry.inc("x", 1, labels={"node": "a"})
        registry.inc("x", 5, labels={"node": "b"})
        assert registry.counter("x", labels={"node": "a"}).value == 1.0
        assert registry.counter("x", labels={"node": "b"}).value == 5.0

    def test_snapshot_round_trips_as_json(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 2)
        registry.observe("h", 0.5)
        registry.sample("s", 1.0, t=0.0)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"][0]["name"] == "c"
        assert snapshot["series"][0]["samples"] == [[0.0, 1.0]]

    def test_null_registry_discards_everything(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.inc("x")
        NULL_METRICS.set_gauge("g", 1)
        NULL_METRICS.observe("h", 1)
        NULL_METRICS.sample("s", 1)
        assert NULL_METRICS.snapshot() == {
            "counters": [], "gauges": [], "histograms": [], "series": []}


class _TripwireRegistry(NullMetricsRegistry):
    """Disabled registry whose instrument paths blow up when touched.

    If a hot path respects the ``metrics.enabled`` gate, none of these
    ever run; any unguarded instrument access fails the test loudly.
    """

    def _get(self, kind, cls, name, labels, help, **kwargs):
        raise AssertionError("disabled metrics path allocated an instrument")

    def inc(self, name, amount=1.0, labels=None):
        raise AssertionError("disabled metrics path called inc()")

    def set_gauge(self, name, value, labels=None):
        raise AssertionError("disabled metrics path called set_gauge()")

    def observe(self, name, value, labels=None):
        raise AssertionError("disabled metrics path called observe()")

    def sample(self, name, value, t=None, labels=None):
        raise AssertionError("disabled metrics path called sample()")


class TestDisabledHotPath:
    def test_simulator_pays_only_attribute_check(self):
        simulator = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                     metrics=_TripwireRegistry())
        result = simulator.run(uniform_dag())
        assert result.makespan > 0

    def test_local_executor_pays_only_attribute_check(self):
        executor = LocalExecutor(max_workers=2,
                                 metrics=_TripwireRegistry())
        done = []
        tasks = [make_map_task(f"t{i}", TaskWork(),
                               run=lambda i=i: done.append(i))
                 for i in range(4)]
        executor.run(JobDag([Job("j", JobKind.MAP_ONLY, tasks)]))
        assert sorted(done) == [0, 1, 2, 3]

    def test_tilestore_pays_only_attribute_check(self):
        store = hdfs_store(_TripwireRegistry())
        tile = Tile(TileId("m", 0, 0), np.ones((2, 2)))
        store.put(tile)
        assert store.get(tile.tile_id) is not None


class TestSimulatorInstrumentation:
    def test_counters_match_simulation_result(self):
        registry = MetricsRegistry()
        simulator = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                     metrics=registry)
        result = simulator.run(uniform_dag(n_tasks=8, nbytes=1000))
        assert registry.counter("sim.tasks_completed").value == 8
        assert registry.counter("sim.tasks_started").value == 8
        assert registry.counter("sim.jobs_completed").value == 1
        assert registry.counter("sim.bytes_read").value == 8 * 1000
        assert registry.counter("sim.bytes_written").value == 8 * 500
        assert registry.histogram("sim.task_seconds").count == 8
        assert result.makespan == pytest.approx(2.0)

    def test_series_on_virtual_clock_monotonic(self):
        registry = MetricsRegistry()
        simulator = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                     metrics=registry)
        result = simulator.run(uniform_dag(n_tasks=8))
        samples = registry.series("sim.running_slots").samples()
        assert samples, "simulator recorded no slot samples"
        times = [t for t, __ in samples]
        assert times == sorted(times)
        assert times[-1] <= result.makespan + 1e-9
        assert max(value for __, value in samples) <= spec().total_slots

    def test_queue_drains_to_zero(self):
        registry = MetricsRegistry()
        ClusterSimulator(spec(), FixedTimeModel(1.0),
                         metrics=registry).run(uniform_dag(n_tasks=8))
        depth = registry.series("sim.queue_depth").samples()
        assert depth[-1][1] == 0


class TestLocalExecutorInstrumentation:
    def test_counts_tasks_and_jobs(self):
        registry = MetricsRegistry()
        executor = LocalExecutor(max_workers=2, metrics=registry)
        tasks = [make_map_task(f"t{i}", TaskWork(bytes_read=10),
                               run=lambda: None) for i in range(6)]
        executor.run(JobDag([Job("j", JobKind.MAP_ONLY, tasks)]))
        assert registry.counter("local.tasks_completed").value == 6
        assert registry.counter("local.jobs_completed").value == 1
        assert registry.counter("local.bytes_read").value == 60
        assert registry.histogram("local.task_seconds").count == 6
        assert registry.gauge("local.inflight_tasks").value == 0


class TestTileStoreInstrumentation:
    def test_hits_misses_and_bytes(self):
        registry = MetricsRegistry()
        store = hdfs_store(registry)
        tile = Tile(TileId("m", 0, 0), np.ones((4, 4)))
        store.put(tile)
        store.get(tile.tile_id)
        with pytest.raises(Exception):
            store.get(TileId("m", 9, 9))
        assert registry.counter("tilestore.puts").value == 1
        assert registry.counter("tilestore.hits").value == 1
        assert registry.counter("tilestore.misses").value == 1
        assert registry.counter("tilestore.bytes_read").value \
            == tile.nbytes()


class TestPrometheusExporter:
    def test_shape_help_type_and_counter_suffix(self):
        registry = MetricsRegistry()
        registry.inc("sim.tasks", 3)
        text = to_prometheus(registry)
        assert "# HELP sim_tasks_total" in text
        assert "# TYPE sim_tasks_total counter" in text
        assert "sim_tasks_total 3\n" in text
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative_plus_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = to_prometheus(registry)
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="10"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_sum 5.5" in text
        assert "h_count 2" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.inc("x", 1, labels={"path": 'a\\b"c\nd'})
        text = to_prometheus(registry)
        assert r'path="a\\b\"c\nd"' in text

    def test_empty_registry_is_valid_empty_document(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_series_exports_last_sample_as_gauge(self):
        registry = MetricsRegistry()
        registry.sample("s", 1.0, t=0.0)
        registry.sample("s", 7.0, t=1.0)
        text = to_prometheus(registry)
        assert "# TYPE s gauge" in text
        assert "s 7\n" in text


class TestDegenerateExporters:
    """Empty registry / empty series / single sample all stay valid."""

    def _degenerate_registries(self):
        empty = MetricsRegistry()
        empty_series = MetricsRegistry()
        empty_series.series("s")
        single = MetricsRegistry()
        single.sample("s", 1.5, t=0.0)
        return [empty, empty_series, single]

    def test_json_valid(self):
        for registry in self._degenerate_registries():
            document = json.loads(metrics_to_json(registry))
            assert set(document) >= {"counters", "gauges",
                                     "histograms", "series"}

    def test_csv_valid(self):
        for registry in self._degenerate_registries():
            lines = metrics_to_csv(registry).splitlines()
            assert lines[0] == ",".join(METRICS_CSV_COLUMNS)

    def test_prometheus_valid(self):
        for registry in self._degenerate_registries():
            text = to_prometheus(registry)
            for line in text.splitlines():
                assert line.startswith("#") or " " in line

    def test_dashboard_valid(self):
        assert render_dashboard(MetricsRegistry()) \
            == "(no metrics recorded)"
        for registry in self._degenerate_registries():
            assert isinstance(render_dashboard(registry), str)


class TestSparkline:
    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_single_sample_flat(self):
        assert render_sparkline([5.0]) == "▁"

    def test_resamples_to_width(self):
        line = render_sparkline([float(i) for i in range(1000)], width=20)
        assert len(line) == 20
        assert line[0] == "▁" and line[-1] == "█"

    def test_rejects_bad_width(self):
        with pytest.raises(ValidationError):
            render_sparkline([1.0], width=0)


class TestCostMeter:
    def test_hourly_billing_is_step_function(self):
        meter = CostMeter(spec(nodes=1, slots=1), billing=HourlyBilling())
        rate = spec(nodes=1).instance_type.price_per_hour
        meter.observe(10.0)
        assert meter.accrued_dollars == pytest.approx(rate)
        meter.observe(3599.0)
        assert meter.accrued_dollars == pytest.approx(rate)
        meter.observe(3601.0)
        assert meter.accrued_dollars == pytest.approx(2 * rate)

    def test_never_runs_backwards(self):
        meter = CostMeter(spec(), billing=PerSecondBilling())
        meter.observe(100.0)
        meter.observe(50.0)
        assert meter.elapsed_seconds == 100.0

    def test_budget_overrun_flags_once(self):
        rate = spec(nodes=1).instance_type.price_per_hour
        meter = CostMeter(spec(nodes=1, slots=1), billing=HourlyBilling(),
                          budget_dollars=rate * 1.5)
        assert meter.observe(10.0) == []
        new = meter.observe(3700.0)
        assert len(new) == 1 and new[0].kind == OVERRUN_BUDGET
        assert meter.over_budget
        assert meter.observe(7300.0) == []  # flags at most once
        assert len(meter.overruns) == 1

    def test_deadline_overrun_counts_startup_offset(self):
        meter = CostMeter(spec(), deadline_seconds=100.0,
                          offset_seconds=90.0)
        new = meter.observe(20.0)
        assert len(new) == 1 and new[0].kind == OVERRUN_DEADLINE
        assert meter.past_deadline

    def test_samples_series_into_registry(self):
        registry = MetricsRegistry()
        # Zero minimum: every observation moves the per-second bill.
        meter = CostMeter(spec(), billing=PerSecondBilling(0.0),
                          registry=registry)
        meter.observe(10.0)
        meter.observe(20.0)
        samples = registry.series(COST_SERIES).samples()
        assert len(samples) == 2
        assert samples[1][1] > samples[0][1]

    def test_agrees_with_plan_pricing_during_simulation(self):
        """Meter total == what the optimizer's plan pricing charges."""
        from repro.cloud.provisioning import DEFAULT_STARTUP_SECONDS

        cluster = spec()
        billing = HourlyBilling()
        meter = CostMeter(cluster, billing=billing,
                          offset_seconds=DEFAULT_STARTUP_SECONDS)
        simulator = ClusterSimulator(cluster, FixedTimeModel(1.0),
                                     cost_meter=meter)
        result = simulator.run(uniform_dag(n_tasks=16))
        expected = billing.cost(cluster,
                                result.makespan + DEFAULT_STARTUP_SECONDS)
        assert meter.accrued_dollars == pytest.approx(expected)

    def test_rejects_bad_limits(self):
        with pytest.raises(ValidationError):
            CostMeter(spec(), budget_dollars=0)
        with pytest.raises(ValidationError):
            CostMeter(spec(), deadline_seconds=-1)
        with pytest.raises(ValidationError):
            CostMeter(spec(), offset_seconds=-1)

    def test_summary_and_describe(self):
        meter = CostMeter(spec(), budget_dollars=0.01,
                          billing=PerSecondBilling())
        meter.observe(3600.0)
        summary = meter.summary()
        assert summary["over_budget"] is True
        assert "budget" in meter.describe()
