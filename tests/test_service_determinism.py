"""Concurrency/determinism guarantees of the job service.

The contract: the same submission script produces bit-identical
schedules, per-tenant bills, and metrics snapshots — across repeated
runs, and across pricing worker counts (workers=1 vs N), because parallel
admission pricing folds results in deterministic submission order.
"""

import json

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import SOURCE_SIMULATED, InMemoryRecorder
from repro.service import run_script, validate_script

SCRIPT = {
    "cluster": {"instance": "c1.medium", "nodes": 4, "slots_per_node": 2},
    "policy": "fair",
    "tile_size": 256,
    "tenants": [
        {"name": "acme", "budget_dollars": 50.0, "weight": 2.0},
        {"name": "zeta", "weight": 1.0},
        {"name": "iota", "budget_dollars": 0.001},
    ],
    "jobs": [
        {"tenant": "acme", "workload": "multiply", "scale": "tiny",
         "submit_at": 0.0},
        {"tenant": "zeta", "workload": "gnmf", "scale": "tiny",
         "submit_at": 2.0},
        {"tenant": "acme", "workload": "multiply", "scale": "tiny",
         "submit_at": 4.0},
        {"tenant": "iota", "workload": "gnmf", "scale": "tiny",
         "submit_at": 5.0},
        {"tenant": "zeta", "workload": "multiply", "scale": "tiny",
         "submit_at": 6.0},
    ],
}


def run_once(workers=0, metrics=None, recorder=None):
    extra = {}
    if metrics is not None:
        extra["metrics"] = metrics
    if recorder is not None:
        extra["recorder"] = recorder
    report, handles = run_script(validate_script(dict(SCRIPT)),
                                 workers=workers, **extra)
    schedule = [(handle.job_id, handle.status) for handle in handles]
    return report, schedule


def canonical(report):
    return json.dumps(report.summary(), sort_keys=True)


class TestDeterminism:
    def test_repeated_runs_identical(self):
        first, schedule_a = run_once()
        second, schedule_b = run_once()
        assert canonical(first) == canonical(second)
        assert schedule_a == schedule_b

    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_count_does_not_change_outcome(self, workers):
        baseline, schedule_a = run_once(workers=0)
        parallel, schedule_b = run_once(workers=workers)
        assert canonical(baseline) == canonical(parallel)
        assert schedule_a == schedule_b

    def test_metrics_snapshots_identical(self):
        snapshots = []
        for workers in (1, 4):
            registry = MetricsRegistry()
            run_once(workers=workers, metrics=registry)
            snapshots.append(json.dumps(registry.snapshot(),
                                        sort_keys=True, default=str))
        assert snapshots[0] == snapshots[1]

    def test_trace_identical_across_runs(self):
        traces = []
        for __ in range(2):
            recorder = InMemoryRecorder(source=SOURCE_SIMULATED)
            run_once(recorder=recorder)
            traces.append([
                (e.job_id, e.phase, e.slot, e.start, e.end, e.status)
                for e in recorder.trace()
            ])
        assert traces[0] == traces[1]
        assert traces[0], "service should have recorded job events"

    def test_per_tenant_bills_reproducible(self):
        first, __ = run_once()
        second, __ = run_once(workers=4)
        for tenant_a, tenant_b in zip(first.tenants, second.tenants):
            assert tenant_a.dollars == tenant_b.dollars
            assert tenant_a.slot_seconds == tenant_b.slot_seconds

    def test_budget_limited_tenant_rejected_deterministically(self):
        report, schedule = run_once()
        iota = report.tenant("iota")
        assert iota.rejected == 1
        assert dict(schedule)["iota-j0003"] == "rejected"
