"""Unit tests for matrix-chain reordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompilerParams, compile_program
from repro.core.executor import run_program
from repro.core.expr import MatMul, Var, evaluate_with_numpy
from repro.core.program import Program
from repro.core.rewrite import (
    naive_chain_flops,
    reorder_matmul_chains,
)

RNG = np.random.default_rng(41)


def chain_expr(shapes):
    factors = [Var(f"M{i}", shape) for i, shape in enumerate(shapes)]
    expr = factors[0]
    for factor in factors[1:]:
        expr = expr @ factor
    return expr, factors


def total_flops(expr) -> int:
    own = 0
    if isinstance(expr, MatMul):
        rows, inner = expr.left.shape
        cols = expr.right.shape[1]
        own = 2 * rows * inner * cols
    return own + sum(total_flops(child) for child in expr.children())


class TestReordering:
    def test_vector_chain_reassociates_right(self):
        # (A @ B) @ v should become A @ (B @ v).
        expr, __ = chain_expr([(100, 100), (100, 100), (100, 1)])
        reordered = reorder_matmul_chains(expr)
        assert isinstance(reordered.right, MatMul)
        assert total_flops(reordered) < total_flops(expr)

    def test_left_heavy_chain_kept_when_optimal(self):
        # v' @ A @ B: left-to-right is already optimal.
        expr, __ = chain_expr([(1, 100), (100, 100), (100, 100)])
        reordered = reorder_matmul_chains(expr)
        assert total_flops(reordered) <= total_flops(expr)

    def test_pair_untouched(self):
        expr, factors = chain_expr([(4, 5), (5, 6)])
        reordered = reorder_matmul_chains(expr)
        assert isinstance(reordered, MatMul)
        assert reordered.shape == (4, 6)

    def test_textbook_example(self):
        # Dims 10x30 @ 30x5 @ 5x60: optimal is (A(BC))? No: ((AB)C) with
        # 10*30*5 + 10*5*60 = 4500 mults vs A(BC) = 30*5*60+10*30*60 = 27000.
        expr, __ = chain_expr([(10, 30), (30, 5), (5, 60)])
        reordered = reorder_matmul_chains(expr)
        assert total_flops(reordered) == 2 * (10 * 30 * 5 + 10 * 5 * 60)

    def test_preserves_semantics(self):
        shapes = [(7, 13), (13, 3), (3, 19), (19, 2)]
        expr, factors = chain_expr(shapes)
        env = {f"M{i}": RNG.random(shape) for i, shape in enumerate(shapes)}
        reordered = reorder_matmul_chains(expr)
        np.testing.assert_allclose(evaluate_with_numpy(reordered, env),
                                   evaluate_with_numpy(expr, env))

    def test_chains_inside_other_nodes_rewritten(self):
        expr, __ = chain_expr([(50, 50), (50, 50), (50, 1)])
        wrapped = (expr * 2.0).apply("abs")
        reordered = reorder_matmul_chains(wrapped)
        assert total_flops(reordered) < total_flops(wrapped)

    def test_naive_chain_flops(self):
        shapes = [(10, 30), (30, 5), (5, 60)]
        assert naive_chain_flops(shapes) == 2 * (10 * 30 * 5 + 10 * 5 * 60)


class TestCompilerIntegration:
    def test_reordering_reduces_compiled_flops(self):
        program = Program("chain")
        a = program.declare_input("A", 64, 64)
        b = program.declare_input("B", 64, 64)
        v = program.declare_input("v", 64, 1)
        program.assign("r", a @ b @ v)
        from repro.core.physical import PhysicalContext
        on = compile_program(program, PhysicalContext(16),
                             CompilerParams(reorder_chains=True))
        program2 = Program("chain")
        a = program2.declare_input("A", 64, 64)
        b = program2.declare_input("B", 64, 64)
        v = program2.declare_input("v", 64, 1)
        program2.assign("r", a @ b @ v)
        off = compile_program(program2, PhysicalContext(16),
                              CompilerParams(reorder_chains=False))
        flops_on = sum(job.total_flops() for job in on.dag)
        flops_off = sum(job.total_flops() for job in off.dag)
        assert flops_on < flops_off / 5

    def test_execution_correct_with_reordering(self):
        shapes = [(24, 16), (16, 40), (40, 4)]
        env = {f"M{i}": RNG.random(shape) for i, shape in enumerate(shapes)}
        program = Program("exec")
        factors = [program.declare_input(f"M{i}", *shape)
                   for i, shape in enumerate(shapes)]
        program.assign("r", factors[0] @ factors[1] @ factors[2])
        program.mark_output("r")
        result = run_program(program, env, tile_size=8)
        expected = env["M0"] @ env["M1"] @ env["M2"]
        np.testing.assert_allclose(result.output("r"), expected, rtol=1e-9)


@given(dims=st.lists(st.integers(1, 30), min_size=3, max_size=7),
       seed=st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_property_reordering_never_worse_and_correct(dims, seed):
    shapes = [(dims[i], dims[i + 1]) for i in range(len(dims) - 1)]
    expr, __ = chain_expr(shapes)
    reordered = reorder_matmul_chains(expr)
    assert reordered.shape == expr.shape
    assert total_flops(reordered) <= total_flops(expr)
    rng = np.random.default_rng(seed)
    env = {f"M{i}": rng.random(shape) for i, shape in enumerate(shapes)}
    np.testing.assert_allclose(evaluate_with_numpy(reordered, env),
                               evaluate_with_numpy(expr, env), rtol=1e-7)
