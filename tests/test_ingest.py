"""Unit tests for text parsing and ingestion planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import ClusterSpec, get_instance_type
from repro.core.costmodel import CumulonCostModel
from repro.core.physical import PhysicalContext
from repro.core.simcost import simulate_program
from repro.errors import ValidationError
from repro.hadoop.job import JobDag
from repro.ingest import (
    TEXT_BYTES_PER_VALUE,
    estimated_text_bytes,
    format_csv_matrix,
    ingest_csv,
    parse_csv_matrix,
    plan_ingest_job,
)
from repro.matrix.tiled import DenseBacking


class TestParser:
    def test_basic_parse(self):
        text = "1,2,3\n4,5,6\n"
        np.testing.assert_array_equal(parse_csv_matrix(text),
                                      [[1, 2, 3], [4, 5, 6]])

    def test_comments_and_blank_lines_skipped(self):
        text = "# header\n1,2\n\n# mid\n3,4\n"
        np.testing.assert_array_equal(parse_csv_matrix(text),
                                      [[1, 2], [3, 4]])

    def test_scientific_notation_and_negatives(self):
        text = "-1.5e3,0.25\n+2,-0\n"
        parsed = parse_csv_matrix(text)
        assert parsed[0, 0] == -1500.0
        assert parsed[1, 0] == 2.0

    def test_custom_delimiter(self):
        np.testing.assert_array_equal(
            parse_csv_matrix("1\t2\n3\t4\n", delimiter="\t"),
            [[1, 2], [3, 4]])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValidationError, match="ragged"):
            parse_csv_matrix("1,2\n3,4,5\n")

    def test_bad_value_reports_line(self):
        with pytest.raises(ValidationError, match="line 2"):
            parse_csv_matrix("1,2\n3,oops\n")

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError, match="no data"):
            parse_csv_matrix("# only comments\n")

    def test_empty_delimiter_rejected(self):
        with pytest.raises(ValidationError):
            parse_csv_matrix("1,2", delimiter="")

    def test_format_roundtrip(self):
        rng = np.random.default_rng(3)
        array = rng.standard_normal((5, 7))
        text = format_csv_matrix(array, precision=12)
        np.testing.assert_allclose(parse_csv_matrix(text), array, rtol=1e-10)

    def test_estimated_text_bytes(self):
        assert estimated_text_bytes(10, 10) == 100 * TEXT_BYTES_PER_VALUE
        with pytest.raises(ValidationError):
            estimated_text_bytes(0, 10)


class TestIngestReal:
    def test_csv_to_tiles(self):
        rng = np.random.default_rng(4)
        array = rng.random((13, 9))
        text = format_csv_matrix(array, precision=12)
        backing = DenseBacking()
        matrix = ingest_csv("M", text, tile_size=4, backing=backing)
        np.testing.assert_allclose(matrix.to_numpy(), array, rtol=1e-10)

    def test_ingested_matrix_usable_in_programs(self):
        from repro.core.executor import CumulonExecutor
        from repro.core.program import Program
        rng = np.random.default_rng(5)
        array = rng.random((12, 12))
        backing = DenseBacking()
        ingest_csv("A", format_csv_matrix(array, precision=12), 4, backing)
        program = Program("use")
        a = program.declare_input("A", 12, 12)
        program.assign("S", a @ a)
        program.mark_output("S")
        executor = CumulonExecutor(tile_size=4, backing=backing)
        # Inputs already in the backing: pass them explicitly to satisfy
        # the executor's interface (it overwrites with identical tiles).
        result = executor.run(program, {"A": array})
        np.testing.assert_allclose(result.output("S"), array @ array,
                                   rtol=1e-9)


class TestIngestJob:
    def test_one_task_per_strip(self):
        job, info = plan_ingest_job("load", "X", 4096, 2048,
                                    PhysicalContext(1024))
        assert len(job.map_tasks) == 4
        assert info.shape == (4096, 2048)

    def test_text_read_volume(self):
        job, __ = plan_ingest_job("load", "X", 4096, 2048,
                                  PhysicalContext(1024))
        assert job.total_bytes_read() \
            == 4096 * 2048 * TEXT_BYTES_PER_VALUE

    def test_binary_write_smaller_than_text_read(self):
        job, __ = plan_ingest_job("load", "X", 4096, 2048,
                                  PhysicalContext(1024))
        assert job.total_bytes_written() < job.total_bytes_read()

    def test_simulated_load_scales_with_nodes(self):
        model = CumulonCostModel()
        job, __ = plan_ingest_job("load", "X", 65536, 8192,
                                  PhysicalContext(2048))
        times = {}
        for nodes in (2, 8):
            spec = ClusterSpec(get_instance_type("m1.large"), nodes, 2)
            job_again, __ = plan_ingest_job("load", "X", 65536, 8192,
                                            PhysicalContext(2048))
            times[nodes] = simulate_program(JobDag([job_again]), spec,
                                            model).seconds
        assert times[8] < times[2]

    def test_validation(self):
        with pytest.raises(ValidationError):
            plan_ingest_job("load", "X", 0, 10, PhysicalContext(4))


@given(rows=st.integers(1, 8), cols=st.integers(1, 8),
       seed=st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_property_csv_roundtrip(rows, cols, seed):
    rng = np.random.default_rng(seed)
    array = rng.standard_normal((rows, cols))
    text = format_csv_matrix(array, precision=15)
    np.testing.assert_allclose(parse_csv_matrix(text), array, rtol=1e-12)
