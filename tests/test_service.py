"""Unit tests for the multi-tenant job service."""

import numpy as np
import pytest

from repro.api import (
    AdmissionRejectedError,
    ClusterSpec,
    CumulonSession,
    JobCancelledError,
    Program,
    ServiceError,
    get_instance_type,
)
from repro.errors import ValidationError
from repro.service import (
    POLICY_FAIR,
    POLICY_FIFO,
    REJECT_BUDGET,
    REJECT_DEADLINE,
    STATE_CANCELLED,
    STATE_COMPLETED,
    STATE_PENDING,
    STATE_REJECTED,
    AdmissionController,
    JobService,
    SlotRequest,
    allocate_slots,
    jain_fairness,
    weighted_shares,
)
from repro.workloads import build_workload


def cluster(nodes=4, slots=2, instance="c1.medium"):
    return ClusterSpec(get_instance_type(instance), nodes, slots)


def tiny_multiply():
    program, tile = build_workload("multiply", "tiny")
    return program, tile


class TestWeightedShares:
    def test_even_split_under_capacity(self):
        shares = weighted_shares([("a", 10.0, 1.0), ("b", 10.0, 1.0)], 8.0)
        assert shares == {"a": 4.0, "b": 4.0}

    def test_weights_divide_proportionally(self):
        shares = weighted_shares([("a", 10.0, 2.0), ("b", 10.0, 1.0)], 6.0)
        assert shares["a"] == pytest.approx(4.0)
        assert shares["b"] == pytest.approx(2.0)

    def test_saturated_demand_donates_surplus(self):
        shares = weighted_shares([("a", 1.0, 1.0), ("b", 10.0, 1.0)], 8.0)
        assert shares["a"] == pytest.approx(1.0)
        assert shares["b"] == pytest.approx(7.0)

    def test_everything_fits(self):
        shares = weighted_shares([("a", 2.0, 1.0), ("b", 3.0, 1.0)], 100.0)
        assert shares["a"] == pytest.approx(2.0)
        assert shares["b"] == pytest.approx(3.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            weighted_shares([("a", 1.0, 1.0)], -1.0)


class TestAllocateSlots:
    def requests(self):
        return [SlotRequest("j0", "acme", 6.0, 0),
                SlotRequest("j1", "zeta", 6.0, 1)]

    def test_fifo_is_strict_order(self):
        allocation = allocate_slots(POLICY_FIFO, self.requests(), {}, 8.0)
        assert allocation == {"j0": 6.0, "j1": 2.0}

    def test_fair_splits_across_tenants(self):
        allocation = allocate_slots(POLICY_FAIR, self.requests(), {}, 8.0)
        assert allocation["j0"] == pytest.approx(4.0)
        assert allocation["j1"] == pytest.approx(4.0)

    def test_fair_respects_weights(self):
        allocation = allocate_slots(POLICY_FAIR, self.requests(),
                                    {"acme": 3.0, "zeta": 1.0}, 8.0)
        assert allocation["j0"] == pytest.approx(6.0)
        assert allocation["j1"] == pytest.approx(2.0)

    def test_within_tenant_split_is_even(self):
        requests = [SlotRequest("j0", "acme", 8.0, 0),
                    SlotRequest("j1", "acme", 8.0, 1),
                    SlotRequest("j2", "zeta", 8.0, 2)]
        allocation = allocate_slots(POLICY_FAIR, requests, {}, 8.0)
        assert allocation["j0"] == pytest.approx(2.0)
        assert allocation["j1"] == pytest.approx(2.0)
        assert allocation["j2"] == pytest.approx(4.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError):
            allocate_slots("lottery", self.requests(), {}, 8.0)

    def test_jain_index(self):
        assert jain_fairness([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness([]) == 1.0
        assert jain_fairness([4.0, 0.0]) < 1.0


class TestAdmission:
    def test_admits_within_budget(self):
        program, __ = tiny_multiply()
        controller = AdmissionController(cluster(), tile_size=256)
        decision = controller.decide(program,
                                     budget_remaining_dollars=100.0)
        assert decision.admitted
        assert decision.work_slot_seconds > 0
        assert decision.max_slots >= 1
        assert decision.estimated_dollars == pytest.approx(
            decision.work_slot_seconds * controller.slot_second_rate)

    def test_rejects_over_budget(self):
        program, __ = tiny_multiply()
        controller = AdmissionController(cluster())
        decision = controller.decide(program,
                                     budget_remaining_dollars=1e-9)
        assert not decision.admitted
        assert decision.reject_reason == REJECT_BUDGET

    def test_rejects_impossible_deadline(self):
        program, __ = tiny_multiply()
        controller = AdmissionController(cluster())
        decision = controller.decide(program, deadline_seconds=1e-6)
        assert not decision.admitted
        assert decision.reject_reason == REJECT_DEADLINE

    def test_shared_cache_spans_programs(self):
        program, __ = tiny_multiply()
        controller = AdmissionController(cluster())
        controller.decide(program)
        hits_before = controller.cache.hits
        controller.decide(program)  # same program object: memoized pricing
        assert controller.cache.hits >= hits_before


class TestJobService:
    def service(self, policy=POLICY_FAIR, **tenants):
        svc = JobService(cluster(), policy=policy)
        for name, kwargs in (tenants or {"acme": {}}).items():
            svc.add_tenant(name, **kwargs)
        return svc

    def test_submit_runs_to_completion(self):
        svc = self.service()
        program, tile = tiny_multiply()
        handle = svc.submit(program, "acme", tile_size=tile)
        assert handle.status == STATE_PENDING
        result = handle.result()
        assert result.state == STATE_COMPLETED
        assert result.latency_seconds > 0
        assert result.slot_seconds == pytest.approx(
            result.work_slot_seconds, rel=1e-6)

    def test_unknown_tenant_rejected(self):
        svc = self.service()
        program, __ = tiny_multiply()
        with pytest.raises(ValidationError, match="unknown tenant"):
            svc.submit(program, "nobody")

    def test_budget_rejection_raises_from_result(self):
        svc = self.service(acme={"budget_dollars": 1e-9})
        program, __ = tiny_multiply()
        handle = svc.submit(program, "acme")
        svc.drain()
        assert handle.status == STATE_REJECTED
        with pytest.raises(AdmissionRejectedError, match="budget"):
            handle.result()

    def test_cancel_before_completion(self):
        svc = self.service()
        program, __ = tiny_multiply()
        handle = svc.submit(program, "acme", submit_at=100.0)
        handle.cancel()
        svc.drain()
        assert handle.status == STATE_CANCELLED
        with pytest.raises(JobCancelledError):
            handle.result()

    def test_result_before_drain_raises(self):
        svc = self.service()
        program, __ = tiny_multiply()
        handle = svc.submit(program, "acme")
        with pytest.raises(ServiceError, match="still"):
            svc.result(handle.job_id)

    def test_clock_never_runs_backwards(self):
        svc = self.service()
        svc.run_until(50.0)
        with pytest.raises(ValidationError):
            svc.run_until(10.0)
        program, __ = tiny_multiply()
        with pytest.raises(ValidationError, match="past"):
            svc.submit(program, "acme", submit_at=1.0)

    def test_tenant_dollars_sum_to_meter_total(self):
        svc = self.service(acme={"weight": 2.0}, zeta={})
        program, tile = tiny_multiply()
        gnmf, gtile = build_workload("gnmf", "tiny")
        svc.submit(program, "acme", tile_size=tile)
        svc.submit(gnmf, "zeta", submit_at=5.0, tile_size=gtile)
        svc.submit(program, "acme", submit_at=10.0, tile_size=tile)
        svc.drain()
        report = svc.report()
        assert sum(t.dollars for t in report.tenants) == pytest.approx(
            report.total_dollars)
        assert report.makespan_seconds > 0
        assert 0 < report.fairness_index <= 1.0

    def test_fifo_and_fair_schedule_differently(self):
        def light_tenant_p95(policy):
            svc = JobService(cluster(nodes=2, slots=1), policy=policy)
            svc.add_tenant("heavy")
            svc.add_tenant("light")
            gnmf, gtile = build_workload("gnmf", "tiny")
            mult, mtile = tiny_multiply()
            for index in range(3):
                svc.submit(gnmf, "heavy", submit_at=0.0, tile_size=gtile)
            svc.submit(mult, "light", submit_at=1.0, tile_size=mtile)
            svc.drain()
            return svc.report().tenant("light").p95_latency_seconds

        # Under FIFO the heavy tenant's burst is ahead of the light job;
        # fair sharing must get the light tenant served sooner.
        assert light_tenant_p95(POLICY_FAIR) < light_tenant_p95(POLICY_FIFO)

    def test_deadline_miss_is_recorded(self):
        svc = JobService(cluster(nodes=1, slots=1))
        # Deadline is loose enough to admit (dedicated estimate fits) but
        # tight enough that two jobs sharing the one slot both blow it.
        gnmf, gtile = build_workload("gnmf", "tiny")
        estimate = svc.admission.decide(
            gnmf, tile_size=gtile).plan.estimated_seconds
        svc.add_tenant("acme", deadline_seconds=estimate * 1.5)
        svc.submit(gnmf, "acme", tile_size=gtile)
        svc.submit(gnmf, "acme", tile_size=gtile)
        svc.drain()
        report = svc.report().tenant("acme")
        assert report.completed == 2
        assert report.deadline_misses >= 1


class TestSessionOnService:
    def test_run_executes_via_service(self):
        session = CumulonSession(tile_size=8)
        rng = np.random.default_rng(5)
        a = rng.random((16, 16))
        program = Program("p")
        av = program.declare_input("A", 16, 16)
        program.assign("S", av @ av)
        program.mark_output("S")
        result = session.run(program, {"A": a})
        np.testing.assert_allclose(result.output("S"), a @ a, rtol=1e-9)
        report = session.service.report()
        assert report.tenant("session").completed == 1

    def test_submit_returns_resolvable_handle(self):
        session = CumulonSession(tile_size=8)
        program = Program("p")
        av = program.declare_input("A", 8, 8)
        program.assign("S", av + av)
        program.mark_output("S")
        handle = session.submit(program, {"A": np.ones((8, 8))})
        result = handle.result()
        assert result.state == STATE_COMPLETED
        np.testing.assert_allclose(result.execution.output("S"),
                                   2 * np.ones((8, 8)))

    def test_cluster_spec_kwarg(self):
        spec = cluster(nodes=2, slots=4)
        session = CumulonSession(tile_size=8, cluster=spec)
        assert session.spec.total_slots == 8
        with pytest.raises(ValidationError, match="not both"):
            CumulonSession(cluster=spec, nodes=3)

    def test_slots_per_node_no_longer_hardcoded(self):
        session = CumulonSession(tile_size=8, nodes=2, slots_per_node=4)
        assert session.spec.slots_per_node == 4

    def test_telemetry_accessors(self):
        session = CumulonSession(tile_size=8)
        program = Program("p")
        av = program.declare_input("A", 8, 8)
        program.assign("S", av * 2.0)
        program.mark_output("S")
        session.run(program, {"A": np.ones((8, 8))})
        assert len(session.trace) > 0
        snapshot = session.metrics.snapshot()
        assert snapshot["counters"]

    def test_deprecated_kwargs_warn_but_work(self):
        from repro.core.compiler import CompilerParams
        with pytest.warns(DeprecationWarning, match="storage_nodes"):
            session = CumulonSession(tile_size=8, storage_nodes=2)
        assert session.spec.num_nodes == 2
        with pytest.warns(DeprecationWarning, match="'params'"):
            session = CumulonSession(tile_size=8, params=CompilerParams())
        with pytest.warns(DeprecationWarning, match="'params'"):
            assert session.params is session.compiler_params


class TestParamNameUnification:
    def make_program(self):
        program = Program("p")
        av = program.declare_input("A", 8, 8)
        program.assign("S", av + av)
        program.mark_output("S")
        return program

    def test_run_program_both_spellings(self):
        import warnings
        from repro.core.compiler import CompilerParams
        from repro.core.executor import run_program
        program = self.make_program()
        inputs = {"A": np.ones((8, 8))}
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # new spelling: no warning
            new = run_program(program, inputs, tile_size=8,
                              compiler_params=CompilerParams())
        with pytest.warns(DeprecationWarning, match="compiler_params"):
            old = run_program(self.make_program(), inputs, tile_size=8,
                              params=CompilerParams())
        np.testing.assert_allclose(new.output("S"), old.output("S"))

    def test_both_spellings_at_once_rejected(self):
        from repro.core.compiler import CompilerParams
        from repro.core.executor import run_program
        with pytest.raises(ValidationError, match="not both"):
            run_program(self.make_program(), {"A": np.ones((8, 8))},
                        tile_size=8, params=CompilerParams(),
                        compiler_params=CompilerParams())

    def test_optimizer_evaluate_both_spellings(self):
        from repro.core.compiler import CompilerParams
        from repro.core.optimizer import DeploymentOptimizer
        program, tile = tiny_multiply()
        optimizer = DeploymentOptimizer(program, tile_size=tile)
        spec = cluster()
        new = optimizer.evaluate(spec, CompilerParams())
        with pytest.warns(DeprecationWarning, match="compiler_params"):
            old = optimizer.evaluate(spec, params=CompilerParams())
        assert new.estimated_seconds == old.estimated_seconds
        with pytest.raises(ValidationError, match="needs compiler_params"):
            optimizer.evaluate(spec)
