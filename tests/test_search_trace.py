"""Unit tests for optimizer search telemetry and ``explain --search``."""

import io

import pytest

from repro.cli import build_workload, main
from repro.cloud import ClusterSpec, get_instance_type
from repro.core.explain import explain_search
from repro.core.optimizer import DeploymentOptimizer, SearchSpace
from repro.core.physical import MatMulParams
from repro.errors import ValidationError
from repro.observability import (
    NULL_SEARCH_TRACE,
    CandidateRecord,
    MetricsRegistry,
    SearchTrace,
)
from repro.observability.search import (
    ORIGIN_GRID,
    ORIGIN_HILL_CLIMB,
    STATUS_EVALUATED,
    STATUS_PRUNED,
    STATUS_SKIPPED,
)
from repro.workloads import build_multiply_program


def tiny_space(node_counts=(2, 4), slots=(2,), instances=("m1.large",),
               matmuls=(MatMulParams(1, 1, 1), MatMulParams(2, 2, 1))):
    return SearchSpace(
        instance_types=tuple(get_instance_type(name) for name in instances),
        node_counts=node_counts,
        slots_options=slots,
        matmul_options=matmuls,
    )


def make_optimizer(trace=None, **kwargs):
    program = build_multiply_program(1024, 1024, 1024)
    return DeploymentOptimizer(
        program, tile_size=256,
        search_trace=trace if trace is not None else NULL_SEARCH_TRACE,
        **kwargs)


class TestGridSearchTrace:
    def test_records_every_candidate(self):
        trace = SearchTrace()
        optimizer = make_optimizer(trace)
        space = tiny_space()
        plans = optimizer.enumerate_plans(space)
        # 1 instance x 2 node counts x 1 slots option x 2 matmuls.
        assert len(trace.records) == 4
        assert len(plans) == 2
        assert all(r.origin == ORIGIN_GRID for r in trace.records)
        assert all(r.predicted_seconds is not None
                   for r in trace.records)

    def test_losers_pruned_with_reason(self):
        trace = SearchTrace()
        make_optimizer(trace).enumerate_plans(tiny_space())
        pruned = trace.pruned()
        kept = trace.kept()
        assert len(kept) == 2 and len(pruned) == 2
        assert all(r.reason == "slower sibling physical plan"
                   for r in pruned)
        # Exactly one survivor per cluster spec.
        assert {(r.instance, r.nodes, r.slots) for r in kept} == {
            ("m1.large", 2, 2), ("m1.large", 4, 2)}

    def test_frontier_matches_skyline_exactly(self):
        trace = SearchTrace()
        optimizer = make_optimizer(trace)
        space = tiny_space(node_counts=(1, 2, 4, 8))
        frontier = optimizer.skyline(space)
        assert trace.frontier_plans() == frontier
        # Records sit in evaluation order; membership must match exactly.
        flagged = [r.plan for r in trace.frontier_records()]
        assert len(flagged) == len(frontier)
        assert all(plan in frontier for plan in flagged)
        # Survivors off the frontier are annotated as dominated.
        for record in trace.kept():
            if not record.on_frontier:
                assert record.reason == "dominated"

    def test_deadline_annotates_feasibility(self):
        trace = SearchTrace()
        optimizer = make_optimizer(trace)
        space = tiny_space(node_counts=(1, 8))
        plans = optimizer.enumerate_plans(space)
        deadline = sorted(p.estimated_seconds for p in plans)[0] + 1.0
        trace.mark_deadline(deadline)
        verdicts = {r.feasible for r in trace.kept()}
        assert verdicts == {True, False}
        for record in trace.kept():
            if record.feasible is False:
                assert "deadline" in record.reason

    def test_budget_annotates_feasibility(self):
        trace = SearchTrace()
        optimizer = make_optimizer(trace)
        plans = optimizer.enumerate_plans(tiny_space(node_counts=(1, 8)))
        budget = min(p.estimated_cost for p in plans)
        trace.mark_budget(budget)
        assert any(r.feasible is False for r in trace.kept())

    def test_constraint_validation(self):
        trace = SearchTrace()
        with pytest.raises(ValidationError):
            trace.mark_deadline(0)
        with pytest.raises(ValidationError):
            trace.mark_budget(-5)

    def test_optimizer_counts_candidates(self):
        registry = MetricsRegistry()
        optimizer = make_optimizer(metrics=registry)
        optimizer.enumerate_plans(tiny_space())
        assert registry.counter(
            "optimizer.candidates_evaluated").value == 4
        assert registry.counter("optimizer.grid_searches").value == 1
        assert registry.gauge("optimizer.grid_plans").value == 2


class TestHillClimbTrace:
    def test_lineage_records_step_and_parent(self):
        trace = SearchTrace()
        optimizer = make_optimizer(trace)
        space = tiny_space(node_counts=(1, 2, 4, 8, 16))
        seed = ClusterSpec(get_instance_type("m1.large"), 16, 2)
        plan = optimizer.hill_climb_under_deadline(
            3600.0, space, seed_spec=seed)
        assert plan.estimated_seconds <= 3600.0
        assert all(r.origin == ORIGIN_HILL_CLIMB for r in trace.records)
        seeds = [r for r in trace.records if r.step == 0]
        assert seeds and all(r.parent is None for r in seeds)
        later = [r for r in trace.records if (r.step or 0) > 0]
        assert later and all(r.parent is not None for r in later)
        # Ancestry chains terminate at a seed record.
        final = trace.index_of(plan)
        chain = trace.lineage(final)
        assert chain[0].step == 0
        assert chain[-1].index == final

    def test_revisited_neighbors_recorded_as_skipped(self):
        trace = SearchTrace()
        optimizer = make_optimizer(trace)
        space = tiny_space(node_counts=(1, 2, 4, 8, 16))
        seed = ClusterSpec(get_instance_type("m1.large"), 16, 2)
        optimizer.hill_climb_under_deadline(3600.0, space, seed_spec=seed)
        skipped = trace.skipped()
        if skipped:  # climb took more than one step
            assert all(r.reason == "already visited" for r in skipped)
            assert all(r.predicted_seconds is None for r in skipped)

    def test_hill_climb_result_unchanged_by_tracing(self):
        space = tiny_space(node_counts=(1, 2, 4, 8, 16))
        seed = ClusterSpec(get_instance_type("m1.large"), 16, 2)
        bare = make_optimizer().hill_climb_under_deadline(
            3600.0, space, seed_spec=seed)
        traced = make_optimizer(SearchTrace()).hill_climb_under_deadline(
            3600.0, space, seed_spec=seed)
        assert bare == traced


class TestRecordQueries:
    def test_best_record_prefers_feasible(self):
        trace = SearchTrace()
        optimizer = make_optimizer(trace)
        plans = optimizer.enumerate_plans(tiny_space(node_counts=(1, 8)))
        deadline = sorted(p.estimated_seconds for p in plans)[0] + 1.0
        trace.mark_deadline(deadline)
        best = trace.best_record()
        assert best is not None and best.feasible is True

    def test_annotation_strings(self):
        record = CandidateRecord(index=0, origin="grid", instance="m1.large",
                                 nodes=2, slots=2, tile_size=256,
                                 matmul="1x1x1")
        assert record.annotation() == "kept"
        record.on_frontier = True
        record.feasible = True
        assert record.annotation() == "frontier, feasible"
        record.status = STATUS_PRUNED
        record.reason = "slower"
        assert record.annotation() == "pruned (slower)"
        record.status = STATUS_SKIPPED
        assert record.annotation() == "skipped (slower)"

    def test_to_dicts_and_clear(self):
        trace = SearchTrace()
        make_optimizer(trace).enumerate_plans(tiny_space())
        dicts = trace.to_dicts()
        assert len(dicts) == len(trace.records)
        assert all(d["instance"] == "m1.large" for d in dicts)
        trace.clear()
        assert len(trace) == 0 and trace.frontier_plans() == []

    def test_null_trace_records_nothing(self):
        assert NULL_SEARCH_TRACE.enabled is False
        NULL_SEARCH_TRACE.prune(0, "x")
        NULL_SEARCH_TRACE.mark_frontier([])
        assert len(NULL_SEARCH_TRACE.records) == 0


class TestExplainSearch:
    def test_lists_every_candidate_and_frontier(self):
        trace = SearchTrace()
        optimizer = make_optimizer(trace)
        optimizer.skyline(tiny_space(node_counts=(1, 2, 4)))
        text = explain_search(trace)
        header = text.splitlines()[0]
        assert f"{len(trace.records)} candidates" in header
        for record in trace.records:
            assert f"#{record.index:03d}" in text
        assert "pruned (slower sibling physical plan)" in text
        assert "pareto frontier" in text
        for plan in trace.frontier_plans():
            assert f"${plan.estimated_cost:.2f}" in text


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestExplainSearchCli:
    """Acceptance: ``repro explain --search`` on a small GNMF program."""

    CLI_ARGS = ("explain", "gnmf", "--scale", "tiny", "--search",
                "--instances", "m1.large", "--node-counts", "2,4",
                "--slot-options", "2")

    def reference_trace(self):
        """In-process optimizer run over the identical search space."""
        program, tile = build_workload("gnmf", "tiny")
        trace = SearchTrace()
        optimizer = DeploymentOptimizer(program, tile_size=tile,
                                        search_trace=trace)
        space = SearchSpace(
            instance_types=(get_instance_type("m1.large"),),
            node_counts=(2, 4),
            slots_options=(2,),
        )
        frontier = optimizer.skyline(space)
        return trace, frontier

    def test_prints_every_candidate_with_prediction(self):
        code, text = run_cli(*self.CLI_ARGS)
        assert code == 0
        trace, __ = self.reference_trace()
        assert f"{len(trace.records)} candidates" in text
        for record in trace.records:
            line = next(l for l in text.splitlines()
                        if l.strip().startswith(f"#{record.index:03d}"))
            assert f"{record.predicted_seconds:.1f}s" in line
            assert f"${record.predicted_cost:.2f}" in line
            assert record.matmul in line
            if record.status == STATUS_PRUNED:
                assert "pruned" in line
            elif record.on_frontier:
                assert "frontier" in line

    def test_frontier_matches_skyline_exactly(self):
        code, text = run_cli(*self.CLI_ARGS)
        assert code == 0
        trace, frontier = self.reference_trace()
        assert trace.frontier_plans() == frontier
        lines = text.splitlines()
        start = next(i for i, l in enumerate(lines)
                     if l.startswith("pareto frontier"))
        assert f"pareto frontier ({len(frontier)} plans):" == lines[start]
        printed = lines[start + 1:start + 1 + len(frontier)]
        for plan, line in zip(frontier, printed):
            assert plan.spec.describe() in line
            assert f"{plan.estimated_seconds:.1f}s" in line
            assert f"${plan.estimated_cost:.2f}" in line

    def test_deadline_annotation(self):
        code, text = run_cli(*self.CLI_ARGS, "--deadline", "0.01")
        assert code == 0
        assert "infeasible" in text

    def test_evaluated_candidates_all_appear(self):
        """Every evaluated candidate (kept or pruned) is in the output."""
        code, text = run_cli(*self.CLI_ARGS)
        trace, __ = self.reference_trace()
        assert code == 0
        evaluated = trace.evaluated()
        assert evaluated
        printed = [l for l in text.splitlines()
                   if l.strip().startswith("#")]
        assert len(printed) == len(trace.records)
        assert all(r.status in (STATUS_EVALUATED, STATUS_PRUNED)
                   for r in evaluated)
