"""Unit tests for the spot-market extension."""

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.cloud.spot import (
    SpotMarket,
    estimate_spot_deployment,
    on_demand_cost,
    simulate_spot_run,
)
from repro.errors import ValidationError


def spec(nodes=4):
    return ClusterSpec(get_instance_type("m1.large"), nodes, 2)


@pytest.fixture
def market():
    return SpotMarket(base_discount=0.3, volatility=0.6, floor=0.1)


class TestSpotMarket:
    def test_price_deterministic(self, market):
        assert market.price_fraction(1, 5) == market.price_fraction(1, 5)

    def test_price_respects_floor(self, market):
        prices = [market.price_fraction(seed, hour)
                  for seed in range(20) for hour in range(20)]
        assert min(prices) >= market.floor

    def test_prices_vary(self, market):
        prices = {round(market.price_fraction(0, hour), 6)
                  for hour in range(50)}
        assert len(prices) > 10

    def test_median_near_base_discount(self, market):
        prices = sorted(market.price_fraction(0, hour)
                        for hour in range(2000))
        median = prices[len(prices) // 2]
        assert 0.2 < median < 0.4

    def test_occasional_spikes_above_on_demand(self):
        spiky = SpotMarket(base_discount=0.3, volatility=1.2)
        prices = [spiky.price_fraction(3, hour) for hour in range(2000)]
        assert max(prices) > 1.0

    def test_cluster_price(self, market):
        cluster = spec(nodes=4)
        fraction = market.price_fraction(0, 0)
        assert market.price_per_hour(cluster, 0, 0) == pytest.approx(
            fraction * 4 * cluster.instance_type.price_per_hour)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SpotMarket(base_discount=0.0)
        with pytest.raises(ValidationError):
            SpotMarket(floor=0.5, base_discount=0.3)
        with pytest.raises(ValidationError):
            SpotMarket(volatility=-1.0)


class TestSpotRun:
    def test_high_bid_completes_quickly(self, market):
        run = simulate_spot_run(spec(), work_seconds=3 * 3600,
                                bid_fraction=10.0, market=market, seed=1)
        assert run.completed
        assert run.hours_elapsed == 3
        assert run.revocations == 0

    def test_cost_below_on_demand_for_reasonable_bid(self, market):
        run = simulate_spot_run(spec(), work_seconds=3 * 3600,
                                bid_fraction=10.0, market=market, seed=1)
        assert run.cost < on_demand_cost(spec(), 3 * 3600)

    def test_low_bid_waits_or_restarts(self, market):
        greedy = simulate_spot_run(spec(), work_seconds=5 * 3600,
                                   bid_fraction=0.22, market=market, seed=7)
        patient = simulate_spot_run(spec(), work_seconds=5 * 3600,
                                    bid_fraction=10.0, market=market, seed=7)
        assert greedy.hours_elapsed >= patient.hours_elapsed

    def test_bid_below_floor_never_completes(self, market):
        run = simulate_spot_run(spec(), work_seconds=3600,
                                bid_fraction=0.05, market=market, seed=1)
        assert not run.completed
        assert run.cost == 0.0

    def test_checkpointing_never_slower(self, market):
        for seed in range(10):
            plain = simulate_spot_run(spec(), 6 * 3600, 0.3, market,
                                      seed=seed, checkpointing=False)
            checkpointed = simulate_spot_run(spec(), 6 * 3600, 0.3, market,
                                             seed=seed, checkpointing=True)
            assert checkpointed.hours_elapsed <= plain.hours_elapsed

    def test_deterministic(self, market):
        runs = [simulate_spot_run(spec(), 4 * 3600, 0.35, market, seed=5)
                for __ in range(2)]
        assert runs[0] == runs[1]

    def test_validation(self, market):
        with pytest.raises(ValidationError):
            simulate_spot_run(spec(), 0.0, 0.5, market, seed=0)
        with pytest.raises(ValidationError):
            simulate_spot_run(spec(), 100.0, 0.0, market, seed=0)


class TestSpotEstimate:
    def test_estimate_fields(self, market):
        estimate = estimate_spot_deployment(spec(), 4 * 3600, 0.5, market,
                                            samples=50)
        assert 0.0 <= estimate.completion_rate <= 1.0
        assert estimate.mean_seconds > 0
        assert estimate.p95_seconds >= estimate.mean_seconds * 0.5

    def test_spot_cheaper_than_on_demand_at_generous_bid(self, market):
        work = 6 * 3600
        estimate = estimate_spot_deployment(spec(), work, 1.0, market,
                                            samples=100)
        assert estimate.completion_rate == 1.0
        assert estimate.mean_cost < 0.8 * on_demand_cost(spec(), work)

    def test_lower_bid_cheaper_but_slower_with_checkpointing(self, market):
        # With checkpointing every paid hour is productive, so a lower bid
        # strictly filters for cheaper hours: cost is monotone in the bid.
        # (Without checkpointing restarts burn paid hours and low bids can
        # cost MORE — covered by the next test.)
        work = 6 * 3600
        low = estimate_spot_deployment(spec(), work, 0.28, market,
                                       samples=100, seed=3,
                                       checkpointing=True)
        high = estimate_spot_deployment(spec(), work, 2.0, market,
                                        samples=100, seed=3,
                                        checkpointing=True)
        assert low.mean_cost <= high.mean_cost
        assert low.mean_seconds >= high.mean_seconds

    def test_low_bid_without_checkpointing_wastes_paid_hours(self):
        spiky = SpotMarket(base_discount=0.35, volatility=1.0)
        work = 10 * 3600
        plain = estimate_spot_deployment(spec(), work, 0.4, spiky,
                                         samples=100, checkpointing=False)
        checkpointed = estimate_spot_deployment(spec(), work, 0.4, spiky,
                                                samples=100,
                                                checkpointing=True)
        # Restarts re-buy hours: the plain policy pays at least as much.
        assert plain.mean_cost >= checkpointed.mean_cost

    def test_checkpointing_improves_completion_time(self):
        spiky = SpotMarket(base_discount=0.35, volatility=1.0)
        work = 10 * 3600
        plain = estimate_spot_deployment(spec(), work, 0.4, spiky,
                                         samples=100, checkpointing=False)
        checkpointed = estimate_spot_deployment(spec(), work, 0.4, spiky,
                                                samples=100,
                                                checkpointing=True)
        assert checkpointed.mean_seconds < plain.mean_seconds

    def test_validation(self, market):
        with pytest.raises(ValidationError):
            estimate_spot_deployment(spec(), 3600, 0.5, market, samples=0)
