"""Wire-protocol edge cases for the wall-clock socket server.

Two layers:

* pure frame-codec units (:mod:`repro.service.protocol`) — encode /
  decode / validate, every structured error code;
* a live in-process server (:class:`~repro.service.loadgen.ServerThread`
  over a unix socket) poked with torn, oversized, malformed, and
  out-of-order frames — every one must come back as a structured
  ``error`` frame (or a clean hangup for unrecoverable framing), never
  kill the server, and never corrupt a later well-formed exchange.
"""

import json
import random
import time

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.errors import ProtocolError
from repro.service.jobs import JobService
from repro.service.loadgen import ProtocolClient, ServerThread
from repro.service.protocol import (
    ERR_BAD_FRAME,
    ERR_BAD_JSON,
    ERR_DRAIN_PENDING,
    ERR_JOB_FINISHED,
    ERR_MISSING_FIELD,
    ERR_OVERSIZED,
    ERR_UNKNOWN_JOB,
    ERR_UNKNOWN_TYPE,
    ERR_UNKNOWN_WORKLOAD,
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_frame,
    validate_frame,
)
from repro.service.server import ReproServer


def make_server(tmp_path, **kwargs):
    spec = ClusterSpec(get_instance_type("m1.large"), 4, 2)
    service = JobService(spec, tune_physical=False)
    kwargs.setdefault("tick_interval", 0.01)
    kwargs.setdefault("time_scale", 5000.0)
    return ReproServer(service, str(tmp_path / "server.sock"), **kwargs)


@pytest.fixture
def live(tmp_path):
    server = make_server(tmp_path)
    with ServerThread(server) as thread:
        yield thread.server


def submit_and_ack(client, tenant="acme", workload="multiply",
                   scale="tiny", req=0):
    client.send({"type": "submit", "tenant": tenant, "workload": workload,
                 "scale": scale, "req": req})
    ack = client.recv_until("ack")
    assert ack["req"] == req
    return ack


class TestFrameCodec:
    def test_roundtrip(self):
        doc = {"type": "submit", "tenant": "a", "workload": "multiply"}
        data = encode_frame(doc)
        assert data.endswith(b"\n")
        assert decode_frame(data) == doc

    def test_encode_rejects_oversized(self):
        doc = {"type": "submit", "tenant": "x" * MAX_FRAME_BYTES,
               "workload": "multiply"}
        with pytest.raises(ProtocolError) as err:
            encode_frame(doc)
        assert err.value.code == ERR_OVERSIZED

    def test_decode_rejects_oversized(self):
        line = b'{"pad": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(ProtocolError) as err:
            decode_frame(line)
        assert err.value.code == ERR_OVERSIZED

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"{nope\n")
        assert err.value.code == ERR_BAD_JSON

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"[1, 2, 3]\n")
        assert err.value.code == ERR_BAD_FRAME

    def test_decode_requires_type(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b'{"tenant": "a"}\n')
        assert err.value.code == ERR_BAD_FRAME

    def test_validate_rejects_unknown_type(self):
        with pytest.raises(ProtocolError) as err:
            validate_frame({"type": "frobnicate"})
        assert err.value.code == ERR_UNKNOWN_TYPE

    def test_validate_rejects_missing_required(self):
        with pytest.raises(ProtocolError) as err:
            validate_frame({"type": "submit", "tenant": "a"})
        assert err.value.code == ERR_MISSING_FIELD

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(ProtocolError) as err:
            validate_frame({"type": "submit", "tenant": 7,
                            "workload": "multiply"})
        assert err.value.code == ERR_MISSING_FIELD

    def test_validate_accepts_string_scale(self):
        doc = {"type": "submit", "tenant": "a", "workload": "multiply",
               "scale": "tiny", "req": 3}
        assert validate_frame(doc) is doc

    def test_error_frame_echoes_req(self):
        doc = error_frame(ERR_BAD_JSON, "boom", req=42)
        assert doc["type"] == "error"
        assert doc["code"] in ERROR_CODES
        assert doc["req"] == 42

    def test_all_error_codes_are_stable_strings(self):
        assert all(isinstance(code, str) and code for code in ERROR_CODES)


class TestLiveProtocolEdges:
    def test_hello_welcome(self, live):
        with ProtocolClient(live.listen) as client:
            welcome = client.request({"type": "hello", "client": "t"})
            assert welcome["type"] == "welcome"
            assert welcome["version"] == PROTOCOL_VERSION
            assert welcome["mode"] == "wall"

    def test_malformed_json_gets_error_and_conn_survives(self, live):
        with ProtocolClient(live.listen) as client:
            client.send_raw(b"{this is not json\n")
            error = client.recv()
            assert error["type"] == "error"
            assert error["code"] == ERR_BAD_JSON
            # The same connection still works end-to-end.
            submit_and_ack(client, req=1)

    def test_unknown_type_gets_error(self, live):
        with ProtocolClient(live.listen) as client:
            error = client.request({"type": "teleport", "req": 9})
            assert error["code"] == ERR_UNKNOWN_TYPE
            assert error["req"] == 9

    def test_missing_field_gets_error_with_req(self, live):
        with ProtocolClient(live.listen) as client:
            error = client.request({"type": "submit", "tenant": "a",
                                    "req": "abc"})
            assert error["code"] == ERR_MISSING_FIELD
            assert error["req"] == "abc"

    def test_unknown_workload_gets_error(self, live):
        with ProtocolClient(live.listen) as client:
            error = client.request({"type": "submit", "tenant": "a",
                                    "workload": "quicksort", "req": 1})
            assert error["code"] == ERR_UNKNOWN_WORKLOAD

    def test_oversized_frame_refused_then_server_lives(self, live):
        with ProtocolClient(live.listen) as client:
            client.send_raw(b'{"type": "submit", "pad": "'
                            + b"x" * (2 * MAX_FRAME_BYTES) + b'"}\n')
            error = client.recv()
            # Structured refusal (framing is lost, so the server may
            # hang up right after — but never silently).
            assert error is not None and error["code"] == ERR_OVERSIZED
        with ProtocolClient(live.listen) as client:
            submit_and_ack(client)

    def test_torn_frame_counted_and_server_lives(self, live):
        before = live.stats.torn_frames
        client = ProtocolClient(live.listen)
        client.send_raw(b'{"type": "submit", "tenant": "a"')  # no newline
        client.close()
        with ProtocolClient(live.listen) as probe:
            status = probe.request({"type": "status"})
            assert status["type"] == "status"
        # The probe round-trip can outrun the first connection's EOF
        # handling; wait for the reader task to log the torn frame.
        deadline = time.monotonic() + 5.0
        while (live.stats.torn_frames != before + 1
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert live.stats.torn_frames == before + 1

    def test_disconnect_mid_submit_orphans_job(self, live):
        client = ProtocolClient(live.listen)
        submit_and_ack(client, tenant="ghost")
        client.close()  # owner vanishes; the job must still finish
        with ProtocolClient(live.listen) as probe:
            probe.send({"type": "drain", "scope": "all"})
            drained = probe.recv_until("drained")
            assert drained["scope"] == "all"
        record = next(iter(live.service.jobs.values()))
        assert record.state == "completed"

    def test_double_drain_rejected(self, live):
        with ProtocolClient(live.listen) as client:
            submit_and_ack(client)
            client.send({"type": "drain"})
            client.send({"type": "drain", "req": 2})
            error = client.recv_until("error")
            assert error["code"] == ERR_DRAIN_PENDING
            assert error["req"] == 2
            client.recv_until("drained")  # the first drain completes

    def test_unknown_drain_scope_rejected(self, live):
        with ProtocolClient(live.listen) as client:
            error = client.request({"type": "drain", "scope": "galaxy"})
            assert error["code"] == ERR_BAD_FRAME

    def test_cancel_after_complete_gets_job_finished(self, live):
        with ProtocolClient(live.listen) as client:
            ack = submit_and_ack(client)
            result = client.recv_until("result")
            assert result["job_id"] == ack["job_id"]
            error = client.request({"type": "cancel",
                                    "job_id": ack["job_id"], "req": 5})
            assert error["code"] == ERR_JOB_FINISHED
            assert error["req"] == 5

    def test_cancel_unknown_job(self, live):
        with ProtocolClient(live.listen) as client:
            error = client.request({"type": "cancel", "job_id": "nope-j1"})
            assert error["code"] == ERR_UNKNOWN_JOB

    def test_status_unknown_job(self, live):
        with ProtocolClient(live.listen) as client:
            error = client.request({"type": "status", "job_id": "nope-j1",
                                    "req": 1})
            assert error["code"] == ERR_UNKNOWN_JOB

    def test_server_status_doc(self, live):
        with ProtocolClient(live.listen) as client:
            status = client.request({"type": "status"})
            doc = status["server"]
            assert doc["mode"] == "wall"
            assert doc["accepting"] is True
            assert "stats" in doc

    def test_bye_closes_cleanly(self, live):
        with ProtocolClient(live.listen) as client:
            bye = client.request({"type": "bye"})
            assert bye["type"] == "bye"
            assert client.recv() is None  # EOF, not an exception

    def test_fuzz_garbage_never_kills_server(self, live):
        rng = random.Random(1234)
        with ProtocolClient(live.listen) as client:
            for index in range(60):
                choice = rng.randrange(4)
                if choice == 0:
                    line = bytes(rng.randrange(32, 127)
                                 for __ in range(rng.randrange(1, 80)))
                elif choice == 1:
                    line = json.dumps(
                        {"type": rng.choice(["submit", "cancel", "x"]),
                         "junk": index}).encode()
                elif choice == 2:
                    line = json.dumps([index, "not", "a", "frame"]).encode()
                else:
                    line = b""
                client.send_raw(line + b"\n")
                reply = client.recv()
                assert reply is not None, f"server hung up on frame {index}"
                assert reply["type"] == "error"
                assert reply["code"] in ERROR_CODES
            # After all that abuse, a real submission still works.
            submit_and_ack(client, req="after-fuzz")
