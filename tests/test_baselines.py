"""Unit tests for the SystemML-style and naive baselines."""

import numpy as np
import pytest

from repro.baselines import (
    plan_best_systemml,
    plan_cpmm,
    plan_rmm,
    plan_single_node,
)
from repro.cloud import ClusterSpec, get_instance_type
from repro.core.costmodel import CumulonCostModel
from repro.core.physical import (
    MatMulParams,
    MatrixInfo,
    Operand,
    PhysicalContext,
    build_matmul_jobs,
)
from repro.core.simcost import simulate_program
from repro.errors import ShapeError
from repro.hadoop.job import JobDag, JobKind
from repro.hadoop.local import LocalExecutor
from repro.matrix.tiled import DenseBacking, TileGrid, TiledMatrix


def virtual_info(name, rows=4096, cols=4096, tile=1024):
    return MatrixInfo(name, TileGrid(rows, cols, tile))


@pytest.fixture
def real_setup():
    rng = np.random.default_rng(5)
    a = rng.random((48, 32))
    b = rng.random((32, 40))
    backing = DenseBacking()
    mat_a = TiledMatrix.from_numpy("A", a, 16, backing)
    mat_b = TiledMatrix.from_numpy("B", b, 16, backing)
    context = PhysicalContext(16, backing, attach_run=True)
    return a, b, mat_a, mat_b, context


class TestCorrectness:
    def run_and_read(self, baseline, backing):
        LocalExecutor(max_workers=2).run(baseline.dag)
        return TiledMatrix(baseline.output.name, baseline.output.grid,
                           backing).to_numpy()

    def test_rmm_matches_numpy(self, real_setup):
        a, b, mat_a, mat_b, context = real_setup
        baseline = plan_rmm(Operand(MatrixInfo("A", mat_a.grid)),
                            Operand(MatrixInfo("B", mat_b.grid)),
                            "C", context)
        np.testing.assert_allclose(
            self.run_and_read(baseline, context.backing), a @ b)

    def test_cpmm_matches_numpy(self, real_setup):
        a, b, mat_a, mat_b, context = real_setup
        baseline = plan_cpmm(Operand(MatrixInfo("A", mat_a.grid)),
                             Operand(MatrixInfo("B", mat_b.grid)),
                             "C", context)
        np.testing.assert_allclose(
            self.run_and_read(baseline, context.backing), a @ b)

    def test_rmm_with_transposed_operand(self, real_setup):
        a, b, mat_a, mat_b, context = real_setup
        baseline = plan_rmm(Operand(MatrixInfo("A", mat_a.grid), transposed=True),
                            Operand(MatrixInfo("A", mat_a.grid)),
                            "AtA", context)
        np.testing.assert_allclose(
            self.run_and_read(baseline, context.backing), a.T @ a)


class TestJobStructure:
    def test_rmm_is_one_mapreduce_job(self):
        baseline = plan_rmm(Operand(virtual_info("A")),
                            Operand(virtual_info("B")), "C",
                            PhysicalContext(1024))
        jobs = list(baseline.dag)
        assert len(jobs) == 1
        assert jobs[0].kind is JobKind.MAPREDUCE

    def test_cpmm_is_two_mapreduce_jobs(self):
        baseline = plan_cpmm(Operand(virtual_info("A")),
                             Operand(virtual_info("B")), "C",
                             PhysicalContext(1024))
        jobs = list(baseline.dag)
        assert len(jobs) == 2
        assert all(job.kind is JobKind.MAPREDUCE for job in jobs)
        assert jobs[1].depends_on == {jobs[0].job_id}

    def test_rmm_shuffle_volume_formula(self):
        left, right = virtual_info("A"), virtual_info("B")
        baseline = plan_rmm(Operand(left), Operand(right), "C",
                            PhysicalContext(1024))
        job = list(baseline.dag)[0]
        grid = baseline.output.grid
        expected = (left.total_bytes() * grid.tile_cols
                    + right.total_bytes() * grid.tile_rows)
        assert job.shuffle_bytes == expected

    def test_cpmm_first_job_shuffles_inputs_once(self):
        left, right = virtual_info("A"), virtual_info("B")
        baseline = plan_cpmm(Operand(left), Operand(right), "C",
                             PhysicalContext(1024))
        job1 = baseline.dag.topological_order()[0]
        assert job1.shuffle_bytes == left.total_bytes() + right.total_bytes()

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            plan_rmm(Operand(virtual_info("A", 4096, 4096)),
                     Operand(virtual_info("B", 2048, 4096)), "C",
                     PhysicalContext(1024))


class TestPerformanceComparison:
    """The headline claim: Cumulon beats MapReduce-based multiplies."""

    def simulate(self, dag, nodes=8):
        spec = ClusterSpec(get_instance_type("m1.large"), nodes, 2)
        return simulate_program(dag, spec, CumulonCostModel()).seconds

    def test_cumulon_beats_rmm_and_cpmm(self):
        context = PhysicalContext(1024)
        left, right = Operand(virtual_info("A")), Operand(virtual_info("B"))
        cumulon = build_matmul_jobs("cum", left, right, "C", context,
                                    MatMulParams())
        t_cumulon = self.simulate(JobDag(cumulon.jobs()))
        t_rmm = self.simulate(plan_rmm(left, right, "C", context).dag)
        t_cpmm = self.simulate(plan_cpmm(left, right, "C", context).dag)
        assert t_cumulon < t_rmm
        assert t_cumulon < t_cpmm

    def test_best_systemml_picks_the_better_strategy(self):
        context = PhysicalContext(1024)
        # Square multiply with few tiles: RMM's replication is modest.
        square = plan_best_systemml(Operand(virtual_info("A")),
                                    Operand(virtual_info("B")), "C", context)
        t_chosen = self.simulate(square.dag)
        t_rmm = self.simulate(plan_rmm(Operand(virtual_info("A")),
                                       Operand(virtual_info("B")), "C",
                                       context).dag)
        t_cpmm = self.simulate(plan_cpmm(Operand(virtual_info("A")),
                                         Operand(virtual_info("B")), "C",
                                         context).dag)
        assert t_chosen <= max(t_rmm, t_cpmm)

    def test_best_systemml_prefers_cpmm_for_wide_grids(self):
        context = PhysicalContext(512)
        # 16x16 tile grid: RMM would replicate each input 16x.
        left = Operand(virtual_info("A", 8192, 8192, 512))
        right = Operand(virtual_info("B", 8192, 8192, 512))
        chosen = plan_best_systemml(left, right, "C", context)
        assert chosen.strategy == "CPMM"

    def test_best_systemml_prefers_rmm_for_narrow_output(self):
        context = PhysicalContext(512)
        # B is a single tile column: replicating it is nearly free.
        left = Operand(virtual_info("A", 8192, 8192, 512))
        right = Operand(virtual_info("B", 8192, 512, 512))
        chosen = plan_best_systemml(left, right, "C", context)
        assert chosen.strategy == "RMM"


class TestSingleNode:
    def test_one_task(self):
        dag, output = plan_single_node(Operand(virtual_info("A")),
                                       Operand(virtual_info("B")), "C",
                                       PhysicalContext(1024))
        jobs = list(dag)
        assert len(jobs) == 1
        assert len(jobs[0].map_tasks) == 1

    def test_cluster_beats_single_node_at_scale(self):
        context = PhysicalContext(1024)
        left = Operand(virtual_info("A", 16384, 16384))
        right = Operand(virtual_info("B", 16384, 16384))
        single_dag, __ = plan_single_node(left, right, "C", context)
        model = CumulonCostModel()
        single = simulate_program(
            single_dag, ClusterSpec(get_instance_type("m2.4xlarge"), 1, 1),
            model).seconds
        cluster_jobs = build_matmul_jobs("c", left, right, "C", context,
                                         MatMulParams(2, 2, 1))
        cluster = simulate_program(
            JobDag(cluster_jobs.jobs()),
            ClusterSpec(get_instance_type("c1.xlarge"), 16, 8), model).seconds
        assert cluster < single

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            plan_single_node(Operand(virtual_info("A", 8, 4, 4)),
                             Operand(virtual_info("B", 8, 4, 4)), "C",
                             PhysicalContext(4))
