"""Unit tests for the session façade and the plan advisor."""

import numpy as np
import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.core.advisor import validate_plan
from repro.core.compiler import CompilerParams, compile_program
from repro.core.physical import MatMulParams, PhysicalContext
from repro.core.program import Program
from repro.core.session import CumulonSession
from repro.errors import ValidationError
from repro.ingest import format_csv_matrix
from repro.workloads import build_normal_equations_program

RNG = np.random.default_rng(91)


class TestSession:
    def test_ingest_and_run(self):
        session = CumulonSession(tile_size=8)
        a = RNG.random((16, 16))
        session.ingest_array("A", a)
        program = Program("p")
        av = program.declare_input("A", 16, 16)
        program.assign("S", av @ av)
        program.mark_output("S")
        result = session.run(program)  # input comes from the store
        np.testing.assert_allclose(result.output("S"), a @ a, rtol=1e-9)

    def test_ingest_csv(self):
        session = CumulonSession(tile_size=8)
        a = RNG.random((10, 6))
        session.ingest_csv("X", format_csv_matrix(a, precision=12))
        np.testing.assert_allclose(session.get_matrix("X", 10, 6), a,
                                   rtol=1e-10)

    def test_explicit_inputs_override(self):
        session = CumulonSession(tile_size=8)
        session.ingest_array("A", np.zeros((8, 8)))
        program = Program("p")
        av = program.declare_input("A", 8, 8)
        program.assign("S", av + av)
        program.mark_output("S")
        fresh = np.ones((8, 8))
        result = session.run(program, {"A": fresh})
        np.testing.assert_allclose(result.output("S"), 2 * fresh)

    def test_missing_input_raises(self):
        session = CumulonSession(tile_size=8)
        program = Program("p")
        av = program.declare_input("Z", 8, 8)
        program.assign("S", av + av)
        with pytest.raises(ValidationError, match="missing"):
            session.run(program)

    def test_storage_accounting_and_listing(self):
        session = CumulonSession(tile_size=8, replication=2)
        session.ingest_array("A", np.ones((16, 16)))
        session.ingest_array("B", np.ones((8, 8)))
        assert "A" in session.stored_matrices()
        assert "B" in session.stored_matrices()
        assert session.storage_used_bytes() > 0

    def test_optimize_returns_working_optimizer(self):
        session = CumulonSession(tile_size=8)
        big = build_normal_equations_program(65536, 4096)
        optimizer = session.optimize(big, tile_size=2048)
        from repro.core.optimizer import SearchSpace
        space = SearchSpace(
            instance_types=(get_instance_type("m1.large"),),
            node_counts=(4,), slots_options=(2,),
        )
        plan = optimizer.minimize_cost_under_deadline(4 * 3600.0, space)
        assert plan.estimated_cost > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            CumulonSession(storage_nodes=0)


class TestAdvisor:
    def spec(self, instance="m1.large", nodes=8, slots=2):
        return ClusterSpec(get_instance_type(instance), nodes, slots)

    def test_clean_plan_has_no_warnings(self):
        program = Program("ok")
        a = program.declare_input("A", 16384, 16384)
        b = program.declare_input("B", 16384, 16384)
        program.assign("C", a @ b)
        compiled = compile_program(program, PhysicalContext(2048))
        assert validate_plan(compiled, self.spec()) == []

    def test_memory_warning_for_unsplit_gram(self):
        program = build_normal_equations_program(1048576, 4096)
        compiled = compile_program(
            program, PhysicalContext(2048),
            CompilerParams(matmul=MatMulParams(1, 1, 1),
                           reorder_chains=False))
        warnings = validate_plan(compiled, self.spec())
        assert any(w.kind == "memory" for w in warnings)
        assert any("k_splits" in w.message for w in warnings)

    def test_memory_warning_fixed_by_splitting(self):
        program = build_normal_equations_program(1048576, 4096)
        compiled = compile_program(
            program, PhysicalContext(2048),
            CompilerParams(matmul=MatMulParams(1, 1, 128)))
        warnings = validate_plan(compiled, self.spec())
        assert not any(w.kind == "memory" for w in warnings)

    def test_parallelism_warning_for_few_tasks(self):
        program = Program("small")
        a = program.declare_input("A", 4096, 4096)
        b = program.declare_input("B", 4096, 4096)
        program.assign("C", a @ b)
        compiled = compile_program(
            program, PhysicalContext(2048),
            CompilerParams(matmul=MatMulParams(2, 2, 1)))
        warnings = validate_plan(compiled, self.spec(nodes=16, slots=4))
        assert any(w.kind == "parallelism" for w in warnings)

    def test_granularity_warning_for_tiny_tasks(self):
        from repro.core.physical import ElementwiseParams
        program = Program("tiny")
        a = program.declare_input("A", 8192, 8192)
        program.assign("B", a * 2.0)
        compiled = compile_program(
            program, PhysicalContext(256),
            CompilerParams(elementwise=ElementwiseParams(tiles_per_task=1)))
        warnings = validate_plan(compiled, self.spec())
        assert any(w.kind == "granularity" for w in warnings)

    def test_shuffle_warning_for_rmm_replication(self):
        from repro.baselines import plan_rmm
        from repro.core.compiler import CompiledProgram
        from repro.core.physical import MatrixInfo, Operand
        from repro.matrix.tiled import TileGrid
        grid = TileGrid(32768, 32768, 2048)
        baseline = plan_rmm(Operand(MatrixInfo("A", grid)),
                            Operand(MatrixInfo("B", grid)), "C",
                            PhysicalContext(2048))
        program = Program("rmm")
        compiled = CompiledProgram(program, baseline.dag, {}, {})
        warnings = validate_plan(compiled, self.spec())
        assert any(w.kind == "shuffle" for w in warnings)

    def test_warning_str(self):
        from repro.core.advisor import Warning_
        text = str(Warning_("j1", "memory", "too big"))
        assert "j1" in text and "memory" in text
