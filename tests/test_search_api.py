"""The unified ``search()`` facade and the deprecation shims behind it.

Locks the api_redesign contract: one declarative :class:`SearchSpec`
covers everything the four legacy optimizer entry points did, the legacy
entry points keep working through warning shims with bit-identical
results, ``SearchStats`` round-trips through ``--json`` and the metrics
registry, and the CLI's shared search flags drive the same spec.
"""

import io
import json

import pytest

from repro.cli import build_workload, main
from repro.cloud import ClusterSpec, get_instance_type
from repro.core.compiler import CompilerParams
from repro.core.optimizer import (
    DeploymentOptimizer,
    ReliabilityModel,
    SearchSpace,
)
from repro.core.physical import MatMulParams
from repro.core.search import SearchSpec, search
from repro.core.surrogate import SurrogateConfig
from repro.errors import ValidationError
from repro.observability import MetricsRegistry
from repro.observability.search import SearchStats


def tiny_space():
    return SearchSpace(
        instance_types=(get_instance_type("m1.large"),
                        get_instance_type("m1.small")),
        node_counts=(1, 2, 4),
        slots_options=(2,),
        matmul_options=(MatMulParams(1, 1, 1),),
    )


def make_optimizer(**kwargs):
    program, tile = build_workload("multiply", "tiny")
    return DeploymentOptimizer(program, tile_size=tile, **kwargs)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSpecValidation:
    def test_min_cost_needs_deadline(self):
        with pytest.raises(ValidationError):
            SearchSpec(objective="min-cost")

    def test_min_time_needs_budget(self):
        with pytest.raises(ValidationError):
            SearchSpec(objective="min-time")

    def test_constraints_match_objective(self):
        with pytest.raises(ValidationError):
            SearchSpec(objective="min-cost", budget_dollars=5.0)
        with pytest.raises(ValidationError):
            SearchSpec(objective="min-time", deadline_seconds=60.0,
                       budget_dollars=5.0)

    def test_unknown_objective_and_method(self):
        with pytest.raises(ValidationError):
            SearchSpec(objective="min-regret", deadline_seconds=60.0)
        with pytest.raises(ValidationError):
            SearchSpec(deadline_seconds=60.0, method="oracle")

    def test_evaluate_needs_cluster_and_params(self):
        with pytest.raises(ValidationError):
            SearchSpec(objective="evaluate")

    def test_evaluate_rejects_constraints_and_surrogate(self):
        cluster = ClusterSpec(get_instance_type("m1.large"), 2, 2)
        with pytest.raises(ValidationError):
            SearchSpec(objective="evaluate", cluster=cluster,
                       compiler_params=CompilerParams(),
                       deadline_seconds=60.0)
        with pytest.raises(ValidationError):
            SearchSpec(objective="evaluate", cluster=cluster,
                       compiler_params=CompilerParams(),
                       method="surrogate")

    def test_surrogate_config_needs_surrogate_method(self):
        with pytest.raises(ValidationError):
            SearchSpec(deadline_seconds=60.0,
                       surrogate=SurrogateConfig())

    def test_grid_search_rejects_fixed_cluster(self):
        with pytest.raises(ValidationError):
            SearchSpec(deadline_seconds=60.0,
                       cluster=ClusterSpec(get_instance_type("m1.large"),
                                           2, 2))

    def test_min_time_has_no_reliable_solver(self):
        with pytest.raises(ValidationError):
            SearchSpec(objective="min-time", budget_dollars=5.0,
                       reliability=ReliabilityModel(
                           crash_rate_per_hour=0.3, scenarios=3, seed=1))


class TestFacadeEquivalence:
    """search() returns exactly what the legacy entry points return."""

    def test_min_cost_matches_legacy(self):
        legacy = make_optimizer()
        with pytest.deprecated_call():
            expected = legacy.minimize_cost_under_deadline(
                3600.0, tiny_space())
        optimizer = make_optimizer()
        result = search(optimizer, SearchSpec(deadline_seconds=3600.0,
                                              space=tiny_space()))
        assert result.plan == expected
        assert result.objective == "min-cost"
        assert result.method == "exhaustive"
        assert result.stats.sim_requests > 0

    def test_min_time_matches_solver(self):
        baseline = make_optimizer()
        expected = baseline.minimize_time_under_budget(5.0, tiny_space())
        optimizer = make_optimizer()
        result = search(optimizer, SearchSpec(objective="min-time",
                                              budget_dollars=5.0,
                                              space=tiny_space()))
        assert result.plan == expected

    def test_evaluate_matches_legacy(self):
        cluster = ClusterSpec(get_instance_type("m1.large"), 2, 2)
        legacy = make_optimizer()
        with pytest.deprecated_call():
            expected = legacy.evaluate(cluster, CompilerParams())
        optimizer = make_optimizer()
        result = search(optimizer, SearchSpec(objective="evaluate",
                                              cluster=cluster,
                                              compiler_params=CompilerParams()))
        assert result.plan == expected
        assert result.reliable is None
        assert result.stats.sim_requests == 1

    def test_evaluate_reliable_matches_legacy(self):
        cluster = ClusterSpec(get_instance_type("m1.large"), 2, 2)
        reliability = ReliabilityModel(crash_rate_per_hour=0.3,
                                       scenarios=3, seed=7)
        legacy = make_optimizer()
        with pytest.deprecated_call():
            expected = legacy.evaluate_reliable(cluster, CompilerParams(),
                                                reliability)
        optimizer = make_optimizer()
        result = search(optimizer, SearchSpec(objective="evaluate",
                                              cluster=cluster,
                                              compiler_params=CompilerParams(),
                                              reliability=reliability))
        assert result.reliable is not None
        assert result.reliable.scenario_seconds == expected.scenario_seconds
        assert result.reliable.scenario_costs == expected.scenario_costs
        assert result.plan == expected.plan

    def test_reliable_min_cost_matches_legacy(self):
        reliability = ReliabilityModel(crash_rate_per_hour=0.3,
                                       scenarios=3, seed=7)
        legacy = make_optimizer()
        with pytest.deprecated_call():
            expected = legacy.minimize_cost_under_deadline_reliable(
                3600.0, reliability, tiny_space())
        optimizer = make_optimizer()
        result = search(optimizer,
                        SearchSpec(deadline_seconds=3600.0,
                                   space=tiny_space(),
                                   reliability=reliability))
        assert result.reliable is not None
        assert result.plan == expected.plan
        assert result.reliable.scenario_costs == expected.scenario_costs

    def test_surrogate_method_agrees_on_tiny_grid(self):
        optimizer = make_optimizer()
        exact = search(optimizer, SearchSpec(deadline_seconds=3600.0,
                                             space=tiny_space()))
        surrogate_optimizer = make_optimizer()
        result = search(surrogate_optimizer,
                        SearchSpec(deadline_seconds=3600.0,
                                   space=tiny_space(),
                                   method="surrogate"))
        assert result.plan == exact.plan
        assert result.method == "surrogate"


class TestShimWarnings:
    """Each legacy entry point warns once and still works."""

    def test_minimize_cost_under_deadline_warns(self):
        optimizer = make_optimizer()
        with pytest.deprecated_call(match="minimize_cost_under_deadline"):
            optimizer.minimize_cost_under_deadline(3600.0, tiny_space())

    def test_minimize_cost_under_deadline_reliable_warns(self):
        optimizer = make_optimizer()
        reliability = ReliabilityModel(crash_rate_per_hour=0.3,
                                       scenarios=2, seed=1)
        with pytest.deprecated_call(
                match="minimize_cost_under_deadline_reliable"):
            optimizer.minimize_cost_under_deadline_reliable(
                3600.0, reliability, tiny_space())

    def test_evaluate_warns(self):
        optimizer = make_optimizer()
        cluster = ClusterSpec(get_instance_type("m1.large"), 2, 2)
        with pytest.deprecated_call(match="evaluate"):
            optimizer.evaluate(cluster, CompilerParams())

    def test_evaluate_reliable_warns(self):
        optimizer = make_optimizer()
        cluster = ClusterSpec(get_instance_type("m1.large"), 2, 2)
        reliability = ReliabilityModel(crash_rate_per_hour=0.3,
                                       scenarios=2, seed=1)
        with pytest.deprecated_call(match="evaluate_reliable"):
            optimizer.evaluate_reliable(cluster, CompilerParams(),
                                        reliability)

    def test_minimize_time_under_budget_does_not_warn(self, recwarn):
        optimizer = make_optimizer()
        optimizer.minimize_time_under_budget(50.0, tiny_space())
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]


class TestStatsRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        stats = SearchStats(sim_requests=40, sims_executed=25,
                            cache_hits=15, scenarios_skipped=6, workers=4,
                            wall_seconds=1.5, simulations_avoided=80,
                            surrogate_rounds=7)
        rebuilt = SearchStats.from_dict(stats.to_dict())
        assert rebuilt == stats

    def test_json_dict_carries_derived_fields(self):
        stats = SearchStats(sim_requests=10, sims_executed=5, cache_hits=5)
        document = stats.to_dict()
        assert document["hit_rate"] == 0.5
        assert document["simulations_avoided"] == 0
        assert document["surrogate_rounds"] == 0

    def test_search_sets_registry_gauges(self):
        registry = MetricsRegistry()
        optimizer = make_optimizer(metrics=registry)
        result = search(optimizer,
                        SearchSpec(deadline_seconds=3600.0,
                                   space=tiny_space(), method="surrogate"))
        assert registry.gauge("search.simulations").value == \
            result.stats.sim_requests
        assert registry.gauge("search.simulations_avoided").value == \
            result.stats.simulations_avoided
        assert registry.gauge("search.surrogate_rounds").value == \
            result.stats.surrogate_rounds

    def test_result_to_dict_round_trips_stats(self):
        optimizer = make_optimizer()
        result = search(optimizer, SearchSpec(deadline_seconds=3600.0,
                                              space=tiny_space()))
        document = result.to_dict()
        assert SearchStats.from_dict(document["stats"]) == result.stats


class TestCliFace:
    def test_optimize_surrogate_json_is_schema_stable(self):
        code, text = run_cli("optimize", "multiply", "--scale", "tiny",
                             "--deadline", "60", "--method", "surrogate",
                             "--json")
        assert code == 0
        payload = json.loads(text)
        # The legacy keys are all still present...
        for key in ("workload", "scale", "constraint", "cluster",
                    "tile_size", "estimated_seconds", "estimated_cost"):
            assert key in payload
        # ...and the spec/stats keys are additive.
        assert payload["method"] == "surrogate"
        assert payload["objective"] == "min-cost"
        stats = SearchStats.from_dict(payload["search_stats"])
        assert stats.sim_requests > 0

    def test_optimize_methods_agree(self):
        args = ("optimize", "multiply", "--scale", "tiny",
                "--deadline", "60", "--instances", "m1.small,m1.large",
                "--node-counts", "1,2,4", "--json")
        code, exact_text = run_cli(*args)
        assert code == 0
        code, surrogate_text = run_cli(*args, "--method", "surrogate")
        assert code == 0
        exact, surrogate = json.loads(exact_text), json.loads(surrogate_text)
        assert surrogate["cluster"] == exact["cluster"]
        assert surrogate["estimated_cost"] == exact["estimated_cost"]
        assert surrogate["search_stats"]["sim_requests"] <= \
            exact["search_stats"]["sim_requests"]

    def test_objective_must_match_constraint(self):
        code, __ = run_cli("optimize", "multiply", "--scale", "tiny",
                           "--budget", "5", "--objective", "min-cost")
        assert code == 1

    def test_explain_surrogate_renders_stats(self):
        code, text = run_cli("explain", "multiply", "--scale", "tiny",
                             "--search", "--method", "surrogate",
                             "--deadline", "60",
                             "--instances", "m1.small,m1.large",
                             "--node-counts", "1,2,4")
        assert code == 0
        assert "surrogate" in text
        assert "simulations avoided" in text

    def test_explain_surrogate_needs_constraint(self):
        code, __ = run_cli("explain", "multiply", "--scale", "tiny",
                           "--search", "--method", "surrogate")
        assert code == 1

    def test_explain_search_json_carries_stats(self):
        code, text = run_cli("explain", "multiply", "--scale", "tiny",
                             "--search", "--instances", "m1.large",
                             "--node-counts", "1,2", "--json")
        assert code == 0
        payload = json.loads(text)
        assert set(("workload", "scale", "explain")) <= set(payload)
        stats = SearchStats.from_dict(payload["search_stats"])
        assert stats.sim_requests > 0

    def test_chaos_search_flags_pick_the_cluster(self):
        code, text = run_cli("chaos", "multiply", "--scale", "tiny",
                             "--scenario", "node-crash",
                             "--deadline", "60", "--method", "surrogate",
                             "--instances", "m1.large,m1.small",
                             "--node-counts", "2,4", "--json")
        assert code == 0
        payload = json.loads(text)
        assert "search" in payload
        assert payload["search"]["method"] == "surrogate"
        # The chaos run used the optimizer's pick, not the --instance flag.
        assert payload["search"]["instance_type"] in payload["cluster"]

    def test_chaos_without_search_flags_unchanged(self):
        code, text = run_cli("chaos", "multiply", "--scale", "tiny",
                             "--scenario", "node-crash", "--nodes", "4",
                             "--json")
        assert code == 0
        payload = json.loads(text)
        assert "search" not in payload
        assert "4 x m1.large" in payload["cluster"]


class TestApiSurface:
    def test_facade_importable_from_repro_api(self):
        from repro.api import (  # noqa: F401
            ReliabilityModel,
            ReliablePlan,
            SearchResult,
            SearchSpec,
            SearchStats,
            SurrogateConfig,
            reliability_frontier,
            search,
        )
