"""Property-based tests for the write-ahead journal record codec.

The satellite lock from the durability PR: every journal record kind
round-trips bit-exactly through the length-prefix + CRC32 framing, and
*any* truncation or single-byte corruption of a record stream is
detected at the exact boundary of the last intact record — no silent
data loss, no misattributed records.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.durability import (
    ERROR_CORRUPT,
    ERROR_TORN,
    EVENT_KINDS,
    encode_record,
    scan_records,
)

#: JSON-safe field values a journal record can carry (floats kept finite
#: so json round-trips are exact enough to compare as ==).
FIELD_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**40, max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
    st.dictionaries(st.text(min_size=1, max_size=10),
                    st.integers(min_value=0, max_value=1000), max_size=4),
)

#: One journal record: a kind plus arbitrary JSON-able fields — the
#: superset of every shape the service writes.
RECORDS = st.builds(
    lambda kind, fields_: {"ev": kind, **fields_},
    st.sampled_from(EVENT_KINDS),
    st.dictionaries(
        st.text(st.characters(codec="ascii", categories=("Ll",)),
                min_size=1, max_size=12).filter(lambda k: k != "ev"),
        FIELD_VALUES, max_size=6),
)

RECORD_LISTS = st.lists(RECORDS, min_size=1, max_size=8)


@settings(max_examples=150, deadline=None)
@given(RECORD_LISTS)
def test_record_stream_round_trips(records):
    data = b"".join(encode_record(record) for record in records)
    scan = scan_records(data)
    assert scan.clean
    assert scan.valid_bytes == scan.total_bytes == len(data)
    # json round-trip equality: what was framed is what is read back.
    expected = [json.loads(json.dumps(record)) for record in records]
    assert scan.records == expected


@settings(max_examples=150, deadline=None)
@given(RECORD_LISTS, st.data())
def test_truncation_is_detected_at_the_exact_record_boundary(records, data):
    frames = [encode_record(record) for record in records]
    stream = b"".join(frames)
    cut = data.draw(st.integers(min_value=0, max_value=len(stream) - 1),
                    label="cut")
    scan = scan_records(stream[:cut])
    # The valid prefix is exactly the records whose frames fit the cut.
    boundary = 0
    intact = 0
    for frame in frames:
        if boundary + len(frame) <= cut:
            boundary += len(frame)
            intact += 1
        else:
            break
    assert scan.valid_bytes == boundary
    assert len(scan.records) == intact
    if cut == boundary:
        # Clean cut at a record boundary: nothing torn.
        assert scan.clean
    else:
        assert scan.error == ERROR_TORN
        assert scan.error_index == intact


@settings(max_examples=150, deadline=None)
@given(RECORD_LISTS, st.data())
def test_corruption_never_passes_a_record_through(records, data):
    frames = [encode_record(record) for record in records]
    stream = bytearray(b"".join(frames))
    position = data.draw(
        st.integers(min_value=0, max_value=len(stream) - 1),
        label="position")
    flip = data.draw(st.integers(min_value=1, max_value=255), label="flip")
    stream[position] ^= flip
    scan = scan_records(bytes(stream))
    # Locate the record whose frame contains the flipped byte.
    boundary = 0
    victim = 0
    for frame in frames:
        if boundary + len(frame) > position:
            break
        boundary += len(frame)
        victim += 1
    # A flip anywhere in the victim's frame — length, CRC, or payload —
    # fails its checksum (or overruns the stream), so the scan stops at
    # the victim's exact boundary with only the intact prefix decoded.
    expected_prefix = [json.loads(json.dumps(record))
                       for record in records[:victim]]
    assert scan.records == expected_prefix
    assert not scan.clean
    assert scan.error in (ERROR_TORN, ERROR_CORRUPT)
    assert scan.error_index == victim
    assert scan.valid_bytes == boundary
