"""Unit tests for the EXPLAIN utilities."""

from repro.cloud import ClusterSpec, get_instance_type
from repro.core.compiler import CompilerParams, compile_program
from repro.core.explain import (
    dag_to_dot,
    explain_job,
    explain_plan,
    explain_program,
)
from repro.core.physical import MatMulParams, PhysicalContext
from repro.core.plans import DeploymentPlan
from repro.core.program import Program
from repro.workloads import build_gnmf_program


def compiled_sample(params=None):
    program = Program("sample")
    a = program.declare_input("A", 64, 64)
    b = program.declare_input("B", 64, 64)
    program.assign("C", (a @ b) + a)
    program.mark_output("C")
    return compile_program(program, PhysicalContext(16), params)


class TestExplainProgram:
    def test_mentions_every_job(self):
        compiled = compiled_sample()
        text = explain_program(compiled)
        for job in compiled.dag:
            assert job.job_id in text

    def test_mentions_outputs(self):
        text = explain_program(compiled_sample())
        assert "output C" in text
        assert "64x64" in text

    def test_shows_dependencies(self):
        text = explain_program(compiled_sample())
        assert "<-" in text

    def test_job_line_has_resources(self):
        compiled = compiled_sample()
        job = compiled.dag.topological_order()[0]
        line = explain_job(job)
        assert "maps=" in line
        assert "read=" in line
        assert "compute=" in line

    def test_mapreduce_jobs_show_shuffle(self):
        from repro.baselines import compile_systemml_program
        program = build_gnmf_program(64, 64, 4, iterations=1)
        compiled = compile_systemml_program(program, PhysicalContext(16))
        text = explain_program(compiled)
        assert "shuffle=" in text
        assert "[MR ]" in text

    def test_human_units(self):
        compiled = compiled_sample(
            CompilerParams(matmul=MatMulParams(1, 1, 2)))
        text = explain_program(compiled)
        assert "KB" in text or "MB" in text or "B" in text


class TestExplainPlan:
    def test_fields_present(self):
        spec = ClusterSpec(get_instance_type("m1.large"), 4, 2)
        plan = DeploymentPlan(spec, CompilerParams(), 1800.0, 0.96,
                              tile_size=2048)
        text = explain_plan(plan)
        assert "m1.large" in text
        assert "$0.96" in text
        assert "2048" in text
        assert "0.50h" in text


class TestDot:
    def test_valid_digraph(self):
        compiled = compiled_sample()
        dot = dag_to_dot(compiled.dag)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for job in compiled.dag:
            assert f'"{job.job_id}"' in dot

    def test_edges_match_dependencies(self):
        compiled = compiled_sample()
        dot = dag_to_dot(compiled.dag)
        for job in compiled.dag:
            for dep in job.depends_on:
                assert f'"{dep}" -> "{job.job_id}";' in dot

    def test_colors_distinguish_job_kinds(self):
        from repro.baselines import compile_systemml_program
        program = build_gnmf_program(64, 64, 4, iterations=1)
        mr = compile_systemml_program(program, PhysicalContext(16))
        assert "lightsalmon" in dag_to_dot(mr.dag)
        assert "lightblue" in dag_to_dot(compiled_sample().dag)
