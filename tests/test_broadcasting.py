"""Unit and property tests for element-wise broadcasting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import run_program
from repro.core.expr import Var, broadcast_shapes, evaluate_with_numpy
from repro.core.physical import MatrixInfo, Operand, broadcast_position
from repro.core.program import Program
from repro.errors import ShapeError
from repro.matrix.tiled import TileGrid

RNG = np.random.default_rng(51)


class TestBroadcastShapes:
    def test_equal(self):
        assert broadcast_shapes((3, 4), (3, 4)) == (3, 4)

    def test_row_vector(self):
        assert broadcast_shapes((3, 4), (1, 4)) == (3, 4)
        assert broadcast_shapes((1, 4), (3, 4)) == (3, 4)

    def test_col_vector(self):
        assert broadcast_shapes((3, 4), (3, 1)) == (3, 4)

    def test_scalar(self):
        assert broadcast_shapes((3, 4), (1, 1)) == (3, 4)
        assert broadcast_shapes((1, 1), (1, 1)) == (1, 1)

    def test_cross_vectors(self):
        # (r,1) x (1,c) broadcasts to (r,c) — outer-style combination.
        assert broadcast_shapes((3, 1), (1, 4)) == (3, 4)

    def test_incompatible(self):
        with pytest.raises(ShapeError):
            broadcast_shapes((3, 4), (2, 4))
        with pytest.raises(ShapeError):
            broadcast_shapes((3, 4), (3, 5))


class TestBroadcastPosition:
    def grid_operand(self, rows, cols, tile=4):
        return Operand(MatrixInfo("A", TileGrid(rows, cols, tile)))

    def test_full_matrix_identity(self):
        operand = self.grid_operand(16, 16)
        assert broadcast_position(operand, 2, 3) == (2, 3)

    def test_column_vector_pins_col(self):
        operand = self.grid_operand(16, 1)
        assert broadcast_position(operand, 2, 3) == (2, 0)

    def test_row_vector_pins_row(self):
        operand = self.grid_operand(1, 16)
        assert broadcast_position(operand, 2, 3) == (0, 3)

    def test_scalar_pins_both(self):
        operand = self.grid_operand(1, 1)
        assert broadcast_position(operand, 2, 3) == (0, 0)


class TestExecution:
    def run_case(self, rows, cols, build, env, tile=8):
        program = Program("bc")
        for name, array in env.items():
            program.declare_input(name, array.shape[0], array.shape[1])
        program.assign("OUT", build(program))
        program.mark_output("OUT")
        return run_program(program, env, tile_size=tile).output("OUT")

    def test_subtract_row_vector(self):
        x = RNG.random((20, 12))
        mu = RNG.random((1, 12))
        out = self.run_case(20, 12,
                            lambda p: Var("X", (20, 12)) - Var("mu", (1, 12)),
                            {"X": x, "mu": mu})
        np.testing.assert_allclose(out, x - mu)

    def test_divide_column_vector(self):
        x = RNG.random((20, 12)) + 1.0
        s = RNG.random((20, 1)) + 1.0
        out = self.run_case(20, 12,
                            lambda p: Var("X", (20, 12)) / Var("s", (20, 1)),
                            {"X": x, "s": s})
        np.testing.assert_allclose(out, x / s)

    def test_outer_sum_of_vectors(self):
        a = RNG.random((20, 1))
        b = RNG.random((1, 12))
        out = self.run_case(20, 12,
                            lambda p: Var("a", (20, 1)) + Var("b", (1, 12)),
                            {"a": a, "b": b})
        np.testing.assert_allclose(out, a + b)

    def test_broadcast_inside_fused_chain(self):
        x = RNG.random((20, 12))
        mu = RNG.random((1, 12))
        expr = ((Var("X", (20, 12)) - Var("mu", (1, 12))) * 2.0).apply("abs")
        out = self.run_case(20, 12, lambda p: expr, {"X": x, "mu": mu})
        np.testing.assert_allclose(out, np.abs((x - mu) * 2.0))

    def test_standardization_pipeline(self):
        x = RNG.random((32, 16)) + 0.5
        program = Program("std")
        xv = program.declare_input("X", 32, 16)
        mean = program.assign("mean", xv.col_sums() * (1.0 / 32))
        centered = program.assign("centered", xv - mean)
        var = program.assign("var",
                             (centered * centered).col_sums() * (1.0 / 32))
        program.assign("Z", centered / var.apply("sqrt"))
        program.mark_output("Z")
        result = run_program(program, {"X": x}, tile_size=8)
        expected = (x - x.mean(0)) / x.std(0)
        np.testing.assert_allclose(result.output("Z"), expected, rtol=1e-8)

    def test_ragged_tiles_broadcast(self):
        x = RNG.random((21, 13))
        mu = RNG.random((1, 13))
        out = self.run_case(21, 13,
                            lambda p: Var("X", (21, 13)) - Var("mu", (1, 13)),
                            {"X": x, "mu": mu}, tile=5)
        np.testing.assert_allclose(out, x - mu)


@given(rows=st.integers(1, 20), cols=st.integers(1, 20),
       tile=st.integers(1, 8), seed=st.integers(0, 2**31),
       kind=st.sampled_from(["row", "col", "scalar"]))
@settings(max_examples=40, deadline=None)
def test_property_broadcast_matches_numpy(rows, cols, tile, seed, kind):
    rng = np.random.default_rng(seed)
    x = rng.random((rows, cols))
    vec_shape = {"row": (1, cols), "col": (rows, 1),
                 "scalar": (1, 1)}[kind]
    vec = rng.random(vec_shape) + 0.5
    program = Program("prop")
    program.declare_input("X", rows, cols)
    program.declare_input("v", *vec_shape)
    expr = (Var("X", (rows, cols)) + Var("v", vec_shape)) \
        * Var("v", vec_shape)
    program.assign("OUT", expr)
    program.mark_output("OUT")
    result = run_program(program, {"X": x, "v": vec}, tile_size=tile,
                         max_workers=1)
    np.testing.assert_allclose(result.output("OUT"), (x + vec) * vec,
                               atol=1e-9)
