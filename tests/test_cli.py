"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_workload, main
from repro.errors import ReproError
from repro.observability import validate_chrome_trace


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCatalog:
    def test_lists_all_types(self):
        code, text = run_cli("catalog")
        assert code == 0
        for name in ("m1.small", "c1.xlarge", "m2.4xlarge"):
            assert name in text


class TestExplain:
    def test_text_output(self):
        code, text = run_cli("explain", "multiply", "--scale", "small")
        assert code == 0
        assert "program" in text
        assert "maps=" in text

    def test_dot_output(self):
        code, text = run_cli("explain", "gnmf", "--scale", "small", "--dot")
        assert code == 0
        assert text.startswith("digraph")

    def test_unknown_workload_fails_cleanly(self):
        code, __ = run_cli("explain", "quicksort")
        assert code == 1


class TestSimulate:
    def test_reports_total(self):
        code, text = run_cli("simulate", "multiply", "--scale", "small",
                             "--nodes", "4")
        assert code == 0
        assert "total" in text

    def test_instance_selection(self):
        code, text = run_cli("simulate", "multiply", "--scale", "small",
                             "--instance", "c1.xlarge", "--nodes", "2",
                             "--slots", "4")
        assert code == 0
        assert "c1.xlarge" in text


class TestOptimize:
    def test_deadline(self):
        code, text = run_cli("optimize", "multiply", "--scale", "small",
                             "--deadline", "60")
        assert code == 0
        assert "deploy on" in text
        assert "estimated cost" in text

    def test_budget(self):
        code, text = run_cli("optimize", "multiply", "--scale", "small",
                             "--budget", "5")
        assert code == 0
        assert "fastest plan" in text

    def test_constraint_required(self):
        with pytest.raises(SystemExit):
            run_cli("optimize", "multiply")


class TestTrace:
    def test_chrome_output_is_valid(self):
        code, text = run_cli("trace", "multiply", "--scale", "tiny")
        assert code == 0
        assert validate_chrome_trace(text) > 0
        assert json.loads(text)["displayTimeUnit"] == "ms"

    def test_csv_output(self):
        code, text = run_cli("trace", "multiply", "--scale", "tiny",
                             "--format", "csv")
        assert code == 0
        lines = text.strip().splitlines()
        assert lines[0].startswith("source,job_id,task_id,phase,slot")
        assert len(lines) > 1

    def test_summary_output(self):
        code, text = run_cli("trace", "multiply", "--scale", "tiny",
                             "--format", "summary")
        assert code == 0
        assert "trace [simulated]" in text
        assert "makespan" in text

    def test_diff_reports_coverage(self):
        code, text = run_cli("trace", "multiply", "--scale", "tiny",
                             "--diff", "--format", "summary")
        assert code == 0
        assert "trace [actual]" in text
        assert "coverage 100%" in text

    def test_out_writes_file(self, tmp_path):
        target = tmp_path / "trace.json"
        code, text = run_cli("trace", "multiply", "--scale", "tiny",
                             "--out", str(target))
        assert code == 0
        assert validate_chrome_trace(
            target.read_text(encoding="utf-8")) > 0


class TestProfile:
    def test_text_profile_reports_lanes_and_tasks(self):
        code, text = run_cli("profile", "multiply", "--scale", "tiny",
                             "--workers", "2")
        assert code == 0
        assert "backend=thread" in text
        assert "wall time (execution only):" in text
        assert "per-lane utilization" in text
        assert "top task groups by cumulative time" in text
        # Thread backend: no process-pool kernel spans in the profile.
        assert "procworker:" not in text

    def test_json_profile_document(self):
        code, text = run_cli("profile", "gnmf", "--scale", "tiny",
                             "--workers", "2", "--json")
        assert code == 0
        document = json.loads(text)
        assert document["workload"] == "gnmf"
        assert document["backend"] == "thread"
        assert document["workers"] == 2
        assert document["wall_seconds"] > 0
        assert document["tasks"], "expected grouped task rows"
        assert document["lanes"], "expected per-lane utilization rows"
        for lane in document["lanes"]:
            assert lane["busy_seconds"] >= 0

    def test_top_limits_rows(self):
        code, text = run_cli("profile", "gnmf", "--scale", "tiny",
                             "--top", "1")
        assert code == 0
        section = text.split("top task groups by cumulative time:")[1]
        rows = [line for line in section.splitlines()
                if line.startswith("  j")]
        assert len(rows) == 1

    def test_out_writes_file(self, tmp_path):
        target = tmp_path / "profile.json"
        code, text = run_cli("profile", "multiply", "--scale", "tiny",
                             "--json", "--out", str(target))
        assert code == 0
        assert "wrote profile to" in text
        assert json.loads(target.read_text(encoding="utf-8"))["lanes"]


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        assert text.startswith("repro ")
        assert repro.__version__ in text


class TestMetricsCommand:
    def test_dashboard_output(self):
        code, text = run_cli("metrics", "multiply", "--scale", "tiny",
                             "--nodes", "2")
        assert code == 0
        assert "counters & gauges" in text
        assert "sim.tasks_completed" in text
        assert "time series" in text

    def test_prometheus_output(self):
        code, text = run_cli("metrics", "multiply", "--scale", "tiny",
                             "--format", "prom")
        assert code == 0
        assert "# TYPE sim_tasks_completed_total counter" in text

    def test_json_output_includes_context(self):
        code, text = run_cli("metrics", "multiply", "--scale", "tiny",
                             "--format", "json")
        assert code == 0
        document = json.loads(text)
        assert document["workload"] == "multiply"
        assert document["makespan_seconds"] > 0
        assert document["counters"]

    def test_csv_output(self):
        code, text = run_cli("metrics", "multiply", "--scale", "tiny",
                             "--format", "csv")
        assert code == 0
        assert text.splitlines()[0] == "kind,name,labels,field,t,value"

    def test_budget_reports_cost_meter(self):
        code, text = run_cli("metrics", "multiply", "--scale", "tiny",
                             "--budget", "0.01", "--format", "json")
        assert code == 0
        assert "cost meter" in text
        assert "OVER" in text

    def test_out_writes_file(self, tmp_path):
        target = tmp_path / "metrics.json"
        code, text = run_cli("metrics", "multiply", "--scale", "tiny",
                             "--format", "json", "--out", str(target))
        assert code == 0
        assert json.loads(target.read_text(encoding="utf-8"))["counters"]


class TestExplainSearchFlag:
    def test_search_prints_candidates(self):
        code, text = run_cli("explain", "multiply", "--scale", "tiny",
                             "--search", "--instances", "m1.large",
                             "--node-counts", "2", "--slot-options", "2")
        assert code == 0
        assert "candidates" in text
        assert "pareto frontier" in text

    def test_bad_list_value_fails_cleanly(self):
        code, __ = run_cli("explain", "multiply", "--scale", "tiny",
                           "--search", "--node-counts", "two")
        assert code == 1


class TestWorkloadRegistry:
    @pytest.mark.parametrize("name", ["multiply", "gnmf", "rsvd",
                                      "regression", "pagerank", "logistic",
                                      "pca", "kmeans"])
    def test_all_workloads_build(self, name):
        program, tile = build_workload(name, "small")
        assert program.statements
        assert tile > 0

    def test_unknown_scale(self):
        with pytest.raises(ReproError):
            build_workload("multiply", "galactic")

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            build_workload("quicksort", "small")


class TestServeDurability:
    def build_script(self, tmp_path, jobs=2):
        path = tmp_path / "script.json"
        for index in range(jobs):
            code, __ = run_cli(
                "submit", str(path), "multiply", "--scale", "tiny",
                "--tenant", "acme", "--submit-at", str(index * 30.0),
                "--nodes", "2")
            assert code == 0
        return path

    def test_serve_with_journal_reports_stats(self, tmp_path):
        script = self.build_script(tmp_path)
        journal = tmp_path / "state"
        code, text = run_cli("serve", str(script), "--journal",
                             str(journal), "--json")
        assert code == 0
        document = json.loads(text)
        assert document["journal"]["records"] > 0
        assert (journal / "journal.wal").exists()
        assert all(job["state"] == "completed"
                   for job in document["jobs"])

    def test_serve_refuses_existing_state_without_recover(
            self, tmp_path, capsys):
        script = self.build_script(tmp_path)
        journal = tmp_path / "state"
        code, __ = run_cli("serve", str(script), "--journal", str(journal))
        assert code == 0
        code, __ = run_cli("serve", str(script), "--journal",
                           str(journal))
        assert code == 1
        assert "--recover" in capsys.readouterr().err

    def test_serve_recover_picks_up_new_jobs(self, tmp_path):
        script = self.build_script(tmp_path)
        journal = tmp_path / "state"
        code, __ = run_cli("serve", str(script), "--journal", str(journal))
        assert code == 0
        # A job appended after the journaled run is not yet durable.
        code, text = run_cli(
            "submit", str(script), "multiply", "--scale", "tiny",
            "--tenant", "acme", "--submit-at", "90", "--journal",
            str(journal), "--json")
        assert code == 0
        assert json.loads(text)["journal_pending_jobs"] == 1
        code, text = run_cli("serve", str(script), "--journal",
                             str(journal), "--recover", "--json")
        assert code == 0
        document = json.loads(text)
        assert len(document["jobs"]) == 3
        assert document["recovery"]["decisions_repriced"] == 0
        assert document["recovery"]["decisions_replayed"] == 2

    def test_serve_recover_text_describes_replay(self, tmp_path):
        script = self.build_script(tmp_path)
        journal = tmp_path / "state"
        run_cli("serve", str(script), "--journal", str(journal))
        code, text = run_cli("serve", str(script), "--journal",
                             str(journal), "--recover")
        assert code == 0
        assert "recovered from journal" in text
        assert "decisions replayed (0 re-priced)" in text

    def test_chaos_service_kill_round_trip(self, tmp_path):
        script = self.build_script(tmp_path)
        code, text = run_cli("chaos", str(script), "--scenario",
                             "service-kill", "--chaos-seed", "5", "--json")
        assert code == 0
        document = json.loads(text)
        assert document["scenario"] == "service-kill"
        assert document["kill_after"] == 5
        assert document["killed"] is True
        assert document["ok"] is True
        assert document["lost_jobs"] == 0
        assert document["double_billed_jobs"] == 0
        assert document["bills_match"] and document["schedules_match"]


class TestChaos:
    def test_node_crash_reports_damage(self):
        code, text = run_cli("chaos", "gnmf", "--scale", "tiny",
                             "--scenario", "node-crash", "--seed", "7")
        assert code == 0
        assert "chaos scenario 'node-crash'" in text
        assert "clean baseline" in text
        assert "nodes lost" in text

    def test_revocation_wave_writes_artifacts(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code, text = run_cli(
            "chaos", "gnmf", "--scale", "tiny",
            "--scenario", "revocation-wave", "--seed", "7",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--advise-checkpoint")
        assert code == 0
        assert "checkpoint" in text
        assert validate_chrome_trace(trace_path.read_text()) > 0
        document = json.loads(metrics_path.read_text())
        counters = {c["name"]: c["value"] for c in document["counters"]}
        assert counters.get("sim.nodes_lost", 0) >= 1
        assert document["scenario"] == "revocation-wave"
        assert document["completed"] is True

    def test_restart_recovery_costs_more(self):
        code, resume_text = run_cli("chaos", "gnmf", "--scale", "tiny",
                                    "--scenario", "node-crash", "--seed", "7")
        assert code == 0
        code, restart_text = run_cli("chaos", "gnmf", "--scale", "tiny",
                                     "--scenario", "node-crash", "--seed",
                                     "7", "--recovery", "restart")
        assert code == 0
        assert "restart" in restart_text

    def test_quorum_loss_exits_nonzero(self):
        code, text = run_cli("chaos", "gnmf", "--scale", "tiny", "--nodes",
                             "2", "--scenario", "node-crash",
                             "--min-live-nodes", "2")
        assert code == 1
        assert "ABORTED" in text

    def test_trace_scenario_injection(self):
        code, text = run_cli("trace", "gnmf", "--scale", "tiny",
                             "--scenario", "revocation-wave",
                             "--chaos-seed", "7", "--format", "summary")
        assert code == 0

    def test_trace_diff_rejects_scenario(self):
        code, __ = run_cli("trace", "multiply", "--scale", "tiny", "--diff",
                           "--scenario", "node-crash")
        assert code == 1

    def test_metrics_scenario_counts_losses(self):
        code, text = run_cli("metrics", "gnmf", "--scale", "tiny",
                             "--scenario", "revocation-wave",
                             "--chaos-seed", "7", "--format", "prom")
        assert code == 0
        assert "sim_nodes_lost_total" in text
        assert "sim_revocations_total" in text
