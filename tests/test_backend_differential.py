"""Cross-backend differential harness: thread vs. process execution.

The process backend's contract is *indistinguishability*: offloading tile
kernels to a worker pool may change wall-clock time and nothing else.  This
harness runs the same workloads on both backends and asserts

* **bit-identical tile outputs** — every output tile equal via
  ``np.array_equal`` (no tolerance), with matching sparse/dense storage;
* **identical trace-event multisets** modulo timing — same (job, task,
  phase, attempt, status, bytes, label) tuples, ignoring start/end/slot;
* **identical retry and fault semantics** — scripted faults fail and
  retry the same attempts, checkpoint/crash/resume converges to the same
  state.

Everything here spawns real worker processes, so the whole module rides
the ``process_backend`` gate (see tests/conftest.py) and runs in CI's
dedicated differential job rather than in tier 1.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.checkpoint import Checkpointer, IterativeRunner
from repro.core.compiler import CompilerParams
from repro.core.executor import CumulonExecutor
from repro.core.physical import MatMulParams
from repro.core.program import Program
from repro.errors import ExecutionError
from repro.hadoop.kernels import BlockPlan, pack_plan
from repro.hadoop.local import FaultInjector, RetryPolicy, ScriptedFaults
from repro.hadoop.procpool import (
    KERNEL_JOB_ID,
    KernelPool,
    ProcessDispatcher,
)
from repro.matrix.tiled import DenseBacking
from repro.observability import (
    SOURCE_ACTUAL,
    InMemoryRecorder,
    MetricsRegistry,
    profile_trace,
)
from repro.observability.profiling import WORKER_LANE_PREFIX
from repro.workloads.chains import build_chain_program
from repro.workloads.gnmf import build_gnmf_program

pytestmark = pytest.mark.process_backend

BACKENDS = ("thread", "process")
RNG_SEED = 1302  # any fixed seed; both backends must agree on *any* input


def run_on(backend, program, inputs, tile_size=16, max_workers=4,
           compiler_params=None, retry_policy=None, fault_injector=None):
    """One instrumented run; returns (ExecutionResult, trace)."""
    recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
    with CumulonExecutor(tile_size=tile_size, max_workers=max_workers,
                         compiler_params=compiler_params,
                         recorder=recorder, backend=backend,
                         retry_policy=retry_policy,
                         fault_injector=fault_injector) as executor:
        result = executor.run(program, inputs)
    return result, recorder.trace()


def timing_free_events(trace):
    """The trace as a multiset with clocks and slot assignment erased.

    Slot choice and start/end times are scheduling noise; everything else
    — which tasks ran, in which phase, how many attempts, with what status
    and declared IO — must match across backends.
    """
    return sorted((e.job_id, e.task_id, e.phase, e.attempt, e.status,
                   e.bytes_read, e.bytes_written, e.label)
                  for e in trace.task_events())


def assert_tiles_bit_identical(left, right, context):
    """Every tile equal bit for bit, with matching storage format."""
    assert left.grid == right.grid, context
    for row, col in left.grid.positions():
        lt = left.get_tile(row, col)
        rt = right.get_tile(row, col)
        assert lt.is_sparse == rt.is_sparse, \
            f"{context}: tile ({row},{col}) storage format differs"
        ld = lt.data.toarray() if lt.is_sparse else np.asarray(lt.data)
        rd = rt.data.toarray() if rt.is_sparse else np.asarray(rt.data)
        assert np.array_equal(ld, rd), \
            f"{context}: tile ({row},{col}) differs"


def make_inputs(program, rng, positive=False):
    raw = {name: rng.random(var.shape) for name, var in
           program.inputs.items()}
    if positive:
        raw = {name: value * 0.9 + 0.1 for name, value in raw.items()}
    return raw


def assert_backends_agree(program, inputs, **kwargs):
    results = {}
    traces = {}
    for backend in BACKENDS:
        results[backend], traces[backend] = run_on(backend, program,
                                                   inputs, **kwargs)
    thread, process = (results[b] for b in BACKENDS)
    for name in thread.outputs:
        assert np.array_equal(thread.outputs[name],
                              process.outputs[name]), name
        assert_tiles_bit_identical(thread.tiled_outputs[name],
                                   process.tiled_outputs[name],
                                   context=f"output {name}")
    assert timing_free_events(traces["thread"]) \
        == timing_free_events(traces["process"])
    return results, traces


class TestWorkloadEquivalence:
    def test_multiply_chain(self):
        rng = np.random.default_rng(RNG_SEED)
        program = build_chain_program(dimension=96, length=4)
        assert_backends_agree(program, make_inputs(program, rng),
                              tile_size=32)

    def test_multiply_chain_with_deep_splits(self):
        rng = np.random.default_rng(RNG_SEED + 1)
        program = build_chain_program(dimension=64, length=3)
        params = CompilerParams(matmul=MatMulParams(2, 2, 4))
        assert_backends_agree(program, make_inputs(program, rng),
                              tile_size=8, compiler_params=params)

    def test_gnmf(self):
        rng = np.random.default_rng(RNG_SEED + 2)
        program = build_gnmf_program(rows=48, cols=40, rank=4, iterations=3)
        assert_backends_agree(program,
                              make_inputs(program, rng, positive=True),
                              tile_size=16)

    def test_transposes_and_elementwise(self):
        program = Program("mixed")
        a = program.declare_input("A", 40, 24)
        b = program.declare_input("B", 40, 24)
        d = program.assign("D", (a.T @ b) * 0.25 + (b.T @ a))
        program.assign("E", (d @ d.T).apply("sqrt"))
        program.mark_output("D", "E")
        rng = np.random.default_rng(RNG_SEED + 3)
        assert_backends_agree(program,
                              make_inputs(program, rng, positive=True),
                              tile_size=8)

    def test_sparse_tiles_fall_back_identically(self):
        # Mostly-zero inputs sparsify below the storage threshold; the
        # process backend must agree even where it declines to offload.
        program = Program("sparse")
        a = program.declare_input("A", 64, 64)
        b = program.declare_input("B", 64, 64)
        program.assign("C", a @ b)
        program.mark_output("C")
        rng = np.random.default_rng(RNG_SEED + 4)
        dense_a = rng.random((64, 64))
        sparse_b = np.zeros((64, 64))
        sparse_b[rng.integers(0, 64, 40), rng.integers(0, 64, 40)] = \
            rng.random(40)
        assert_backends_agree(program, {"A": dense_a, "B": sparse_b},
                              tile_size=16)


class TestFaultEquivalence:
    def pick_task(self, program, inputs):
        """A deterministic mult-task id from a reference thread run."""
        __, trace = run_on("thread", program, inputs, tile_size=32)
        task_ids = sorted({e.task_id for e in trace.task_events()
                           if "mult" in e.task_id or "mul" in e.task_id}
                          or {e.task_id for e in trace.task_events()})
        return task_ids[0]

    def test_scripted_fault_retries_identically(self):
        rng = np.random.default_rng(RNG_SEED + 5)
        program = build_chain_program(dimension=96, length=3)
        inputs = make_inputs(program, rng)
        victim = self.pick_task(program, inputs)
        __, traces = assert_backends_agree(
            program, inputs, tile_size=32,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.0),
            fault_injector=ScriptedFaults({(victim, 0)}))
        # The fault actually fired: attempt 0 failed, attempt 1 succeeded,
        # on both backends.
        for backend in BACKENDS:
            attempts = {(e.attempt, e.status)
                        for e in traces[backend].task_events()
                        if e.task_id == victim}
            assert (1, "success") in attempts
            assert any(attempt == 0 and status != "success"
                       for attempt, status in attempts)

    def test_exhausted_retries_fail_identically(self):
        rng = np.random.default_rng(RNG_SEED + 6)
        program = build_chain_program(dimension=64, length=3)
        inputs = make_inputs(program, rng)
        victim = self.pick_task(program, inputs)
        faults = {(victim, 0), (victim, 1)}
        for backend in BACKENDS:
            with pytest.raises(ExecutionError, match="injected fault"):
                run_on(backend, program, inputs, tile_size=32,
                       retry_policy=RetryPolicy(max_attempts=2,
                                                backoff_seconds=0.0),
                       fault_injector=ScriptedFaults(set(faults)))


class TestCheckpointEquivalence:
    @staticmethod
    def make_runner(backend, checkpointer):
        def factory():
            program = Program("step")
            x = program.declare_input("X", 32, 32)
            program.assign("X", (x @ x) * 0.125 + x)
            program.mark_output("X")
            return program

        return IterativeRunner(factory, static_inputs={},
                               state_variables=["X"],
                               tile_size=8, checkpointer=checkpointer,
                               backend=backend)

    def run_crash_resume(self, backend):
        rng = np.random.default_rng(RNG_SEED + 7)
        initial = {"X": rng.random((32, 32))}
        runner = self.make_runner(backend, Checkpointer(DenseBacking()))
        with pytest.raises(ExecutionError, match="simulated crash"):
            runner.run(initial, iterations=4, crash_after=2)
        return runner.resume(iterations=2)

    def test_crash_resume_converges_identically(self):
        results = {backend: self.run_crash_resume(backend)
                   for backend in BACKENDS}
        assert results["thread"].iteration == results["process"].iteration
        assert np.array_equal(results["thread"].state["X"],
                              results["process"].state["X"])


# -- observability equivalence -------------------------------------------------

def run_instrumented(backend, program, inputs, **kwargs):
    """Like :func:`run_on` but with live metrics; returns the registry too."""
    recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
    registry = MetricsRegistry()
    with CumulonExecutor(tile_size=kwargs.pop("tile_size", 16),
                         max_workers=kwargs.pop("max_workers", 4),
                         recorder=recorder, metrics=registry,
                         backend=backend, **kwargs) as executor:
        result = executor.run(program, inputs)
    return result, recorder.trace(), registry


def metric_total(registry, name):
    """Sum of a metric's value across its label combinations."""
    return sum(metric.value for metric in registry.metrics()
               if metric.name == name)


class TestTraceEquivalence:
    """Worker-lane spans must not break thread/process comparability."""

    def make_runs(self):
        rng = np.random.default_rng(RNG_SEED + 20)
        program = build_gnmf_program(rows=48, cols=40, rank=4, iterations=2)
        inputs = make_inputs(program, rng, positive=True)
        return {backend: run_instrumented(backend, program, inputs)
                for backend in BACKENDS}

    def test_kernel_spans_only_on_process_worker_lanes(self):
        runs = self.make_runs()
        __, thread_trace, __ = runs["thread"]
        __, process_trace, process_registry = runs["process"]
        # Task-level multisets still agree even though the process trace
        # carries extra kernel-span events: kernel events never enter
        # task_events(), so comparability is preserved by construction.
        assert timing_free_events(thread_trace) \
            == timing_free_events(process_trace)
        assert thread_trace.kernel_events() == []
        kernels = process_trace.kernel_events()
        assert kernels, "process trace must carry worker kernel spans"
        lanes = {event.slot for event in kernels}
        assert lanes and all(lane.startswith(WORKER_LANE_PREFIX)
                             for lane in lanes)
        assert lanes <= {f"{WORKER_LANE_PREFIX}{i}" for i in range(4)}
        for event in kernels:
            assert event.job_id == KERNEL_JOB_ID
            assert event.end >= event.start
            assert event.label in {"block", "packed", "grid",
                                   "shm-attach", "shm-grow"}
        # Pool health metrics populate only when the pool actually runs.
        assert metric_total(process_registry, "procpool.dispatches") > 0
        assert metric_total(process_registry, "procpool.request_bytes") > 0
        assert metric_total(runs["thread"][2], "procpool.dispatches") == 0

    def test_worker_spans_cover_execution_wall_time(self):
        # Acceptance: on a compute-dominant GNMF run the summed per-worker
        # kernel-span time accounts for >=90% of the execution-only wall
        # time (it can exceed 100% because worker lanes run in parallel).
        # Best-of-3 so a loaded CI machine cannot flake the gate; a
        # systematic accounting bug (missing spans, wrong clock mapping)
        # fails every attempt.
        coverages = []
        for attempt in range(3):
            program = build_gnmf_program(rows=2048, cols=1024, rank=128,
                                         iterations=2)
            rng = np.random.default_rng(RNG_SEED + attempt)
            inputs = make_inputs(program, rng, positive=True)
            result, trace, registry = run_instrumented(
                "process", program, inputs, tile_size=512, max_workers=4)
            profile = profile_trace(
                trace, wall_seconds=result.report.total_seconds,
                registry=registry)
            lanes = [lane for lane in profile.lanes if lane.is_pool_worker]
            assert lanes, "expected per-worker lanes in the profile"
            coverages.append(profile.kernel_coverage)
            if profile.kernel_coverage >= 0.9:
                break
        assert max(coverages) >= 0.9, coverages


class TestWorkerDeath:
    """Dead workers: attributable errors, counted respawns, surviving lanes."""

    @staticmethod
    def make_plan_and_payloads(rng):
        plan = BlockPlan(transposed=(False, False),
                         outputs=(((0, 1),),),
                         out_shapes=((16, 16),))
        return plan, [rng.random((16, 16)), rng.random((16, 16))]

    def test_mid_plan_death_is_attributable_and_counted(self):
        registry = MetricsRegistry()
        pool = KernelPool(1, metrics=registry)
        try:
            dispatcher = ProcessDispatcher(pool, metrics=registry)
            rng = np.random.default_rng(RNG_SEED + 30)
            plan, payloads = self.make_plan_and_payloads(rng)
            dispatcher.run_plan(payloads, plan)  # warm buffers + worker
            handle = pool.acquire()
            pid = handle.pid
            os.kill(pid, signal.SIGKILL)
            handle.process.join(timeout=5)
            packed = pack_plan(plan, payloads[0].shape)
            with pytest.raises(ExecutionError) as excinfo:
                dispatcher._round_trip(handle, None, packed, 0, 0)
            message = str(excinfo.value)
            assert "kernel worker 0" in message
            assert str(pid) in message
            assert "died mid-plan" in message
            assert "last plan kind: packed" in message
            assert metric_total(registry, "procpool.worker_deaths") == 1
            pool.release(handle)
            # The pool heals on the next acquire, and counts the respawn.
            results = dispatcher.run_plan(payloads, plan)
            assert metric_total(registry, "procpool.respawns") == 1
            expected = payloads[0] @ payloads[1]
            assert np.array_equal(results[0][0], expected)
        finally:
            pool.close()

    def test_lanes_survive_mid_job_worker_death(self):
        # A fault injector SIGKILLs the pool's worker between two task
        # attempts *inside* one run: the next dispatch respawns it
        # transparently, the job completes with bit-identical outputs, and
        # worker lane 0 keeps accumulating spans across the death (lane
        # identity is the pool index, not the pid).

        class KillPoolWorker(FaultInjector):
            def __init__(self, at_call, recorder):
                self.at_call = at_call
                self.recorder = recorder
                self.pool = None
                self.calls = 0
                self.killed_at = None

            def before_attempt(self, task_id, attempt):
                self.calls += 1
                if (self.pool is None or self.killed_at is not None
                        or self.calls != self.at_call):
                    return
                handle = self.pool._handles[0]
                os.kill(handle.pid, signal.SIGKILL)
                handle.process.join(timeout=5)
                self.killed_at = self.recorder.now()

        rng = np.random.default_rng(RNG_SEED + 31)
        program = build_gnmf_program(rows=48, cols=40, rank=4, iterations=3)
        inputs = make_inputs(program, rng, positive=True)
        recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
        registry = MetricsRegistry()
        injector = KillPoolWorker(at_call=4, recorder=recorder)
        with CumulonExecutor(tile_size=16, max_workers=1,
                             recorder=recorder, metrics=registry,
                             backend="process",
                             fault_injector=injector) as executor:
            injector.pool = executor._local_executor().kernel_pool()
            result = executor.run(program, inputs)
        assert injector.killed_at is not None, "the kill never fired"
        assert metric_total(registry, "procpool.respawns") >= 1
        lane0 = [event for event in recorder.trace().kernel_events()
                 if event.slot == f"{WORKER_LANE_PREFIX}0"]
        assert any(e.end <= injector.killed_at for e in lane0), \
            "expected spans recorded before the worker died"
        assert any(e.start >= injector.killed_at for e in lane0), \
            "expected lane 0 to keep recording after the respawn"
        # And the run the death interrupted still matches the thread
        # backend bit for bit.
        thread_result, __ = run_on("thread", program, inputs, tile_size=16)
        for name in thread_result.outputs:
            assert np.array_equal(thread_result.outputs[name],
                                  result.outputs[name]), name
