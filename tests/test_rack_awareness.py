"""Unit tests for rack-aware replica placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import ClusterSpec, get_instance_type, provision
from repro.errors import ValidationError
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.placement import DefaultPlacement


def racked_namenode(racks: int, nodes_per_rack: int, replication: int = 3):
    namenode = NameNode(replication=replication)
    for rack in range(racks):
        for node in range(nodes_per_rack):
            namenode.register_datanode(
                DataNode(f"r{rack}n{node}", 10**9, rack=f"rack-{rack}")
            )
    return namenode


def rack_of(namenode, node_name):
    return next(node.rack for node in namenode.datanodes()
                if node.name == node_name)


class TestRackPlacement:
    def test_replicas_span_two_racks(self):
        namenode = racked_namenode(racks=3, nodes_per_rack=3)
        namenode.create("/a", 100, writer="r0n0")
        for info in namenode.block_infos("/a"):
            racks = {rack_of(namenode, name) for name in info.replicas}
            assert len(racks) >= 2

    def test_first_replica_writer_local(self):
        namenode = racked_namenode(racks=2, nodes_per_rack=2)
        namenode.create("/a", 100, writer="r1n1")
        assert "r1n1" in namenode.replica_nodes("/a")

    def test_third_replica_shares_second_rack(self):
        policy = DefaultPlacement()
        nodes = [DataNode(f"r{r}n{n}", 10**9, rack=f"rack-{r}")
                 for r in range(3) for n in range(3)]
        chosen = policy.choose(nodes, 100, 3, writer="r0n0")
        assert chosen[0].rack == "rack-0"
        assert chosen[1].rack != "rack-0"
        assert chosen[2].rack == chosen[1].rack
        assert chosen[2].name != chosen[1].name

    def test_single_rack_fallback(self):
        namenode = racked_namenode(racks=1, nodes_per_rack=4)
        namenode.create("/a", 100, writer="r0n0")
        for info in namenode.block_infos("/a"):
            assert info.replication == 3

    def test_two_nodes_one_per_rack(self):
        namenode = racked_namenode(racks=2, nodes_per_rack=1, replication=2)
        namenode.create("/a", 100)
        for info in namenode.block_infos("/a"):
            racks = {rack_of(namenode, name) for name in info.replicas}
            assert len(racks) == 2

    def test_replication_one_single_replica(self):
        namenode = racked_namenode(racks=2, nodes_per_rack=2, replication=1)
        namenode.create("/a", 100, writer="r0n0")
        for info in namenode.block_infos("/a"):
            assert info.replication == 1
            assert "r0n0" in info.replicas


class TestProvisionRacks:
    def test_racks_assigned_contiguously(self):
        spec = ClusterSpec(get_instance_type("m1.large"), 6, 2)
        cluster = provision(spec, nodes_per_rack=2)
        racks = [node.rack for node in cluster.namenode.datanodes()]
        assert racks == ["rack-0", "rack-0", "rack-1", "rack-1",
                         "rack-2", "rack-2"]

    def test_default_single_rack(self):
        spec = ClusterSpec(get_instance_type("m1.large"), 3, 2)
        cluster = provision(spec)
        assert {node.rack for node in cluster.namenode.datanodes()} \
            == {"default"}

    def test_invalid_nodes_per_rack(self):
        spec = ClusterSpec(get_instance_type("m1.large"), 3, 2)
        with pytest.raises(ValidationError):
            provision(spec, nodes_per_rack=0)


@given(racks=st.integers(2, 4), nodes_per_rack=st.integers(1, 4),
       files=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_property_rack_spread_invariant(racks, nodes_per_rack, files):
    """With >= 2 racks and replication >= 2, every block spans >= 2 racks."""
    namenode = racked_namenode(racks, nodes_per_rack, replication=3)
    names = [node.name for node in namenode.datanodes()]
    for index in range(files):
        namenode.create(f"/f{index}", 100 + index,
                        writer=names[index % len(names)])
    for index in range(files):
        for info in namenode.block_infos(f"/f{index}"):
            block_racks = {rack_of(namenode, name)
                           for name in info.replicas}
            if info.replication >= 2:
                assert len(block_racks) >= 2
