"""Property tests: the TileStore fast path is invisible except for speed.

Two invariants, fuzzed over random tiles and every registered codec:

1. **Round-trip equality** — a fast-path read (resident tile) and a codec
   read (decode the at-rest blob) return equal tiles.  Exact equality for
   lossless codecs; for lossy codecs the two paths must *still* agree
   bit for bit, because the store pins the decoded tile, never the
   original.
2. **Accounting invariance** — ``tile_bytes``/``matrix_bytes`` and the
   namenode's usage numbers are identical whether the fast path is on,
   off, or backed by a shared-memory arena: the cost model must not be
   able to observe the cache.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.tilestore import TileStore
from repro.matrix.arena import TileArena
from repro.matrix.compression import available_codecs
from repro.matrix.tile import Tile, TileId

CODEC_NAMES = sorted(available_codecs())


def make_store(codec, cache=True, arena=None):
    namenode = NameNode(replication=2)
    for index in range(3):
        namenode.register_datanode(DataNode(f"node-{index}", 10**9))
    return TileStore(namenode, codec=codec, cache=cache, arena=arena)


@st.composite
def tiles(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=12))
    density = draw(st.sampled_from([0.0, 0.1, 0.5, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((rows, cols)) * 4.0
    if density < 1.0:
        dense *= rng.random((rows, cols)) < density
    tile_id = TileId("P", draw(st.integers(0, 3)), draw(st.integers(0, 3)))
    return Tile(tile_id, dense).compacted()


def as_dense(tile):
    return tile.data.toarray() if tile.is_sparse else np.asarray(tile.data)


@settings(max_examples=60, deadline=None)
@given(tile=tiles(), codec=st.sampled_from(CODEC_NAMES))
def test_fastpath_read_equals_codec_read(tile, codec):
    store = make_store(codec)
    store.put(tile)
    fast = store.get(tile.tile_id)
    slow = store.read_through_codec(tile.tile_id)
    assert fast.is_sparse == slow.is_sparse
    assert np.array_equal(as_dense(fast), as_dense(slow))


@settings(max_examples=40, deadline=None)
@given(tile=tiles(), codec=st.sampled_from(CODEC_NAMES))
def test_cold_read_equals_fastpath_read(tile, codec):
    """A cache-disabled store (always cold) agrees with a cached one."""
    cached = make_store(codec)
    cold = make_store(codec, cache=False)
    cached.put(tile)
    cold.put(tile)
    assert np.array_equal(as_dense(cached.get(tile.tile_id)),
                          as_dense(cold.get(tile.tile_id)))


@settings(max_examples=40, deadline=None)
@given(tile=tiles(), codec=st.sampled_from(CODEC_NAMES))
def test_arena_view_equals_codec_read(tile, codec):
    store = make_store(codec, arena=TileArena())
    try:
        store.put(tile)
        fast = store.get(tile.tile_id)
        slow = store.read_through_codec(tile.tile_id)
        assert np.array_equal(as_dense(fast), as_dense(slow))
        if not fast.is_sparse and getattr(fast, "arena_ref", None) is not None:
            # Zero-copy reads hand out immutable views.
            assert not fast.data.flags.writeable
    finally:
        store.close()


@settings(max_examples=40, deadline=None)
@given(tile=tiles(), codec=st.sampled_from([None] + CODEC_NAMES))
def test_accounting_unchanged_by_fastpath(tile, codec):
    """Byte accounting is a function of the tile, not of the read path."""
    variants = [make_store(codec),
                make_store(codec, cache=False),
                make_store(codec, arena=TileArena())]
    try:
        for store in variants:
            store.put(tile)
            store.get(tile.tile_id)
        reference = variants[0]
        assert reference.tile_bytes(tile.tile_id) == tile.nbytes()
        for store in variants[1:]:
            assert store.tile_bytes(tile.tile_id) \
                == reference.tile_bytes(tile.tile_id)
            assert store.matrix_bytes("P") == reference.matrix_bytes("P")
            assert store.namenode.total_used_bytes() \
                == reference.namenode.total_used_bytes()
    finally:
        variants[2].close()


@settings(max_examples=30, deadline=None)
@given(tile=tiles(), codec=st.sampled_from(CODEC_NAMES))
def test_eviction_falls_back_to_codec(tile, codec):
    """After drop_resident, reads decode but still return equal data."""
    store = make_store(codec)
    store.put(tile)
    warm = as_dense(store.get(tile.tile_id))
    assert store.drop_resident() == 1
    decodes_before = store.codec_decodes
    cold = as_dense(store.get(tile.tile_id))
    assert store.codec_decodes == decodes_before + 1
    assert np.array_equal(warm, cold)
