"""Unit tests for the Cumulon cost model."""

import pytest

from repro.cloud import get_instance_type
from repro.core.benchmarking import (
    REFERENCE_COEFFICIENTS,
    HardwareCoefficients,
    fit_local_coefficients,
    measure_elementwise_rate,
    measure_matmul_rate,
)
from repro.core.costmodel import CostModelConfig, CumulonCostModel
from repro.errors import ValidationError
from repro.hadoop.job import Job, JobKind
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task


def task(bytes_read=0, bytes_written=0, flops=0, element_ops=0,
         memory_bytes=0):
    return make_map_task("t", TaskWork(
        bytes_read=bytes_read, bytes_written=bytes_written, flops=flops,
        element_ops=element_ops, memory_bytes=memory_bytes))


@pytest.fixture
def model():
    return CumulonCostModel()


@pytest.fixture
def instance():
    return get_instance_type("m1.large")


class TestTaskDuration:
    def test_positive(self, model, instance):
        assert model.task_duration(task(), instance, 1, True) > 0

    def test_monotone_in_bytes_read(self, model, instance):
        small = model.task_duration(task(bytes_read=10**6), instance, 1, True)
        large = model.task_duration(task(bytes_read=10**8), instance, 1, True)
        assert large > small

    def test_monotone_in_flops(self, model, instance):
        small = model.task_duration(task(flops=10**6), instance, 1, True)
        large = model.task_duration(task(flops=10**9), instance, 1, True)
        assert large > small

    def test_monotone_in_element_ops(self, model, instance):
        small = model.task_duration(task(element_ops=10**6), instance, 1, True)
        large = model.task_duration(task(element_ops=10**9), instance, 1, True)
        assert large > small

    def test_contention_slows_io(self, model, instance):
        alone = model.task_duration(task(bytes_read=10**8), instance, 1, True)
        shared = model.task_duration(task(bytes_read=10**8), instance, 4, True)
        assert shared > alone

    def test_remote_read_no_faster_than_local(self, model, instance):
        local = model.task_duration(task(bytes_read=10**8), instance, 1, True)
        remote = model.task_duration(task(bytes_read=10**8), instance, 1, False)
        assert remote >= local

    def test_remote_read_slower_when_network_is_bottleneck(self, model):
        # m1.small: network (30 MB/s) < disk (60 MB/s).
        small = get_instance_type("m1.small")
        local = model.task_duration(task(bytes_read=10**8), small, 1, True)
        remote = model.task_duration(task(bytes_read=10**8), small, 1, False)
        assert remote > local

    def test_write_amplification_applied(self, model, instance):
        read_only = model.task_duration(task(bytes_read=10**8), instance, 1, True)
        write_only = model.task_duration(task(bytes_written=10**8),
                                         instance, 1, True)
        assert write_only > read_only

    def test_faster_core_speeds_compute(self, model):
        slow = get_instance_type("m1.medium")   # core_speed 1.0
        fast = get_instance_type("c1.medium")   # core_speed 1.25
        work = task(flops=10**10)
        assert model.task_duration(work, fast, 1, True) \
            < model.task_duration(work, slow, 1, True)

    def test_startup_floor(self, instance):
        coeffs = HardwareCoefficients(1e-9, 1e-9, 0.0, 5.0, 0.0, 0.0)
        model = CumulonCostModel(coeffs)
        assert model.task_duration(task(), instance, 1, True) \
            == pytest.approx(5.0)

    def test_invalid_concurrency(self, model, instance):
        with pytest.raises(ValidationError):
            model.task_duration(task(), instance, 0, True)


class TestMemoryPenalty:
    def test_no_penalty_when_fitting(self, instance):
        model = CumulonCostModel()
        fits = int(instance.memory_gb * 1e9 * 0.1)
        base = model.task_duration(task(flops=10**9), instance, 1, True)
        with_memory = model.task_duration(
            task(flops=10**9, memory_bytes=fits), instance, 1, True)
        assert with_memory == pytest.approx(base)

    def test_penalty_when_oversubscribed(self, instance):
        model = CumulonCostModel()
        big = int(instance.memory_gb * 1e9)
        normal = model.task_duration(task(flops=10**9), instance, 2, True)
        pressured = model.task_duration(
            task(flops=10**9, memory_bytes=big), instance, 2, True)
        assert pressured > normal

    def test_penalty_grows_with_concurrency(self, instance):
        model = CumulonCostModel()
        big = int(instance.memory_gb * 1e9 * 0.5)
        work = task(flops=10**9, memory_bytes=big)
        low = model.task_duration(work, instance, 2, True)
        high = model.task_duration(work, instance, 4, True)
        assert high > low

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            CostModelConfig(write_amplification=0.5)
        with pytest.raises(ValidationError):
            CostModelConfig(usable_memory_fraction=0.0)
        with pytest.raises(ValidationError):
            CostModelConfig(memory_penalty_slope=-1.0)


class TestJobOverhead:
    def test_mapreduce_costs_more(self):
        model = CumulonCostModel()
        map_only = Job("a", JobKind.MAP_ONLY, [])
        mapreduce = Job("b", JobKind.MAPREDUCE,
                        [make_map_task("m", TaskWork())],
                        [make_reduce_task("r", TaskWork())])
        assert model.job_overhead(mapreduce) > model.job_overhead(map_only)


class TestBenchmarking:
    def test_reference_coefficients_sane(self):
        assert 0 < REFERENCE_COEFFICIENTS.seconds_per_flop < 1e-6
        assert REFERENCE_COEFFICIENTS.mapreduce_job_overhead \
            > REFERENCE_COEFFICIENTS.map_only_job_overhead

    def test_measured_matmul_rate_positive(self):
        rate = measure_matmul_rate(tile_size=64, repeats=1)
        assert 0 < rate < 1e-6

    def test_measured_elementwise_rate_positive(self):
        rate = measure_elementwise_rate(tile_size=64, repeats=1)
        assert 0 < rate < 1e-5

    def test_fit_local_coefficients(self):
        coeffs = fit_local_coefficients(tile_size=64, repeats=1)
        assert coeffs.task_startup_seconds == 0.0
        assert coeffs.seconds_per_flop > 0

    def test_invalid_benchmark_args(self):
        with pytest.raises(ValidationError):
            measure_matmul_rate(tile_size=0)
        with pytest.raises(ValidationError):
            measure_elementwise_rate(repeats=0)

    def test_coefficients_validation(self):
        with pytest.raises(ValidationError):
            HardwareCoefficients(0.0, 1e-9, 0, 0, 0, 0)
        with pytest.raises(ValidationError):
            HardwareCoefficients(1e-9, 1e-9, 0, -1, 0, 0)
