"""Unit tests for kernel plans, the dispatcher registry, and the arena.

Everything here is single-process (tier 1): plan semantics are locked via
:class:`InlineDispatcher` and plain :func:`execute_plan` calls; the
process pool itself is exercised by the differential harness.
"""

import pickle
import threading

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.hadoop.kernels import (
    BlockPlan,
    GridMultPlan,
    InlineDispatcher,
    PackedPlan,
    current_dispatcher,
    execute_grid_mult,
    execute_packed,
    execute_plan,
    expand_grid,
    pack_plan,
    use_dispatcher,
)
from repro.matrix.arena import ArenaRef, TileArena

RNG = np.random.default_rng(11)


class TestBlockPlan:
    def test_validation(self):
        with pytest.raises(ValidationError, match="at least one output"):
            BlockPlan((), (), ())
        with pytest.raises(ValidationError, match="align"):
            BlockPlan((False,), (((0, None),),), ())
        with pytest.raises(ValidationError, match="at least one term"):
            BlockPlan((False,), ((),), ((2, 2),))
        with pytest.raises(ValidationError, match="outside"):
            BlockPlan((False,), (((0, 3),),), ((2, 2),))

    def test_num_tiles_counts_terms_and_outputs(self):
        plan = BlockPlan((False, False),
                         (((0, 1), (1, 0)), ((0, None),)),
                         ((2, 2), (2, 2)))
        assert plan.num_tiles == 3 + 2

    def test_matmul_matches_numpy(self):
        a, b = RNG.random((3, 4)), RNG.random((4, 5))
        plan = BlockPlan((False, False), (((0, 1),),), ((3, 5),))
        [(result, nnz)] = execute_plan(plan, [a, b])
        assert np.array_equal(result, a @ b)
        assert nnz == np.count_nonzero(a @ b)

    def test_transposed_flag_matches_dot_of_t(self):
        a, b = RNG.random((4, 3)), RNG.random((4, 5))
        plan = BlockPlan((True, False), (((0, 1),),), ((3, 5),))
        [(result, __)] = execute_plan(plan, [a, b])
        assert np.array_equal(result, a.T @ b)

    def test_sum_of_products_accumulates_left_to_right(self):
        # Bit-identity requires the exact accumulation order: (ab + cd) + e.
        a, b = RNG.random((2, 3)), RNG.random((3, 2))
        c, d = RNG.random((2, 3)), RNG.random((3, 2))
        e = RNG.random((2, 2))
        plan = BlockPlan((False,) * 5,
                         (((0, 1), (2, 3), (4, None)),), ((2, 2),))
        [(result, __)] = execute_plan(plan, [a, b, c, d, e])
        assert np.array_equal(result, (a @ b + c @ d) + e)

    def test_passthrough_term_copies(self):
        a = RNG.random((3, 3))
        plan = BlockPlan((False,), (((0, None),),), ((3, 3),))
        [(result, __)] = execute_plan(plan, [a])
        assert np.array_equal(result, a)
        result[0, 0] = -1.0  # must not write through to the payload
        assert a[0, 0] != -1.0

    def test_payload_count_validated(self):
        plan = BlockPlan((False,), (((0, None),),), ((2, 2),))
        with pytest.raises(ValidationError, match="payloads"):
            execute_plan(plan, [])

    def test_plans_are_picklable(self):
        plan = BlockPlan((False, True), (((0, 1),),), ((4, 4),))
        assert pickle.loads(pickle.dumps(plan)) == plan


def reference_results(plan, payloads):
    return execute_plan(plan, payloads)


def assert_matches_reference(outputs, counts, reference):
    assert len(outputs) == len(reference)
    for index, (array, nnz) in enumerate(reference):
        assert np.array_equal(outputs[index], array), index
        assert int(counts[index]) == nnz, index


class TestPackedPlan:
    """pack_plan / execute_packed agree bit for bit with execute_plan."""

    def make_matmul_plan(self, transposed=(False, False), k=3):
        n = 4 * k + 2 * k  # 4 outputs' worth of lefts, shared rights
        lefts = [RNG.random((5, 5)) for _ in range(n)]
        outputs = tuple(tuple((o * k + t, 4 * k + t % (2 * k))
                              for t in range(k)) for o in range(4))
        flags = tuple(transposed[0] for _ in range(4 * k)) \
            + tuple(transposed[1] for _ in range(2 * k))
        plan = BlockPlan(flags, outputs, ((5, 5),) * 4)
        return plan, lefts

    @pytest.mark.parametrize("flags", [(False, False), (True, False),
                                       (False, True), (True, True)])
    def test_matmul_matches_execute_plan(self, flags):
        plan, payloads = self.make_matmul_plan(flags)
        packed = pack_plan(plan, (5, 5))
        assert isinstance(packed, PackedPlan)
        outputs, counts = execute_packed(packed, np.stack(payloads))
        assert_matches_reference(outputs, counts,
                                 reference_results(plan, payloads))

    def test_passthrough_matches_execute_plan(self):
        payloads = [RNG.random((4, 6)) for _ in range(6)]
        outputs = tuple(tuple((2 * o + t, None) for t in range(2))
                        for o in range(3))
        plan = BlockPlan((False,) * 6, outputs, ((4, 6),) * 3)
        packed = pack_plan(plan, (4, 6))
        assert packed is not None
        result, counts = execute_packed(packed, np.stack(payloads))
        assert_matches_reference(result, counts,
                                 reference_results(plan, payloads))

    def test_irregular_plans_refused(self):
        # Ragged term counts.
        ragged = BlockPlan((False,) * 4, (((0, 1),), ((2, 3), (0, 1))),
                           ((2, 2),) * 2)
        assert pack_plan(ragged, (2, 2)) is None
        # Mixed matmul and pass-through terms.
        mixed = BlockPlan((False,) * 4, (((0, 1), (2, None)),) * 2,
                          ((2, 2),) * 2)
        assert pack_plan(mixed, (2, 2)) is None
        # Mixed transpose flags on one side.
        twisted = BlockPlan((True, False, False, False),
                            (((0, 2),), ((1, 3),)), ((2, 2),) * 2)
        assert pack_plan(twisted, (2, 2)) is None
        # Ragged output shapes.
        shapes = BlockPlan((False,) * 4, (((0, 1),), ((2, 3),)),
                           ((2, 2), (2, 3)))
        assert pack_plan(shapes, (2, 2)) is None

    def test_table_shape_validated(self):
        plan, payloads = self.make_matmul_plan()
        packed = pack_plan(plan, (5, 5))
        with pytest.raises(ValidationError, match="table"):
            execute_packed(packed, np.stack(payloads)[:2])


class TestGridMultPlan:
    """The structured mult plan equals its BlockPlan expansion."""

    def make_blocks(self, plan):
        a = RNG.random((plan.a_count, *plan.a_shape))
        b = RNG.random((plan.b_count, *plan.b_shape))
        return a, b

    @pytest.mark.parametrize("flags", [(False, False), (True, False),
                                       (False, True), (True, True)])
    def test_matches_expanded_block_plan(self, flags):
        shape = (4, 4) if flags[0] == flags[1] else (4, 4)
        plan = GridMultPlan(ni=3, nj=2, nk=4, a_shape=shape, b_shape=shape,
                            left_transposed=flags[0],
                            right_transposed=flags[1], out_shape=(4, 4))
        a, b = self.make_blocks(plan)
        outputs, counts = execute_grid_mult(plan, a, b)
        reference = reference_results(expand_grid(plan), list(a) + list(b))
        assert_matches_reference(outputs, counts, reference)

    def test_rectangular_tiles(self):
        plan = GridMultPlan(ni=2, nj=3, nk=2, a_shape=(5, 4),
                            b_shape=(4, 6), left_transposed=False,
                            right_transposed=False, out_shape=(5, 6))
        a, b = self.make_blocks(plan)
        outputs, counts = execute_grid_mult(plan, a, b)
        reference = reference_results(expand_grid(plan), list(a) + list(b))
        assert_matches_reference(outputs, counts, reference)

    def test_single_k_owns_its_data(self):
        plan = GridMultPlan(ni=1, nj=1, nk=1, a_shape=(3, 3),
                            b_shape=(3, 3), left_transposed=False,
                            right_transposed=False, out_shape=(3, 3))
        a, b = self.make_blocks(plan)
        outputs, __ = execute_grid_mult(plan, a, b)
        assert np.array_equal(outputs[0], a[0] @ b[0])

    def test_block_shapes_validated(self):
        plan = GridMultPlan(ni=2, nj=2, nk=2, a_shape=(3, 3),
                            b_shape=(3, 3), left_transposed=False,
                            right_transposed=False, out_shape=(3, 3))
        a, b = self.make_blocks(plan)
        with pytest.raises(ValidationError, match="A block"):
            execute_grid_mult(plan, a[:1], b)
        with pytest.raises(ValidationError, match="B block"):
            execute_grid_mult(plan, a, b[:1])

    def test_default_dispatcher_route_uses_expansion(self):
        plan = GridMultPlan(ni=2, nj=2, nk=3, a_shape=(4, 4),
                            b_shape=(4, 4), left_transposed=False,
                            right_transposed=False, out_shape=(4, 4))
        a, b = self.make_blocks(plan)
        results = InlineDispatcher().run_grid_mult(list(a), list(b), plan)
        reference = reference_results(expand_grid(plan), list(a) + list(b))
        for (array, nnz), (ref_array, ref_nnz) in zip(results, reference):
            assert np.array_equal(array, ref_array)
            assert nnz == ref_nnz


class TestDispatcherRegistry:
    def test_default_is_none(self):
        assert current_dispatcher() is None

    def test_use_installs_and_removes(self):
        dispatcher = InlineDispatcher()
        with use_dispatcher(dispatcher) as installed:
            assert installed is dispatcher
            assert current_dispatcher() is dispatcher
        assert current_dispatcher() is None

    def test_nested_installs_unwind_by_identity(self):
        outer, inner = InlineDispatcher(), InlineDispatcher()
        with use_dispatcher(outer):
            with use_dispatcher(inner):
                assert current_dispatcher() is inner
            assert current_dispatcher() is outer
        assert current_dispatcher() is None

    def test_visible_across_threads(self):
        # Task threads must observe the dispatcher the run loop installed.
        seen = []
        with use_dispatcher(InlineDispatcher()) as dispatcher:
            thread = threading.Thread(
                target=lambda: seen.append(current_dispatcher()))
            thread.start()
            thread.join()
        assert seen == [dispatcher]

    def test_inline_dispatcher_runs_plans(self):
        a, b = RNG.random((2, 3)), RNG.random((3, 2))
        plan = BlockPlan((False, False), (((0, 1),),), ((2, 2),))
        [(result, __)] = InlineDispatcher().run_plan([a, b], plan)
        assert np.array_equal(result, a @ b)


class TestTileArena:
    def test_store_and_view_roundtrip(self):
        arena = TileArena()
        try:
            payload = RNG.random((8, 6))
            ref = arena.store(payload)
            view = arena.view(ref)
            assert np.array_equal(view, payload)
            assert not view.flags.writeable
        finally:
            arena.close()

    def test_view_is_zero_copy(self):
        arena = TileArena()
        try:
            ref = arena.store(np.ones((4, 4)))
            assert arena.view(ref).base is not None  # a view, not a copy
        finally:
            arena.close()

    def test_capacity_refusal_returns_none(self):
        arena = TileArena(slab_bytes=1024, capacity_bytes=1024)
        try:
            assert arena.store(np.ones((8, 8))) is not None  # 512B fits
            assert arena.store(np.ones((64, 64))) is None    # 32KB refused
        finally:
            arena.close()

    def test_oversized_payload_gets_dedicated_segment(self):
        arena = TileArena(slab_bytes=1024, capacity_bytes=64 * 1024)
        try:
            payload = RNG.random((32, 32))  # 8KB > slab
            ref = arena.store(payload)
            assert ref is not None
            assert np.array_equal(arena.view(ref), payload)
        finally:
            arena.close()

    def test_release_tracks_garbage(self):
        arena = TileArena()
        try:
            ref = arena.store(np.ones((4, 4)))
            arena.release(ref)
            assert arena.stats()["garbage_bytes"] == ref.nbytes
        finally:
            arena.close()

    def test_closed_arena_refuses_stores(self):
        arena = TileArena()
        arena.close()
        assert arena.store(np.ones((2, 2))) is None

    def test_foreign_ref_rejected(self):
        arena = TileArena()
        try:
            with pytest.raises(ValidationError, match="not mine"):
                arena.view(ArenaRef("psm_nonexistent", 0, (2, 2)))
        finally:
            arena.close()

    def test_refs_are_picklable(self):
        ref = ArenaRef("seg", 128, (4, 4))
        assert pickle.loads(pickle.dumps(ref)) == ref
        assert ref.nbytes == 128
