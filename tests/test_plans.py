"""Unit tests for deployment plans and skyline utilities."""

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.core.compiler import CompilerParams
from repro.core.plans import (
    DeploymentPlan,
    cheapest_within_deadline,
    fastest_within_budget,
    skyline,
)
from repro.errors import ValidationError


def plan(seconds, cost, nodes=2):
    spec = ClusterSpec(get_instance_type("m1.large"), nodes, 2)
    return DeploymentPlan(spec, CompilerParams(), seconds, cost)


class TestDeploymentPlan:
    def test_validation(self):
        with pytest.raises(ValidationError):
            plan(0.0, 1.0)
        with pytest.raises(ValidationError):
            plan(10.0, -1.0)

    def test_dominates(self):
        assert plan(10, 1).dominates(plan(20, 2))
        assert plan(10, 1).dominates(plan(10, 2))
        assert not plan(10, 2).dominates(plan(20, 1))
        assert not plan(10, 1).dominates(plan(10, 1))

    def test_describe(self):
        text = plan(120, 0.5).describe()
        assert "120" in text and "$0.50" in text


class TestSkyline:
    def test_removes_dominated(self):
        plans = [plan(10, 5), plan(20, 3), plan(15, 6), plan(30, 1)]
        frontier = skyline(plans)
        assert [(p.estimated_seconds, p.estimated_cost) for p in frontier] \
            == [(10, 5), (20, 3), (30, 1)]

    def test_no_plan_dominated_within_skyline(self):
        plans = [plan(t, c) for t, c in
                 [(10, 9), (12, 7), (14, 8), (20, 3), (25, 3), (30, 1)]]
        frontier = skyline(plans)
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not a.dominates(b)

    def test_empty(self):
        assert skyline([]) == []

    def test_single(self):
        only = plan(10, 1)
        assert skyline([only]) == [only]

    def test_duplicate_points(self):
        frontier = skyline([plan(10, 5), plan(10, 5)])
        assert len(frontier) == 1


class TestConstraintSolvers:
    def setup_method(self):
        self.plans = [plan(10, 9), plan(20, 5), plan(40, 2), plan(80, 1)]

    def test_cheapest_within_deadline(self):
        chosen = cheapest_within_deadline(self.plans, 25)
        assert chosen.estimated_cost == 5

    def test_deadline_tight(self):
        chosen = cheapest_within_deadline(self.plans, 10)
        assert chosen.estimated_seconds == 10

    def test_deadline_infeasible(self):
        assert cheapest_within_deadline(self.plans, 5) is None

    def test_fastest_within_budget(self):
        chosen = fastest_within_budget(self.plans, 5)
        assert chosen.estimated_seconds == 20

    def test_budget_infeasible(self):
        assert fastest_within_budget(self.plans, 0.5) is None

    def test_loose_constraints_pick_extremes(self):
        assert cheapest_within_deadline(self.plans, 10**9).estimated_cost == 1
        assert fastest_within_budget(self.plans, 10**9).estimated_seconds == 10
