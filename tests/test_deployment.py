"""Unit tests for end-to-end deployment cost breakdowns."""

import pytest

from repro.cloud import ClusterSpec, PerSecondBilling, get_instance_type
from repro.core.compiler import CompilerParams
from repro.core.deployment import (
    amortized_breakdown,
    compare_breakdown,
    estimate_deployment,
)
from repro.core.physical import MatMulParams
from repro.core.plans import DeploymentPlan
from repro.errors import ValidationError
from repro.workloads import build_gnmf_program, build_multiply_program


def make_plan(nodes=8, tile=2048, matmul=MatMulParams(1, 1, 1)):
    spec = ClusterSpec(get_instance_type("m1.large"), nodes, 2)
    return DeploymentPlan(spec, CompilerParams(matmul=matmul),
                          1.0, 0.0, tile_size=tile)


@pytest.fixture(scope="module")
def program():
    return build_multiply_program(16384, 16384, 16384)


class TestEstimate:
    def test_phases_all_positive(self, program):
        breakdown = estimate_deployment(program, make_plan())
        assert breakdown.startup_seconds > 0
        assert breakdown.load_seconds > 0
        assert breakdown.compute_seconds > 0
        assert breakdown.dollars > 0

    def test_total_is_sum(self, program):
        breakdown = estimate_deployment(program, make_plan())
        assert breakdown.total_seconds == pytest.approx(
            breakdown.startup_seconds + breakdown.load_seconds
            + breakdown.compute_seconds)

    def test_load_skippable(self, program):
        with_load = estimate_deployment(program, make_plan())
        without = estimate_deployment(program, make_plan(),
                                      include_load=False)
        assert without.load_seconds == 0.0
        assert without.total_seconds < with_load.total_seconds

    def test_text_load_is_significant(self, program):
        """The load phase parses gigabytes of text: it costs real seconds
        (though a compute-heavy multiply still dominates it)."""
        breakdown = estimate_deployment(program, make_plan())
        assert breakdown.load_seconds > 10.0
        assert breakdown.load_seconds < breakdown.compute_seconds

    def test_cost_matches_billing(self, program):
        billing = PerSecondBilling(minimum_seconds=0.0)
        plan = make_plan()
        breakdown = estimate_deployment(program, plan, billing=billing)
        assert breakdown.dollars == pytest.approx(
            billing.cost(plan.spec, breakdown.total_seconds))

    def test_tile_size_required(self, program):
        plan = DeploymentPlan(make_plan().spec, CompilerParams(), 1.0, 0.0)
        with pytest.raises(ValidationError):
            estimate_deployment(program, plan)

    def test_describe_itemizes(self, program):
        text = estimate_deployment(program, make_plan()).describe()
        for label in ("startup", "load", "compute", "total"):
            assert label in text


class TestAmortization:
    def test_per_run_cost_falls_with_runs(self, program):
        plan = make_plan()
        billing = PerSecondBilling(minimum_seconds=0.0)
        one = amortized_breakdown(program, plan, runs=1, billing=billing)
        ten = amortized_breakdown(program, plan, runs=10, billing=billing)
        assert ten.dollars < one.dollars
        assert ten.startup_seconds < one.startup_seconds

    def test_compute_not_amortized(self, program):
        plan = make_plan()
        one = amortized_breakdown(program, plan, runs=1)
        ten = amortized_breakdown(program, plan, runs=10)
        assert ten.compute_seconds == pytest.approx(one.compute_seconds)

    def test_validation(self, program):
        with pytest.raises(ValidationError):
            amortized_breakdown(program, make_plan(), runs=0)


class TestCompare:
    def test_variants_differ(self):
        program = build_gnmf_program(20480, 10240, 128, iterations=1)
        plan = make_plan()
        variants = {
            "fused": CompilerParams(fusion_enabled=True),
            "unfused": CompilerParams(fusion_enabled=False),
        }
        results = compare_breakdown(program, plan, variants)
        assert set(results) == {"fused", "unfused"}
        assert results["fused"].compute_seconds \
            < results["unfused"].compute_seconds
        # Load and startup are identical across compiler variants.
        assert results["fused"].load_seconds \
            == pytest.approx(results["unfused"].load_seconds)
