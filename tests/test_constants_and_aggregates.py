"""Unit tests for constant matrices and the aggregation sugar."""

import numpy as np
import pytest

from repro.core.compiler import compile_program, normalize_transposes
from repro.core.executor import run_program
from repro.core.expr import Constant, Var, evaluate_with_numpy, ones
from repro.core.physical import PhysicalContext
from repro.core.program import Program
from repro.errors import ShapeError, ValidationError

RNG = np.random.default_rng(31)


class TestConstant:
    def test_shape_and_density(self):
        c = Constant(2.0, (3, 4))
        assert c.shape == (3, 4)
        assert c.density == 1.0
        assert Constant(0.0, (3, 4)).density == 0.0

    def test_validation(self):
        with pytest.raises(ShapeError):
            Constant(1.0, (0, 4))
        with pytest.raises(ValidationError):
            Constant(float("inf"), (2, 2))

    def test_ones_helper(self):
        c = ones(2, 5)
        assert c.value == 1.0
        assert c.shape == (2, 5)

    def test_numpy_evaluation(self):
        np.testing.assert_array_equal(
            evaluate_with_numpy(Constant(3.0, (2, 2)), {}),
            np.full((2, 2), 3.0))

    def test_transpose_normalizes_to_swapped_constant(self):
        normalized = normalize_transposes(Constant(2.0, (3, 5)).T)
        assert isinstance(normalized, Constant)
        assert normalized.shape == (5, 3)

    def test_describe(self):
        assert "2" in Constant(2.0, (3, 5)).describe()

    def test_constant_in_expression(self):
        a = Var("A", (4, 4))
        expr = a + Constant(1.0, (4, 4))
        env = {"A": RNG.random((4, 4))}
        np.testing.assert_allclose(evaluate_with_numpy(expr, env),
                                   env["A"] + 1.0)

    def test_compiler_materializes_constant_once(self):
        program = Program("c")
        a = program.declare_input("A", 8, 8)
        program.assign("R1", a @ ones(8, 1))
        program.assign("R2", (a * 2.0) @ ones(8, 1))
        compiled = compile_program(program, PhysicalContext(4))
        const_names = [name for name in compiled.materialized
                       if name.startswith("_const")]
        assert len(const_names) == 1

    def test_distinct_constants_materialized_separately(self):
        program = Program("c")
        a = program.declare_input("A", 8, 8)
        program.assign("R1", a @ ones(8, 1))
        program.assign("R2", a @ Constant(2.0, (8, 1)))
        compiled = compile_program(program, PhysicalContext(4))
        const_names = [name for name in compiled.materialized
                       if name.startswith("_const")]
        assert len(const_names) == 2


class TestAggregates:
    def run_aggregate(self, build, rows=24, cols=18, tile=8):
        data = RNG.random((rows, cols))
        program = Program("agg")
        x = program.declare_input("X", rows, cols)
        program.assign("OUT", build(x))
        program.mark_output("OUT")
        result = run_program(program, {"X": data}, tile_size=tile)
        return data, result.output("OUT")

    def test_row_sums(self):
        data, out = self.run_aggregate(lambda x: x.row_sums())
        assert out.shape == (24, 1)
        np.testing.assert_allclose(out.ravel(), data.sum(axis=1))

    def test_col_sums(self):
        data, out = self.run_aggregate(lambda x: x.col_sums())
        assert out.shape == (1, 18)
        np.testing.assert_allclose(out.ravel(), data.sum(axis=0))

    def test_sum_all(self):
        data, out = self.run_aggregate(lambda x: x.sum_all())
        assert out.shape == (1, 1)
        np.testing.assert_allclose(out[0, 0], data.sum())

    def test_mean_all(self):
        data, out = self.run_aggregate(lambda x: x.mean_all())
        np.testing.assert_allclose(out[0, 0], data.mean())

    def test_row_sums_of_expression(self):
        data, out = self.run_aggregate(lambda x: (x * 2.0).row_sums())
        np.testing.assert_allclose(out.ravel(), 2.0 * data.sum(axis=1))

    def test_ragged_tiles(self):
        data, out = self.run_aggregate(lambda x: x.sum_all(),
                                       rows=23, cols=17, tile=5)
        np.testing.assert_allclose(out[0, 0], data.sum())

    def test_row_centering_pattern(self):
        rows, cols = 16, 12
        data = RNG.random((rows, cols))
        program = Program("center")
        x = program.declare_input("X", rows, cols)
        row_means = x.row_sums() * (1.0 / cols)
        program.assign("C", x - row_means @ ones(1, cols))
        program.mark_output("C")
        result = run_program(program, {"X": data}, tile_size=8)
        np.testing.assert_allclose(
            result.output("C"), data - data.mean(axis=1, keepdims=True))
