"""Correctness tests: every paper workload executed end-to-end vs numpy."""

import numpy as np
import pytest

from repro.core.executor import run_program
from repro.errors import ValidationError
from repro.workloads import (
    build_chain_program,
    build_gnmf_program,
    build_gradient_descent_program,
    build_multiply_program,
    build_normal_equations_program,
    build_power_iteration_program,
    build_rsvd_program,
    reference_gnmf,
    reference_gradient_descent,
    reference_power_iteration,
    reference_rsvd,
    sketch_quality,
    solve_normal_equations,
)

RNG = np.random.default_rng(11)


class TestMultiply:
    def test_simple(self):
        a = RNG.random((40, 24))
        b = RNG.random((24, 56))
        program = build_multiply_program(40, 24, 56)
        result = run_program(program, {"A": a, "B": b}, tile_size=16)
        np.testing.assert_allclose(result.output("C"), a @ b)

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_multiply_program(0, 4, 4)


class TestChain:
    def test_three_matrices(self):
        mats = [RNG.random((20, 20)) for __ in range(3)]
        program = build_chain_program(20, 3)
        result = run_program(program,
                             {f"M{i}": m for i, m in enumerate(mats)},
                             tile_size=8)
        np.testing.assert_allclose(result.output("C"),
                                   mats[0] @ mats[1] @ mats[2])

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_chain_program(10, 1)


class TestGNMF:
    def test_matches_reference(self):
        v = RNG.random((30, 24)) + 0.01
        w0 = RNG.random((30, 3)) + 0.01
        h0 = RNG.random((3, 24)) + 0.01
        program = build_gnmf_program(30, 24, 3, iterations=4)
        result = run_program(program, {"V": v, "W0": w0, "H0": h0},
                             tile_size=8)
        w_ref, h_ref = reference_gnmf(v, w0, h0, 4)
        np.testing.assert_allclose(result.output("W"), w_ref, rtol=1e-8)
        np.testing.assert_allclose(result.output("H"), h_ref, rtol=1e-8)

    def test_objective_decreases(self):
        v = RNG.random((40, 30)) + 0.01
        w0 = RNG.random((40, 4)) + 0.01
        h0 = RNG.random((4, 30)) + 0.01
        w1, h1 = reference_gnmf(v, w0, h0, 1)
        w5, h5 = reference_gnmf(v, w0, h0, 5)
        assert np.linalg.norm(v - w5 @ h5) < np.linalg.norm(v - w1 @ h1)

    def test_program_statement_count_scales_with_iterations(self):
        one = build_gnmf_program(16, 16, 2, iterations=1)
        three = build_gnmf_program(16, 16, 2, iterations=3)
        assert len(three.statements) == 3 * len(one.statements)

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_gnmf_program(10, 10, 20, 1)
        with pytest.raises(ValidationError):
            build_gnmf_program(10, 10, 2, 0)


class TestRSVD:
    def test_matches_reference(self):
        a = RNG.standard_normal((36, 28))
        g = RNG.standard_normal((28, 5))
        program = build_rsvd_program(36, 28, 5, power_iterations=2)
        result = run_program(program, {"A": a, "G": g}, tile_size=8)
        np.testing.assert_allclose(result.output("B"),
                                   reference_rsvd(a, g, 2), rtol=1e-8)

    def test_zero_power_iterations(self):
        a = RNG.standard_normal((16, 12))
        g = RNG.standard_normal((12, 3))
        program = build_rsvd_program(16, 12, 3, power_iterations=0)
        result = run_program(program, {"A": a, "G": g}, tile_size=8)
        np.testing.assert_allclose(result.output("B"), a @ g)

    def test_sketch_captures_low_rank_structure(self):
        rank = 4
        left = RNG.standard_normal((60, rank))
        right = RNG.standard_normal((rank, 50))
        a = left @ right
        g = RNG.standard_normal((50, rank + 2))
        b = reference_rsvd(a, g, power_iterations=2)
        assert sketch_quality(a, b) > 0.99

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_rsvd_program(10, 10, 0)
        with pytest.raises(ValidationError):
            build_rsvd_program(10, 10, 2, power_iterations=-1)


class TestRegression:
    def test_normal_equations_match(self):
        x = RNG.standard_normal((50, 6))
        y = RNG.standard_normal((50, 1))
        program = build_normal_equations_program(50, 6)
        result = run_program(program, {"X": x, "y": y}, tile_size=16)
        np.testing.assert_allclose(result.output("XtX"), x.T @ x, rtol=1e-8)
        np.testing.assert_allclose(result.output("Xty"), x.T @ y, rtol=1e-8)

    def test_end_to_end_recovers_weights(self):
        from repro.data import regression_dataset
        x, y, w_true = regression_dataset(400, 5, seed=3, noise=0.01)
        program = build_normal_equations_program(400, 5)
        result = run_program(program,
                             {"X": x.to_numpy(), "y": y.to_numpy()},
                             tile_size=64)
        w_hat = solve_normal_equations(result.output("XtX"),
                                       result.output("Xty"))
        np.testing.assert_allclose(w_hat.ravel(), w_true, atol=0.05)

    def test_gradient_descent_matches_reference(self):
        x = RNG.standard_normal((30, 4)) * 0.1
        y = RNG.standard_normal((30, 1))
        w0 = np.zeros((4, 1))
        program = build_gradient_descent_program(30, 4, iterations=5,
                                                 learning_rate=0.05)
        result = run_program(program, {"X": x, "y": y, "w0": w0}, tile_size=8)
        expected = reference_gradient_descent(x, y, w0, 5, 0.05)
        np.testing.assert_allclose(result.output("w"), expected, rtol=1e-8)

    def test_ridge_solver(self):
        xtx = np.eye(3)
        xty = np.ones((3, 1))
        w = solve_normal_equations(xtx, xty, ridge=1.0)
        np.testing.assert_allclose(w, np.full((3, 1), 0.5))

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_normal_equations_program(0, 5)
        with pytest.raises(ValidationError):
            build_gradient_descent_program(10, 5, 3, learning_rate=0.0)
        with pytest.raises(ValidationError):
            solve_normal_equations(np.eye(2), np.ones((2, 1)), ridge=-1.0)


class TestPowerIteration:
    def test_matches_reference(self):
        n = 24
        adjacency = RNG.random((n, n))
        adjacency /= adjacency.sum(axis=0, keepdims=True)
        r0 = np.full((n, 1), 1.0 / n)
        program = build_power_iteration_program(n, iterations=5)
        result = run_program(program, {"A": adjacency, "r0": r0}, tile_size=8)
        expected = reference_power_iteration(adjacency, r0, 5)
        np.testing.assert_allclose(result.output("r"), expected, rtol=1e-8)

    def test_rank_mass_conserved(self):
        n = 16
        adjacency = RNG.random((n, n))
        adjacency /= adjacency.sum(axis=0, keepdims=True)
        r0 = np.full((n, 1), 1.0 / n)
        rank = reference_power_iteration(adjacency, r0, 20)
        assert rank.sum() == pytest.approx(1.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_power_iteration_program(10, 0)
        with pytest.raises(ValidationError):
            build_power_iteration_program(10, 5, damping=1.5)


class TestLogistic:
    def test_matches_reference(self):
        from repro.workloads import (build_logistic_program,
                                     classification_dataset,
                                     reference_logistic)
        x, y, __ = classification_dataset(40, 5, seed=8)
        w0 = np.zeros((5, 1))
        program = build_logistic_program(40, 5, iterations=4,
                                         learning_rate=0.1)
        result = run_program(program, {"X": x, "y": y, "w0": w0}, tile_size=8)
        expected = reference_logistic(x, y, w0, 4, 0.1)
        np.testing.assert_allclose(result.output("w"), expected, rtol=1e-8)

    def test_training_improves_accuracy(self):
        from repro.workloads import (accuracy, classification_dataset,
                                     reference_logistic)
        x, y, __ = classification_dataset(400, 6, seed=9)
        w0 = np.zeros((6, 1))
        untrained = accuracy(x, y, w0)
        trained = accuracy(x, y, reference_logistic(x, y, w0, 50, 0.01))
        assert trained > untrained
        assert trained > 0.7

    def test_sigmoid_density_densifies(self):
        from repro.core.expr import Var
        node = Var("A", (4, 4), density=0.1).apply("sigmoid")
        assert node.density == 1.0

    def test_validation(self):
        from repro.workloads import build_logistic_program
        with pytest.raises(ValidationError):
            build_logistic_program(0, 5, 3, 0.1)
        with pytest.raises(ValidationError):
            build_logistic_program(10, 5, 3, 0.0)


class TestPCA:
    def test_matches_reference(self):
        from repro.workloads import build_pca_program, reference_pca
        x = RNG.random((60, 20)) + 0.1
        g = RNG.standard_normal((20, 5))
        program = build_pca_program(60, 20, 5)
        result = run_program(program, {"X": x, "G": g}, tile_size=8)
        sketch_ref, cov_ref = reference_pca(x, g)
        np.testing.assert_allclose(result.output("S"), sketch_ref, rtol=1e-7)
        np.testing.assert_allclose(result.output("C"), cov_ref, rtol=1e-7)

    def test_captures_planted_structure(self):
        from repro.workloads import (build_pca_program,
                                     explained_variance_ratio,
                                     principal_components, reference_pca)
        rng = np.random.default_rng(77)
        # Two dominant directions + small isotropic noise.
        basis = rng.standard_normal((12, 2))
        scores = rng.standard_normal((300, 2)) * np.array([5.0, 3.0])
        x = scores @ basis.T + 0.1 * rng.standard_normal((300, 12))
        g = rng.standard_normal((12, 4))
        sketch, covariance = reference_pca(x, g)
        components = principal_components(sketch, 2)
        assert explained_variance_ratio(covariance, components) > 0.8

    def test_validation(self):
        from repro.workloads import build_pca_program, principal_components
        with pytest.raises(ValidationError):
            build_pca_program(10, 5, 6)
        with pytest.raises(ValidationError):
            principal_components(np.ones((4, 2)), 3)


class TestSoftKMeans:
    def test_matches_reference(self):
        from repro.workloads import (build_soft_kmeans_program,
                                     clustered_dataset,
                                     reference_soft_kmeans)
        x, __ = clustered_dataset(48, 6, 3, seed=12)
        rng = np.random.default_rng(4)
        c0 = x[rng.choice(48, 3, replace=False)]
        program = build_soft_kmeans_program(48, 6, 3, iterations=3)
        result = run_program(program, {"X": x, "C0": c0}, tile_size=16)
        expected = reference_soft_kmeans(x, c0, 3)
        np.testing.assert_allclose(result.output("C"), expected, rtol=1e-7)

    def test_recovers_planted_centers(self):
        # Soft k-means is a local optimizer: start from perturbed truth
        # (random restarts handle the global problem in practice).
        from repro.workloads import (centroid_match_error, clustered_dataset,
                                     reference_soft_kmeans)
        x, truth = clustered_dataset(300, 4, 4, seed=5, spread=0.05)
        rng = np.random.default_rng(9)
        c0 = truth + 0.4 * rng.standard_normal(truth.shape)
        found = reference_soft_kmeans(x, c0, 15)
        assert centroid_match_error(found, truth) \
            < centroid_match_error(c0, truth) / 3
        assert centroid_match_error(found, truth) < 0.1

    def test_iterations_improve_fit(self):
        from repro.workloads import (centroid_match_error, clustered_dataset,
                                     reference_soft_kmeans)
        x, truth = clustered_dataset(200, 4, 3, seed=6, spread=0.05)
        rng = np.random.default_rng(2)
        c0 = x[rng.choice(200, 3, replace=False)] \
            + rng.standard_normal((3, 4))
        early = reference_soft_kmeans(x, c0, 1)
        late = reference_soft_kmeans(x, c0, 12)
        assert centroid_match_error(late, truth) \
            <= centroid_match_error(early, truth)

    def test_validation(self):
        from repro.workloads import build_soft_kmeans_program
        with pytest.raises(ValidationError):
            build_soft_kmeans_program(10, 4, 0, 3)
        with pytest.raises(ValidationError):
            build_soft_kmeans_program(10, 4, 2, 3, beta=0.0)
