"""Locks the supported public surface of :mod:`repro.api`.

The snapshot at ``tests/fixtures/api_surface.txt`` is the covenant: one
``name kind`` pair per line for every entry in ``repro.api.__all__``.
Adding to the surface means updating the snapshot in the same change
(deliberately); removing or re-typing a name fails this test until the
snapshot says so too.  Regenerate with::

    PYTHONPATH=src python tests/test_api_surface.py --regen
"""

import inspect
import sys
from pathlib import Path

import repro.api as api

SNAPSHOT = Path(__file__).parent / "fixtures" / "api_surface.txt"


def surface_lines() -> list[str]:
    """The current surface as sorted ``name kind`` lines."""
    lines = []
    for name in sorted(api.__all__):
        obj = getattr(api, name)
        if inspect.isclass(obj):
            kind = "class"
        elif inspect.isfunction(obj):
            kind = "function"
        else:
            kind = type(obj).__name__
        lines.append(f"{name} {kind}")
    return lines


def test_all_is_sorted_and_complete():
    assert list(api.__all__) == sorted(api.__all__), \
        "__all__ must stay sorted for diffable snapshots"
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing, f"__all__ names not importable: {missing}"


def test_star_import_exposes_exactly_all():
    namespace = {}
    exec("from repro.api import *", namespace)
    exported = {name for name in namespace if not name.startswith("_")}
    exported.discard("__builtins__")
    assert exported == set(api.__all__)


def test_surface_matches_snapshot():
    recorded = SNAPSHOT.read_text().splitlines()
    current = surface_lines()
    assert current == recorded, (
        "repro.api surface drifted from tests/fixtures/api_surface.txt.\n"
        "If the change is intentional, regenerate the snapshot:\n"
        "  PYTHONPATH=src python tests/test_api_surface.py --regen\n"
        f"added: {sorted(set(current) - set(recorded))}\n"
        f"removed: {sorted(set(recorded) - set(current))}")


def test_facade_has_no_unlisted_public_names():
    unlisted = [
        name for name in dir(api)
        if not name.startswith("_")
        and name not in api.__all__
        and not inspect.ismodule(getattr(api, name))
    ]
    assert not unlisted, f"public but not in __all__: {unlisted}"


if __name__ == "__main__":
    if "--regen" in sys.argv:
        SNAPSHOT.write_text("\n".join(surface_lines()) + "\n")
        print(f"wrote {SNAPSHOT}")
    else:
        print("\n".join(surface_lines()))
