"""Unit tests: node-level faults — crashes, revocation waves, chaos harness.

Covers the failure mode task-attempt injection cannot: a whole node leaving
the cluster mid-run, taking its slots, its running attempts, its map
outputs, and its HDFS replicas with it.
"""

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.errors import (
    QuorumLostError,
    SchedulingError,
    ValidationError,
)
from repro.hadoop.faults import (
    CAUSE_CRASH,
    CAUSE_REVOCATION,
    CompositeNodeFailures,
    NodeFailure,
    NoNodeFailures,
    RandomNodeFailures,
    SpotRevocationWaves,
    TargetedFailures,
    TargetedNodeFailures,
)
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.simulator import (
    FAILED,
    LOST,
    SUCCESS,
    ClusterSimulator,
)
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task
from repro.hadoop.timemodel import FixedTimeModel
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.observability import (
    InMemoryRecorder,
    MetricsRegistry,
    PHASE_NODE,
    PHASE_REEXEC,
    PHASE_REREPLICATION,
    STATUS_LOST,
    STATUS_REVOKED,
)


def spec(nodes=2, slots=2):
    return ClusterSpec(get_instance_type("m1.large"), nodes, slots)


def map_only(job_id, n_tasks, bytes_read=1):
    tasks = [make_map_task(f"{job_id}-t{i}", TaskWork(bytes_read=bytes_read))
             for i in range(n_tasks)]
    return Job(job_id, JobKind.MAP_ONLY, tasks)


def cluster_hdfs(node_names, replication=2, file_bytes=256 * 2**20):
    namenode = NameNode(replication=replication)
    for name in node_names:
        namenode.register_datanode(DataNode(name, 10**12))
    namenode.create("/input/X", file_bytes, writer=node_names[0])
    return namenode


class TestNodeFailureModels:
    def test_no_node_failures(self):
        assert NoNodeFailures().failures(["a", "b"]) == []

    def test_targeted_filters_unknown_nodes(self):
        model = TargetedNodeFailures({"a": 5.0, "ghost": 1.0})
        events = model.failures(["a", "b"])
        assert [(e.node, e.at) for e in events] == [("a", 5.0)]

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            NodeFailure("a", -1.0)

    def test_unknown_cause_rejected(self):
        with pytest.raises(ValidationError):
            NodeFailure("a", 1.0, cause="gremlins")

    def test_random_crashes_deterministic(self):
        model = RandomNodeFailures(rate_per_hour=0.5, seed=3)
        names = [f"n{i}" for i in range(6)]
        assert model.failures(names) == model.failures(names)
        assert RandomNodeFailures(0.0).failures(names) == []

    def test_spot_wave_is_correlated(self):
        model = SpotRevocationWaves(bid_fraction=0.35, seed=4,
                                    victim_fraction=0.5, hour_seconds=1.0)
        names = [f"n{i}" for i in range(8)]
        events = model.failures(names)
        assert len(events) == 4  # ceil(0.5 * 8) victims
        assert len({e.at for e in events}) == 1  # all at the same instant
        assert all(e.cause == CAUSE_REVOCATION for e in events)
        assert events == model.failures(names)

    def test_spot_wave_time_follows_price_path(self):
        model = SpotRevocationWaves(bid_fraction=0.35, seed=4,
                                    victim_fraction=1.0, hour_seconds=2.0)
        hour = model.first_wave_hour()
        assert hour is not None and hour >= 1
        events = model.failures(["n0"])
        assert events[0].at == pytest.approx(hour * 2.0)

    def test_composite_earliest_death_wins(self):
        model = CompositeNodeFailures([
            TargetedNodeFailures({"a": 10.0, "b": 3.0}),
            TargetedNodeFailures({"a": 4.0}, cause=CAUSE_REVOCATION),
        ])
        events = {e.node: e for e in model.failures(["a", "b"])}
        assert events["a"].at == 4.0
        assert events["a"].cause == CAUSE_REVOCATION
        assert events["b"].at == 3.0


class TestNodeLossInSimulator:
    def test_running_attempts_lost_and_job_completes_on_survivors(self):
        # 8 x 10s tasks on 2x2 slots: both of node-0's running attempts die
        # with it at t=5, are requeued, and everything lands on node-1.
        clean = ClusterSimulator(spec(), FixedTimeModel(10.0)).run(
            JobDag([map_only("j", 8)])).makespan
        sim = ClusterSimulator(
            spec(), FixedTimeModel(10.0),
            node_failures=TargetedNodeFailures({"m1.large-0": 5.0}))
        result = sim.run(JobDag([map_only("j", 8)]))
        timeline = result.job("j")
        assert len(timeline.attempts_with_status(LOST)) == 2
        succeeded = {a.task.task_id
                     for a in timeline.attempts_with_status(SUCCESS)}
        assert succeeded == {f"j-t{i}" for i in range(8)}
        assert result.makespan > clean

    def test_lost_nodes_reported(self):
        sim = ClusterSimulator(
            spec(), FixedTimeModel(10.0),
            node_failures=TargetedNodeFailures({"m1.large-0": 5.0}))
        result = sim.run(JobDag([map_only("j", 4)]))
        assert [(f.node, f.cause) for f in result.lost_nodes] \
            == [("m1.large-0", CAUSE_CRASH)]

    def test_dead_node_gets_no_new_work(self):
        sim = ClusterSimulator(
            spec(), FixedTimeModel(10.0),
            node_failures=TargetedNodeFailures({"m1.large-0": 5.0}))
        result = sim.run(JobDag([map_only("j", 12)]))
        for attempt in result.job("j").attempts:
            if attempt.start > 5.0:
                assert attempt.node != "m1.large-0"

    def test_lost_attempts_do_not_count_against_max_attempts(self):
        # max_attempts=1 would abort on the first *failure*; a node loss is
        # not the task's fault, so the rerun must still be allowed.
        failures = TargetedFailures(set(), max_attempts=1)
        sim = ClusterSimulator(
            spec(), FixedTimeModel(10.0), failures=failures,
            node_failures=TargetedNodeFailures({"m1.large-0": 5.0}))
        result = sim.run(JobDag([map_only("j", 8)]))
        assert result.count_attempts(SUCCESS) == 8

    def test_quorum_loss_aborts(self):
        sim = ClusterSimulator(
            spec(nodes=2), FixedTimeModel(10.0), min_live_nodes=2,
            node_failures=TargetedNodeFailures({"m1.large-0": 5.0}))
        with pytest.raises(QuorumLostError, match="quorum"):
            sim.run(JobDag([map_only("j", 8)]))

    def test_quorum_error_is_a_scheduling_error(self):
        assert issubclass(QuorumLostError, SchedulingError)

    def test_losing_every_node_aborts_even_with_min_quorum(self):
        sim = ClusterSimulator(
            spec(nodes=2), FixedTimeModel(10.0),
            node_failures=TargetedNodeFailures({"m1.large-0": 5.0,
                                                "m1.large-1": 5.0}))
        with pytest.raises(QuorumLostError):
            sim.run(JobDag([map_only("j", 8)]))

    def test_failure_after_completion_is_harmless(self):
        clean = ClusterSimulator(spec(), FixedTimeModel(10.0)).run(
            JobDag([map_only("j", 4)]))
        late = ClusterSimulator(
            spec(), FixedTimeModel(10.0),
            node_failures=TargetedNodeFailures({"m1.large-0": 10_000.0}))
        result = late.run(JobDag([map_only("j", 4)]))
        assert result.makespan == pytest.approx(clean.makespan)
        assert result.lost_nodes == []

    def test_min_live_nodes_validated(self):
        with pytest.raises(ValidationError):
            ClusterSimulator(spec(), FixedTimeModel(1.0), min_live_nodes=0)

    def test_trace_and_metrics_record_the_loss(self):
        recorder = InMemoryRecorder()
        registry = MetricsRegistry()
        sim = ClusterSimulator(
            spec(), FixedTimeModel(10.0), recorder=recorder, metrics=registry,
            node_failures=TargetedNodeFailures(
                {"m1.large-0": 5.0}, cause=CAUSE_REVOCATION))
        sim.run(JobDag([map_only("j", 8)]))
        node_events = [e for e in recorder.trace().events
                       if e.phase == PHASE_NODE]
        assert len(node_events) == 1
        assert node_events[0].status == STATUS_REVOKED
        assert node_events[0].task_id == "m1.large-0"
        lost_events = [e for e in recorder.trace().events
                       if e.status == STATUS_LOST]
        assert len(lost_events) == 2
        assert registry.counter("sim.nodes_lost").value == 1
        assert registry.counter("sim.revocations").value == 1
        assert registry.counter("sim.attempts_lost").value == 2


class TestMapOutputInvalidation:
    def mr_job(self, shuffle_bytes):
        maps = [make_map_task(f"m{i}", TaskWork(shuffle_bytes=shuffle_bytes))
                for i in range(4)]
        reduces = [make_reduce_task("r0", TaskWork())]
        return Job("mr", JobKind.MAPREDUCE, maps, reduces)

    def test_map_outputs_on_dead_node_are_reexecuted(self):
        # 2 nodes x 1 slot, 10s tasks: maps finish at t=20, then a long
        # shuffle (2 GB over 2x80 MB/s ~ 13s).  Killing node-0 at t=25 —
        # after its maps finished but before the shuffle completed —
        # invalidates the two map outputs parked on its local disk.
        cluster = spec(slots=1)
        clean = ClusterSimulator(cluster, FixedTimeModel(10.0)).run(
            JobDag([self.mr_job(2**29)])).makespan
        sim = ClusterSimulator(
            cluster, FixedTimeModel(10.0),
            node_failures=TargetedNodeFailures({"m1.large-0": 25.0}))
        result = sim.run(JobDag([self.mr_job(2**29)]))
        assert result.reexecuted_tasks == 2
        assert result.makespan > clean
        # The re-executed maps succeed a second time before the reduce runs.
        successes = [a.task.task_id for a in
                     result.job("mr").attempts_with_status(SUCCESS)]
        assert successes.count("r0") == 1
        assert len(successes) == 4 + 2 + 1

    def test_reexec_traced(self):
        recorder = InMemoryRecorder()
        sim = ClusterSimulator(
            spec(slots=1), FixedTimeModel(10.0), recorder=recorder,
            node_failures=TargetedNodeFailures({"m1.large-0": 25.0}))
        sim.run(JobDag([self.mr_job(2**29)]))
        reexec = [e for e in recorder.trace().events
                  if e.phase == PHASE_REEXEC]
        assert len(reexec) == 2

    def test_no_reexec_once_shuffle_done(self):
        # Tiny shuffle: it completes right after the maps, so a later node
        # loss can no longer invalidate map outputs.
        sim = ClusterSimulator(
            spec(slots=1), FixedTimeModel(10.0),
            node_failures=TargetedNodeFailures({"m1.large-0": 25.0}))
        result = sim.run(JobDag([self.mr_job(8)]))
        assert result.reexecuted_tasks == 0
        assert result.count_attempts(SUCCESS) >= 5


class TestHdfsBlastRadius:
    def test_node_loss_bills_rereplication(self):
        cluster = spec(nodes=3)
        namenode = cluster_hdfs(cluster.node_names())
        recorder = InMemoryRecorder()
        sim = ClusterSimulator(
            cluster, FixedTimeModel(10.0), recorder=recorder,
            namenode=namenode,
            node_failures=TargetedNodeFailures({"m1.large-0": 5.0}))
        result = sim.run(JobDag([map_only("j", 6)]))
        assert result.rereplicated_bytes > 0
        assert not namenode.has_datanode("m1.large-0")
        spans = [e for e in recorder.trace().events
                 if e.phase == PHASE_REREPLICATION]
        assert len(spans) == 1
        assert spans[0].end > spans[0].start  # billed in virtual time

    def test_under_replicated_recorded_when_no_spare_capacity(self):
        # Three nodes, but the only spare has no room for the copies: the
        # run degrades and the blocks are *recorded* as under-replicated
        # instead of raising mid-simulation.
        cluster = spec(nodes=3)
        names = cluster.node_names()
        namenode = NameNode(replication=2)
        namenode.register_datanode(DataNode(names[0], 10**12))
        namenode.register_datanode(DataNode(names[1], 10**12))
        namenode.register_datanode(DataNode(names[2], 1))  # full
        namenode.create("/input/X", 256 * 2**20, writer=names[0])
        sim = ClusterSimulator(
            cluster, FixedTimeModel(10.0), namenode=namenode,
            node_failures=TargetedNodeFailures({names[0]: 5.0}))
        result = sim.run(JobDag([map_only("j", 6)]))
        assert result.count_attempts(SUCCESS) == 6
        assert namenode.under_replicated()

    def test_concurrent_loss_of_replication_datanodes_degrades(self):
        # Losing as many nodes at once as the replication factor must
        # degrade the run, not crash it (satellite requirement).
        cluster = spec(nodes=4)
        namenode = cluster_hdfs(cluster.node_names(), replication=2)
        sim = ClusterSimulator(
            cluster, FixedTimeModel(10.0), namenode=namenode,
            node_failures=TargetedNodeFailures({"m1.large-0": 5.0,
                                                "m1.large-1": 5.0}))
        result = sim.run(JobDag([map_only("j", 8)]))
        assert result.count_attempts(SUCCESS) == 8
        assert len(result.lost_nodes) == 2


class TestSpotWaveInSimulator:
    def test_wave_revokes_half_the_cluster_and_run_degrades(self):
        cluster = spec(nodes=4, slots=1)
        hour = SpotRevocationWaves(bid_fraction=0.35,
                                   seed=4).first_wave_hour()
        model = SpotRevocationWaves(bid_fraction=0.35, seed=4,
                                    victim_fraction=0.5,
                                    hour_seconds=15.0 / hour)
        result = ClusterSimulator(
            cluster, FixedTimeModel(10.0),
            node_failures=model).run(JobDag([map_only("j", 12)]))
        assert len(result.lost_nodes) == 2
        assert {f.cause for f in result.lost_nodes} == {CAUSE_REVOCATION}
        assert len({f.at for f in result.lost_nodes}) == 1
        assert result.count_attempts(SUCCESS) == 12
