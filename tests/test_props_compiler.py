"""Property-based tests: compiler determinism and structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompilerParams, compile_program
from repro.core.physical import MatMulParams, PhysicalContext
from repro.core.program import Program

N = 8


@st.composite
def small_program(draw) -> Program:
    """A random 2-4 statement program over square NxN inputs."""
    program = Program("prop")
    a = program.declare_input("A", N, N)
    b = program.declare_input("B", N, N)
    bindings = [a, b]
    n_statements = draw(st.integers(2, 4))
    for index in range(n_statements):
        left = draw(st.sampled_from(bindings))
        right = draw(st.sampled_from(bindings))
        kind = draw(st.sampled_from(["matmul", "add", "scaled", "trans"]))
        if kind == "matmul":
            expr = left @ right
        elif kind == "add":
            expr = left + right
        elif kind == "scaled":
            expr = left * draw(st.sampled_from([0.5, 1.0, 2.0]))
        else:
            expr = left.T @ right
        bindings.append(program.assign(f"v{index}", expr))
    program.mark_output(f"v{n_statements - 1}")
    return program


def dag_signature(compiled):
    """Structure of a compiled DAG, independent of object identity."""
    return [
        (job.job_id, job.kind.value, len(job.map_tasks),
         len(job.reduce_tasks), tuple(sorted(job.depends_on)),
         job.total_bytes_read(), job.total_flops())
        for job in compiled.dag.topological_order()
    ]


@given(program_pair=st.tuples(small_program(), st.integers(1, 4)))
@settings(max_examples=50, deadline=None)
def test_compilation_is_deterministic(program_pair):
    program, tile = program_pair
    first = compile_program(program, PhysicalContext(tile))
    second = compile_program(program, PhysicalContext(tile))
    assert dag_signature(first) == dag_signature(second)


@given(program=small_program(), tile=st.integers(2, 8),
       ks=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_dependencies_reference_existing_jobs(program, tile, ks):
    params = CompilerParams(matmul=MatMulParams(1, 1, ks))
    compiled = compile_program(program, PhysicalContext(tile), params)
    job_ids = {job.job_id for job in compiled.dag}
    for job in compiled.dag:
        assert job.depends_on <= job_ids
        assert job.job_id not in job.depends_on


@given(program=small_program(), tile=st.integers(2, 8),
       seed=st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_all_optimizations_preserve_results(program, tile, seed):
    """Fusion + CSE + reorder + simplify on vs all off: same numbers."""
    from repro.core.executor import run_program
    rng = np.random.default_rng(seed)
    env = {"A": rng.standard_normal((N, N)),
           "B": rng.standard_normal((N, N))}
    everything_on = run_program(program, env, tile_size=tile, max_workers=1)
    everything_off = run_program(
        program, env, tile_size=tile, max_workers=1,
        params=CompilerParams(fusion_enabled=False, cse_enabled=False,
                              reorder_chains=False, simplify_enabled=False))
    output = program.outputs[0]
    np.testing.assert_allclose(everything_on.output(output),
                               everything_off.output(output), atol=1e-9)
