"""Unit tests for tiles and tile-level kernels."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ShapeError, ValidationError
from repro.matrix.tile import (
    SPARSE_THRESHOLD,
    Tile,
    TileId,
    densify,
    elementwise_flops,
    matmul_flops,
    maybe_sparsify,
    tile_add,
    tile_elementwise,
    tile_matmul,
)


class TestTileId:
    def test_key_is_stable(self):
        assert TileId("A", 2, 3).key() == "A/tile_2_3"

    def test_equality(self):
        assert TileId("A", 0, 0) == TileId("A", 0, 0)
        assert TileId("A", 0, 0) != TileId("B", 0, 0)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValidationError):
            TileId("A", -1, 0)
        with pytest.raises(ValidationError):
            TileId("A", 0, -2)

    def test_hashable(self):
        assert len({TileId("A", 0, 0), TileId("A", 0, 0)}) == 1


class TestTile:
    def test_dense_tile_shape(self):
        tile = Tile(TileId("A", 0, 0), np.ones((3, 4)))
        assert tile.shape == (3, 4)
        assert not tile.is_sparse

    def test_1d_input_promoted_to_2d(self):
        tile = Tile(TileId("A", 0, 0), np.arange(4.0))
        assert tile.shape == (1, 4)

    def test_3d_input_rejected(self):
        with pytest.raises(ShapeError):
            Tile(TileId("A", 0, 0), np.zeros((2, 2, 2)))

    def test_sparse_tile(self):
        payload = sparse.csr_matrix(np.eye(5))
        tile = Tile(TileId("A", 0, 0), payload)
        assert tile.is_sparse
        assert tile.shape == (5, 5)
        assert tile.nnz == 5

    def test_nnz_dense(self):
        data = np.zeros((4, 4))
        data[0, 0] = data[1, 2] = 1.0
        assert Tile(TileId("A", 0, 0), data).nnz == 2

    def test_nbytes_dense(self):
        tile = Tile(TileId("A", 0, 0), np.ones((10, 10)))
        assert tile.nbytes() == 800

    def test_nbytes_sparse_smaller_for_sparse_data(self):
        data = np.zeros((100, 100))
        data[0, 0] = 1.0
        dense_tile = Tile(TileId("A", 0, 0), data)
        sparse_tile = dense_tile.compacted()
        assert sparse_tile.is_sparse
        assert sparse_tile.nbytes() < dense_tile.nbytes()

    def test_nbytes_has_floor(self):
        tile = Tile(TileId("A", 0, 0), np.zeros((1, 1)))
        assert tile.nbytes() >= 64

    def test_to_dense_roundtrip(self):
        data = np.arange(12.0).reshape(3, 4)
        tile = Tile(TileId("A", 0, 0), data)
        np.testing.assert_array_equal(tile.to_dense(), data)

    def test_compacted_keeps_dense_when_dense(self):
        tile = Tile(TileId("A", 0, 0), np.ones((8, 8)))
        assert not tile.compacted().is_sparse

    def test_compacted_preserves_values(self):
        data = np.zeros((20, 20))
        data[3, 7] = 2.5
        tile = Tile(TileId("A", 0, 0), data).compacted()
        np.testing.assert_array_equal(tile.to_dense(), data)


class TestSparsify:
    def test_below_threshold_becomes_sparse(self):
        data = np.zeros((10, 10))
        data[0, 0] = 1.0
        assert sparse.issparse(maybe_sparsify(data))

    def test_dense_data_stays_dense(self):
        assert not sparse.issparse(maybe_sparsify(np.ones((10, 10))))

    def test_threshold_boundary(self):
        n = 100
        data = np.zeros((n, 1))
        count = int(n * SPARSE_THRESHOLD)
        data[:count, 0] = 1.0
        # Exactly at threshold: stays dense (strict less-than).
        assert not sparse.issparse(maybe_sparsify(data))

    def test_empty_array(self):
        result = maybe_sparsify(np.zeros((0, 0)))
        assert result.size == 0

    def test_densify_sparse(self):
        data = sparse.csr_matrix(np.eye(3))
        out = densify(data)
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, np.eye(3))


class TestKernels:
    def test_matmul_dense(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose(tile_matmul(a, b), a @ b)

    def test_matmul_sparse_sparse_stays_sparse(self):
        a = sparse.csr_matrix(np.eye(3))
        b = sparse.csr_matrix(np.eye(3) * 2)
        result = tile_matmul(a, b)
        assert sparse.issparse(result)
        np.testing.assert_allclose(densify(result), np.eye(3) * 2)

    def test_matmul_mixed_densifies(self):
        a = sparse.csr_matrix(np.eye(3))
        b = np.ones((3, 2))
        result = tile_matmul(a, b)
        assert isinstance(result, np.ndarray)
        np.testing.assert_allclose(result, np.ones((3, 2)))

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ShapeError):
            tile_matmul(np.ones((2, 3)), np.ones((2, 3)))

    def test_add(self):
        a = np.ones((2, 2))
        np.testing.assert_allclose(tile_add(a, a), 2 * a)

    def test_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            tile_add(np.ones((2, 2)), np.ones((3, 3)))

    def test_add_sparse(self):
        a = sparse.csr_matrix(np.eye(3))
        result = tile_add(a, a)
        np.testing.assert_allclose(densify(result), 2 * np.eye(3))

    def test_elementwise_applies_function(self):
        a = np.full((2, 2), 4.0)
        np.testing.assert_allclose(tile_elementwise(np.sqrt, a), 2 * np.ones((2, 2)))

    def test_elementwise_multiple_inputs(self):
        a = np.full((2, 2), 3.0)
        b = np.full((2, 2), 4.0)
        np.testing.assert_allclose(
            tile_elementwise(lambda x, y: x * y, a, b), np.full((2, 2), 12.0)
        )

    def test_elementwise_shape_mismatch(self):
        with pytest.raises(ShapeError):
            tile_elementwise(lambda x, y: x + y, np.ones((2, 2)), np.ones((3, 3)))


class TestFlopCounts:
    def test_matmul_flops(self):
        assert matmul_flops(10, 20, 30) == 2 * 10 * 20 * 30

    def test_elementwise_flops(self):
        assert elementwise_flops(10, 10) == 100
        assert elementwise_flops(10, 10, n_inputs=3) == 300

    def test_elementwise_flops_min_one_input(self):
        assert elementwise_flops(5, 5, n_inputs=0) == 25
