"""Property-based tests: random expression trees survive normalization
and compile/execute to the same numbers as the numpy interpreter."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import normalize_transposes
from repro.core.expr import Expr, Transpose, Var, evaluate_with_numpy
from repro.core.executor import run_program
from repro.core.program import Program

N = 6  # all matrices square NxN so every combination is shape-legal


@st.composite
def square_expr(draw, depth=0) -> Expr:
    """A random expression over square NxN variables A and B."""
    if depth >= 4 or draw(st.booleans()) and depth > 1:
        name = draw(st.sampled_from(["A", "B"]))
        return Var(name, (N, N))
    choice = draw(st.sampled_from(
        ["matmul", "add", "sub", "mul", "scalar", "transpose", "func"]))
    if choice == "matmul":
        return (draw(square_expr(depth + 1))
                @ draw(square_expr(depth + 1)))
    if choice in ("add", "sub", "mul"):
        left = draw(square_expr(depth + 1))
        right = draw(square_expr(depth + 1))
        return {"add": left + right, "sub": left - right,
                "mul": left * right}[choice]
    if choice == "scalar":
        scalar = draw(st.sampled_from([0.5, 2.0, -1.0, 3.0]))
        child = draw(square_expr(depth + 1))
        return child * scalar if draw(st.booleans()) else child + scalar
    if choice == "transpose":
        return draw(square_expr(depth + 1)).T
    return draw(square_expr(depth + 1)).apply(
        draw(st.sampled_from(["abs", "square"])))


def env(seed):
    rng = np.random.default_rng(seed)
    return {"A": rng.standard_normal((N, N)),
            "B": rng.standard_normal((N, N))}


@given(expr=square_expr(), seed=st.integers(0, 2**31))
@settings(max_examples=80, deadline=None)
def test_normalization_preserves_semantics(expr, seed):
    environment = env(seed)
    normalized = normalize_transposes(expr)
    np.testing.assert_allclose(
        evaluate_with_numpy(normalized, environment),
        evaluate_with_numpy(expr, environment),
        atol=1e-8,
    )


@given(expr=square_expr(), seed=st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_normalization_pushes_transposes_to_leaves(expr, seed):
    normalized = normalize_transposes(expr)
    stack = [normalized]
    while stack:
        node = stack.pop()
        if isinstance(node, Transpose):
            assert isinstance(node.child, Var)
        stack.extend(node.children())


@given(expr=square_expr(), seed=st.integers(0, 2**31),
       tile=st.sampled_from([2, 3, 6]))
@settings(max_examples=40, deadline=None)
def test_compiled_execution_matches_interpreter(expr, seed, tile):
    environment = env(seed)
    program = Program("prop")
    program.declare_input("A", N, N)
    program.declare_input("B", N, N)
    program.assign("OUT", expr)
    program.mark_output("OUT")
    result = run_program(program, environment, tile_size=tile, max_workers=1)
    expected = evaluate_with_numpy(expr, environment)
    np.testing.assert_allclose(result.output("OUT"), expected,
                               atol=1e-7, rtol=1e-7)
