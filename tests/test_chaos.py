"""Unit tests for the chaos harness and the checkpoint-interval advisor."""

import math

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.cloud.spot import SpotMarket
from repro.core.advisor import (
    advise_checkpoint_interval,
    revocation_probability,
)
from repro.core.chaos import (
    RECOVERY_RESTART,
    RECOVERY_RESUME,
    SCENARIO_FLAKY_TASKS,
    SCENARIO_NODE_CRASH,
    SCENARIO_REVOCATION_WAVE,
    SCENARIOS,
    build_hdfs,
    build_scenario,
    run_chaos,
)
from repro.errors import ValidationError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.task import TaskWork, make_map_task
from repro.hadoop.timemodel import FixedTimeModel
from repro.observability import InMemoryRecorder, MetricsRegistry, PHASE_NODE


def spec(nodes=2, slots=2):
    return ClusterSpec(get_instance_type("m1.large"), nodes, slots)


def busy_dag(n_tasks=8):
    tasks = [make_map_task(f"t{i}", TaskWork(bytes_read=1))
             for i in range(n_tasks)]
    return JobDag([Job("j", JobKind.MAP_ONLY, tasks)])


class TestBuildScenario:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            build_scenario("meteor-strike", 0, spec(), 100.0)

    def test_nonpositive_baseline_rejected(self):
        with pytest.raises(ValidationError):
            build_scenario(SCENARIO_NODE_CRASH, 0, spec(), 0.0)

    def test_node_crash_lands_mid_run(self):
        __, node_failures = build_scenario(SCENARIO_NODE_CRASH, 3, spec(),
                                           100.0)
        events = node_failures.failures(spec().node_names())
        assert len(events) == 1
        assert 0 < events[0].at < 100.0

    def test_flaky_tasks_is_task_level(self):
        failures, node_failures = build_scenario(SCENARIO_FLAKY_TASKS, 0,
                                                 spec(), 100.0)
        assert failures is not None
        assert node_failures is None


class TestBuildHdfs:
    def test_inputs_spread_across_nodes(self):
        cluster = spec(nodes=4)
        namenode = build_hdfs(cluster, {"/input/A": 2**28,
                                        "/input/B": 2**28})
        assert sorted(n.name for n in namenode.datanodes()) \
            == sorted(cluster.node_names())
        assert namenode.exists("/input/A")
        assert namenode.exists("/input/B")

    def test_replication_capped_by_cluster_size(self):
        namenode = build_hdfs(spec(nodes=1), {"/input/A": 2**20})
        assert namenode.replication == 1


class TestRunChaos:
    def test_node_crash_hits_running_work(self):
        # 4 nodes with 3-way replication: losing any node leaves blocks
        # under target, so the crash visibly bills re-replication traffic.
        report = run_chaos(busy_dag(16), spec(nodes=4), FixedTimeModel(10.0),
                           SCENARIO_NODE_CRASH, seed=0,
                           input_files={"/input/X": 2**28})
        assert report.completed
        assert report.attempts_lost >= 1
        assert report.overhead_seconds >= 0
        assert report.rereplicated_bytes > 0
        assert report.cost >= report.baseline_cost
        assert "chaos scenario" in report.describe()

    def test_revocation_wave_is_correlated(self):
        report = run_chaos(busy_dag(16), spec(nodes=4), FixedTimeModel(10.0),
                           SCENARIO_REVOCATION_WAVE, seed=0)
        assert report.completed
        assert len(report.nodes_lost) == 2
        assert len({f.at for f in report.nodes_lost}) == 1

    def test_restart_never_beats_resume(self):
        resume = run_chaos(busy_dag(), spec(), FixedTimeModel(10.0),
                           SCENARIO_NODE_CRASH, seed=0)
        restart = run_chaos(busy_dag(), spec(), FixedTimeModel(10.0),
                            SCENARIO_NODE_CRASH, seed=0,
                            recovery=RECOVERY_RESTART)
        assert resume.completed and restart.completed
        assert resume.makespan_seconds <= restart.makespan_seconds
        assert resume.cost <= restart.cost

    def test_quorum_loss_reports_abort(self):
        report = run_chaos(busy_dag(), spec(), FixedTimeModel(10.0),
                           SCENARIO_NODE_CRASH, seed=0, min_live_nodes=2)
        assert not report.completed
        assert report.abort_reason
        assert math.isinf(report.overhead_seconds)
        assert "ABORTED" in report.describe()

    def test_flaky_tasks_complete_with_retries(self):
        report = run_chaos(busy_dag(20), spec(), FixedTimeModel(10.0),
                           SCENARIO_FLAKY_TASKS, seed=1)
        assert report.completed
        assert report.overhead_seconds >= 0

    def test_invalid_recovery_rejected(self):
        with pytest.raises(ValidationError, match="recovery"):
            run_chaos(busy_dag(), spec(), FixedTimeModel(10.0),
                      SCENARIO_NODE_CRASH, recovery="prayer")

    def test_telemetry_flows_through(self):
        recorder = InMemoryRecorder()
        registry = MetricsRegistry()
        run_chaos(busy_dag(), spec(), FixedTimeModel(10.0),
                  SCENARIO_NODE_CRASH, seed=0, recorder=recorder,
                  metrics=registry)
        assert any(e.phase == PHASE_NODE for e in recorder.trace().events)
        assert registry.counter("sim.nodes_lost").value >= 1

    def test_scenarios_replay_deterministically(self):
        for scenario in SCENARIOS:
            one = run_chaos(busy_dag(), spec(), FixedTimeModel(10.0),
                            scenario, seed=5)
            two = run_chaos(busy_dag(), spec(), FixedTimeModel(10.0),
                            scenario, seed=5)
            assert one.makespan_seconds == two.makespan_seconds
            assert one.attempts_lost == two.attempts_lost
            assert one.nodes_lost == two.nodes_lost
            assert one.cost == two.cost


class TestCheckpointAdvisor:
    def test_hazard_in_unit_interval_and_deterministic(self):
        market = SpotMarket()
        hazard = revocation_probability(market, 0.35)
        assert 0.0 <= hazard <= 1.0
        assert hazard == revocation_probability(market, 0.35)

    def test_higher_bid_lowers_hazard(self):
        market = SpotMarket()
        assert revocation_probability(market, 0.9) \
            <= revocation_probability(market, 0.25)

    def test_unbeatable_bid_means_no_checkpointing(self):
        advice = advise_checkpoint_interval(SpotMarket(), bid_fraction=100.0,
                                            checkpoint_seconds=10.0)
        assert advice.revocation_probability_per_hour == 0.0
        assert math.isinf(advice.mtbf_seconds)
        assert advice.expected_overhead_fraction == 0.0
        assert "optional" in advice.describe()

    def test_young_daly_shape(self):
        cheap = advise_checkpoint_interval(SpotMarket(), 0.35,
                                           checkpoint_seconds=1.0)
        dear = advise_checkpoint_interval(SpotMarket(), 0.35,
                                          checkpoint_seconds=100.0)
        # interval = sqrt(2 C MTBF): pricier snapshots -> checkpoint less.
        assert dear.interval_seconds > cheap.interval_seconds
        assert cheap.interval_seconds \
            == pytest.approx(math.sqrt(2.0 * 1.0 * cheap.mtbf_seconds))
        assert 0 < cheap.expected_overhead_fraction < 1

    def test_work_seconds_clamps_interval(self):
        advice = advise_checkpoint_interval(SpotMarket(), 0.35,
                                            checkpoint_seconds=100.0,
                                            work_seconds=50.0)
        assert advice.interval_seconds == 50.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            advise_checkpoint_interval(SpotMarket(), 0.35,
                                       checkpoint_seconds=0.0)
        with pytest.raises(ValidationError):
            revocation_probability(SpotMarket(), 0.0)
        with pytest.raises(ValidationError):
            revocation_probability(SpotMarket(), 0.35, sample_hours=0)
