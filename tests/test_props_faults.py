"""Property-based tests: simulator invariants under failures/speculation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import ClusterSpec, get_instance_type
from repro.errors import SchedulingError
from repro.hadoop.faults import RandomFailures
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.simulator import (
    FAILED,
    KILLED,
    SUCCESS,
    ClusterSimulator,
)
from repro.hadoop.task import TaskWork, make_map_task
from repro.hadoop.timemodel import FixedTimeModel


def build_dag(n_tasks):
    tasks = [make_map_task(f"t{i}", TaskWork()) for i in range(n_tasks)]
    return JobDag([Job("j", JobKind.MAP_ONLY, tasks)])


def spec(nodes, slots):
    return ClusterSpec(get_instance_type("m1.large"), nodes, min(slots, 4))


@given(n_tasks=st.integers(1, 30), nodes=st.integers(1, 4),
       slots=st.integers(1, 4), probability=st.floats(0.0, 0.4),
       seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_every_task_succeeds_exactly_once_despite_failures(
        n_tasks, nodes, slots, probability, seed):
    failures = RandomFailures(probability=probability, seed=seed,
                              max_attempts=50)
    sim = ClusterSimulator(spec(nodes, slots), FixedTimeModel(1.0),
                           failures=failures)
    result = sim.run(build_dag(n_tasks))
    timeline = result.job("j")
    successes = timeline.attempts_with_status(SUCCESS)
    assert sorted(a.task.task_id for a in successes) \
        == sorted(f"t{i}" for i in range(n_tasks))


@given(n_tasks=st.integers(1, 30), probability=st.floats(0.01, 0.4),
       seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_failures_never_speed_things_up(n_tasks, probability, seed):
    cluster = spec(2, 2)
    clean = ClusterSimulator(cluster, FixedTimeModel(1.0)).run(
        build_dag(n_tasks)).makespan
    failures = RandomFailures(probability=probability, seed=seed,
                              max_attempts=50)
    faulty = ClusterSimulator(cluster, FixedTimeModel(1.0),
                              failures=failures).run(
        build_dag(n_tasks)).makespan
    assert faulty >= clean - 1e-9


@given(n_tasks=st.integers(1, 20), nodes=st.integers(1, 4),
       slots=st.integers(1, 3),
       slow_factor=st.floats(1.0, 20.0), seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_speculation_invariants(n_tasks, nodes, slots, slow_factor, seed):
    """With speculation on: every task succeeds exactly once, killed
    attempts never exceed successes, and no slot is oversubscribed."""
    cluster = spec(nodes, slots)
    slow = {cluster.node_names()[seed % nodes]: slow_factor}
    sim = ClusterSimulator(cluster, FixedTimeModel(2.0), speculative=True,
                           slow_nodes=slow)
    result = sim.run(build_dag(n_tasks))
    timeline = result.job("j")
    successes = timeline.attempts_with_status(SUCCESS)
    assert len(successes) == n_tasks
    assert len({a.task.task_id for a in successes}) == n_tasks
    assert result.count_attempts(KILLED) <= n_tasks
    # slot occupancy invariant across all attempt kinds
    events = []
    for attempt in timeline.attempts:
        events.append((attempt.start, 1, attempt.node))
        events.append((attempt.end, -1, attempt.node))
    events.sort(key=lambda e: (e[0], e[1]))
    load = {}
    for __, delta, node in events:
        load[node] = load.get(node, 0) + delta
        assert load[node] <= cluster.slots_per_node


@given(n_tasks=st.integers(1, 15), probability=st.floats(0.05, 0.3),
       seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_failed_attempts_counted_consistently(n_tasks, probability, seed):
    failures = RandomFailures(probability=probability, seed=seed,
                              max_attempts=50)
    sim = ClusterSimulator(spec(2, 2), FixedTimeModel(1.0),
                           failures=failures)
    result = sim.run(build_dag(n_tasks))
    total = sum(len(t.attempts) for t in result.job_timelines.values())
    assert total == (result.count_attempts(SUCCESS)
                     + result.count_attempts(FAILED)
                     + result.count_attempts(KILLED))
    assert result.count_attempts(SUCCESS) == n_tasks


@given(probability=st.floats(0.9, 0.99), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_hopeless_failure_rates_abort(probability, seed):
    """With very high failure probability and few attempts allowed, the
    job either aborts with a clear error or (rarely) completes."""
    failures = RandomFailures(probability=probability, seed=seed,
                              max_attempts=2)
    sim = ClusterSimulator(spec(2, 2), FixedTimeModel(1.0),
                           failures=failures)
    try:
        result = sim.run(build_dag(10))
    except SchedulingError as error:
        assert "failed 2 times" in str(error)
    else:
        assert result.count_attempts(SUCCESS) == 10


# ---------------------------------------------------------------------------
# Node-level failures.
# ---------------------------------------------------------------------------

from repro.errors import QuorumLostError  # noqa: E402
from repro.hadoop.faults import (  # noqa: E402
    RandomNodeFailures,
    TargetedNodeFailures,
)
from repro.hadoop.simulator import LOST  # noqa: E402
from repro.hdfs.datanode import DataNode  # noqa: E402
from repro.hdfs.namenode import NameNode  # noqa: E402
from repro.observability import InMemoryRecorder, MetricsRegistry  # noqa: E402


def _run_with_node_failures(n_tasks, nodes, slots, rate, seed):
    """One full traced simulation; everything rebuilt from seeds."""
    cluster = spec(nodes, slots)
    namenode = NameNode(replication=2)
    for name in cluster.node_names():
        namenode.register_datanode(DataNode(name, 10**12))
    namenode.create("/input/X", 256 * 2**20, writer=cluster.node_names()[0])
    recorder = InMemoryRecorder()
    metrics = MetricsRegistry()
    sim = ClusterSimulator(
        cluster, FixedTimeModel(1.0), recorder=recorder, metrics=metrics,
        node_failures=RandomNodeFailures(rate, seed=seed),
        namenode=namenode)
    try:
        result = sim.run(build_dag(n_tasks))
    except QuorumLostError as error:
        return ("aborted", str(error))
    events = sorted((e.phase, e.task_id, e.start, e.end, e.status, e.slot)
                    for e in recorder.trace().events)
    return (
        result.makespan,
        [(f.node, f.at, f.cause) for f in result.lost_nodes],
        result.rereplicated_bytes,
        result.reexecuted_tasks,
        result.count_attempts(SUCCESS),
        result.count_attempts(LOST),
        events,
    )


@given(n_tasks=st.integers(1, 25), nodes=st.integers(2, 4),
       slots=st.integers(1, 3), rate=st.floats(0.0, 400.0),
       seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_node_failure_simulation_replays_identically(
        n_tasks, nodes, slots, rate, seed):
    """Same seeds -> byte-for-byte identical timeline, traffic, and trace
    (the abort branch included)."""
    assert _run_with_node_failures(n_tasks, nodes, slots, rate, seed) \
        == _run_with_node_failures(n_tasks, nodes, slots, rate, seed)


@given(n_tasks=st.integers(1, 25), nodes=st.integers(2, 4),
       slots=st.integers(1, 3), seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_losing_all_but_one_node_degrades_not_crashes(
        n_tasks, nodes, slots, seed):
    """Concurrently killing every node but one — as many as (or more than)
    the HDFS replication factor — must degrade the run onto the survivor,
    never crash it."""
    cluster = spec(nodes, slots)
    names = cluster.node_names()
    survivor = names[seed % nodes]
    victims = {name: 0.5 for name in names if name != survivor}
    namenode = NameNode(replication=min(2, nodes))
    for name in names:
        namenode.register_datanode(DataNode(name, 10**12))
    namenode.create("/input/X", 256 * 2**20, writer=names[0])
    sim = ClusterSimulator(cluster, FixedTimeModel(1.0),
                           node_failures=TargetedNodeFailures(victims),
                           namenode=namenode)
    result = sim.run(build_dag(n_tasks))
    assert result.count_attempts(SUCCESS) == n_tasks
    assert len(result.lost_nodes) == nodes - 1
    late = [a for a in result.job("j").attempts
            if a.start > 0.5 and a.status == SUCCESS]
    assert all(a.node == survivor for a in late)
