"""Unit tests: failure injection, retries, and speculative execution."""

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.errors import SchedulingError, ValidationError
from repro.hadoop.faults import NoFailures, RandomFailures, TargetedFailures
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.simulator import FAILED, KILLED, SUCCESS, ClusterSimulator
from repro.hadoop.task import TaskWork, make_map_task
from repro.hadoop.timemodel import FixedTimeModel


def spec(nodes=2, slots=2):
    return ClusterSpec(get_instance_type("m1.large"), nodes, slots)


def map_only(job_id, n_tasks):
    tasks = [make_map_task(f"{job_id}-t{i}", TaskWork(bytes_read=1))
             for i in range(n_tasks)]
    return Job(job_id, JobKind.MAP_ONLY, tasks)


class TestFailureModels:
    def test_no_failures(self):
        assert NoFailures().failure_fraction("t", 0) is None

    def test_random_failures_deterministic(self):
        model = RandomFailures(probability=0.5, seed=3)
        outcomes = [model.failure_fraction(f"t{i}", 0) for i in range(50)]
        again = [model.failure_fraction(f"t{i}", 0) for i in range(50)]
        assert outcomes == again
        assert any(o is not None for o in outcomes)
        assert any(o is None for o in outcomes)

    def test_random_failures_rate_roughly_matches(self):
        model = RandomFailures(probability=0.3, seed=1)
        hits = sum(model.failure_fraction(f"t{i}", 0) is not None
                   for i in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_validation(self):
        with pytest.raises(ValidationError):
            RandomFailures(probability=1.0)
        with pytest.raises(ValidationError):
            RandomFailures(probability=0.1, fail_at_fraction=0.0)
        with pytest.raises(ValidationError):
            TargetedFailures(set(), max_attempts=0)

    def test_targeted(self):
        model = TargetedFailures({("a", 0), ("b", 1)})
        assert model.failure_fraction("a", 0) is not None
        assert model.failure_fraction("a", 1) is None
        assert model.failure_fraction("b", 1) is not None


class TestRetries:
    def test_failed_task_is_retried_and_job_completes(self):
        failures = TargetedFailures({("j-t0", 0)}, fail_at_fraction=0.5)
        sim = ClusterSimulator(spec(), FixedTimeModel(2.0), failures=failures)
        result = sim.run(JobDag([map_only("j", 4)]))
        timeline = result.job("j")
        assert len(timeline.attempts_with_status(FAILED)) == 1
        succeeded = {a.task.task_id
                     for a in timeline.attempts_with_status(SUCCESS)}
        assert succeeded == {f"j-t{i}" for i in range(4)}

    def test_failure_costs_time(self):
        clean = ClusterSimulator(spec(nodes=1, slots=1), FixedTimeModel(2.0))
        t_clean = clean.run(JobDag([map_only("j", 2)])).makespan
        failures = TargetedFailures({("j-t0", 0)})
        faulty = ClusterSimulator(spec(nodes=1, slots=1), FixedTimeModel(2.0),
                                  failures=failures)
        t_faulty = faulty.run(JobDag([map_only("j", 2)])).makespan
        assert t_faulty > t_clean

    def test_repeated_failure_aborts_job(self):
        failures = TargetedFailures({("j-t0", i) for i in range(4)},
                                    max_attempts=4)
        sim = ClusterSimulator(spec(), FixedTimeModel(1.0), failures=failures)
        with pytest.raises(SchedulingError, match="failed 4 times"):
            sim.run(JobDag([map_only("j", 2)]))

    def test_retry_succeeds_on_later_attempt(self):
        failures = TargetedFailures({("j-t0", 0), ("j-t0", 1)},
                                    max_attempts=4)
        sim = ClusterSimulator(spec(), FixedTimeModel(1.0), failures=failures)
        result = sim.run(JobDag([map_only("j", 1)]))
        timeline = result.job("j")
        assert len(timeline.attempts_with_status(FAILED)) == 2
        assert len(timeline.attempts_with_status(SUCCESS)) == 1

    def test_random_failures_still_complete(self):
        failures = RandomFailures(probability=0.2, seed=11, max_attempts=8)
        sim = ClusterSimulator(spec(nodes=4, slots=2), FixedTimeModel(1.0),
                               failures=failures)
        result = sim.run(JobDag([map_only("a", 30),
                                 Job("b", JobKind.MAP_ONLY,
                                     [make_map_task(f"b-t{i}", TaskWork())
                                      for i in range(10)],
                                     depends_on={"a"})]))
        assert result.count_attempts(SUCCESS) == 40

    def test_simulation_with_failures_deterministic(self):
        def run_once():
            failures = RandomFailures(probability=0.3, seed=5, max_attempts=8)
            sim = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                   failures=failures)
            return sim.run(JobDag([map_only("j", 20)])).makespan
        assert run_once() == run_once()


class TestSpeculation:
    def slow_node_sim(self, speculative, factor=10.0):
        return ClusterSimulator(
            spec(nodes=2, slots=1), FixedTimeModel(5.0),
            speculative=speculative,
            slow_nodes={"m1.large-0": factor},
        )

    def test_speculation_beats_straggler(self):
        # 2 tasks, 2 nodes, node 0 is 10x slow.  Without speculation the
        # task placed on node 0 takes 50s; with it, the idle fast node
        # duplicates the straggler after finishing its own task.
        dag = JobDag([map_only("j", 2)])
        without = self.slow_node_sim(speculative=False).run(dag)
        dag2 = JobDag([map_only("j", 2)])
        with_spec = self.slow_node_sim(speculative=True).run(dag2)
        assert with_spec.makespan < without.makespan

    def test_loser_attempt_is_killed(self):
        dag = JobDag([map_only("j", 2)])
        result = self.slow_node_sim(speculative=True).run(dag)
        assert result.count_attempts(KILLED) == 1
        assert result.count_attempts(SUCCESS) == 2

    def test_no_speculation_without_idle_slots(self):
        # Fully loaded cluster: no slot ever idles while work remains, so
        # nothing can be speculated until the final wave.
        sim = ClusterSimulator(spec(nodes=1, slots=1), FixedTimeModel(1.0),
                               speculative=True)
        result = sim.run(JobDag([map_only("j", 5)]))
        assert result.count_attempts(KILLED) == 0

    def test_each_task_speculated_at_most_once(self):
        sim = ClusterSimulator(
            spec(nodes=4, slots=2), FixedTimeModel(5.0),
            speculative=True, slow_nodes={"m1.large-0": 20.0})
        result = sim.run(JobDag([map_only("j", 3)]))
        killed = result.count_attempts(KILLED)
        succeeded = result.count_attempts(SUCCESS)
        assert succeeded == 3
        assert killed <= 3

    def test_makespan_unaffected_when_nodes_homogeneous(self):
        dag1 = JobDag([map_only("j", 8)])
        dag2 = JobDag([map_only("j", 8)])
        base = ClusterSimulator(spec(), FixedTimeModel(2.0)).run(dag1)
        spec_on = ClusterSimulator(spec(), FixedTimeModel(2.0),
                                   speculative=True).run(dag2)
        assert spec_on.makespan == pytest.approx(base.makespan)


class TestSlowNodes:
    def test_slow_factor_validated(self):
        with pytest.raises(ValidationError):
            ClusterSimulator(spec(), FixedTimeModel(1.0),
                             slow_nodes={"m1.large-0": 0.5})

    def test_slow_node_stretches_its_tasks(self):
        sim = ClusterSimulator(spec(nodes=2, slots=1), FixedTimeModel(2.0),
                               slow_nodes={"m1.large-1": 3.0})
        result = sim.run(JobDag([map_only("j", 2)]))
        durations = {a.node: a.duration for a in result.job("j").attempts}
        assert durations["m1.large-0"] == pytest.approx(2.0)
        assert durations["m1.large-1"] == pytest.approx(6.0)


class TestReducePhaseFailures:
    def test_failed_reduce_is_retried(self):
        from repro.hadoop.task import make_reduce_task
        maps = [make_map_task(f"m{i}", TaskWork(shuffle_bytes=100))
                for i in range(2)]
        reduces = [make_reduce_task(f"r{i}", TaskWork()) for i in range(2)]
        job = Job("mr", JobKind.MAPREDUCE, maps, reduces)
        failures = TargetedFailures({("r0", 0)})
        sim = ClusterSimulator(spec(), FixedTimeModel(1.0), failures=failures)
        result = sim.run(JobDag([job]))
        timeline = result.job("mr")
        assert len(timeline.attempts_with_status(FAILED)) == 1
        succeeded = {a.task.task_id
                     for a in timeline.attempts_with_status(SUCCESS)}
        assert succeeded == {"m0", "m1", "r0", "r1"}

    def test_map_failure_delays_shuffle(self):
        from repro.hadoop.task import make_reduce_task
        maps = [make_map_task(f"m{i}", TaskWork(shuffle_bytes=10**7))
                for i in range(2)]
        reduces = [make_reduce_task("r0", TaskWork())]

        def run_with(failures):
            job = Job("mr", JobKind.MAPREDUCE, list(maps), list(reduces))
            sim = ClusterSimulator(spec(), FixedTimeModel(2.0),
                                   failures=failures)
            return sim.run(JobDag([job])).makespan

        clean = run_with(None)
        faulty = run_with(TargetedFailures({("m0", 0)}))
        assert faulty > clean

    def test_exhausted_reduce_attempts_abort(self):
        from repro.hadoop.task import make_reduce_task
        maps = [make_map_task("m0", TaskWork(shuffle_bytes=10))]
        reduces = [make_reduce_task("r0", TaskWork())]
        job = Job("mr", JobKind.MAPREDUCE, maps, reduces)
        failures = TargetedFailures({("r0", i) for i in range(4)},
                                    max_attempts=4)
        sim = ClusterSimulator(spec(), FixedTimeModel(1.0), failures=failures)
        with pytest.raises(SchedulingError, match="r0"):
            sim.run(JobDag([job]))
