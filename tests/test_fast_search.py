"""Differential tests: the fast search must equal the sequential one.

The memoized / parallel / early-aborting optimizer is only allowed to be
*faster* — the chosen plan, the Pareto frontier, and the search trace must
be bit-identical to a sequential optimizer pricing every candidate from
scratch (``NULL_EVAL_CACHE``, ``workers=0``, ``early_abort=False``).
These tests lock that guarantee on GNMF, including a reliability-aware
run with seeded failure scenarios.
"""

import io

import pytest

from repro.cli import build_workload, main
from repro.cloud import get_instance_type
from repro.core.evalcache import NULL_EVAL_CACHE
from repro.core.optimizer import (
    DeploymentOptimizer,
    ReliabilityModel,
    SearchSpace,
)
from repro.core.physical import MatMulParams
from repro.errors import ValidationError
from repro.observability import SearchTrace


def gnmf_space():
    return SearchSpace(
        instance_types=(get_instance_type("m1.large"),
                        get_instance_type("c1.xlarge")),
        node_counts=(1, 2, 4),
        slots_options=(2,),
        matmul_options=(MatMulParams(1, 1, 1), MatMulParams(1, 1, 2)),
    )


def make_optimizer(fast: bool, trace=None):
    """``fast=False`` is the sequential baseline the fast path must match."""
    program, tile = build_workload("gnmf", "tiny")
    kwargs = {}
    if trace is not None:
        kwargs["search_trace"] = trace
    if fast:
        kwargs["workers"] = 4  # default cache stays enabled
    else:
        kwargs["cache"] = NULL_EVAL_CACHE
        kwargs["workers"] = 0
    return DeploymentOptimizer(program, tile_size=tile, **kwargs)


def reliability():
    # Scenario seeds vary per index, so each draw is distinct but
    # reproducible — exactly what the memo key must distinguish.
    return ReliabilityModel(crash_rate_per_hour=0.3, scenarios=3, seed=7)


class TestDifferentialGrid:
    def test_identical_plans_and_frontier(self):
        slow_trace, fast_trace = SearchTrace(), SearchTrace()
        slow = make_optimizer(fast=False, trace=slow_trace)
        fast = make_optimizer(fast=True, trace=fast_trace)
        slow_frontier = slow.skyline(gnmf_space())
        fast_frontier = fast.skyline(gnmf_space())
        assert fast_frontier == slow_frontier
        assert fast_trace.to_dicts() == slow_trace.to_dicts()
        assert fast_trace.frontier_plans() == slow_trace.frontier_plans()

    def test_identical_deadline_solution(self):
        slow = make_optimizer(fast=False)
        fast = make_optimizer(fast=True)
        deadline = 3600.0
        assert (fast.minimize_cost_under_deadline(deadline, gnmf_space())
                == slow.minimize_cost_under_deadline(deadline, gnmf_space()))

    def test_repeat_search_hits_cache(self):
        fast = make_optimizer(fast=True)
        first = fast.enumerate_plans(gnmf_space())
        hits_before = fast.cache.hits
        second = fast.enumerate_plans(gnmf_space())
        assert second == first
        # The entire second pass must be served from the memo.
        assert fast.cache.hits - hits_before >= len(first)

    def test_stats_attached_to_trace(self):
        trace = SearchTrace()
        fast = make_optimizer(fast=True, trace=trace)
        fast.enumerate_plans(gnmf_space())
        fast.enumerate_plans(gnmf_space())
        stats = trace.stats
        assert stats is not None
        assert stats.sim_requests > 0
        assert stats.cache_hits == stats.sim_requests  # all repeats
        assert stats.hit_rate == 1.0
        assert stats.sims_executed == 0
        assert stats.workers == 4
        assert stats.estimated_speedup > 1.0


class TestDifferentialReliable:
    def test_identical_reliable_solution(self):
        slow = make_optimizer(fast=False)
        fast = make_optimizer(fast=True)
        deadline = 7200.0
        model = reliability()
        baseline = slow.minimize_cost_under_deadline_reliable(
            deadline, model, gnmf_space(), early_abort=False)
        quick = fast.minimize_cost_under_deadline_reliable(
            deadline, model, gnmf_space(), early_abort=True)
        assert quick.plan == baseline.plan
        assert quick.scenario_seconds == baseline.scenario_seconds
        assert quick.scenario_costs == baseline.scenario_costs
        assert quick.mean_cost == baseline.mean_cost
        assert quick.p95_seconds == baseline.p95_seconds

    def test_early_abort_skips_scenarios(self):
        fast = make_optimizer(fast=True)
        deadline = 7200.0
        fast.minimize_cost_under_deadline_reliable(
            deadline, reliability(), gnmf_space(), early_abort=True)
        assert fast._scenarios_skipped > 0

    def test_sequential_early_abort_alone_matches(self):
        """Early abort must be sound on its own (no cache, no threads)."""
        baseline = make_optimizer(fast=False)
        pruned = make_optimizer(fast=False)
        deadline = 7200.0
        a = baseline.minimize_cost_under_deadline_reliable(
            deadline, reliability(), gnmf_space(), early_abort=False)
        b = pruned.minimize_cost_under_deadline_reliable(
            deadline, reliability(), gnmf_space(), early_abort=True)
        assert b.plan == a.plan
        assert b.scenario_seconds == a.scenario_seconds


class TestWorkerValidation:
    def test_negative_workers_rejected(self):
        program, tile = build_workload("gnmf", "tiny")
        with pytest.raises(ValidationError):
            DeploymentOptimizer(program, tile_size=tile, workers=-1)


class TestExplainSearchPerf:
    """Acceptance: ``repro explain --search`` reports the cache hit rate."""

    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_perf_block_printed(self):
        code, text = self.run_cli(
            "explain", "gnmf", "--scale", "tiny", "--search",
            "--workers", "2", "--instances", "m1.large",
            "--node-counts", "2,4", "--slot-options", "2")
        assert code == 0
        assert "search performance:" in text
        assert "hit rate" in text
        assert "workers=2" in text
        assert "vs uncached sequential" in text
        # Perf lines must not masquerade as candidate lines.
        perf_lines = [l for l in text.splitlines()
                      if "search performance" in l or "workers=" in l]
        assert all(not l.strip().startswith("#") for l in perf_lines)

    def test_workers_output_identical_to_sequential(self):
        argv = ("explain", "gnmf", "--scale", "tiny", "--search",
                "--instances", "m1.large", "--node-counts", "2,4",
                "--slot-options", "2")
        __, sequential = self.run_cli(*argv)
        __, parallel = self.run_cli(*argv, "--workers", "4")
        strip = ("search performance", "workers=")

        def body(text):
            return [l for l in text.splitlines()
                    if not any(s in l for s in strip)]

        assert body(parallel) == body(sequential)
