"""Unit tests for the local (real-execution) engine.

Every test that runs a DAG is parametrized over both executor backends:
orchestration semantics — ordering, failure propagation, retries, fault
injection, tracing — must be backend-invariant, because the process
backend only offloads tile kernels and leaves the scheduling loop on the
thread path.  The process parametrization rides the tier-2 gate
(tests/conftest.py).
"""

import threading
import time

import pytest

from repro.errors import ExecutionError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.local import LocalExecutor
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task
from repro.observability import (
    InMemoryRecorder,
    SOURCE_ACTUAL,
    STATUS_FAILED,
    STATUS_SUCCESS,
)

BACKENDS = ["thread",
            pytest.param("process", marks=pytest.mark.process_backend)]


@pytest.fixture(params=BACKENDS)
def local_executor(request):
    """Factory for a LocalExecutor pinned to the parametrized backend."""
    made = []

    def factory(**kwargs):
        executor = LocalExecutor(backend=request.param, **kwargs)
        made.append(executor)
        return executor

    yield factory
    for executor in made:
        executor.close()


def counting_task(task_id, counter, lock):
    def run():
        with lock:
            counter.append(task_id)

    return make_map_task(task_id, TaskWork(), run=run)


class TestLocalExecutor:
    def test_runs_all_tasks(self, local_executor):
        counter, lock = [], threading.Lock()
        tasks = [counting_task(f"t{i}", counter, lock) for i in range(10)]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        report = local_executor(max_workers=4).run(dag)
        assert sorted(counter) == sorted(f"t{i}" for i in range(10))
        assert report.total_seconds > 0

    def test_single_worker_sequential(self, local_executor):
        counter, lock = [], threading.Lock()
        tasks = [counting_task(f"t{i}", counter, lock) for i in range(5)]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        local_executor(max_workers=1).run(dag)
        assert counter == [f"t{i}" for i in range(5)]

    def test_dependency_order(self, local_executor):
        order, lock = [], threading.Lock()
        dag = JobDag([
            Job("a", JobKind.MAP_ONLY, [counting_task("a-t", order, lock)]),
            Job("b", JobKind.MAP_ONLY, [counting_task("b-t", order, lock)],
                depends_on={"a"}),
        ])
        local_executor(max_workers=4).run(dag)
        assert order == ["a-t", "b-t"]

    def test_reduce_phase_after_map_phase(self, local_executor):
        order, lock = [], threading.Lock()

        def tracked(task_id, factory):
            def run():
                with lock:
                    order.append(task_id)
            return factory(task_id, TaskWork(), run=run)

        job = Job("mr", JobKind.MAPREDUCE,
                  [tracked(f"m{i}", make_map_task) for i in range(4)],
                  [tracked("r0", make_reduce_task)])
        local_executor(max_workers=4).run(JobDag([job]))
        assert order[-1] == "r0"

    def test_task_failure_wrapped(self, local_executor):
        def boom():
            raise RuntimeError("kaput")

        task = make_map_task("bad", TaskWork(), run=boom)
        dag = JobDag([Job("j", JobKind.MAP_ONLY, [task])])
        with pytest.raises(ExecutionError, match="bad"):
            local_executor(max_workers=2).run(dag)

    def test_tasks_without_run_are_skipped(self, local_executor):
        dag = JobDag([Job("j", JobKind.MAP_ONLY,
                          [make_map_task("t", TaskWork())])])
        report = local_executor().run(dag)
        assert report.job_reports[0].num_tasks == 1

    def test_invalid_workers(self):
        with pytest.raises(ExecutionError):
            LocalExecutor(max_workers=0)

    def test_invalid_backend(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError, match="backend"):
            LocalExecutor(backend="gpu")

    def test_report_per_job(self, local_executor):
        dag = JobDag([
            Job("a", JobKind.MAP_ONLY, []),
            Job("b", JobKind.MAP_ONLY, [], depends_on={"a"}),
        ])
        report = local_executor().run(dag)
        assert [r.job_id for r in report.job_reports] == ["a", "b"]


class TestFailurePaths:
    """Regression tests: exceptions mid-pool must neither hang nor corrupt
    the trace (previously untested under concurrency)."""

    @staticmethod
    def failing_task(task_id="bad"):
        def boom():
            raise RuntimeError(f"{task_id} kaput")

        return make_map_task(task_id, TaskWork(), run=boom)

    @staticmethod
    def slow_task(task_id, ran, lock, seconds=0.05):
        def run():
            with lock:
                ran.append(task_id)
            time.sleep(seconds)

        return make_map_task(task_id, TaskWork(), run=run)

    def test_mid_pool_failure_propagates_without_hanging(self, local_executor):
        ran, lock = [], threading.Lock()
        tasks = [self.failing_task("t0-bad")] + [
            self.slow_task(f"t{i}", ran, lock) for i in range(1, 20)
        ]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        started = time.perf_counter()
        with pytest.raises(ExecutionError, match="t0-bad"):
            local_executor(max_workers=2).run(dag)
        elapsed = time.perf_counter() - started
        # 19 slow tasks at 50ms on 2 workers would take ~0.5s; a prompt
        # cancellation finishes far sooner (in-flight tasks drain only).
        assert elapsed < 0.5

    def test_queued_tasks_cancelled_after_failure(self, local_executor):
        ran, lock = [], threading.Lock()
        tasks = [self.failing_task("t0-bad")] + [
            self.slow_task(f"t{i}", ran, lock) for i in range(1, 20)
        ]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        with pytest.raises(ExecutionError):
            local_executor(max_workers=2).run(dag)
        # The failure fires immediately; only tasks already dispatched may
        # have started — the long tail must have been cancelled.
        assert len(ran) < 19

    def test_failure_in_reduce_phase(self, local_executor):
        def fine():
            pass

        job = Job("mr", JobKind.MAPREDUCE,
                  [make_map_task(f"m{i}", TaskWork(), run=fine)
                   for i in range(4)],
                  [make_reduce_task("r-bad", TaskWork(),
                                    run=self.failing_task().run)])
        with pytest.raises(ExecutionError, match="r-bad"):
            local_executor(max_workers=3).run(JobDag([job]))

    def test_partial_trace_well_formed_after_failure(self, local_executor):
        ran, lock = [], threading.Lock()
        tasks = [self.slow_task(f"t{i}", ran, lock, seconds=0.01)
                 for i in range(4)] + [self.failing_task("t-bad")]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
        with pytest.raises(ExecutionError, match="t-bad"):
            local_executor(max_workers=2, recorder=recorder).run(dag)
        trace = recorder.trace()
        statuses = {event.task_id: event.status
                    for event in trace.task_events()}
        assert statuses["t-bad"] == STATUS_FAILED
        assert all(event.end >= event.start for event in trace.events)
        assert trace.slot_overlaps() == []
        # Completed tasks kept their success events despite the failure.
        assert all(status == STATUS_SUCCESS
                   for task_id, status in statuses.items()
                   if task_id != "t-bad")

    def test_failure_does_not_leak_slots(self, local_executor):
        """The pool stays usable for subsequent runs after a failure."""
        executor = local_executor(max_workers=2)
        bad = JobDag([Job("j", JobKind.MAP_ONLY, [self.failing_task()])])
        with pytest.raises(ExecutionError):
            executor.run(bad)
        ran, lock = [], threading.Lock()
        good = JobDag([Job("k", JobKind.MAP_ONLY,
                           [self.slow_task(f"g{i}", ran, lock, seconds=0.001)
                            for i in range(6)])])
        executor.run(good)
        assert len(ran) == 6


class TestRetryPolicy:
    """The real retry loop: backoff, determinism, timeouts, injection."""

    @staticmethod
    def run_with(local_executor, tasks, policy=None, injector=None,
                 workers=2):
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        return local_executor(max_workers=workers, retry_policy=policy,
                              fault_injector=injector).run(dag)

    def test_injected_fault_retried_to_success(self, local_executor):
        from repro.hadoop.local import RetryPolicy, ScriptedFaults
        counter, lock = [], threading.Lock()
        tasks = [counting_task(f"t{i}", counter, lock) for i in range(4)]
        self.run_with(local_executor, tasks, RetryPolicy(max_attempts=3),
                      ScriptedFaults({("t0", 0), ("t2", 0), ("t2", 1)}))
        # Every task's real work ran exactly once — the injector killed
        # attempts *before* the work started.
        assert sorted(counter) == ["t0", "t1", "t2", "t3"]

    def test_exhausted_attempts_raise(self, local_executor):
        from repro.hadoop.local import RetryPolicy, ScriptedFaults
        from repro.errors import FaultInjectionError
        counter, lock = [], threading.Lock()
        tasks = [counting_task("t0", counter, lock)]
        with pytest.raises(ExecutionError, match="injected fault"):
            self.run_with(local_executor, tasks, RetryPolicy(max_attempts=2),
                          ScriptedFaults({("t0", 0), ("t0", 1)}))
        assert issubclass(FaultInjectionError, ExecutionError)
        assert counter == []

    def test_default_policy_fails_fast(self, local_executor):
        from repro.hadoop.local import ScriptedFaults
        counter, lock = [], threading.Lock()
        with pytest.raises(ExecutionError, match="injected fault"):
            self.run_with(local_executor,
                          [counting_task("t0", counter, lock)],
                          injector=ScriptedFaults({("t0", 0)}))

    def test_backoff_deterministic_and_bounded(self):
        from repro.hadoop.local import RetryPolicy
        policy = RetryPolicy(max_attempts=5, backoff_seconds=1.0,
                             backoff_factor=2.0, jitter_fraction=0.1,
                             max_backoff_seconds=3.0, seed=7)
        delays = [policy.delay_before("t", a) for a in range(5)]
        assert delays == [policy.delay_before("t", a) for a in range(5)]
        assert delays[0] == 0.0  # no sleep before the first attempt
        for attempt, delay in enumerate(delays[1:], start=1):
            base = min(1.0 * 2.0 ** (attempt - 1), 3.0)
            assert base * 0.9 <= delay <= base * 1.1
        other = RetryPolicy(max_attempts=5, backoff_seconds=1.0, seed=8)
        assert other.delay_before("t", 1) != policy.delay_before("t", 1)

    def test_timeout_enforced_post_hoc(self, local_executor):
        from repro.hadoop.local import RetryPolicy
        from repro.errors import TaskTimeoutError

        def slow():
            time.sleep(0.05)

        task = make_map_task("slow", TaskWork(), run=slow)
        with pytest.raises(TaskTimeoutError, match="timeout"):
            self.run_with(local_executor, [task],
                          RetryPolicy(timeout_seconds=0.01))

    def test_timeout_within_budget_passes(self, local_executor):
        from repro.hadoop.local import RetryPolicy
        counter, lock = [], threading.Lock()
        self.run_with(local_executor, [counting_task("t0", counter, lock)],
                      RetryPolicy(timeout_seconds=30.0))
        assert counter == ["t0"]

    def test_crash_after_calls_counts_down(self, local_executor):
        from repro.hadoop.local import CrashAfterCalls, RetryPolicy
        counter, lock = [], threading.Lock()
        tasks = [counting_task(f"t{i}", counter, lock) for i in range(6)]
        injector = CrashAfterCalls(3)
        with pytest.raises(ExecutionError, match="injected crash"):
            self.run_with(local_executor, tasks, injector=injector, workers=1)
        assert len(counter) == 3
        injector.reset()
        counter2, lock2 = [], threading.Lock()
        with pytest.raises(ExecutionError):
            self.run_with(local_executor,
                          [counting_task(f"u{i}", counter2, lock2)
                           for i in range(6)], injector=injector, workers=1)
        assert len(counter2) == 3

    def test_policy_validation(self):
        from repro.hadoop.local import RetryPolicy
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ValidationError):
            RetryPolicy(timeout_seconds=0.0)

    def test_retries_counted_in_metrics(self, local_executor):
        from repro.hadoop.local import RetryPolicy, ScriptedFaults
        from repro.observability import MetricsRegistry
        registry = MetricsRegistry()
        counter, lock = [], threading.Lock()
        dag = JobDag([Job("j", JobKind.MAP_ONLY,
                          [counting_task("t0", counter, lock)])])
        local_executor(max_workers=1,
                       retry_policy=RetryPolicy(max_attempts=3),
                       fault_injector=ScriptedFaults({("t0", 0)}),
                       metrics=registry).run(dag)
        assert registry.counter("local.task_retries").value == 1
