"""Unit tests for the local (real-execution) engine."""

import threading

import pytest

from repro.errors import ExecutionError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.local import LocalExecutor
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task


def counting_task(task_id, counter, lock):
    def run():
        with lock:
            counter.append(task_id)

    return make_map_task(task_id, TaskWork(), run=run)


class TestLocalExecutor:
    def test_runs_all_tasks(self):
        counter, lock = [], threading.Lock()
        tasks = [counting_task(f"t{i}", counter, lock) for i in range(10)]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        report = LocalExecutor(max_workers=4).run(dag)
        assert sorted(counter) == sorted(f"t{i}" for i in range(10))
        assert report.total_seconds > 0

    def test_single_worker_sequential(self):
        counter, lock = [], threading.Lock()
        tasks = [counting_task(f"t{i}", counter, lock) for i in range(5)]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        LocalExecutor(max_workers=1).run(dag)
        assert counter == [f"t{i}" for i in range(5)]

    def test_dependency_order(self):
        order, lock = [], threading.Lock()
        dag = JobDag([
            Job("a", JobKind.MAP_ONLY, [counting_task("a-t", order, lock)]),
            Job("b", JobKind.MAP_ONLY, [counting_task("b-t", order, lock)],
                depends_on={"a"}),
        ])
        LocalExecutor(max_workers=4).run(dag)
        assert order == ["a-t", "b-t"]

    def test_reduce_phase_after_map_phase(self):
        order, lock = [], threading.Lock()

        def tracked(task_id, factory):
            def run():
                with lock:
                    order.append(task_id)
            return factory(task_id, TaskWork(), run=run)

        job = Job("mr", JobKind.MAPREDUCE,
                  [tracked(f"m{i}", make_map_task) for i in range(4)],
                  [tracked("r0", make_reduce_task)])
        LocalExecutor(max_workers=4).run(JobDag([job]))
        assert order[-1] == "r0"

    def test_task_failure_wrapped(self):
        def boom():
            raise RuntimeError("kaput")

        task = make_map_task("bad", TaskWork(), run=boom)
        dag = JobDag([Job("j", JobKind.MAP_ONLY, [task])])
        with pytest.raises(ExecutionError, match="bad"):
            LocalExecutor(max_workers=2).run(dag)

    def test_tasks_without_run_are_skipped(self):
        dag = JobDag([Job("j", JobKind.MAP_ONLY,
                          [make_map_task("t", TaskWork())])])
        report = LocalExecutor().run(dag)
        assert report.job_reports[0].num_tasks == 1

    def test_invalid_workers(self):
        with pytest.raises(ExecutionError):
            LocalExecutor(max_workers=0)

    def test_report_per_job(self):
        dag = JobDag([
            Job("a", JobKind.MAP_ONLY, []),
            Job("b", JobKind.MAP_ONLY, [], depends_on={"a"}),
        ])
        report = LocalExecutor().run(dag)
        assert [r.job_id for r in report.job_reports] == ["a", "b"]
