"""Unit tests for the local (real-execution) engine."""

import threading
import time

import pytest

from repro.errors import ExecutionError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.local import LocalExecutor
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task
from repro.observability import (
    InMemoryRecorder,
    SOURCE_ACTUAL,
    STATUS_FAILED,
    STATUS_SUCCESS,
)


def counting_task(task_id, counter, lock):
    def run():
        with lock:
            counter.append(task_id)

    return make_map_task(task_id, TaskWork(), run=run)


class TestLocalExecutor:
    def test_runs_all_tasks(self):
        counter, lock = [], threading.Lock()
        tasks = [counting_task(f"t{i}", counter, lock) for i in range(10)]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        report = LocalExecutor(max_workers=4).run(dag)
        assert sorted(counter) == sorted(f"t{i}" for i in range(10))
        assert report.total_seconds > 0

    def test_single_worker_sequential(self):
        counter, lock = [], threading.Lock()
        tasks = [counting_task(f"t{i}", counter, lock) for i in range(5)]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        LocalExecutor(max_workers=1).run(dag)
        assert counter == [f"t{i}" for i in range(5)]

    def test_dependency_order(self):
        order, lock = [], threading.Lock()
        dag = JobDag([
            Job("a", JobKind.MAP_ONLY, [counting_task("a-t", order, lock)]),
            Job("b", JobKind.MAP_ONLY, [counting_task("b-t", order, lock)],
                depends_on={"a"}),
        ])
        LocalExecutor(max_workers=4).run(dag)
        assert order == ["a-t", "b-t"]

    def test_reduce_phase_after_map_phase(self):
        order, lock = [], threading.Lock()

        def tracked(task_id, factory):
            def run():
                with lock:
                    order.append(task_id)
            return factory(task_id, TaskWork(), run=run)

        job = Job("mr", JobKind.MAPREDUCE,
                  [tracked(f"m{i}", make_map_task) for i in range(4)],
                  [tracked("r0", make_reduce_task)])
        LocalExecutor(max_workers=4).run(JobDag([job]))
        assert order[-1] == "r0"

    def test_task_failure_wrapped(self):
        def boom():
            raise RuntimeError("kaput")

        task = make_map_task("bad", TaskWork(), run=boom)
        dag = JobDag([Job("j", JobKind.MAP_ONLY, [task])])
        with pytest.raises(ExecutionError, match="bad"):
            LocalExecutor(max_workers=2).run(dag)

    def test_tasks_without_run_are_skipped(self):
        dag = JobDag([Job("j", JobKind.MAP_ONLY,
                          [make_map_task("t", TaskWork())])])
        report = LocalExecutor().run(dag)
        assert report.job_reports[0].num_tasks == 1

    def test_invalid_workers(self):
        with pytest.raises(ExecutionError):
            LocalExecutor(max_workers=0)

    def test_report_per_job(self):
        dag = JobDag([
            Job("a", JobKind.MAP_ONLY, []),
            Job("b", JobKind.MAP_ONLY, [], depends_on={"a"}),
        ])
        report = LocalExecutor().run(dag)
        assert [r.job_id for r in report.job_reports] == ["a", "b"]


class TestFailurePaths:
    """Regression tests: exceptions mid-pool must neither hang nor corrupt
    the trace (previously untested under concurrency)."""

    @staticmethod
    def failing_task(task_id="bad"):
        def boom():
            raise RuntimeError(f"{task_id} kaput")

        return make_map_task(task_id, TaskWork(), run=boom)

    @staticmethod
    def slow_task(task_id, ran, lock, seconds=0.05):
        def run():
            with lock:
                ran.append(task_id)
            time.sleep(seconds)

        return make_map_task(task_id, TaskWork(), run=run)

    def test_mid_pool_failure_propagates_without_hanging(self):
        ran, lock = [], threading.Lock()
        tasks = [self.failing_task("t0-bad")] + [
            self.slow_task(f"t{i}", ran, lock) for i in range(1, 20)
        ]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        started = time.perf_counter()
        with pytest.raises(ExecutionError, match="t0-bad"):
            LocalExecutor(max_workers=2).run(dag)
        elapsed = time.perf_counter() - started
        # 19 slow tasks at 50ms on 2 workers would take ~0.5s; a prompt
        # cancellation finishes far sooner (in-flight tasks drain only).
        assert elapsed < 0.5

    def test_queued_tasks_cancelled_after_failure(self):
        ran, lock = [], threading.Lock()
        tasks = [self.failing_task("t0-bad")] + [
            self.slow_task(f"t{i}", ran, lock) for i in range(1, 20)
        ]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        with pytest.raises(ExecutionError):
            LocalExecutor(max_workers=2).run(dag)
        # The failure fires immediately; only tasks already dispatched may
        # have started — the long tail must have been cancelled.
        assert len(ran) < 19

    def test_failure_in_reduce_phase(self):
        def fine():
            pass

        job = Job("mr", JobKind.MAPREDUCE,
                  [make_map_task(f"m{i}", TaskWork(), run=fine)
                   for i in range(4)],
                  [make_reduce_task("r-bad", TaskWork(),
                                    run=self.failing_task().run)])
        with pytest.raises(ExecutionError, match="r-bad"):
            LocalExecutor(max_workers=3).run(JobDag([job]))

    def test_partial_trace_well_formed_after_failure(self):
        ran, lock = [], threading.Lock()
        tasks = [self.slow_task(f"t{i}", ran, lock, seconds=0.01)
                 for i in range(4)] + [self.failing_task("t-bad")]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
        with pytest.raises(ExecutionError, match="t-bad"):
            LocalExecutor(max_workers=2, recorder=recorder).run(dag)
        trace = recorder.trace()
        statuses = {event.task_id: event.status
                    for event in trace.task_events()}
        assert statuses["t-bad"] == STATUS_FAILED
        assert all(event.end >= event.start for event in trace.events)
        assert trace.slot_overlaps() == []
        # Completed tasks kept their success events despite the failure.
        assert all(status == STATUS_SUCCESS
                   for task_id, status in statuses.items()
                   if task_id != "t-bad")

    def test_failure_does_not_leak_slots(self):
        """The pool stays usable for subsequent runs after a failure."""
        executor = LocalExecutor(max_workers=2)
        bad = JobDag([Job("j", JobKind.MAP_ONLY, [self.failing_task()])])
        with pytest.raises(ExecutionError):
            executor.run(bad)
        ran, lock = [], threading.Lock()
        good = JobDag([Job("k", JobKind.MAP_ONLY,
                           [self.slow_task(f"g{i}", ran, lock, seconds=0.001)
                            for i in range(6)])])
        executor.run(good)
        assert len(ran) == 6
