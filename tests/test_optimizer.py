"""Unit tests for the deployment optimizer."""

import pytest

from repro.cloud import ClusterSpec, HourlyBilling, PerSecondBilling, get_instance_type
from repro.core.optimizer import DeploymentOptimizer, SearchSpace
from repro.core.physical import MatMulParams
from repro.errors import InfeasibleConstraintError, ValidationError
from repro.workloads import build_multiply_program


@pytest.fixture(scope="module")
def optimizer():
    program = build_multiply_program(8192, 8192, 8192)
    return DeploymentOptimizer(program, tile_size=1024)


@pytest.fixture(scope="module")
def space():
    return SearchSpace(
        instance_types=(get_instance_type("m1.large"),
                        get_instance_type("c1.xlarge")),
        node_counts=(1, 2, 4, 8),
        slots_options=(1, 2, 4, 8),
        matmul_options=(MatMulParams(1, 1, 1), MatMulParams(2, 2, 1)),
    )


class TestEnumeration:
    def test_grid_size(self, optimizer, space):
        plans = optimizer.enumerate_plans(space)
        # m1.large admits slots {1,2,4}, c1.xlarge {1,2,4,8}: (3+4)*4 specs.
        assert len(plans) == 28

    def test_all_plans_have_positive_estimates(self, optimizer, space):
        for plan in optimizer.enumerate_plans(space):
            assert plan.estimated_seconds > 0
            assert plan.estimated_cost > 0

    def test_startup_included(self, space):
        from repro.core.compiler import CompilerParams
        program = build_multiply_program(2048, 2048, 2048)
        fast = DeploymentOptimizer(program, 1024, startup_seconds=0.0)
        slow = DeploymentOptimizer(program, 1024, startup_seconds=300.0)
        spec = ClusterSpec(get_instance_type("m1.large"), 2, 2)
        t_fast = fast.evaluate(spec, CompilerParams())
        t_slow = slow.evaluate(spec, CompilerParams())
        assert t_slow.estimated_seconds \
            == pytest.approx(t_fast.estimated_seconds + 300.0)


class TestSkylineAndSolvers:
    def test_skyline_undominated(self, optimizer, space):
        frontier = optimizer.skyline(space)
        assert frontier
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not a.dominates(b)

    def test_deadline_solver_feasible(self, optimizer, space):
        plan = optimizer.minimize_cost_under_deadline(3600.0, space)
        assert plan.estimated_seconds <= 3600.0

    def test_tighter_deadline_never_cheaper(self, optimizer, space):
        loose = optimizer.minimize_cost_under_deadline(3600.0, space)
        tight = optimizer.minimize_cost_under_deadline(200.0, space)
        assert tight.estimated_cost >= loose.estimated_cost
        assert tight.estimated_seconds <= 200.0

    def test_impossible_deadline(self, optimizer, space):
        with pytest.raises(InfeasibleConstraintError):
            optimizer.minimize_cost_under_deadline(1.0, space)

    def test_budget_solver(self, optimizer, space):
        plan = optimizer.minimize_time_under_budget(5.0, space)
        assert plan.estimated_cost <= 5.0

    def test_bigger_budget_never_slower(self, optimizer, space):
        small = optimizer.minimize_time_under_budget(1.0, space)
        large = optimizer.minimize_time_under_budget(20.0, space)
        assert large.estimated_seconds <= small.estimated_seconds

    def test_impossible_budget(self, optimizer, space):
        with pytest.raises(InfeasibleConstraintError):
            optimizer.minimize_time_under_budget(0.001, space)

    def test_invalid_constraints(self, optimizer, space):
        with pytest.raises(ValidationError):
            optimizer.minimize_cost_under_deadline(-5.0, space)
        with pytest.raises(ValidationError):
            optimizer.minimize_time_under_budget(0.0, space)


class TestJointOptimization:
    def test_physical_params_tuned_per_spec(self, optimizer, space):
        """The chosen split factors may differ across cluster shapes —
        the 'joint' part of the paper's optimization."""
        plans = optimizer.enumerate_plans(space)
        chosen = {plan.compiler_params.matmul for plan in plans}
        # At minimum the tuner must actually explore (not constant-fold).
        assert chosen <= set(space.matmul_options)

    def test_billing_model_changes_choice_shape(self, space):
        program = build_multiply_program(8192, 8192, 8192)
        hourly = DeploymentOptimizer(program, 1024, billing=HourlyBilling())
        exact = DeploymentOptimizer(program, 1024,
                                    billing=PerSecondBilling(0.0))
        hourly_costs = [p.estimated_cost for p in hourly.enumerate_plans(space)]
        exact_costs = [p.estimated_cost for p in exact.enumerate_plans(space)]
        assert all(h >= e for h, e in zip(hourly_costs, exact_costs))


class TestHillClimbing:
    def test_finds_feasible_plan(self, optimizer, space):
        plan = optimizer.hill_climb_under_deadline(3600.0, space)
        assert plan.estimated_seconds <= 3600.0

    def test_close_to_grid_optimum(self, optimizer, space):
        grid_best = optimizer.minimize_cost_under_deadline(3600.0, space)
        climbed = optimizer.hill_climb_under_deadline(3600.0, space)
        assert climbed.estimated_cost <= 3.0 * grid_best.estimated_cost

    def test_infeasible_deadline_raises(self, optimizer, space):
        with pytest.raises(InfeasibleConstraintError):
            optimizer.hill_climb_under_deadline(1.0, space)


class TestCompilationCache:
    def test_compile_cached_per_params(self, optimizer):
        from repro.core.compiler import CompilerParams
        params = CompilerParams()
        first = optimizer.compile_with(params)
        second = optimizer.compile_with(params)
        assert first is second


class TestReliabilityAwareSearch:
    """The acceptance scenario: a failure environment where the cheapest
    failure-free cluster cannot even finish, so the reliability-aware
    search must pick a different (bigger) deployment."""

    @pytest.fixture(scope="class")
    def small_optimizer(self):
        program = build_multiply_program(2048, 2048, 2048)
        return DeploymentOptimizer(program, tile_size=1024)

    @pytest.fixture(scope="class")
    def small_space(self):
        return SearchSpace(
            instance_types=(get_instance_type("m1.large"),),
            node_counts=(1, 4),
            slots_options=(2,),
            matmul_options=(MatMulParams(1, 1, 1),),
        )

    @pytest.fixture(scope="class")
    def reliability(self):
        from repro.core.optimizer import ReliabilityModel
        from repro.hadoop.faults import TargetedNodeFailures

        # Every scenario kills node 0 early: fatal for a 1-node cluster,
        # an inconvenience for a 4-node one.
        return ReliabilityModel(
            scenarios=2,
            failure_factory=lambda index: TargetedNodeFailures(
                {"m1.large-0": 1.0}),
        )

    def test_reliable_search_picks_a_different_cluster(
            self, small_optimizer, small_space, reliability):
        deadline = 3600.0
        free = small_optimizer.minimize_cost_under_deadline(
            deadline, small_space)
        reliable = small_optimizer.minimize_cost_under_deadline_reliable(
            deadline, reliability, small_space)
        assert free.spec.num_nodes == 1  # cheapest on paper
        assert reliable.plan.spec.num_nodes == 4
        assert reliable.completion_rate == 1.0
        assert reliable.p95_seconds <= deadline

    def test_evaluate_reliable_marks_aborts(self, small_optimizer,
                                            reliability):
        from repro.core.compiler import CompilerParams

        doomed = ClusterSpec(get_instance_type("m1.large"), 1, 2)
        plan = small_optimizer.evaluate_reliable(doomed, CompilerParams(),
                                                 reliability)
        assert plan.completion_rate == 0.0
        assert all(s == float("inf") for s in plan.scenario_seconds)
        assert all(c == float("inf") for c in plan.scenario_costs)

    def test_reliable_plan_overruns_nonnegative(self, small_optimizer,
                                                small_space, reliability):
        reliable = small_optimizer.minimize_cost_under_deadline_reliable(
            3600.0, reliability, small_space)
        assert reliable.expected_overrun(3600.0) >= 0
        assert reliable.p95_overrun(3600.0) >= 0
        # Overruns past the mean completion time must be visible.
        tight = reliable.mean_seconds / 2.0
        assert reliable.expected_overrun(tight) > 0
        assert reliable.p95_overrun(tight) >= reliable.expected_overrun(tight)
        assert reliable.expected_cost_overrun(0.0) == reliable.mean_cost
        assert "scenario" in reliable.describe()

    def test_scenarios_validated(self):
        from repro.core.optimizer import ReliabilityModel
        with pytest.raises(ValidationError):
            ReliabilityModel(scenarios=0)
        with pytest.raises(ValidationError):
            ReliabilityModel(crash_rate_per_hour=-1.0)
