"""Tier-1 gate for the bench-history scoreboard (``tools/benchdiff.py``).

Proves the acceptance criterion end to end on throwaway directories:
running benchdiff twice over identical results exits 0 both times, an
injected 2x slowdown flips the exit code to 1, params mismatches are
skipped rather than failed, and ``--update-baselines`` moves only the
metric values.  Also locks the ``benchmarks.common.append_history``
writer's schema so the committed history files stay machine-readable.
"""

import io
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import benchdiff  # noqa: E402

from benchmarks.common import SCHEMA_VERSION, append_history  # noqa: E402


BASELINE = {
    "bench": "toy",
    "params": {"tiny": True, "tile": 16},
    "metrics": {"exec_seconds": 0.10, "speedup": 2.0},
    "thresholds": {
        "exec_seconds": {"direction": "lower", "max_ratio": 1.5},
        "speedup": {"direction": "higher", "max_ratio": 1.5},
    },
}


def write_baseline(baselines_dir, document=None):
    baselines_dir.mkdir(parents=True, exist_ok=True)
    path = baselines_dir / "toy.json"
    path.write_text(json.dumps(document or BASELINE, indent=2) + "\n")
    return path


def write_history(history_dir, entries):
    history_dir.mkdir(parents=True, exist_ok=True)
    path = history_dir / "toy.jsonl"
    with path.open("w") as handle:
        for entry in entries:
            handle.write(json.dumps(entry) + "\n")
    return path


def entry(metrics, params=None, sha="abc1234"):
    return {
        "schema_version": 1,
        "bench": "toy",
        "params": params if params is not None else dict(BASELINE["params"]),
        "metrics": metrics,
        "git_sha": sha,
        "timestamp": "2026-08-08T00:00:00Z",
    }


def run_benchdiff(tmp_path, argv=()):
    out = io.StringIO()
    code = benchdiff.main(
        ["--history-dir", str(tmp_path / "history"),
         "--baselines-dir", str(tmp_path / "baselines"), *argv],
        out=out)
    return code, out.getvalue()


class TestGate:
    def test_identical_results_pass_twice(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        write_history(tmp_path / "history",
                      [entry(dict(BASELINE["metrics"]))])
        for __ in range(2):
            code, text = run_benchdiff(tmp_path)
            assert code == 0
            assert "no regressions" in text
            assert "[ok]" in text

    def test_injected_2x_slowdown_fails(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        write_history(tmp_path / "history",
                      [entry({"exec_seconds": 0.20, "speedup": 2.0})])
        code, text = run_benchdiff(tmp_path)
        assert code == 1
        assert "REGRESSED" in text
        assert "REGRESSION in: toy" in text

    def test_2x_speedup_collapse_fails(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        write_history(tmp_path / "history",
                      [entry({"exec_seconds": 0.10, "speedup": 1.0})])
        code, __ = run_benchdiff(tmp_path)
        assert code == 1

    def test_params_mismatch_is_skipped_not_failed(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        write_history(
            tmp_path / "history",
            [entry({"exec_seconds": 9.0, "speedup": 0.1},
                   params={"tiny": False, "tile": 1024})])
        code, text = run_benchdiff(tmp_path)
        assert code == 0
        assert "skipped" in text

    def test_latest_matching_entry_wins(self, tmp_path):
        # A newer full-size run must not shadow the latest tiny run.
        write_baseline(tmp_path / "baselines")
        write_history(tmp_path / "history", [
            entry(dict(BASELINE["metrics"]), sha="old0000"),
            entry({"exec_seconds": 9.0, "speedup": 9.0},
                  params={"tiny": False, "tile": 1024}, sha="full000"),
        ])
        code, text = run_benchdiff(tmp_path)
        assert code == 0
        assert "old0000" in text

    def test_missing_history_is_a_note_not_a_failure(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        code, text = run_benchdiff(tmp_path)
        assert code == 0
        assert "no history yet" in text
        assert "not a failure" in text

    def test_empty_history_file_is_a_note_not_a_failure(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        write_history(tmp_path / "history", [])
        (tmp_path / "history" / "toy.jsonl").write_text("\n\n")
        code, text = run_benchdiff(tmp_path)
        assert code == 0
        assert "no history yet" in text

    def test_non_object_history_line_is_a_usage_error(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        path = write_history(tmp_path / "history",
                             [entry(dict(BASELINE["metrics"]))])
        with path.open("a") as handle:
            handle.write("42\n")  # valid JSON, not an object
        code, __ = run_benchdiff(tmp_path)
        assert code == 2

    def test_null_metrics_entry_reads_as_missing_not_a_crash(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        bad = entry(dict(BASELINE["metrics"]))
        bad["metrics"] = None
        write_history(tmp_path / "history", [bad])
        code, text = run_benchdiff(tmp_path)
        assert code == 1
        assert "missing from latest run" in text

    def test_missing_metric_in_latest_run_fails(self, tmp_path):
        write_baseline(tmp_path / "baselines")
        write_history(tmp_path / "history",
                      [entry({"exec_seconds": 0.10})])  # speedup dropped
        code, text = run_benchdiff(tmp_path)
        assert code == 1
        assert "missing from latest run" in text

    def test_bad_baseline_schema_is_a_usage_error(self, tmp_path):
        write_baseline(tmp_path / "baselines", {"metrics": {}})  # no bench
        write_history(tmp_path / "history", [entry({})])
        code, __ = run_benchdiff(tmp_path)
        assert code == 2

    def test_non_object_baseline_metrics_is_a_usage_error(self, tmp_path):
        write_baseline(tmp_path / "baselines",
                       {"bench": "toy", "metrics": [1, 2]})
        write_history(tmp_path / "history", [entry({})])
        code, __ = run_benchdiff(tmp_path)
        assert code == 2


class TestUpdateBaselines:
    def test_moves_metric_values_only(self, tmp_path):
        path = write_baseline(tmp_path / "baselines")
        write_history(tmp_path / "history",
                      [entry({"exec_seconds": 0.08, "speedup": 2.5},
                             sha="fresh00")])
        code, text = run_benchdiff(tmp_path, ["--update-baselines"])
        assert code == 0
        assert "baseline updated" in text
        updated = json.loads(path.read_text())
        assert updated["metrics"] == {"exec_seconds": 0.08, "speedup": 2.5}
        assert updated["thresholds"] == BASELINE["thresholds"]
        assert updated["params"] == BASELINE["params"]
        assert updated["git_sha"] == "fresh00"
        # And the refreshed baseline passes against the same history.
        code, __ = run_benchdiff(tmp_path)
        assert code == 0


class TestTrajectory:
    def test_sparkline_shape(self):
        entries = [entry({"exec_seconds": 0.1 + 0.01 * i})
                   for i in range(20)]
        spark = trajectory = benchdiff.trajectory(entries, "exec_seconds")
        assert len(spark) == benchdiff.TRAJECTORY_POINTS
        assert spark[0] == benchdiff._SPARK_LEVELS[0]
        assert spark[-1] == benchdiff._SPARK_LEVELS[-1]
        assert trajectory == spark

    def test_flat_and_short_series(self):
        flat = [entry({"m": 1.0}), entry({"m": 1.0})]
        assert set(benchdiff.trajectory(flat, "m")) == \
            {benchdiff._SPARK_LEVELS[5]}
        assert benchdiff.trajectory([entry({"m": 1.0})], "m") == ""


class TestCompareMetric:
    def test_ratio_semantics(self):
        threshold = {"direction": "lower", "max_ratio": 2.0}
        regressed, __ = benchdiff.compare_metric("m", 0.19, 0.1, threshold)
        assert not regressed
        regressed, __ = benchdiff.compare_metric("m", 0.21, 0.1, threshold)
        assert regressed
        threshold = {"direction": "higher", "max_ratio": 2.0}
        regressed, __ = benchdiff.compare_metric("m", 0.06, 0.1, threshold)
        assert not regressed
        regressed, __ = benchdiff.compare_metric("m", 0.04, 0.1, threshold)
        assert regressed

    def test_invalid_thresholds_raise(self):
        with pytest.raises(benchdiff.BenchdiffError):
            benchdiff.compare_metric("m", 1.0, 1.0,
                                     {"direction": "sideways"})
        with pytest.raises(benchdiff.BenchdiffError):
            benchdiff.compare_metric("m", 1.0, 1.0, {"max_ratio": 1.0})


class TestHistoryWriter:
    def test_append_history_schema(self, tmp_path):
        append_history("toy", {"speedup": 2.0}, params={"tiny": True},
                       experiment="E99", history_dir=tmp_path)
        append_history("toy", {"speedup": 2.1}, params={"tiny": True},
                       experiment="E99", history_dir=tmp_path)
        lines = (tmp_path / "toy.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["schema_version"] == SCHEMA_VERSION
        assert first["bench"] == "toy"
        assert first["experiment"] == "E99"
        assert first["metrics"] == {"speedup": 2.0}
        assert first["params"] == {"tiny": True}
        assert "git_sha" in first and "timestamp" in first
        # Keys are sorted so committed history lines diff cleanly.
        assert lines[0].index('"bench"') < lines[0].index('"metrics"')

    def test_written_history_feeds_benchdiff(self, tmp_path):
        history_dir = tmp_path / "history"
        append_history("toy", dict(BASELINE["metrics"]),
                       params=dict(BASELINE["params"]),
                       history_dir=history_dir)
        write_baseline(tmp_path / "baselines")
        code, text = run_benchdiff(tmp_path)
        assert code == 0
        assert "no regressions" in text


class TestCommittedBaselines:
    """The real committed baselines stay well-formed and self-consistent."""

    def test_every_baseline_parses_and_gates(self):
        benches = benchdiff.known_benches()
        assert set(benches) >= {"e22", "e23", "e24", "e25"}
        for bench in benches:
            document = benchdiff.read_baseline(bench)
            assert document["bench"] == bench
            for name, threshold in document.get("thresholds", {}).items():
                assert name in document["metrics"], (
                    f"{bench}: threshold for unknown metric {name}")
                benchdiff.compare_metric(
                    name, float(document["metrics"][name]),
                    float(document["metrics"][name]), threshold)

    def test_committed_history_matches_schema(self):
        for bench in benchdiff.known_benches():
            for item in benchdiff.read_history(bench):
                assert item["schema_version"] == SCHEMA_VERSION
                assert item["bench"] == bench
                assert isinstance(item["metrics"], dict)

    def test_repo_gate_is_green(self):
        # The acceptance run: the committed history vs the committed
        # baselines must pass, otherwise CI would be red at HEAD.
        out = io.StringIO()
        assert benchdiff.main([], out=out) == 0, out.getvalue()
