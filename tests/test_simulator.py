"""Unit tests for the discrete-event cluster simulator."""

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.errors import SchedulingError, ValidationError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.simulator import ClusterSimulator
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task
from repro.hadoop.timemodel import FixedTimeModel, TaskTimeModel


def spec(nodes=2, slots=2, instance="m1.large"):
    return ClusterSpec(get_instance_type(instance), nodes, slots)


def map_only(job_id, n_tasks, deps=(), preferred=None):
    tasks = [make_map_task(f"{job_id}-t{i}", TaskWork(bytes_read=1),
                           preferred_nodes=preferred or frozenset())
             for i in range(n_tasks)]
    return Job(job_id, JobKind.MAP_ONLY, tasks, depends_on=set(deps))


class TestWaves:
    def test_single_wave(self):
        dag = JobDag([map_only("j", 4)])
        result = ClusterSimulator(spec(), FixedTimeModel(2.0)).run(dag)
        assert result.makespan == pytest.approx(2.0)

    def test_two_waves(self):
        dag = JobDag([map_only("j", 5)])
        result = ClusterSimulator(spec(), FixedTimeModel(2.0)).run(dag)
        assert result.makespan == pytest.approx(4.0)

    def test_wave_count_formula(self):
        for n_tasks in (1, 4, 7, 8, 9, 16):
            dag = JobDag([map_only("j", n_tasks)])
            result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(dag)
            expected_waves = -(-n_tasks // 4)  # ceil over 4 slots
            assert result.makespan == pytest.approx(float(expected_waves))

    def test_job_overhead_added_once(self):
        dag = JobDag([map_only("j", 4)])
        result = ClusterSimulator(spec(), FixedTimeModel(2.0, 3.0)).run(dag)
        assert result.makespan == pytest.approx(5.0)

    def test_empty_dag(self):
        result = ClusterSimulator(spec(), FixedTimeModel()).run(JobDag())
        assert result.makespan == 0.0

    def test_job_with_no_tasks_finishes(self):
        dag = JobDag([Job("empty", JobKind.MAP_ONLY, [])])
        result = ClusterSimulator(spec(), FixedTimeModel(1.0, 2.0)).run(dag)
        assert result.makespan == pytest.approx(2.0)


class TestDependencies:
    def test_sequential_jobs(self):
        dag = JobDag([map_only("a", 4), map_only("b", 4, deps=["a"])])
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(dag)
        assert result.makespan == pytest.approx(2.0)
        assert result.job("b").start >= result.job("a").end

    def test_independent_jobs_share_cluster(self):
        dag = JobDag([map_only("a", 2), map_only("b", 2)])
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(dag)
        # 4 tasks over 4 slots: both finish in one wave.
        assert result.makespan == pytest.approx(1.0)

    def test_diamond_dependencies(self):
        dag = JobDag([
            map_only("src", 1),
            map_only("left", 1, deps=["src"]),
            map_only("right", 1, deps=["src"]),
            map_only("sink", 1, deps=["left", "right"]),
        ])
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(dag)
        assert result.makespan == pytest.approx(3.0)
        assert result.job("sink").start >= max(result.job("left").end,
                                               result.job("right").end)

    def test_fifo_priority_earlier_job_first(self):
        # 8 tasks each, only 4 slots: job a's tasks must all start before
        # job b gets a slot in the first wave.
        dag = JobDag([map_only("a", 4), map_only("b", 4)])
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(dag)
        first_wave = [attempt.task.task_id
                      for timeline in result.job_timelines.values()
                      for attempt in timeline.attempts if attempt.start == 0.0]
        assert all(task_id.startswith("a") for task_id in first_wave)


class TestMapReduce:
    def test_shuffle_barrier(self):
        maps = [make_map_task(f"m{i}", TaskWork(shuffle_bytes=10**8))
                for i in range(4)]
        reduces = [make_reduce_task(f"r{i}", TaskWork()) for i in range(2)]
        job = Job("mr", JobKind.MAPREDUCE, maps, reduces)
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(JobDag([job]))
        timeline = result.job("mr")
        assert timeline.shuffle_seconds > 0
        map_end = max(a.end for a in timeline.attempts
                      if a.task.task_id.startswith("m"))
        reduce_start = min(a.start for a in timeline.attempts
                           if a.task.task_id.startswith("r"))
        assert reduce_start >= map_end + timeline.shuffle_seconds

    def test_mapreduce_slower_than_map_only_same_work(self):
        maps = [make_map_task(f"m{i}", TaskWork(shuffle_bytes=10**7))
                for i in range(4)]
        mr_dag = JobDag([Job("mr", JobKind.MAPREDUCE, maps,
                             [make_reduce_task("r", TaskWork())])])
        mo_dag = JobDag([map_only("mo", 4)])
        model = FixedTimeModel(1.0)
        mr_time = ClusterSimulator(spec(), model).run(mr_dag).makespan
        mo_time = ClusterSimulator(spec(), model).run(mo_dag).makespan
        assert mr_time > mo_time


class TestLocality:
    def test_prefers_local_node(self):
        job = map_only("j", 1, preferred={"m1.large-1"})
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(JobDag([job]))
        attempt = result.job("j").attempts[0]
        assert attempt.node == "m1.large-1"
        assert attempt.was_local

    def test_runs_remote_when_local_busy(self):
        # 3 tasks all prefer node 0 (2 slots): one must go remote.
        tasks = [make_map_task(f"t{i}", TaskWork(),
                               preferred_nodes={"m1.large-0"})
                 for i in range(3)]
        job = Job("j", JobKind.MAP_ONLY, tasks)
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(JobDag([job]))
        nodes = sorted(a.node for a in result.job("j").attempts)
        assert nodes == ["m1.large-0", "m1.large-0", "m1.large-1"]

    def test_locality_fraction(self):
        job = map_only("j", 2, preferred={"m1.large-0"})
        result = ClusterSimulator(spec(nodes=1, slots=2),
                                  FixedTimeModel(1.0)).run(JobDag([job]))
        assert result.job("j").locality_fraction == 1.0

    def test_locality_disabled_ignores_preference(self):
        class RecordingModel(TaskTimeModel):
            def __init__(self):
                self.local_flags = []

            def task_duration(self, task, instance, concurrency, local):
                self.local_flags.append(local)
                return 1.0

            def job_overhead(self, job):
                return 0.0

        job = map_only("j", 2, preferred={"m1.large-1"})
        model = RecordingModel()
        ClusterSimulator(spec(), model, locality_aware=False).run(JobDag([job]))
        # Without locality-aware placement, least-loaded-by-name wins, so at
        # least one task lands on node 0 (non-local).
        assert not all(model.local_flags)


class TestContention:
    def test_duration_uses_concurrency(self):
        class ContentionModel(TaskTimeModel):
            def task_duration(self, task, instance, concurrency, local):
                return float(concurrency)

            def job_overhead(self, job):
                return 0.0

        dag = JobDag([map_only("j", 2)])
        result = ClusterSimulator(spec(nodes=1, slots=2),
                                  ContentionModel()).run(dag)
        durations = sorted(a.duration for a in result.job("j").attempts)
        assert durations == [1.0, 2.0]


class TestInvariants:
    def test_every_task_runs_exactly_once(self):
        dag = JobDag([map_only("a", 7), map_only("b", 5, deps=["a"])])
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(dag)
        ran = [a.task.task_id for t in result.job_timelines.values()
               for a in t.attempts]
        assert len(ran) == 12
        assert len(set(ran)) == 12

    def test_no_slot_oversubscription(self):
        dag = JobDag([map_only("a", 20)])
        result = ClusterSimulator(spec(nodes=2, slots=3),
                                  FixedTimeModel(1.0)).run(dag)
        attempts = result.job("a").attempts
        events = []
        for attempt in attempts:
            events.append((attempt.start, 1, attempt.node))
            events.append((attempt.end, -1, attempt.node))
        events.sort()
        load = {}
        for __, delta, node in events:
            load[node] = load.get(node, 0) + delta
            assert load[node] <= 3

    def test_nonpositive_duration_rejected(self):
        class BadModel(TaskTimeModel):
            def task_duration(self, task, instance, concurrency, local):
                return 0.0

            def job_overhead(self, job):
                return 0.0

        dag = JobDag([map_only("a", 1)])
        with pytest.raises(SchedulingError):
            ClusterSimulator(spec(), BadModel()).run(dag)

    def test_total_task_seconds(self):
        dag = JobDag([map_only("a", 6)])
        result = ClusterSimulator(spec(), FixedTimeModel(2.0)).run(dag)
        assert result.total_task_seconds() == pytest.approx(12.0)

    def test_unknown_job_lookup(self):
        dag = JobDag([map_only("a", 1)])
        result = ClusterSimulator(spec(), FixedTimeModel(1.0)).run(dag)
        with pytest.raises(ValidationError):
            result.job("nope")


class TestFixedTimeModel:
    def test_validation(self):
        with pytest.raises(ValidationError):
            FixedTimeModel(0.0)
        with pytest.raises(ValidationError):
            FixedTimeModel(1.0, -1.0)

    def test_shuffle_duration(self):
        model = FixedTimeModel()
        maps = [make_map_task("m", TaskWork(shuffle_bytes=100))]
        job = Job("j", JobKind.MAPREDUCE, maps,
                  [make_reduce_task("r", TaskWork())])
        assert model.shuffle_duration(job, 50.0) == pytest.approx(2.0)
        with pytest.raises(ValidationError):
            model.shuffle_duration(job, 0.0)
