"""Unit tests for task/job descriptors and the job DAG."""

import pytest

from repro.errors import ValidationError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.task import (
    Task,
    TaskAttempt,
    TaskKind,
    TaskWork,
    make_map_task,
    make_reduce_task,
)


class TestTaskWork:
    def test_defaults_zero(self):
        work = TaskWork()
        assert work.bytes_read == 0
        assert work.flops == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            TaskWork(bytes_read=-1)
        with pytest.raises(ValidationError):
            TaskWork(flops=-5)
        with pytest.raises(ValidationError):
            TaskWork(memory_bytes=-5)

    def test_scaled(self):
        work = TaskWork(bytes_read=100, flops=10, shuffle_bytes=50)
        half = work.scaled(0.5)
        assert half.bytes_read == 50
        assert half.flops == 5
        assert half.shuffle_bytes == 25

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValidationError):
            TaskWork().scaled(-1)


class TestTask:
    def test_map_task_kind(self):
        task = make_map_task("t1", TaskWork())
        assert task.kind is TaskKind.MAP

    def test_reduce_task_kind(self):
        task = make_reduce_task("r1", TaskWork())
        assert task.kind is TaskKind.REDUCE

    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError):
            Task("", TaskKind.MAP, TaskWork())

    def test_preferred_nodes_frozen(self):
        task = make_map_task("t1", TaskWork(), preferred_nodes={"a", "b"})
        assert task.preferred_nodes == frozenset({"a", "b"})


class TestTaskAttempt:
    def test_duration(self):
        attempt = TaskAttempt(make_map_task("t", TaskWork()), "n", 1.0, 3.5)
        assert attempt.duration == pytest.approx(2.5)

    def test_was_local_with_no_preference(self):
        attempt = TaskAttempt(make_map_task("t", TaskWork()), "n", 0, 1)
        assert attempt.was_local

    def test_was_local_respects_preference(self):
        task = make_map_task("t", TaskWork(), preferred_nodes={"a"})
        assert TaskAttempt(task, "a", 0, 1).was_local
        assert not TaskAttempt(task, "b", 0, 1).was_local


class TestJob:
    def test_map_only_job(self):
        job = Job("j", JobKind.MAP_ONLY,
                  [make_map_task("m", TaskWork(bytes_read=10))])
        assert job.num_tasks == 1
        assert job.total_bytes_read() == 10

    def test_map_only_rejects_reducers(self):
        with pytest.raises(ValidationError):
            Job("j", JobKind.MAP_ONLY, [], [make_reduce_task("r", TaskWork())])

    def test_wrong_kind_in_map_slot(self):
        with pytest.raises(ValidationError):
            Job("j", JobKind.MAP_ONLY, [make_reduce_task("r", TaskWork())])

    def test_wrong_kind_in_reduce_slot(self):
        with pytest.raises(ValidationError):
            Job("j", JobKind.MAPREDUCE, [],
                [make_map_task("m", TaskWork())])

    def test_shuffle_bytes_sums_map_emissions(self):
        maps = [make_map_task(f"m{i}", TaskWork(shuffle_bytes=10))
                for i in range(3)]
        job = Job("j", JobKind.MAPREDUCE, maps,
                  [make_reduce_task("r", TaskWork())])
        assert job.shuffle_bytes == 30

    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError):
            Job("", JobKind.MAP_ONLY, [])

    def test_totals(self):
        job = Job("j", JobKind.MAPREDUCE,
                  [make_map_task("m", TaskWork(bytes_read=5, flops=7))],
                  [make_reduce_task("r", TaskWork(bytes_written=11, flops=13))])
        assert job.total_bytes_read() == 5
        assert job.total_bytes_written() == 11
        assert job.total_flops() == 20


class TestJobDag:
    def test_insertion_order_is_topological(self):
        dag = JobDag()
        dag.add(Job("a", JobKind.MAP_ONLY, []))
        dag.add(Job("b", JobKind.MAP_ONLY, [], depends_on={"a"}))
        assert [job.job_id for job in dag.topological_order()] == ["a", "b"]

    def test_forward_reference_rejected(self):
        dag = JobDag()
        with pytest.raises(ValidationError):
            dag.add(Job("b", JobKind.MAP_ONLY, [], depends_on={"a"}))

    def test_duplicate_id_rejected(self):
        dag = JobDag([Job("a", JobKind.MAP_ONLY, [])])
        with pytest.raises(ValidationError):
            dag.add(Job("a", JobKind.MAP_ONLY, []))

    def test_get(self):
        dag = JobDag([Job("a", JobKind.MAP_ONLY, [])])
        assert dag.get("a").job_id == "a"
        with pytest.raises(ValidationError):
            dag.get("z")

    def test_num_tasks(self):
        dag = JobDag([
            Job("a", JobKind.MAP_ONLY, [make_map_task("m", TaskWork())]),
            Job("b", JobKind.MAPREDUCE,
                [make_map_task("m2", TaskWork())],
                [make_reduce_task("r", TaskWork())], depends_on={"a"}),
        ])
        assert dag.num_tasks() == 3

    def test_describe_lists_all_jobs(self):
        dag = JobDag([Job("a", JobKind.MAP_ONLY, [], label="first")])
        assert "first" in dag.describe()
