"""Oracle differential: the surrogate search vs the exhaustive grid.

The exhaustive solvers are the ground truth.  Over dozens of seeded
random grids (deadline mode, budget mode, and the reliability-aware
deadline mode), the surrogate must return a plan that is (a) actually
feasible and (b) within ``SurrogateConfig.tolerance`` of the exhaustive
optimum — and it must agree with the oracle about infeasibility.  A
hypothesis property locks the stronger invariant that a returned plan is
*never* infeasible, for any grid/constraint the strategy can draw.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_workload
from repro.cloud import get_instance_type
from repro.core.optimizer import (
    DeploymentOptimizer,
    ReliabilityModel,
    SearchSpace,
)
from repro.core.physical import MatMulParams
from repro.core.surrogate import (
    SurrogateConfig,
    reliability_frontier,
    surrogate_minimize_cost_under_deadline,
    surrogate_minimize_time_under_budget,
)
from repro.errors import InfeasibleConstraintError, ValidationError

TOLERANCE = SurrogateConfig().tolerance

INSTANCE_POOL = ("m1.small", "m1.medium", "m1.large", "m1.xlarge",
                 "c1.medium", "c1.xlarge", "m2.xlarge")

_PROGRAM_CACHE = {}


def optimizer_for(workload="multiply"):
    if workload not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[workload] = build_workload(workload, "tiny")
    program, tile = _PROGRAM_CACHE[workload]
    return DeploymentOptimizer(program, tile_size=tile)


def seeded_space(seed: int) -> SearchSpace:
    """A random-but-reproducible deployment grid."""
    rng = random.Random(seed)
    instances = tuple(
        get_instance_type(name)
        for name in rng.sample(INSTANCE_POOL, rng.randint(2, 3)))
    counts = tuple(sorted(rng.sample((1, 2, 4, 8, 16, 32),
                                     rng.randint(2, 4))))
    slots = tuple(sorted(rng.sample((1, 2, 4), rng.randint(1, 2))))
    matmuls = (MatMulParams(1, 1, 1), MatMulParams(2, 2, 1))[
        :rng.randint(1, 2)]
    return SearchSpace(instance_types=instances, node_counts=counts,
                       slots_options=slots, matmul_options=matmuls)


def assert_within_tolerance(surrogate_value, exact_value):
    assert surrogate_value <= exact_value * (1.0 + TOLERANCE) + 1e-9


class TestDeadlineDifferential:
    """min-cost under deadline: 10 seeded grids x 2 deadlines each."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("deadline", (240.0, 3600.0))
    def test_matches_oracle(self, seed, deadline):
        space = seeded_space(seed)
        exact_optimizer = optimizer_for()
        try:
            exact = exact_optimizer._minimize_cost_under_deadline(
                deadline, space)
        except InfeasibleConstraintError:
            exact = None
        surrogate_optimizer = optimizer_for()
        try:
            result = surrogate_minimize_cost_under_deadline(
                surrogate_optimizer, deadline, space)
        except InfeasibleConstraintError:
            assert exact is None, \
                "surrogate declared a feasible problem infeasible"
            return
        assert exact is not None, \
            "surrogate found a plan where the oracle proved none exists"
        plan = result.plan
        assert plan.estimated_seconds <= deadline
        assert_within_tolerance(plan.estimated_cost, exact.estimated_cost)
        # The surrogate never asks for more than the grid would.
        stats = surrogate_optimizer.last_search_stats
        assert stats.sim_requests <= \
            surrogate_optimizer.grid_sim_requests(space)


class TestBudgetDifferential:
    """min-time under budget over the same seeded grids."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("budget", (0.25, 8.0))
    def test_matches_oracle(self, seed, budget):
        space = seeded_space(seed)
        exact_optimizer = optimizer_for()
        try:
            exact = exact_optimizer.minimize_time_under_budget(budget, space)
        except InfeasibleConstraintError:
            exact = None
        surrogate_optimizer = optimizer_for()
        try:
            result = surrogate_minimize_time_under_budget(
                surrogate_optimizer, budget, space)
        except InfeasibleConstraintError:
            assert exact is None
            return
        assert exact is not None
        plan = result.plan
        assert plan.estimated_cost <= budget
        assert_within_tolerance(plan.estimated_seconds,
                                exact.estimated_seconds)


class TestReliableDifferential:
    """The reliability-aware deadline solver, same oracle contract."""

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle(self, seed):
        space = seeded_space(seed)
        reliability = ReliabilityModel(crash_rate_per_hour=0.3,
                                       scenarios=3, seed=seed)
        deadline = 600.0
        exact_optimizer = optimizer_for()
        try:
            exact = exact_optimizer._minimize_cost_under_deadline_reliable(
                deadline, reliability, space)
        except InfeasibleConstraintError:
            exact = None
        surrogate_optimizer = optimizer_for()
        try:
            result = surrogate_minimize_cost_under_deadline(
                surrogate_optimizer, deadline, space,
                reliability=reliability)
        except InfeasibleConstraintError:
            assert exact is None
            return
        assert exact is not None
        reliable = result.reliable
        assert reliable is not None
        assert reliable.completion_rate == 1.0
        assert reliable.p95_seconds <= deadline
        assert_within_tolerance(reliable.mean_cost, exact.mean_cost)

    def test_frontier_members_are_mutually_undominated(self):
        space = seeded_space(3)
        reliability = ReliabilityModel(crash_rate_per_hour=0.3,
                                       scenarios=3, seed=11)
        optimizer = optimizer_for()
        result = surrogate_minimize_cost_under_deadline(
            optimizer, 3600.0, space, reliability=reliability)
        frontier = reliability_frontier(result.reliable_candidates)
        assert frontier, "at least the chosen plan joins the frontier"
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (a.p95_seconds <= b.p95_seconds
                             and a.mean_cost <= b.mean_cost
                             and a.completion_rate >= b.completion_rate
                             and (a.p95_seconds < b.p95_seconds
                                  or a.mean_cost < b.mean_cost
                                  or a.completion_rate > b.completion_rate))
                assert not dominates
        # Every non-member is dominated (or an exact tie of a member).
        for candidate in result.reliable_candidates:
            if candidate in frontier:
                continue
            assert any(
                other.p95_seconds <= candidate.p95_seconds
                and other.mean_cost <= candidate.mean_cost
                and other.completion_rate >= candidate.completion_rate
                for other in frontier)


class TestSimulationSavings:
    """The headline claim: far fewer simulations on a real-size grid."""

    def test_surrogate_prices_a_fraction_of_the_grid(self):
        space = SearchSpace(
            instance_types=tuple(get_instance_type(name) for name in
                                 ("m1.small", "m1.large", "c1.xlarge")),
            node_counts=(1, 2, 4, 8, 16, 32),
            slots_options=(1, 2, 4),
            matmul_options=(MatMulParams(1, 1, 1), MatMulParams(2, 2, 1)),
        )
        exact_optimizer = optimizer_for()
        exact = exact_optimizer._minimize_cost_under_deadline(3600.0, space)
        exact_requests = exact_optimizer.last_search_stats.sim_requests
        optimizer = optimizer_for()
        result = surrogate_minimize_cost_under_deadline(
            optimizer, 3600.0, space)
        stats = optimizer.last_search_stats
        assert stats.sim_requests * 2 <= exact_requests
        assert stats.simulations_avoided > 0
        assert stats.surrogate_rounds >= 0
        assert result.plan.estimated_cost <= \
            exact.estimated_cost * (1.0 + TOLERANCE)

    def test_stats_account_for_the_full_grid(self):
        space = seeded_space(1)
        optimizer = optimizer_for()
        surrogate_minimize_cost_under_deadline(optimizer, 3600.0, space)
        stats = optimizer.last_search_stats
        assert stats.sim_requests + stats.simulations_avoided \
            <= optimizer.grid_sim_requests(space)


class TestConfigValidation:
    def test_rejects_bad_seeds(self):
        with pytest.raises(ValidationError):
            SurrogateConfig(seeds=1)

    def test_rejects_negative_rounds(self):
        with pytest.raises(ValidationError):
            SurrogateConfig(max_rounds=-1)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValidationError):
            surrogate_minimize_cost_under_deadline(optimizer_for(), 0.0)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    deadline=st.floats(min_value=60.0, max_value=7200.0),
)
@settings(max_examples=15, deadline=None)
def test_surrogate_never_returns_infeasible(seed, deadline):
    """Whatever the grid and deadline, a returned plan meets the deadline.

    (Feasibility is proven by pricing, never predicted by the model — so
    this holds unconditionally, not just on average.)
    """
    space = seeded_space(seed)
    optimizer = optimizer_for()
    try:
        result = surrogate_minimize_cost_under_deadline(
            optimizer, deadline, space)
    except InfeasibleConstraintError:
        return
    assert result.plan.estimated_seconds <= deadline


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    budget=st.floats(min_value=0.05, max_value=50.0),
)
@settings(max_examples=10, deadline=None)
def test_surrogate_never_overspends_budget(seed, budget):
    space = seeded_space(seed)
    optimizer = optimizer_for()
    try:
        result = surrogate_minimize_time_under_budget(
            optimizer, budget, space)
    except InfeasibleConstraintError:
        return
    assert result.plan.estimated_cost <= budget
