"""Unit tests for the fair scheduling policy."""

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.errors import ValidationError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.simulator import FAIR, FIFO, ClusterSimulator
from repro.hadoop.task import TaskWork, make_map_task
from repro.hadoop.timemodel import FixedTimeModel


def spec(nodes=2, slots=2):
    return ClusterSpec(get_instance_type("m1.large"), nodes, slots)


def job(job_id, n_tasks):
    tasks = [make_map_task(f"{job_id}-t{i}", TaskWork())
             for i in range(n_tasks)]
    return Job(job_id, JobKind.MAP_ONLY, tasks)


def mixed_dag():
    """A big job submitted alongside a small one (no dependencies)."""
    return JobDag([job("big", 40), job("small", 2)])


class TestPolicies:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValidationError):
            ClusterSimulator(spec(), FixedTimeModel(1.0),
                             scheduling="lottery")

    def test_fifo_starves_small_job(self):
        result = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                  scheduling=FIFO).run(mixed_dag())
        # FIFO: the small job waits behind all 40 big tasks.
        assert result.job("small").end \
            >= result.job("big").end - 1.0

    def test_fair_finishes_small_job_early(self):
        result = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                  scheduling=FAIR).run(mixed_dag())
        assert result.job("small").end < 0.3 * result.job("big").end

    def test_fair_improves_small_job_latency_vs_fifo(self):
        fifo = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                scheduling=FIFO).run(mixed_dag())
        fair = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                scheduling=FAIR).run(mixed_dag())
        assert fair.job("small").end < fifo.job("small").end

    def test_fair_does_not_change_total_makespan_much(self):
        fifo = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                scheduling=FIFO).run(mixed_dag())
        fair = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                scheduling=FAIR).run(mixed_dag())
        assert fair.makespan == pytest.approx(fifo.makespan, rel=0.1)

    def test_fair_single_job_equals_fifo(self):
        dag_f = JobDag([job("only", 10)])
        dag_g = JobDag([job("only", 10)])
        fifo = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                scheduling=FIFO).run(dag_f)
        fair = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                scheduling=FAIR).run(dag_g)
        assert fair.makespan == fifo.makespan

    def test_fair_respects_dependencies(self):
        dag = JobDag([job("a", 4),
                      Job("b", JobKind.MAP_ONLY,
                          [make_map_task("b-t0", TaskWork())],
                          depends_on={"a"})])
        result = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                  scheduling=FAIR).run(dag)
        assert result.job("b").start >= result.job("a").end

    def test_all_tasks_run_under_fair(self):
        result = ClusterSimulator(spec(), FixedTimeModel(1.0),
                                  scheduling=FAIR).run(mixed_dag())
        ran = {a.task.task_id for t in result.job_timelines.values()
               for a in t.attempts}
        assert len(ran) == 42
