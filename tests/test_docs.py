"""Tier-1 documentation gate: docstring coverage and markdown link health.

Runs the same checks as the CI docs job (``tools/doccheck.py``): the core
and observability packages must stay >=80% docstring-covered, and every
relative link in ``docs/`` and the README must resolve — file and anchor.
Keeping this in tier-1 means a renamed doc heading or an undocumented new
module fails locally, not just in CI.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import doccheck  # noqa: E402


class TestDocstringCoverage:
    def test_core_and_observability_meet_gate(self):
        report = doccheck.docstring_coverage()
        assert report.total > 100, "coverage walk found too few definitions"
        missing = "\n".join(report.missing)
        assert report.percent >= doccheck.FAIL_UNDER, (
            f"docstring coverage {report.percent:.1f}% is below the "
            f"{doccheck.FAIL_UNDER:.0f}% gate; undocumented:\n{missing}")


class TestMarkdownLinks:
    def test_no_broken_links_or_anchors(self):
        errors = doccheck.check_links()
        assert errors == []

    def test_checker_sees_the_experiment_book(self):
        files = list(doccheck._iter_markdown_files(REPO_ROOT))
        names = {path.name for path in files}
        assert "benchmarks.md" in names and "README.md" in names

    def test_slugging_matches_github(self):
        assert doccheck.github_slug("Metrics & search telemetry") \
            == "metrics--search-telemetry"
        assert doccheck.github_slug("E22 — Fast optimizer search") \
            == "e22--fast-optimizer-search"
        assert doccheck.github_slug("Search performance") \
            == "search-performance"

    def test_broken_link_is_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text(
            "# A\n[dead](missing.md) [bad](a.md#nope) [ok](a.md#a)\n")
        errors = doccheck.check_links(root=tmp_path)
        assert len(errors) == 2
        assert any("missing.md" in e for e in errors)
        assert any("#nope" in e for e in errors)
