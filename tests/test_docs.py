"""Tier-1 documentation gate: docstrings, links, CLI refs, snapshots.

Runs the same checks as the CI docs job (``tools/doccheck.py``): the
core, observability, and service packages must stay >=80%
docstring-covered, every relative link in ``docs/`` and the README must
resolve — file and anchor — and every ``repro <subcommand>`` phrase in
the docs must name a real subcommand.  On top of that, ``docs/cli.md``
is snapshot-tested against ``tools/gendocs.py``: the committed CLI
reference must byte-match what the live argparse tree generates.
Keeping this in tier-1 means a renamed doc heading, an undocumented new
module, or a CLI flag change without a doc regen fails locally, not just
in CI.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import doccheck  # noqa: E402
import gendocs  # noqa: E402


class TestDocstringCoverage:
    def test_core_and_observability_meet_gate(self):
        report = doccheck.docstring_coverage()
        assert report.total > 100, "coverage walk found too few definitions"
        missing = "\n".join(report.missing)
        assert report.percent >= doccheck.FAIL_UNDER, (
            f"docstring coverage {report.percent:.1f}% is below the "
            f"{doccheck.FAIL_UNDER:.0f}% gate; undocumented:\n{missing}")


class TestMarkdownLinks:
    def test_no_broken_links_or_anchors(self):
        errors = doccheck.check_links()
        assert errors == []

    def test_checker_sees_the_experiment_book(self):
        files = list(doccheck._iter_markdown_files(REPO_ROOT))
        names = {path.name for path in files}
        assert "benchmarks.md" in names and "README.md" in names

    def test_slugging_matches_github(self):
        assert doccheck.github_slug("Metrics & search telemetry") \
            == "metrics--search-telemetry"
        assert doccheck.github_slug("E22 — Fast optimizer search") \
            == "e22--fast-optimizer-search"
        assert doccheck.github_slug("Search performance") \
            == "search-performance"

    def test_broken_link_is_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text(
            "# A\n[dead](missing.md) [bad](a.md#nope) [ok](a.md#a)\n")
        errors = doccheck.check_links(root=tmp_path)
        assert len(errors) == 2
        assert any("missing.md" in e for e in errors)
        assert any("#nope" in e for e in errors)


class TestCliReferences:
    def test_docs_name_only_real_subcommands(self):
        assert doccheck.check_cli_references() == []

    def test_parser_exposes_the_serving_stack(self):
        known = doccheck.cli_subcommands()
        assert {"serve", "loadtest", "chaos"} <= known

    def test_stale_reference_is_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text("# A\nRun `repro frobnicate` twice.\n")
        errors = doccheck.check_cli_references(root=tmp_path)
        assert len(errors) == 1
        assert "frobnicate" in errors[0]


class TestCliReferenceSnapshot:
    def test_generated_cli_md_matches_parser(self):
        committed = (REPO_ROOT / "docs" / "cli.md").read_text(
            encoding="utf-8")
        regenerated = gendocs.generate()
        assert committed == regenerated, (
            "docs/cli.md is stale; regenerate with "
            "`PYTHONPATH=src python tools/gendocs.py`")

    def test_reference_covers_every_subcommand(self):
        text = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
        for name in doccheck.cli_subcommands():
            assert f"## `repro {name}`" in text
