"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data import (
    low_rank_plus_noise,
    random_dense,
    random_gaussian,
    random_nonnegative,
    random_sparse,
    regression_dataset,
    stochastic_adjacency,
)
from repro.errors import ValidationError


class TestRandomDense:
    def test_shape_and_range(self):
        matrix = random_dense("A", 30, 20, seed=1)
        data = matrix.to_numpy()
        assert data.shape == (30, 20)
        assert (data >= 0).all() and (data < 1).all()

    def test_seed_reproducibility(self):
        a = random_dense("A", 10, 10, seed=42).to_numpy()
        b = random_dense("A", 10, 10, seed=42).to_numpy()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = random_dense("A", 10, 10, seed=1).to_numpy()
        b = random_dense("A", 10, 10, seed=2).to_numpy()
        assert not np.array_equal(a, b)

    def test_scale(self):
        data = random_dense("A", 20, 20, seed=1, scale=5.0).to_numpy()
        assert data.max() > 1.0

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            random_dense("A", 5, 5, seed=1, scale=0.0)


class TestRandomGaussian:
    def test_roughly_standard(self):
        data = random_gaussian("G", 100, 100, seed=3).to_numpy()
        assert abs(data.mean()) < 0.05
        assert abs(data.std() - 1.0) < 0.05


class TestRandomSparse:
    def test_density_respected(self):
        matrix = random_sparse("S", 100, 100, density=0.05, seed=5)
        assert matrix.density() == pytest.approx(0.05, abs=0.02)

    def test_invalid_density(self):
        with pytest.raises(ValidationError):
            random_sparse("S", 10, 10, density=1.5, seed=1)
        with pytest.raises(ValidationError):
            random_sparse("S", 10, 10, density=-0.1, seed=1)

    def test_zero_density(self):
        matrix = random_sparse("S", 10, 10, density=0.0, seed=1)
        assert matrix.nnz() == 0


class TestRandomNonnegative:
    def test_strictly_positive(self):
        data = random_nonnegative("N", 40, 30, seed=2).to_numpy()
        assert (data > 0).all()


class TestRegressionDataset:
    def test_shapes(self):
        x, y, w = regression_dataset(50, 5, seed=1)
        assert x.shape == (50, 5)
        assert y.shape == (50, 1)
        assert w.shape == (5,)

    def test_recoverable_weights(self):
        x, y, w_true = regression_dataset(500, 4, seed=2, noise=0.01)
        x_np, y_np = x.to_numpy(), y.to_numpy()
        w_hat = np.linalg.lstsq(x_np, y_np.ravel(), rcond=None)[0]
        np.testing.assert_allclose(w_hat, w_true, atol=0.05)

    def test_invalid_dimensions(self):
        with pytest.raises(ValidationError):
            regression_dataset(0, 5, seed=1)


class TestLowRank:
    def test_planted_rank_dominates(self):
        matrix = low_rank_plus_noise("L", 60, 40, rank=3, seed=4, noise=1e-6)
        singular_values = np.linalg.svd(matrix.to_numpy(), compute_uv=False)
        assert singular_values[2] > 1e3 * singular_values[3]

    def test_invalid_rank(self):
        with pytest.raises(ValidationError):
            low_rank_plus_noise("L", 10, 10, rank=0, seed=1)
        with pytest.raises(ValidationError):
            low_rank_plus_noise("L", 10, 10, rank=11, seed=1)


class TestStochasticAdjacency:
    def test_columns_sum_to_one(self):
        matrix = stochastic_adjacency("A", 50, avg_degree=5, seed=6)
        sums = matrix.to_numpy().sum(axis=0)
        np.testing.assert_allclose(sums, np.ones(50))

    def test_no_dangling_columns(self):
        matrix = stochastic_adjacency("A", 30, avg_degree=0.5, seed=7)
        assert (matrix.to_numpy().sum(axis=0) > 0).all()

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            stochastic_adjacency("A", 0, avg_degree=2, seed=1)
        with pytest.raises(ValidationError):
            stochastic_adjacency("A", 10, avg_degree=0, seed=1)
