"""Shared pytest policy for the suite.

Two opt-in tiers sit above the default (tier-1) run:

* ``@pytest.mark.process_backend`` — tests that spawn real kernel worker
  processes (the cross-backend differential harness, the process-backend
  parametrizations).  They are skipped unless ``REPRO_PROCESS_TESTS=1``
  so that ``pytest -x -q`` stays fast and single-process; CI runs them in
  a dedicated job.
* ``@pytest.mark.slow`` — long-running tests, skipped unless
  ``REPRO_SLOW_TESTS=1``.
"""

import os

import pytest

_GATES = (
    ("process_backend", "REPRO_PROCESS_TESTS",
     "needs kernel worker processes; set REPRO_PROCESS_TESTS=1 to run"),
    ("slow", "REPRO_SLOW_TESTS",
     "long-running; set REPRO_SLOW_TESTS=1 to run"),
)


def pytest_collection_modifyitems(config, items):
    """Skip env-gated markers unless their variable is set to 1."""
    for marker, variable, reason in _GATES:
        if os.environ.get(variable) == "1":
            continue
        skip = pytest.mark.skip(reason=reason)
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)
