"""Golden regression tests: pinned deterministic simulation numbers.

Every value here is fully determined by the reference hardware coefficients
and the deterministic simulator, so these tests catch *accidental* changes
to the cost model, the scheduler, or the compiler's work accounting.  When
a change is deliberate (e.g. recalibrating a coefficient), update the pins
and the affected EXPERIMENTS.md entries together.
"""

import pytest

from repro.baselines import plan_cpmm, plan_rmm
from repro.cloud import ClusterSpec, HourlyBilling, get_instance_type
from repro.core.compiler import CompilerParams, compile_program
from repro.core.costmodel import CumulonCostModel
from repro.core.physical import (
    MatMulParams,
    MatrixInfo,
    Operand,
    PhysicalContext,
    build_matmul_jobs,
)
from repro.core.simcost import simulate_program
from repro.hadoop.job import JobDag
from repro.matrix.tiled import TileGrid
from repro.workloads import build_gnmf_program, build_multiply_program


def spec(nodes=8, slots=2, instance="m1.large"):
    return ClusterSpec(get_instance_type(instance), nodes, slots)


def simulate(dag, **kwargs):
    return simulate_program(dag, spec(**kwargs), CumulonCostModel()).seconds


def multiply_dag(dimension=16384, tile=2048, params=MatMulParams(1, 1, 1)):
    context = PhysicalContext(tile)
    grid = TileGrid(dimension, dimension, tile)
    jobs = build_matmul_jobs("mm", Operand(MatrixInfo("A", grid)),
                             Operand(MatrixInfo("B", grid)), "C",
                             context, params)
    return JobDag(jobs.jobs())


class TestGoldenSimulations:
    def test_multiply_16k_reference_cluster(self):
        assert simulate(multiply_dag()) == pytest.approx(422.0, rel=0.01)

    def test_multiply_16k_big_cluster(self):
        assert simulate(multiply_dag(), nodes=32) \
            == pytest.approx(110.0, rel=0.01)

    def test_rmm_16k(self):
        context = PhysicalContext(2048)
        grid = TileGrid(16384, 16384, 2048)
        dag = plan_rmm(Operand(MatrixInfo("A", grid)),
                       Operand(MatrixInfo("B", grid)), "C", context).dag
        assert simulate(dag) == pytest.approx(568.8, rel=0.01)

    def test_cpmm_16k(self):
        context = PhysicalContext(2048)
        grid = TileGrid(16384, 16384, 2048)
        dag = plan_cpmm(Operand(MatrixInfo("A", grid)),
                        Operand(MatrixInfo("B", grid)), "C", context).dag
        assert simulate(dag) == pytest.approx(969.3, rel=0.01)

    def test_gnmf_iteration(self):
        program = build_gnmf_program(20480, 10240, 128, iterations=1)
        compiled = compile_program(program, PhysicalContext(2048))
        assert simulate(compiled.dag) == pytest.approx(47.4, rel=0.01)

    def test_headline_speedups_stable(self):
        """The abstract's claim — Cumulon beats the MapReduce systems —
        pinned as ratio bands rather than exact values."""
        cumulon = simulate(multiply_dag())
        context = PhysicalContext(2048)
        grid = TileGrid(16384, 16384, 2048)
        rmm = simulate(plan_rmm(Operand(MatrixInfo("A", grid)),
                                Operand(MatrixInfo("B", grid)), "C",
                                context).dag)
        cpmm = simulate(plan_cpmm(Operand(MatrixInfo("A", grid)),
                                  Operand(MatrixInfo("B", grid)), "C",
                                  context).dag)
        assert 1.1 < rmm / cumulon < 1.6
        assert 1.8 < cpmm / cumulon < 2.6


class TestGoldenCosts:
    def test_hourly_cost_of_reference_run(self):
        seconds = simulate(multiply_dag())
        cost = HourlyBilling().cost(spec(), seconds)
        assert cost == pytest.approx(8 * 0.24)

    def test_task_level_prediction(self):
        """One mult task of the 16k multiply on an idle m1.large slot."""
        dag = multiply_dag()
        task = dag.topological_order()[0].map_tasks[0]
        model = CumulonCostModel()
        seconds = model.task_duration(task, get_instance_type("m1.large"),
                                      concurrency=1, local=True)
        assert seconds == pytest.approx(98.4, rel=0.01)


class TestGoldenCompilation:
    def test_gnmf_job_and_task_counts(self):
        program = build_gnmf_program(20480, 10240, 128, iterations=1)
        compiled = compile_program(program, PhysicalContext(2048))
        assert len(list(compiled.dag)) == 8
        assert compiled.dag.num_tasks() == 37

    def test_multiply_work_accounting(self):
        program = build_multiply_program(16384, 16384, 16384)
        compiled = compile_program(
            program, PhysicalContext(2048),
            CompilerParams(matmul=MatMulParams(1, 1, 1)))
        job = compiled.dag.topological_order()[0]
        assert job.total_flops() == 2 * 16384 ** 3
        # Each input read once per opposing tile dimension (8x).
        assert job.total_bytes_read() == 2 * 8 * 16384 * 16384 * 8
        assert job.total_bytes_written() == 16384 * 16384 * 8
