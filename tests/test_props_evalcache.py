"""Property-based tests: simulation memo keys, cache behavior, frontier.

The cache-coherence property the tentpole rests on: two simulations share
a memo entry **iff** every timeline-shaping input matches — plan (DAG),
instance type, node count, slots, scheduler options, cost model, and the
failure model *including its seeds*.  Anything unprovable bypasses the
cache entirely.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import ClusterSpec, get_instance_type
from repro.core.compiler import CompilerParams, compile_program
from repro.core.costmodel import CumulonCostModel
from repro.core.evalcache import (
    NULL_EVAL_CACHE,
    CachedEstimate,
    EvalCache,
    eval_key,
    model_fingerprint,
)
from repro.core.physical import PhysicalContext
from repro.core.plans import DeploymentPlan, ParetoFrontier, skyline
from repro.errors import ValidationError
from repro.hadoop.faults import (
    CompositeNodeFailures,
    NodeFailureModel,
    NoNodeFailures,
    RandomNodeFailures,
    TargetedNodeFailures,
)
from repro.hadoop.simulator import dag_fingerprint
from repro.observability import MetricsRegistry
from repro.workloads import build_multiply_program

#: One draw of every component that must be part of the memo key.
KEY_COMPONENTS = st.tuples(
    st.sampled_from(["dag-a", "dag-b", "dag-c"]),
    st.sampled_from(["m1.large", "c1.xlarge"]),
    st.integers(min_value=1, max_value=8),     # nodes
    st.integers(min_value=1, max_value=4),     # slots
    st.booleans(),                             # locality_aware
    st.integers(min_value=1, max_value=3),     # min_live_nodes
    st.sampled_from(["model-a", "model-b"]),
    st.sampled_from(["none", "random[rate=0.1,seed=0]",
                     "random[rate=0.1,seed=1]"]),
)


def key_from(components):
    dag_fp, instance, nodes, slots, locality, min_live, model_fp, fail = \
        components
    spec = ClusterSpec(get_instance_type(instance), nodes, slots)
    return eval_key(dag_fp, spec, model_fp, locality_aware=locality,
                    min_live_nodes=min_live, failures_fp=fail)


class TestKeyIdentity:
    @given(a=KEY_COMPONENTS, b=KEY_COMPONENTS)
    @settings(max_examples=200, deadline=None)
    def test_keys_collide_iff_all_components_match(self, a, b):
        """Equal inputs -> equal keys; ANY differing input -> distinct keys."""
        key_a, key_b = key_from(a), key_from(b)
        assert key_a is not None and key_b is not None
        if a == b:
            assert key_a == key_b
            assert hash(key_a) == hash(key_b)
        else:
            assert key_a != key_b

    @given(components=KEY_COMPONENTS)
    @settings(max_examples=50, deadline=None)
    def test_unprovable_component_bypasses(self, components):
        """A None fingerprint anywhere means 'do not cache'."""
        spec = ClusterSpec(get_instance_type(components[1]), components[2],
                           components[3])
        assert eval_key(None, spec, "model") is None
        assert eval_key("dag", spec, None) is None
        assert eval_key("dag", spec, "model", failures_fp=None) is None


class TestFailureFingerprints:
    def test_seed_changes_fingerprint(self):
        base = RandomNodeFailures(0.5, seed=1).fingerprint()
        assert RandomNodeFailures(0.5, seed=2).fingerprint() != base
        assert RandomNodeFailures(0.25, seed=1).fingerprint() != base
        assert RandomNodeFailures(0.5, seed=1).fingerprint() == base

    def test_unknown_model_is_unprovable(self):
        class Mystery(NodeFailureModel):
            pass

        assert Mystery().fingerprint() is None
        composite = CompositeNodeFailures([NoNodeFailures(), Mystery()])
        assert composite.fingerprint() is None

    def test_composite_orders_children(self):
        a = TargetedNodeFailures({"n0": 1.0})
        b = RandomNodeFailures(0.5, seed=3)
        ab = CompositeNodeFailures([a, b]).fingerprint()
        assert ab is not None
        assert a.fingerprint() in ab and b.fingerprint() in ab


class TestModelAndDagFingerprints:
    def test_model_fingerprint_tracks_coefficients(self):
        model = CumulonCostModel()
        base = model_fingerprint(model)
        assert base is not None
        tweaked = CumulonCostModel(dataclasses.replace(
            model.coefficients,
            seconds_per_flop=model.coefficients.seconds_per_flop * 2))
        assert model_fingerprint(tweaked) != base
        assert model_fingerprint(CumulonCostModel()) == base

    def test_unrecognizable_model_is_unprovable(self):
        class Opaque:
            pass

        assert model_fingerprint(Opaque()) is None

    def test_dag_fingerprint_tracks_plan(self):
        program = build_multiply_program(2048, 2048, 2048)
        dag_a = compile_program(program, PhysicalContext(1024)).dag
        dag_b = compile_program(program, PhysicalContext(1024)).dag
        dag_c = compile_program(program, PhysicalContext(512)).dag
        assert dag_fingerprint(dag_a) == dag_fingerprint(dag_b)
        assert dag_fingerprint(dag_a) != dag_fingerprint(dag_c)
        # Memoized on the DAG: second call reuses the digest.
        assert dag_a._fingerprint_memo[1] == dag_fingerprint(dag_a)


class TestEvalCacheBehavior:
    def entry(self, seconds=10.0):
        return CachedEstimate(seconds=seconds)

    def test_hit_and_miss_accounting(self):
        metrics = MetricsRegistry()
        cache = EvalCache(metrics=metrics)
        key = key_from(("dag-a", "m1.large", 2, 2, True, 1, "m", "none"))
        assert cache.get(key) is None
        cache.put(key, self.entry())
        assert cache.get(key) == self.entry()
        assert (cache.hits, cache.misses, cache.requests) == (1, 1, 2)
        assert cache.hit_rate == 0.5
        assert cache.stats()["entries"] == 1
        assert metrics.counter("optimizer.evalcache_hits").value == 1
        assert metrics.counter("optimizer.evalcache_misses").value == 1
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_none_key_is_transparent(self):
        cache = EvalCache()
        assert cache.get(None) is None
        cache.put(None, self.entry())
        assert (cache.requests, len(cache)) == (0, 0)

    @given(capacity=st.integers(min_value=1, max_value=8),
           inserts=st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_eviction_bounds_entries_fifo(self, capacity, inserts):
        cache = EvalCache(max_entries=capacity)
        keys = [key_from(("dag-a", "m1.large", 1 + i, 1, True, 1, "m",
                          "none")) for i in range(inserts)]
        for key in keys:
            cache.put(key, self.entry())
        assert len(cache) == min(capacity, inserts)
        # The survivors are exactly the newest `capacity` keys.
        for key in keys[-capacity:]:
            assert cache.get(key) is not None
        for key in keys[:-capacity]:
            assert cache.get(key) is None

    def test_null_cache_never_stores_or_counts(self):
        key = key_from(("dag-a", "m1.large", 2, 2, True, 1, "m", "none"))
        NULL_EVAL_CACHE.put(key, self.entry())
        assert NULL_EVAL_CACHE.get(key) is None
        assert NULL_EVAL_CACHE.requests == 0
        assert NULL_EVAL_CACHE.enabled is False

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValidationError):
            EvalCache(max_entries=0)


POINT = st.tuples(st.floats(min_value=1.0, max_value=10_000.0),
                  st.floats(min_value=0.01, max_value=1_000.0))


def make_plans(points):
    spec = ClusterSpec(get_instance_type("m1.large"), 1, 1)
    return [DeploymentPlan(spec, CompilerParams(), seconds, cost)
            for seconds, cost in points]


def brute_force_keys(points):
    undominated = set()
    for s, c in points:
        if not any((qs <= s and qc <= c and (qs < s or qc < c))
                   for qs, qc in points):
            undominated.add((s, c))
    return sorted(undominated)


class TestIncrementalFrontier:
    @given(points=st.lists(POINT, min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force_in_any_insertion_order(self, points):
        """Incremental insertion == brute-force skyline, order-independent."""
        frontier = ParetoFrontier()
        for plan in make_plans(points):
            frontier.add(plan)
        keys = [(p.estimated_seconds, p.estimated_cost) for p in frontier]
        assert keys == brute_force_keys(points)
        # And the batch helper built on it agrees.
        batch = skyline(make_plans(points))
        assert [(p.estimated_seconds, p.estimated_cost)
                for p in batch] == keys

    @given(points=st.lists(POINT, min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_add_verdict_matches_membership(self, points):
        """add() returns True iff the plan survives on the frontier."""
        frontier = ParetoFrontier()
        for plan in make_plans(points):
            dominated = frontier.dominates(plan)
            accepted = frontier.add(plan)
            assert accepted != dominated
            if accepted:
                assert plan in list(frontier)
