"""Property-based tests: scheduler invariants for arbitrary workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import ClusterSpec, get_instance_type
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.simulator import ClusterSimulator
from repro.hadoop.task import TaskWork, make_map_task
from repro.hadoop.timemodel import TaskTimeModel


class VariableTimeModel(TaskTimeModel):
    """Deterministic per-task durations derived from the task id."""

    def __init__(self, durations):
        self.durations = durations

    def task_duration(self, task, instance, concurrency, local):
        return self.durations[task.task_id]

    def job_overhead(self, job):
        return 0.0


def build_dag(durations_per_job):
    dag = JobDag()
    previous = None
    durations = {}
    for job_index, task_durations in enumerate(durations_per_job):
        tasks = []
        for task_index, duration in enumerate(task_durations):
            task_id = f"j{job_index}t{task_index}"
            durations[task_id] = duration
            tasks.append(make_map_task(task_id, TaskWork()))
        deps = {f"job{previous}"} if previous is not None else set()
        dag.add(Job(f"job{job_index}", JobKind.MAP_ONLY, tasks,
                    depends_on=deps))
        previous = job_index
    return dag, durations


DURATIONS = st.lists(
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
             max_size=12),
    min_size=1, max_size=4,
)


@given(durations_per_job=DURATIONS, nodes=st.integers(1, 4),
       slots=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_all_tasks_run_exactly_once(durations_per_job, nodes, slots):
    dag, durations = build_dag(durations_per_job)
    spec = ClusterSpec(get_instance_type("m1.large"), nodes, min(slots, 4))
    result = ClusterSimulator(spec, VariableTimeModel(durations)).run(dag)
    ran = [attempt.task.task_id
           for timeline in result.job_timelines.values()
           for attempt in timeline.attempts]
    assert sorted(ran) == sorted(durations)


@given(durations_per_job=DURATIONS, nodes=st.integers(1, 3),
       slots=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_no_slot_oversubscription(durations_per_job, nodes, slots):
    dag, durations = build_dag(durations_per_job)
    slots = min(slots, 4)
    spec = ClusterSpec(get_instance_type("m1.large"), nodes, slots)
    result = ClusterSimulator(spec, VariableTimeModel(durations)).run(dag)
    events = []
    for timeline in result.job_timelines.values():
        for attempt in timeline.attempts:
            events.append((attempt.start, 1, attempt.node))
            events.append((attempt.end, -1, attempt.node))
    # Process departures before arrivals at equal timestamps.
    events.sort(key=lambda event: (event[0], event[1]))
    load = {}
    for __, delta, node in events:
        load[node] = load.get(node, 0) + delta
        assert 0 <= load[node] <= slots


@given(durations_per_job=DURATIONS)
@settings(max_examples=40, deadline=None)
def test_makespan_not_worse_with_more_slots(durations_per_job):
    dag1, durations = build_dag(durations_per_job)
    dag2, __ = build_dag(durations_per_job)
    model = VariableTimeModel(durations)
    small = ClusterSimulator(
        ClusterSpec(get_instance_type("m1.large"), 1, 1), model).run(dag1)
    large = ClusterSimulator(
        ClusterSpec(get_instance_type("m1.large"), 4, 4), model).run(dag2)
    assert large.makespan <= small.makespan + 1e-9


@given(durations_per_job=DURATIONS, nodes=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_makespan_bounds(durations_per_job, nodes):
    """Makespan is at least the critical path's serial work / slots, and at
    most the total serial work (for any schedule without idling bugs)."""
    dag, durations = build_dag(durations_per_job)
    spec = ClusterSpec(get_instance_type("m1.large"), nodes, 2)
    result = ClusterSimulator(spec, VariableTimeModel(durations)).run(dag)
    total_work = sum(durations.values())
    longest_task = max(durations.values())
    assert result.makespan >= longest_task - 1e-9
    assert result.makespan >= total_work / spec.total_slots - 1e-9
    assert result.makespan <= total_work + 1e-6


@given(durations_per_job=DURATIONS, nodes=st.integers(1, 3),
       slots=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(durations_per_job, nodes, slots):
    results = []
    for __ in range(2):
        dag, durations = build_dag(durations_per_job)
        spec = ClusterSpec(get_instance_type("m1.large"), nodes, slots)
        result = ClusterSimulator(spec, VariableTimeModel(durations)).run(dag)
        results.append(result.makespan)
    assert results[0] == pytest.approx(results[1], abs=0)
