"""Unit tests for the simulated HDFS: blocks, datanodes, placement, namenode."""

import pytest

from repro.errors import (
    FileExistsInHDFSError,
    FileNotFoundInHDFSError,
    ReplicationError,
    StorageError,
    ValidationError,
)
from repro.hdfs.blocks import BlockId, BlockInfo, split_into_block_sizes
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.placement import DefaultPlacement


def make_namenode(nodes: int = 4, replication: int = 3,
                  capacity: int = 10**9, block_size: int = 64 * 2**20):
    namenode = NameNode(block_size=block_size, replication=replication)
    for index in range(nodes):
        namenode.register_datanode(DataNode(f"node-{index}", capacity))
    return namenode


class TestBlocks:
    def test_split_exact(self):
        assert split_into_block_sizes(128, 64) == [64, 64]

    def test_split_remainder(self):
        assert split_into_block_sizes(130, 64) == [64, 64, 2]

    def test_split_small_file(self):
        assert split_into_block_sizes(10, 64) == [10]

    def test_split_empty_file(self):
        assert split_into_block_sizes(0, 64) == [0]

    def test_split_negative_rejected(self):
        with pytest.raises(ValidationError):
            split_into_block_sizes(-1, 64)

    def test_block_id_validation(self):
        with pytest.raises(ValidationError):
            BlockId(-1)

    def test_block_info_replication_count(self):
        info = BlockInfo(BlockId(0), 100, replicas={"a", "b"})
        assert info.replication == 2


class TestDataNode:
    def test_store_and_capacity(self):
        node = DataNode("n", 1000)
        node.store(BlockId(0), 400)
        assert node.used_bytes == 400
        assert node.free_bytes == 600

    def test_store_over_capacity_rejected(self):
        node = DataNode("n", 100)
        with pytest.raises(StorageError):
            node.store(BlockId(0), 200)

    def test_duplicate_store_rejected(self):
        node = DataNode("n", 1000)
        node.store(BlockId(0), 10)
        with pytest.raises(StorageError):
            node.store(BlockId(0), 10)

    def test_evict_frees_space(self):
        node = DataNode("n", 1000)
        node.store(BlockId(0), 400)
        node.evict(BlockId(0))
        assert node.used_bytes == 0
        assert not node.holds(BlockId(0))

    def test_evict_missing_rejected(self):
        node = DataNode("n", 1000)
        with pytest.raises(StorageError):
            node.evict(BlockId(7))

    def test_validation(self):
        with pytest.raises(ValidationError):
            DataNode("", 100)
        with pytest.raises(ValidationError):
            DataNode("n", 0)


class TestPlacement:
    def test_writer_local_first_replica(self):
        nodes = [DataNode(f"n{i}", 1000) for i in range(4)]
        chosen = DefaultPlacement().choose(nodes, 100, 3, writer="n2")
        assert chosen[0].name == "n2"
        assert len(chosen) == 3

    def test_distinct_nodes(self):
        nodes = [DataNode(f"n{i}", 1000) for i in range(4)]
        chosen = DefaultPlacement().choose(nodes, 100, 3)
        assert len({node.name for node in chosen}) == 3

    def test_prefers_least_loaded(self):
        nodes = [DataNode(f"n{i}", 1000) for i in range(3)]
        nodes[0].store(BlockId(99), 500)
        chosen = DefaultPlacement().choose(nodes, 100, 1)
        assert chosen[0].name in ("n1", "n2")

    def test_replication_capped_by_capacity(self):
        nodes = [DataNode("n0", 1000), DataNode("n1", 50)]
        chosen = DefaultPlacement().choose(nodes, 100, 3)
        assert [node.name for node in chosen] == ["n0"]

    def test_no_space_anywhere(self):
        nodes = [DataNode("n0", 10)]
        with pytest.raises(ReplicationError):
            DefaultPlacement().choose(nodes, 100, 1)

    def test_seeded_placement_is_deterministic(self):
        def run(seed):
            nodes = [DataNode(f"n{i}", 1000) for i in range(5)]
            policy = DefaultPlacement(seed=seed)
            return [n.name for n in policy.choose(nodes, 10, 3)]
        assert run(1) == run(1)


class TestNameNode:
    def test_create_and_read_payload(self):
        namenode = make_namenode()
        namenode.create("/a", 100, payload={"hello": 1})
        assert namenode.read("/a") == {"hello": 1}

    def test_create_duplicate_rejected(self):
        namenode = make_namenode()
        namenode.create("/a", 100)
        with pytest.raises(FileExistsInHDFSError):
            namenode.create("/a", 100)

    def test_create_without_datanodes_rejected(self):
        namenode = NameNode()
        with pytest.raises(ReplicationError):
            namenode.create("/a", 100)

    def test_empty_path_rejected(self):
        namenode = make_namenode()
        with pytest.raises(ValidationError):
            namenode.create("", 100)

    def test_read_missing_raises(self):
        namenode = make_namenode()
        with pytest.raises(FileNotFoundInHDFSError):
            namenode.read("/missing")

    def test_file_size(self):
        namenode = make_namenode()
        namenode.create("/a", 12345)
        assert namenode.file_size("/a") == 12345

    def test_multi_block_file(self):
        namenode = make_namenode(block_size=100)
        entry = namenode.create("/big", 250)
        assert entry.num_blocks == 3
        assert namenode.file_size("/big") == 250

    def test_replication_factor(self):
        namenode = make_namenode(nodes=5, replication=3)
        namenode.create("/a", 100)
        for info in namenode.block_infos("/a"):
            assert info.replication == 3

    def test_replication_capped_by_cluster_size(self):
        namenode = make_namenode(nodes=2, replication=3)
        namenode.create("/a", 100)
        for info in namenode.block_infos("/a"):
            assert info.replication == 2

    def test_replicas_on_distinct_nodes(self):
        namenode = make_namenode(nodes=5)
        namenode.create("/a", 100)
        for info in namenode.block_infos("/a"):
            assert len(info.replicas) == len(set(info.replicas))

    def test_delete_releases_capacity(self):
        namenode = make_namenode()
        namenode.create("/a", 1000)
        assert namenode.total_used_bytes() == 3000
        namenode.delete("/a")
        assert namenode.total_used_bytes() == 0
        assert not namenode.exists("/a")

    def test_delete_missing_raises(self):
        namenode = make_namenode()
        with pytest.raises(FileNotFoundInHDFSError):
            namenode.delete("/missing")

    def test_list_files_prefix(self):
        namenode = make_namenode()
        namenode.create("/m/A/t0", 10)
        namenode.create("/m/A/t1", 10)
        namenode.create("/m/B/t0", 10)
        assert namenode.list_files("/m/A/") == ["/m/A/t0", "/m/A/t1"]

    def test_replica_nodes_and_locality(self):
        namenode = make_namenode(nodes=4, replication=2)
        namenode.create("/a", 100, writer="node-1")
        nodes = namenode.replica_nodes("/a")
        assert "node-1" in nodes
        assert namenode.is_local("/a", "node-1")

    def test_writer_locality_respected(self):
        namenode = make_namenode(nodes=4)
        namenode.create("/a", 50, writer="node-3")
        assert "node-3" in namenode.replica_nodes("/a")

    def test_decommission_rereplicates(self):
        namenode = make_namenode(nodes=4, replication=2)
        namenode.create("/a", 100, writer="node-0")
        namenode.decommission("node-0")
        infos = namenode.block_infos("/a")
        for info in infos:
            assert info.replication == 2
            assert "node-0" not in info.replicas

    def test_decommission_unknown_node(self):
        namenode = make_namenode()
        with pytest.raises(ValidationError):
            namenode.decommission("nope")

    def test_duplicate_datanode_rejected(self):
        namenode = make_namenode()
        with pytest.raises(ValidationError):
            namenode.register_datanode(DataNode("node-0", 100))

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            NameNode(block_size=0)
        with pytest.raises(ValidationError):
            NameNode(replication=0)


class TestDecommissionAndUnderReplication:
    """Node loss at the namenode: re-replication billing, graceful
    degradation, and opportunistic healing."""

    def test_decommission_rereplicates_and_returns_bytes(self):
        namenode = make_namenode(nodes=4, replication=2)
        namenode.create("/a", 150 * 2**20, writer="node-0")
        victim = sorted(namenode.replica_nodes("/a"))[0]
        total = sum(info.size for info in namenode.block_infos("/a")
                    if victim in info.replicas)
        copied = namenode.decommission(victim)
        assert copied == total
        assert not namenode.has_datanode(victim)
        assert namenode.under_replicated() == []
        for info in namenode.block_infos("/a"):
            assert info.replication == 2
            assert victim not in info.replicas

    def test_decommission_unknown_node_rejected(self):
        namenode = make_namenode()
        with pytest.raises(ValidationError):
            namenode.decommission("node-99")

    def test_losing_last_replica_still_raises(self):
        namenode = NameNode(replication=1)
        namenode.register_datanode(DataNode("only", 10**9))
        namenode.create("/a", 10 * 2**20)
        with pytest.raises(ReplicationError, match="last replica"):
            namenode.decommission("only")

    def test_capacity_shortfall_recorded_not_raised(self):
        namenode = NameNode(replication=2)
        namenode.register_datanode(DataNode("node-0", 10**9))
        namenode.register_datanode(DataNode("node-1", 10**9))
        namenode.register_datanode(DataNode("node-2", 1))  # no room
        namenode.create("/a", 100 * 2**20, writer="node-0")
        copied = namenode.decommission("node-0")
        assert copied == 0  # nowhere to copy to
        under = namenode.under_replicated()
        assert under
        assert all(info.replication == 1 for info in under)

    def test_registering_capacity_heals_under_replication(self):
        namenode = NameNode(replication=2)
        namenode.register_datanode(DataNode("node-0", 10**9))
        namenode.register_datanode(DataNode("node-1", 10**9))
        namenode.register_datanode(DataNode("node-2", 1))  # no room
        namenode.create("/a", 100 * 2**20, writer="node-0")
        namenode.decommission("node-0")
        assert namenode.under_replicated()
        namenode.register_datanode(DataNode("node-3", 10**9))
        assert namenode.under_replicated() == []
        for info in namenode.block_infos("/a"):
            assert info.replication == 2

    def test_explicit_heal_reports_bytes(self):
        namenode = NameNode(replication=2)
        namenode.register_datanode(DataNode("node-0", 10**9))
        namenode.register_datanode(DataNode("node-1", 10**9))
        namenode.register_datanode(DataNode("node-2", 1))  # no room
        namenode.create("/a", 100 * 2**20, writer="node-0")
        namenode.decommission("node-0")
        assert namenode.heal() == 0  # still no spare capacity
        assert namenode.under_replicated()
        namenode.register_datanode(DataNode("node-4", 10**9))
        assert namenode.under_replicated() == []
        for info in namenode.block_infos("/a"):
            assert info.replication == 2

    def test_create_short_placement_is_under_replicated(self):
        namenode = NameNode(replication=3)
        namenode.register_datanode(DataNode("node-0", 10**9))
        namenode.create("/a", 10 * 2**20)
        # Only one node exists: target adapts, so nothing is pending...
        assert namenode.under_replicated() == []
        namenode_small = NameNode(replication=2)
        namenode_small.register_datanode(DataNode("big", 10**9))
        namenode_small.register_datanode(DataNode("tiny", 1))
        namenode_small.create("/b", 10 * 2**20, writer="big")
        # ...but a reachable target missed for lack of capacity is pending.
        assert namenode_small.under_replicated()

    def test_delete_clears_pending_blocks(self):
        namenode = NameNode(replication=2)
        namenode.register_datanode(DataNode("node-0", 10**9))
        namenode.register_datanode(DataNode("node-1", 10**9))
        namenode.register_datanode(DataNode("node-2", 1))  # no room
        namenode.create("/a", 100 * 2**20, writer="node-0")
        namenode.decommission("node-0")
        assert namenode.under_replicated()
        namenode.delete("/a")
        assert namenode.under_replicated() == []
