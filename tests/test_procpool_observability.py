"""Process-pool observability: worker-side spans, ingestion, profiling.

Everything here is tier-1 safe: the worker loop runs in a *thread* over a
real ``multiprocessing.Pipe`` (same protocol, no fork), shared-memory
segments are created and unlinked locally, and the dispatcher's ingestion
and the profile roll-up are exercised on synthetic events.  The
fork-for-real coverage lives in tests/test_backend_differential.py behind
the ``process_backend`` gate.
"""

import multiprocessing
import threading
from multiprocessing import shared_memory
from types import SimpleNamespace

import numpy as np
import pytest

from repro.hadoop.kernels import (
    BlockPlan,
    GridMultPlan,
    PackedPlan,
    PLAN_BLOCK,
    PLAN_GRID,
    PLAN_PACKED,
    pack_plan,
    plan_kind,
)
from repro.hadoop.procpool import (
    KERNEL_JOB_ID,
    ProcessDispatcher,
    _layout,
    _worker_main,
)
from repro.observability import (
    InMemoryRecorder,
    MetricsRegistry,
    PHASE_KERNEL,
    Trace,
    TraceEvent,
    profile_trace,
    render_profile,
)


def make_mult_plan():
    """A 2-payload, 1-output matmul plan (``payload0 @ payload1``)."""
    return BlockPlan(transposed=(False, False),
                     outputs=(((0, 1),),),
                     out_shapes=((4, 4),))


class WorkerHarness:
    """The worker loop in a thread over a real Pipe, plus shm buffers."""

    def __init__(self, payloads, out_bytes):
        self.in_slots, in_bytes = _layout(
            [tuple(p.shape) for p in payloads])
        self.shm_in = shared_memory.SharedMemory(create=True,
                                                 size=max(in_bytes, 16))
        self.shm_out = shared_memory.SharedMemory(create=True,
                                                  size=max(out_bytes, 16))
        for payload, (offset, shape) in zip(payloads, self.in_slots):
            view = np.frombuffer(self.shm_in.buf, dtype=np.float64,
                                 count=shape[0] * shape[1],
                                 offset=offset).reshape(shape)
            view[:] = payload
            del view
        self.conn, worker_end = multiprocessing.Pipe()
        self.thread = threading.Thread(target=_worker_main,
                                       args=(worker_end,), daemon=True)
        self.thread.start()

    def round_trip(self, plan, collect):
        self.conn.send((self.shm_in.name, self.in_slots,
                        self.shm_out.name, plan, collect))
        assert self.conn.poll(10), "worker did not answer"
        return self.conn.recv()

    def close(self):
        self.conn.send(None)
        self.thread.join(timeout=5)
        for shm in (self.shm_in, self.shm_out):
            try:
                shm.close()
                shm.unlink()
            except (BufferError, FileNotFoundError):
                pass


@pytest.fixture
def harness():
    rng = np.random.default_rng(7)
    payloads = [rng.random((4, 4)), rng.random((4, 4))]
    h = WorkerHarness(payloads, out_bytes=4 * 4 * 8)
    h.payloads = payloads
    yield h
    h.close()


class TestWorkerProtocol:
    def test_disabled_path_ships_no_events(self, harness):
        # The overhead tripwire: with collect=False the response's event
        # slot is None — the worker took no timestamps and allocated no
        # buffer.  (Times come from perf_counter; the only way to prove
        # "no timing happened" at this layer is the absent payload.)
        ok, counts, events = harness.round_trip(make_mult_plan(),
                                                collect=False)
        assert ok is True
        assert events is None
        assert len(counts) == 1

    def test_collect_ships_kernel_span_and_attach_events(self, harness):
        ok, counts, events = harness.round_trip(make_mult_plan(),
                                                collect=True)
        assert ok is True
        assert events is not None
        kinds = [kind for kind, *_ in events]
        # First request: both segments freshly attached, then the span.
        assert kinds.count("attach") == 2
        assert kinds.count("kernel") == 1
        kernel = [e for e in events if e[0] == "kernel"][0]
        __, label, tiles, start_rel, end_rel = kernel
        assert label == PLAN_BLOCK
        assert tiles == make_mult_plan().num_tiles
        assert start_rel == 0.0
        assert end_rel > 0.0
        # Relative times are bounded by the round-trip we just made.
        assert end_rel < 10.0

    def test_second_request_attaches_nothing(self, harness):
        harness.round_trip(make_mult_plan(), collect=True)
        __, __, events = harness.round_trip(make_mult_plan(), collect=True)
        assert [kind for kind, *_ in events] == ["kernel"]

    def test_worker_error_still_reports_events_shape(self, harness):
        # An undersized output shape makes the evaluator throw; the reply
        # must be (False, message, events) so the parent can still account
        # the attach work that happened before the failure.
        bad = BlockPlan(transposed=(False, False),
                        outputs=(((0, 1),),),
                        out_shapes=((64, 64),))  # exceeds the out segment
        ok, message, events = harness.round_trip(bad, collect=True)
        assert ok is False
        assert isinstance(message, str) and message
        assert events is not None

    def test_worker_result_matches_numpy(self, harness):
        ok, counts, __ = harness.round_trip(make_mult_plan(), collect=False)
        assert ok
        expected = harness.payloads[0] @ harness.payloads[1]
        got = np.frombuffer(harness.shm_out.buf, dtype=np.float64,
                            count=16).reshape(4, 4).copy()
        assert np.array_equal(got, expected)
        assert counts[0] == np.count_nonzero(expected)


class TestPlanKind:
    def test_kinds(self):
        plan = make_mult_plan()
        assert plan_kind(plan) == PLAN_BLOCK
        packed = pack_plan(plan, (4, 4))
        assert isinstance(packed, PackedPlan)
        assert plan_kind(packed) == PLAN_PACKED
        grid = GridMultPlan(ni=1, nj=1, nk=1, a_shape=(4, 4),
                            b_shape=(4, 4), left_transposed=False,
                            right_transposed=False, out_shape=(4, 4))
        assert plan_kind(grid) == PLAN_GRID

    def test_packed_tile_count_matches_block_plan(self):
        plan = make_mult_plan()
        packed = pack_plan(plan, (4, 4))
        assert packed.num_tiles == plan.num_tiles


class TestEventIngestion:
    """ProcessDispatcher._ingest_events on a fake handle — no processes."""

    def make_dispatcher(self):
        recorder = InMemoryRecorder()
        registry = MetricsRegistry()
        dispatcher = ProcessDispatcher(pool=None, metrics=registry,
                                       recorder=recorder)
        handle = SimpleNamespace(index=3, lane="procworker:3")
        return dispatcher, handle, recorder, registry

    def test_kernel_events_land_on_worker_lane(self):
        dispatcher, handle, recorder, registry = self.make_dispatcher()
        events = (("kernel", "packed", 12, 0.0, 0.25),
                  ("attach", "in", 4096, 0.01, 0.02))
        dispatcher._ingest_events(handle, events, base=10.0,
                                  in_bytes=100, out_bytes=200)
        trace = recorder.trace()
        kernels = [e for e in trace.kernel_events()
                   if e.label == "packed"]
        assert len(kernels) == 1
        event = kernels[0]
        assert event.slot == "procworker:3"
        assert event.job_id == KERNEL_JOB_ID
        assert event.start == pytest.approx(10.0)
        assert event.end == pytest.approx(10.25)
        assert event.bytes_read == 100
        assert event.bytes_written == 200
        attaches = [e for e in trace.kernel_events()
                    if e.label == "shm-attach"]
        assert len(attaches) == 1
        assert attaches[0].start == pytest.approx(10.01)
        # Metrics side: serve seconds observed per plan kind.
        names = {m.name for m in registry.metrics()}
        assert "procpool.serve_seconds" in names
        assert "procpool.shm_attaches" in names

    def test_kernel_events_never_enter_task_queries(self):
        dispatcher, handle, recorder, __ = self.make_dispatcher()
        dispatcher._ingest_events(
            handle, (("kernel", "block", 3, 0.0, 0.1),), 0.0, 0, 0)
        trace = recorder.trace()
        assert trace.task_events() == []
        assert trace.task_ids() == set()
        assert len(trace.kernel_events()) == 1


class TestProfileRollup:
    def make_trace(self):
        events = [
            TraceEvent("j1", "j1-mul-C@1-m0", "map", "worker:0", 0.0, 1.0),
            TraceEvent("j1", "j1-mul-C@1-m1", "map", "worker:1", 0.0, 2.0),
            TraceEvent(KERNEL_JOB_ID, "plan:grid", PHASE_KERNEL,
                       "procworker:0", 0.1, 0.9, bytes_read=64,
                       bytes_written=32, label="grid"),
            TraceEvent(KERNEL_JOB_ID, "plan:grid", PHASE_KERNEL,
                       "procworker:1", 0.2, 1.2, label="grid"),
            TraceEvent(KERNEL_JOB_ID, "shm-attach:in", PHASE_KERNEL,
                       "procworker:0", 0.0, 0.01, label="shm-attach"),
        ]
        return Trace(source="actual", events=events)

    def test_profile_numbers(self):
        profile = profile_trace(self.make_trace(), wall_seconds=2.0)
        assert profile.wall_seconds == 2.0
        assert profile.kernel_seconds == pytest.approx(1.8)
        assert profile.kernel_coverage == pytest.approx(0.9)
        assert [p.key for p in profile.plans] == ["grid"]
        assert profile.plans[0].count == 2
        assert profile.plans[0].bytes_read == 64
        # Both map attempts collapse into one task-group row.
        assert [t.key for t in profile.tasks] == ["j1-mul-C@1"]
        assert profile.tasks[0].count == 2
        # Pool worker lanes sort before thread lanes.
        assert [lane.lane for lane in profile.lanes] == [
            "procworker:0", "procworker:1", "worker:0", "worker:1"]
        by_lane = {lane.lane: lane for lane in profile.lanes}
        assert by_lane["worker:1"].utilization == pytest.approx(1.0)
        # The shm-attach bookkeeping is excluded from both the plan rows
        # and the lane busy time — only real work counts as utilization.
        assert by_lane["procworker:0"].busy_seconds == pytest.approx(0.8)

    def test_registry_supplies_tile_totals(self):
        registry = MetricsRegistry()
        registry.inc("procpool.plan_tiles", 126, labels={"plan": "grid"})
        profile = profile_trace(self.make_trace(), wall_seconds=2.0,
                                registry=registry)
        assert profile.plans[0].tiles == 126

    def test_render_is_stable_text(self):
        profile = profile_trace(self.make_trace(), wall_seconds=2.0)
        text = render_profile(profile)
        assert "worker kernel time" in text
        assert "90% of wall" in text
        assert "procworker:0" in text
        assert "j1-mul-C@1" in text
        document = profile.to_document()
        assert document["kernel_coverage"] == pytest.approx(0.9)

    def test_empty_trace_profile(self):
        profile = profile_trace(Trace(source="actual"))
        assert profile.kernel_coverage == 0.0
        assert render_profile(profile).startswith("wall time")
