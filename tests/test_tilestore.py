"""Unit tests for the HDFS-backed tile store."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.tilestore import TileStore
from repro.matrix.tile import Tile, TileId
from repro.matrix.tiled import TiledMatrix


@pytest.fixture
def store():
    namenode = NameNode(replication=2)
    for index in range(3):
        namenode.register_datanode(DataNode(f"node-{index}", 10**9))
    return TileStore(namenode)


class TestTileStore:
    def test_put_get_roundtrip(self, store):
        tile = Tile(TileId("A", 0, 0), np.arange(4.0).reshape(2, 2))
        store.put(tile)
        fetched = store.get(TileId("A", 0, 0))
        np.testing.assert_array_equal(fetched.to_dense(), tile.to_dense())

    def test_overwrite_on_put(self, store):
        store.put(Tile(TileId("A", 0, 0), np.zeros((2, 2))))
        store.put(Tile(TileId("A", 0, 0), np.ones((2, 2))))
        np.testing.assert_array_equal(
            store.get(TileId("A", 0, 0)).to_dense(), np.ones((2, 2))
        )

    def test_exists(self, store):
        assert not store.exists(TileId("A", 0, 0))
        store.put(Tile(TileId("A", 0, 0), np.zeros((2, 2))))
        assert store.exists(TileId("A", 0, 0))

    def test_tile_bytes_matches_payload(self, store):
        tile = Tile(TileId("A", 0, 0), np.ones((4, 4)))
        store.put(tile)
        assert store.tile_bytes(TileId("A", 0, 0)) == tile.nbytes()

    def test_replica_nodes(self, store):
        store.put(Tile(TileId("A", 0, 0), np.ones((2, 2))), writer="node-1")
        nodes = store.replica_nodes(TileId("A", 0, 0))
        assert "node-1" in nodes
        assert len(nodes) == 2

    def test_replica_nodes_missing_tile(self, store):
        assert store.replica_nodes(TileId("Z", 0, 0)) == set()

    def test_virtual_tile_has_size_but_no_payload(self, store):
        store.put_virtual(TileId("V", 0, 0), 4096, writer="node-0")
        assert store.tile_bytes(TileId("V", 0, 0)) == 4096
        with pytest.raises(StorageError):
            store.get(TileId("V", 0, 0))

    def test_matrix_bytes_and_delete(self, store):
        matrix = TiledMatrix.from_numpy("M", np.ones((6, 6)), 3, store)
        assert store.matrix_bytes("M") == matrix.nbytes()
        removed = store.delete_matrix("M")
        assert removed == 4
        assert store.matrix_bytes("M") == 0

    def test_tiled_matrix_backed_by_store_roundtrip(self, store):
        data = np.arange(36.0).reshape(6, 6)
        TiledMatrix.from_numpy("M", data, 3, store)
        again = TiledMatrix("M", TiledMatrix.from_numpy(
            "tmp", data, 3).grid, store)
        np.testing.assert_array_equal(again.to_numpy(), data)

    def test_storage_accounted_in_namenode(self, store):
        TiledMatrix.from_numpy("M", np.ones((4, 4)), 2, store)
        # replication 2: every byte stored twice across datanodes
        assert store.namenode.total_used_bytes() == 2 * store.matrix_bytes("M")


class TestCodecFastPath:
    """Regression: reads used to pay the codec on *every* ``get`` — the
    write-through resident table must absorb repeat reads entirely."""

    @staticmethod
    def make_store(codec="zlib1", **kwargs):
        namenode = NameNode(replication=2)
        for index in range(3):
            namenode.register_datanode(DataNode(f"node-{index}", 10**9))
        return TileStore(namenode, codec=codec, **kwargs)

    def test_repeat_reads_do_not_redecode(self):
        store = self.make_store()
        tile = Tile(TileId("A", 0, 0), np.arange(16.0).reshape(4, 4))
        store.put(tile)
        assert store.codec_encodes == 1
        for __ in range(10):
            store.get(TileId("A", 0, 0))
        # The put write-throughs the resident table; no read ever decodes.
        assert store.codec_decodes == 0

    def test_cold_read_decodes_exactly_once(self):
        store = self.make_store()
        tile = Tile(TileId("A", 0, 0), np.arange(16.0).reshape(4, 4))
        store.put(tile)
        store.drop_resident()
        for __ in range(5):
            store.get(TileId("A", 0, 0))
        # First (cold) read decodes and re-pins; the rest are fast-path.
        assert store.codec_decodes == 1

    def test_cache_disabled_decodes_every_read(self):
        store = self.make_store(cache=False)
        tile = Tile(TileId("A", 0, 0), np.arange(16.0).reshape(4, 4))
        store.put(tile)
        for __ in range(5):
            store.get(TileId("A", 0, 0))
        assert store.codec_decodes == 5

    def test_overwrite_invalidates_resident_tile(self):
        store = self.make_store()
        store.put(Tile(TileId("A", 0, 0), np.zeros((2, 2))))
        store.put(Tile(TileId("A", 0, 0), np.ones((2, 2))))
        np.testing.assert_array_equal(
            store.get(TileId("A", 0, 0)).to_dense(), np.ones((2, 2)))

    def test_delete_matrix_evicts_resident_tiles(self):
        store = self.make_store()
        store.put(Tile(TileId("A", 0, 0), np.ones((2, 2))))
        assert store.resident_tiles() == 1
        store.delete_matrix("A")
        assert store.resident_tiles() == 0

    def test_lossy_codec_fastpath_matches_blob(self):
        """The resident tile for a lossy codec is the *decoded* tile, so
        warm and cold reads agree bit for bit."""
        store = self.make_store(codec="q8")
        rng = np.random.default_rng(5)
        store.put(Tile(TileId("A", 0, 0), rng.random((6, 6))))
        warm = store.get(TileId("A", 0, 0)).to_dense()
        cold = store.read_through_codec(TileId("A", 0, 0)).to_dense()
        np.testing.assert_array_equal(warm, cold)

    def test_fastpath_metrics(self):
        from repro.observability.metrics import MetricsRegistry
        registry = MetricsRegistry()
        namenode = NameNode(replication=2)
        for index in range(3):
            namenode.register_datanode(DataNode(f"node-{index}", 10**9))
        store = TileStore(namenode, codec="zlib1", metrics=registry)
        tile = Tile(TileId("A", 0, 0), np.ones((4, 4)))
        store.put(tile)
        store.get(TileId("A", 0, 0))
        store.get(TileId("A", 0, 0))
        assert registry.counter("tilestore.fastpath_hits").value == 2
        assert registry.counter("tilestore.hits").value == 2
        assert registry.counter("tilestore.codec_encodes").value == 1
        assert registry.counter("tilestore.bytes_read").value \
            == 2 * tile.nbytes()

    def test_unknown_codec_rejected(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError, match="unknown codec"):
            self.make_store(codec="lz77")
