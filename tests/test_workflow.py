"""Unit tests for the workflow (multi-stage) optimizer."""

import pytest

from repro.cloud import get_instance_type
from repro.core.optimizer import SearchSpace
from repro.core.physical import MatMulParams
from repro.core.workflow import (
    WorkflowOptimizer,
    WorkflowStage,
)
from repro.errors import InfeasibleConstraintError, ValidationError
from repro.workloads import build_gnmf_program, build_multiply_program

TILE = 2048


def heavy_stage():
    return WorkflowStage("factorize",
                         build_gnmf_program(20480, 10240, 128, iterations=4))


def light_stage():
    return WorkflowStage("postprocess",
                         build_multiply_program(4096, 4096, 4096))


@pytest.fixture(scope="module")
def space():
    return SearchSpace(
        instance_types=(get_instance_type("m1.large"),
                        get_instance_type("c1.xlarge")),
        node_counts=(1, 2, 4, 8, 16),
        slots_options=(2, 4),
        matmul_options=(MatMulParams(1, 1, 1), MatMulParams(2, 2, 1)),
    )


@pytest.fixture(scope="module")
def optimizer():
    return WorkflowOptimizer([heavy_stage(), light_stage()], TILE)


class TestSharedStrategy:
    def test_feasible_plan(self, optimizer, space):
        plan = optimizer.optimize_shared(2 * 3600.0, space)
        assert plan.strategy == "shared"
        assert plan.total_seconds <= 2 * 3600.0
        assert len(plan.assignments) == 2
        # Shared: every stage runs on the identical spec.
        specs = {(a.plan.spec.instance_type.name, a.plan.spec.num_nodes,
                  a.plan.spec.slots_per_node) for a in plan.assignments}
        assert len(specs) == 1

    def test_infeasible_deadline(self, optimizer, space):
        with pytest.raises(InfeasibleConstraintError):
            optimizer.optimize_shared(10.0, space)

    def test_describe(self, optimizer, space):
        text = optimizer.optimize_shared(2 * 3600.0, space).describe()
        assert "factorize" in text
        assert "postprocess" in text


class TestPerStageStrategy:
    def test_feasible_plan(self, optimizer, space):
        plan = optimizer.optimize_per_stage(2 * 3600.0, space)
        assert plan.strategy == "per-stage"
        assert plan.total_seconds <= 2 * 3600.0 * 1.01

    def test_stages_can_differ(self, optimizer, space):
        plan = optimizer.optimize_per_stage(2 * 3600.0, space)
        sizes = [a.plan.spec.num_nodes for a in plan.assignments]
        # The heavy factorization stage gets at least as many nodes.
        assert sizes[0] >= sizes[1]

    def test_infeasible_deadline(self, optimizer, space):
        with pytest.raises(InfeasibleConstraintError):
            optimizer.optimize_per_stage(10.0, space)


class TestRecommendation:
    def test_returns_cheaper_strategy(self, optimizer, space):
        deadline = 2 * 3600.0
        shared = optimizer.optimize_shared(deadline, space)
        per_stage = optimizer.optimize_per_stage(deadline, space)
        chosen = optimizer.recommend(deadline, space)
        assert chosen.total_cost == min(shared.total_cost,
                                        per_stage.total_cost)

    def test_homogeneous_pipeline_prefers_shared(self, space):
        stages = [WorkflowStage(f"s{i}",
                                build_multiply_program(16384, 16384, 16384))
                  for i in range(3)]
        optimizer = WorkflowOptimizer(stages, TILE)
        chosen = optimizer.recommend(3 * 3600.0, space)
        # Identical stages: one cluster amortizes startup; per-stage pays
        # three startups and three billing minimums for nothing.
        assert chosen.strategy == "shared"

    def test_validation(self):
        with pytest.raises(ValidationError):
            WorkflowOptimizer([], TILE)
        with pytest.raises(ValidationError):
            WorkflowStage("", build_multiply_program(64, 64, 64))
