"""Integration tests: full pipelines across every subsystem.

Each test tells one end-to-end story the library must support:
provision -> store -> compile -> simulate -> optimize -> execute -> verify.
"""

import numpy as np
import pytest

from repro.baselines import compile_systemml_program
from repro.cloud import (
    ClusterSpec,
    HourlyBilling,
    get_instance_type,
    provision,
)
from repro.core.compiler import CompilerParams, compile_program
from repro.core.costmodel import CumulonCostModel
from repro.core.executor import CumulonExecutor
from repro.core.optimizer import DeploymentOptimizer, SearchSpace
from repro.core.physical import MatMulParams, PhysicalContext
from repro.core.simcost import place_virtual_inputs, simulate_program
from repro.hadoop.faults import RandomFailures
from repro.hadoop.local import LocalExecutor
from repro.hadoop.simulator import ClusterSimulator
from repro.hdfs.tilestore import TileStore
from repro.matrix.tiled import TiledMatrix
from repro.workloads import (
    build_gnmf_program,
    build_rsvd_program,
    reference_gnmf,
)


class TestExecuteOnSimulatedHDFS:
    """Real numbers flowing through the simulated HDFS end to end."""

    def test_gnmf_on_hdfs_tilestore(self):
        rng = np.random.default_rng(71)
        v = rng.random((48, 32)) + 0.01
        w0 = rng.random((48, 4)) + 0.01
        h0 = rng.random((4, 32)) + 0.01

        spec = ClusterSpec(get_instance_type("m1.large"), 3, 2)
        cluster = provision(spec, replication=2)
        store = TileStore(cluster.namenode)

        # Load inputs as real tiles in HDFS.
        executor = CumulonExecutor(tile_size=16, max_workers=2,
                                   backing=store)
        program = build_gnmf_program(48, 32, 4, iterations=2)
        result = executor.run(program, {"V": v, "W0": w0, "H0": h0})

        w_ref, h_ref = reference_gnmf(v, w0, h0, 2)
        np.testing.assert_allclose(result.output("W"), w_ref, rtol=1e-8)

        # Every output tile really lives in the namenode with replicas.
        info = result.compiled.output_info("W")
        for row, col in info.grid.positions():
            path = store.path_for(result.tiled_outputs["W"]
                                  .tile_id(row, col))
            assert cluster.namenode.exists(path)
            assert len(cluster.namenode.replica_nodes(path)) == 2

    def test_storage_accounting_consistent(self):
        spec = ClusterSpec(get_instance_type("m1.large"), 3, 2)
        cluster = provision(spec, replication=2)
        store = TileStore(cluster.namenode)
        rng = np.random.default_rng(5)
        matrix = TiledMatrix.from_numpy("M", rng.random((32, 32)), 8, store)
        assert cluster.namenode.total_used_bytes() == 2 * matrix.nbytes()


class TestSimulateWithPlacement:
    """Virtual inputs placed in HDFS drive locality-aware simulation."""

    def test_locality_fraction_high_with_matching_names(self):
        spec = ClusterSpec(get_instance_type("m1.large"), 4, 2)
        cluster = provision(spec, replication=2)
        store = TileStore(cluster.namenode)
        program = build_rsvd_program(8192, 4096, 512, power_iterations=0)
        context = PhysicalContext(1024, store)
        compiled = compile_program(program, context)
        # Place the only input matrices referenced by the program.
        infos = [compiled.materialized["A"], compiled.materialized["G"]]
        place_virtual_inputs(store, infos, spec.node_names())
        # Recompile so tasks pick up replica locations.
        compiled = compile_program(program, context)
        estimate = simulate_program(compiled.dag, spec, CumulonCostModel())
        first_job = compiled.dag.topological_order()[0]
        timeline = estimate.simulation.job(first_job.job_id)
        assert timeline.locality_fraction > 0.4


class TestOptimizerToExecution:
    """The optimizer's chosen physical parameters execute correctly."""

    def test_chosen_plan_params_run_for_real(self):
        big = build_rsvd_program(16384, 8192, 1024, power_iterations=1)
        optimizer = DeploymentOptimizer(big, tile_size=2048)
        space = SearchSpace(
            instance_types=(get_instance_type("m1.large"),),
            node_counts=(4, 8),
            slots_options=(2,),
        )
        plan = optimizer.minimize_cost_under_deadline(4 * 3600.0, space)

        # Re-run the same program shape, scaled down, with the chosen
        # physical parameters, and verify numerically.
        rng = np.random.default_rng(13)
        a = rng.standard_normal((64, 32))
        g = rng.standard_normal((32, 8))
        small = build_rsvd_program(64, 32, 8, power_iterations=1)
        executor = CumulonExecutor(tile_size=16, max_workers=2,
                                   params=plan.compiler_params)
        result = executor.run(small, {"A": a, "G": g})
        expected = a @ (a.T @ (a @ g))
        np.testing.assert_allclose(result.output("B"), expected, rtol=1e-8)


class TestFaultySimulationOfCompiledPrograms:
    """Compiled Cumulon plans survive failure injection."""

    def test_gnmf_completes_under_failures(self):
        program = build_gnmf_program(8192, 4096, 128, iterations=1)
        compiled = compile_program(program, PhysicalContext(1024))
        spec = ClusterSpec(get_instance_type("m1.large"), 4, 2)
        clean = ClusterSimulator(spec, CumulonCostModel()).run(compiled.dag)
        faulty = ClusterSimulator(
            spec, CumulonCostModel(),
            failures=RandomFailures(probability=0.05, seed=3,
                                    max_attempts=8),
        ).run(compile_program(program, PhysicalContext(1024)).dag)
        assert faulty.makespan >= clean.makespan
        assert faulty.makespan < 2.0 * clean.makespan


class TestCumulonVsSystemmlSameNumbers:
    """Both systems compute the identical result on the same store."""

    def test_identical_outputs(self):
        rng = np.random.default_rng(23)
        v = rng.random((32, 24)) + 0.01
        w0 = rng.random((32, 3)) + 0.01
        h0 = rng.random((3, 24)) + 0.01
        program = build_gnmf_program(32, 24, 3, iterations=1)

        cumulon = CumulonExecutor(tile_size=8, max_workers=2)
        result = cumulon.run(program, {"V": v, "W0": w0, "H0": h0})

        from repro.matrix.tiled import DenseBacking
        backing = DenseBacking()
        for name, data in (("V", v), ("W0", w0), ("H0", h0)):
            TiledMatrix.from_numpy(name, data, 8, backing)
        context = PhysicalContext(8, backing, attach_run=True)
        sys_compiled = compile_systemml_program(program, context)
        LocalExecutor(2).run(sys_compiled.dag)
        info = sys_compiled.output_info("W")
        sys_w = TiledMatrix(info.name, info.grid, backing).to_numpy()
        np.testing.assert_allclose(result.output("W"), sys_w, rtol=1e-10)


class TestBillingConsistency:
    """The optimizer's cost equals the billing model applied to its time."""

    def test_plan_cost_recomputable(self):
        program = build_rsvd_program(16384, 8192, 1024)
        optimizer = DeploymentOptimizer(program, tile_size=2048)
        space = SearchSpace(
            instance_types=(get_instance_type("m1.large"),),
            node_counts=(2, 4),
            slots_options=(2,),
            matmul_options=(MatMulParams(1, 1, 1),),
        )
        for plan in optimizer.enumerate_plans(space):
            recomputed = HourlyBilling().cost(plan.spec,
                                              plan.estimated_seconds)
            assert recomputed == pytest.approx(plan.estimated_cost)
