"""Unit tests for tile compression codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.physical import MatrixInfo
from repro.errors import ValidationError
from repro.matrix.compression import (
    NoCompression,
    Quantized8Codec,
    ZlibCodec,
    available_codecs,
    compression_report,
)
from repro.matrix.tiled import TileGrid, TiledMatrix

RNG = np.random.default_rng(61)


def structured_matrix(rows=64, cols=64, tile=16):
    """Low-entropy data: small integers with repeated runs."""
    data = np.repeat(np.arange(rows // 4), 4)[:, None] * np.ones((1, cols))
    return TiledMatrix.from_numpy("S", data, tile)


def noise_matrix(rows=64, cols=64, tile=16):
    return TiledMatrix.from_numpy("N", RNG.standard_normal((rows, cols)),
                                  tile)


class TestCodecs:
    @pytest.mark.parametrize("name", ["none", "zlib1", "zlib6"])
    def test_lossless_roundtrip(self, name):
        codec = available_codecs()[name]
        payload = RNG.standard_normal((13, 7))
        blob = codec.compress(payload)
        np.testing.assert_array_equal(
            codec.decompress(blob, payload.shape), payload)

    def test_q8_bounded_error(self):
        codec = Quantized8Codec()
        payload = RNG.random((16, 16)) * 10.0
        restored = codec.decompress(codec.compress(payload), payload.shape)
        value_range = payload.max() - payload.min()
        assert np.abs(restored - payload).max() <= value_range / 255.0

    def test_q8_constant_tile(self):
        codec = Quantized8Codec()
        payload = np.full((4, 4), 3.25)
        restored = codec.decompress(codec.compress(payload), payload.shape)
        np.testing.assert_allclose(restored, payload)

    def test_zlib_level_validation(self):
        with pytest.raises(ValidationError):
            ZlibCodec(0)
        with pytest.raises(ValidationError):
            ZlibCodec(10)

    def test_available_codecs_names(self):
        assert set(available_codecs()) == {"none", "zlib1", "zlib6", "q8"}


class TestReports:
    def test_structured_data_compresses_well(self):
        report = compression_report(structured_matrix(), ZlibCodec(6))
        assert report.ratio < 0.2
        assert report.max_roundtrip_error == 0.0

    def test_random_doubles_incompressible(self):
        report = compression_report(noise_matrix(), ZlibCodec(6))
        assert report.ratio > 0.7

    def test_q8_beats_lossless_on_noise(self):
        noise = noise_matrix()
        lossless = compression_report(noise, ZlibCodec(6))
        lossy = compression_report(noise, Quantized8Codec())
        assert lossy.ratio < lossless.ratio
        assert lossy.max_roundtrip_error > 0.0

    def test_none_codec_ratio_one(self):
        report = compression_report(noise_matrix(), NoCompression())
        assert report.ratio == pytest.approx(1.0)

    def test_better_level_no_worse(self):
        matrix = structured_matrix()
        fast = compression_report(matrix, ZlibCodec(1))
        thorough = compression_report(matrix, ZlibCodec(6))
        assert thorough.compressed_bytes <= fast.compressed_bytes


class TestBytesScale:
    def test_scales_tile_bytes(self):
        grid = TileGrid(64, 64, 16)
        raw = MatrixInfo("A", grid)
        half = MatrixInfo("A", grid, bytes_scale=0.5)
        assert half.tile_bytes(0, 0) == raw.tile_bytes(0, 0) // 2
        assert half.total_bytes() < raw.total_bytes()

    def test_validation(self):
        with pytest.raises(ValidationError):
            MatrixInfo("A", TileGrid(4, 4, 2), bytes_scale=0.0)


@given(rows=st.integers(1, 12), cols=st.integers(1, 12),
       seed=st.integers(0, 2**31),
       name=st.sampled_from(["none", "zlib1", "zlib6"]))
@settings(max_examples=40, deadline=None)
def test_property_lossless_codecs_roundtrip(rows, cols, seed, name):
    codec = available_codecs()[name]
    payload = np.random.default_rng(seed).standard_normal((rows, cols))
    blob = codec.compress(payload)
    np.testing.assert_array_equal(codec.decompress(blob, payload.shape),
                                  payload)
