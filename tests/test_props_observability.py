"""Property-based tests: trace invariants over seeded random job DAGs.

Whatever DAG shape the strategies generate, a trace must be *complete*
(every runnable task yields exactly one successful event), *monotone*
(non-negative, ordered timestamps; no slot runs two attempts at once), and
the recorder must stay consistent under the executor's thread pool.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import ClusterSpec, get_instance_type
from repro.hadoop.faults import RandomFailures
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.local import LocalExecutor
from repro.hadoop.simulator import ClusterSimulator
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task
from repro.hadoop.timemodel import FixedTimeModel
from repro.observability import (
    InMemoryRecorder,
    SOURCE_ACTUAL,
    SOURCE_SIMULATED,
    STATUS_FAILED,
    STATUS_SUCCESS,
)


def spec(nodes, slots):
    return ClusterSpec(get_instance_type("m1.large"), nodes, slots)


def random_dag(shape, with_reduces, runnable=False, sink=None, lock=None):
    """Build a chain-dependency DAG from a list of per-job task counts."""
    dag = JobDag()
    previous = None
    for job_index, num_tasks in enumerate(shape):
        def make_run(task_id):
            if not runnable:
                return None

            def run():
                with lock:
                    sink.append(task_id)
            return run

        maps = [
            make_map_task(f"j{job_index}m{i}", TaskWork(bytes_read=10),
                          run=make_run(f"j{job_index}m{i}"))
            for i in range(num_tasks)
        ]
        reduces = []
        kind = JobKind.MAP_ONLY
        if with_reduces and job_index % 2 == 1:
            kind = JobKind.MAPREDUCE
            reduces = [make_reduce_task(f"j{job_index}r0", TaskWork(),
                                        run=make_run(f"j{job_index}r0"))]
        deps = {f"job{previous}"} if previous is not None else set()
        dag.add(Job(f"job{job_index}", kind, maps, reduces,
                    depends_on=deps))
        previous = job_index
    return dag


SHAPES = st.lists(st.integers(min_value=1, max_value=10),
                  min_size=1, max_size=4)


@given(shape=SHAPES, with_reduces=st.booleans(),
       nodes=st.integers(1, 4), slots=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_simulated_trace_completeness(shape, with_reduces, nodes, slots):
    dag = random_dag(shape, with_reduces)
    recorder = InMemoryRecorder(source=SOURCE_SIMULATED)
    ClusterSimulator(spec(nodes, slots), FixedTimeModel(1.0),
                     recorder=recorder).run(dag)
    trace = recorder.trace()
    all_tasks = {task.task_id for job in dag for task in job.all_tasks()}
    successes = [event for event in trace.task_events()
                 if event.status == STATUS_SUCCESS]
    # Exactly one successful event per runnable task, never more.
    assert sorted(event.task_id for event in successes) == sorted(all_tasks)


@given(shape=SHAPES, with_reduces=st.booleans(),
       nodes=st.integers(1, 4), slots=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_simulated_trace_monotone_and_disjoint(shape, with_reduces, nodes,
                                               slots):
    dag = random_dag(shape, with_reduces)
    recorder = InMemoryRecorder(source=SOURCE_SIMULATED)
    ClusterSimulator(spec(nodes, slots), FixedTimeModel(1.0),
                     recorder=recorder).run(dag)
    trace = recorder.trace()
    assert all(event.start >= 0 and event.end >= event.start
               for event in trace.events)
    starts = [event.start for event in trace.events]
    assert starts == sorted(starts)  # trace() returns time order
    assert trace.slot_overlaps() == []
    assert trace.barrier_violations() == []


@given(shape=SHAPES, probability=st.floats(0.0, 0.6),
       seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_simulated_retries_recorded(shape, probability, seed):
    """Under random failures: one success per task, and its attempt number
    equals the count of its recorded failed attempts."""
    dag = random_dag(shape, with_reduces=False)
    recorder = InMemoryRecorder(source=SOURCE_SIMULATED)
    failures = RandomFailures(probability, seed=seed, max_attempts=50)
    ClusterSimulator(spec(2, 2), FixedTimeModel(1.0), failures=failures,
                     recorder=recorder).run(dag)
    trace = recorder.trace()
    by_task = {}
    for event in trace.task_events():
        by_task.setdefault(event.task_id, []).append(event)
    for task_id, events in by_task.items():
        successes = [e for e in events if e.status == STATUS_SUCCESS]
        failed = [e for e in events if e.status == STATUS_FAILED]
        assert len(successes) == 1, task_id
        assert successes[0].attempt == len(failed)
        assert sorted(e.attempt for e in events) == list(range(len(events)))


@given(shape=SHAPES, workers=st.integers(2, 8), seed=st.integers(0, 99))
@settings(max_examples=25, deadline=None)
def test_local_recorder_thread_safe(shape, workers, seed):
    """Concurrency must lose no events and corrupt no slots."""
    sink, lock = [], threading.Lock()
    dag = random_dag(shape, with_reduces=True, runnable=True,
                     sink=sink, lock=lock)
    recorder = InMemoryRecorder(source=SOURCE_ACTUAL)
    LocalExecutor(max_workers=workers, recorder=recorder).run(dag)
    trace = recorder.trace()
    all_tasks = {task.task_id for job in dag for task in job.all_tasks()}
    # Every task ran exactly once, and every run produced exactly one event.
    assert sorted(sink) == sorted(all_tasks)
    assert sorted(event.task_id for event in trace.task_events()) \
        == sorted(all_tasks)
    assert trace.slot_overlaps() == []
    assert trace.barrier_violations() == []
    # All events landed on slots the pool actually owns.
    assert {event.slot for event in trace.task_events()} \
        <= {f"worker:{i}" for i in range(workers)}


@given(shape=SHAPES)
@settings(max_examples=20, deadline=None)
def test_null_recorder_changes_nothing(shape):
    """The default null recorder must not alter simulation results."""
    dag_a = random_dag(shape, with_reduces=True)
    dag_b = random_dag(shape, with_reduces=True)
    plain = ClusterSimulator(spec(2, 2), FixedTimeModel(1.0)).run(dag_a)
    recorder = InMemoryRecorder(source=SOURCE_SIMULATED)
    traced = ClusterSimulator(spec(2, 2), FixedTimeModel(1.0),
                              recorder=recorder).run(dag_b)
    assert plain.makespan == traced.makespan
    assert {job_id: timeline.duration
            for job_id, timeline in plain.job_timelines.items()} \
        == {job_id: timeline.duration
            for job_id, timeline in traced.job_timelines.items()}
