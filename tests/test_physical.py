"""Unit tests for the physical operator layer: work accounting, locality."""

import numpy as np
import pytest

from repro.core.physical import (
    ElementwiseParams,
    FusedKernel,
    MatMulParams,
    MatrixInfo,
    Operand,
    PhysicalContext,
    build_elementwise_job,
    build_matmul_jobs,
    estimate_task_memory_bytes,
    partial_name,
)
from repro.errors import ShapeError, ValidationError
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.tilestore import TileStore
from repro.matrix.tile import TileId
from repro.matrix.tiled import TileGrid, TiledMatrix


def info(name="A", rows=8, cols=8, tile=4, density=1.0):
    return MatrixInfo(name, TileGrid(rows, cols, tile), density)


class TestMatrixInfo:
    def test_tile_bytes_dense(self):
        assert info().tile_bytes(0, 0) == 4 * 4 * 8

    def test_tile_bytes_sparse_uses_density(self):
        sparse_info = info(density=0.01)
        assert sparse_info.tile_bytes(0, 0) < info().tile_bytes(0, 0)

    def test_total_bytes(self):
        assert info().total_bytes() == 8 * 8 * 8

    def test_density_validated(self):
        with pytest.raises(ValidationError):
            info(density=2.0)


class TestOperand:
    def test_plain_shape(self):
        operand = Operand(info(rows=8, cols=4))
        assert operand.shape == (8, 4)
        assert operand.tile_rows == 2
        assert operand.tile_cols == 1

    def test_transposed_shape(self):
        operand = Operand(info(rows=8, cols=4), transposed=True)
        assert operand.shape == (4, 8)
        assert operand.tile_rows == 1
        assert operand.tile_cols == 2

    def test_tile_id_mapping(self):
        operand = Operand(info(), transposed=True)
        tile_id = operand.tile_id(0, 1)
        assert (tile_id.row, tile_id.col) == (1, 0)


class TestMatMulParams:
    def test_validation(self):
        with pytest.raises(ValidationError):
            MatMulParams(0, 1, 1)
        with pytest.raises(ValidationError):
            MatMulParams(1, 1, 0)

    def test_memory_estimate_grows_with_chunk(self):
        left = Operand(info("A", 16, 16, 4))
        right = Operand(info("B", 16, 16, 4))
        small = estimate_task_memory_bytes(left, right, MatMulParams(1, 1, 4), 4)
        large = estimate_task_memory_bytes(left, right, MatMulParams(4, 4, 1), 4)
        assert large > small


class TestMatMulJobs:
    def test_no_split_single_job(self):
        jobs = build_matmul_jobs("j", Operand(info("A")), Operand(info("B")),
                                 "C", PhysicalContext(4), MatMulParams())
        assert jobs.add_job is None
        assert len(jobs.mult_job.map_tasks) == 4  # 2x2 output tiles

    def test_split_produces_add_job(self):
        jobs = build_matmul_jobs("j", Operand(info("A")), Operand(info("B")),
                                 "C", PhysicalContext(4), MatMulParams(1, 1, 2))
        assert jobs.add_job is not None
        assert jobs.add_job.depends_on == {jobs.mult_job.job_id}
        assert len(jobs.mult_job.map_tasks) == 8

    def test_ksplit_capped_by_tile_count(self):
        jobs = build_matmul_jobs("j", Operand(info("A")), Operand(info("B")),
                                 "C", PhysicalContext(4), MatMulParams(1, 1, 99))
        # only 2 k tiles exist -> 2 segments
        assert len(jobs.mult_job.map_tasks) == 8

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            build_matmul_jobs("j", Operand(info("A", 8, 8)),
                              Operand(info("B", 4, 8)), "C",
                              PhysicalContext(4), MatMulParams())

    def test_total_read_amplification(self):
        # With 2x2 output tile grid and 1-tile chunks, A is read once per
        # output tile column and B once per output tile row.
        left, right = Operand(info("A")), Operand(info("B"))
        jobs = build_matmul_jobs("j", left, right, "C",
                                 PhysicalContext(4), MatMulParams())
        total_read = jobs.mult_job.total_bytes_read()
        assert total_read == 2 * left.info.total_bytes() \
            + 2 * right.info.total_bytes()

    def test_bigger_chunks_read_less(self):
        left, right = Operand(info("A", 16, 16, 4)), Operand(info("B", 16, 16, 4))
        small = build_matmul_jobs("j1", left, right, "C",
                                  PhysicalContext(4), MatMulParams(1, 1, 1))
        large = build_matmul_jobs("j2", left, right, "C2",
                                  PhysicalContext(4), MatMulParams(4, 4, 1))
        assert large.mult_job.total_bytes_read() \
            < small.mult_job.total_bytes_read()

    def test_flops_scale_with_density(self):
        dense = build_matmul_jobs(
            "j1", Operand(info("A")), Operand(info("B")), "C",
            PhysicalContext(4), MatMulParams())
        sparse = build_matmul_jobs(
            "j2", Operand(info("A", density=0.01)),
            Operand(info("B", density=0.01)), "C2",
            PhysicalContext(4), MatMulParams())
        assert sparse.mult_job.total_flops() < dense.mult_job.total_flops()

    def test_partial_name(self):
        assert partial_name("C", 2) == "C#part2"

    def test_tasks_have_memory_estimates(self):
        jobs = build_matmul_jobs("j", Operand(info("A")), Operand(info("B")),
                                 "C", PhysicalContext(4), MatMulParams())
        for task in jobs.mult_job.map_tasks:
            assert task.work.memory_bytes > 0


class TestElementwiseJob:
    def test_task_chunking(self):
        kernel = FusedKernel([Operand(info("A"))], lambda a: a, 1)
        job = build_elementwise_job("j", kernel, info("OUT"),
                                    PhysicalContext(4),
                                    ElementwiseParams(tiles_per_task=3))
        # 4 tiles in chunks of 3 -> 2 tasks.
        assert len(job.map_tasks) == 2

    def test_shape_mismatch_rejected(self):
        kernel = FusedKernel([Operand(info("A"))], lambda a: a, 1)
        with pytest.raises(ShapeError):
            build_elementwise_job("j", kernel, info("OUT", 4, 4),
                                  PhysicalContext(4), ElementwiseParams())

    def test_kernel_operand_shapes_checked(self):
        with pytest.raises(ShapeError):
            FusedKernel([Operand(info("A", 8, 8)), Operand(info("B", 4, 4))],
                        lambda a, b: a + b, 1)

    def test_kernel_needs_operands(self):
        from repro.errors import CompilationError
        with pytest.raises(CompilationError):
            FusedKernel([], lambda: None, 0)

    def test_element_ops_counted(self):
        kernel = FusedKernel([Operand(info("A"))], lambda a: a * 2, 3)
        job = build_elementwise_job("j", kernel, info("OUT"),
                                    PhysicalContext(4), ElementwiseParams())
        assert job.map_tasks[0].work.element_ops > 0


class TestLocality:
    def make_store(self):
        namenode = NameNode(replication=2)
        for index in range(3):
            namenode.register_datanode(DataNode(f"node-{index}", 10**9))
        return TileStore(namenode)

    def test_preferred_nodes_from_store(self):
        store = self.make_store()
        TiledMatrix.from_numpy("A", np.ones((8, 8)), 4, store)
        context = PhysicalContext(4, store)
        nodes = context.preferred_nodes([TileId("A", 0, 0)])
        assert nodes  # replication 2 on 3 nodes: at least one holder

    def test_preferred_nodes_intersection(self):
        store = self.make_store()
        TiledMatrix.from_numpy("A", np.ones((8, 8)), 4, store)
        context = PhysicalContext(4, store)
        all_ids = [TileId("A", r, c) for r in range(2) for c in range(2)]
        nodes = context.preferred_nodes(all_ids)
        for tile_id in all_ids:
            assert nodes <= store.replica_nodes(tile_id)

    def test_no_store_no_preference(self):
        context = PhysicalContext(4)
        assert context.preferred_nodes([TileId("A", 0, 0)]) == frozenset()

    def test_matmul_tasks_carry_locality(self):
        store = self.make_store()
        TiledMatrix.from_numpy("A", np.ones((8, 8)), 4, store)
        TiledMatrix.from_numpy("B", np.ones((8, 8)), 4, store)
        context = PhysicalContext(4, store)
        jobs = build_matmul_jobs("j", Operand(info("A")), Operand(info("B")),
                                 "C", context, MatMulParams())
        preferences = [task.preferred_nodes for task in jobs.mult_job.map_tasks]
        assert any(preferences)  # at least some tasks have co-located inputs


class TestContextValidation:
    def test_attach_run_requires_backing(self):
        with pytest.raises(ValidationError):
            PhysicalContext(4, backing=None, attach_run=True)

    def test_invalid_tile_size(self):
        with pytest.raises(ValidationError):
            PhysicalContext(0)
