"""Property-based tests: HDFS invariants under random operation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode


def build_namenode(n_nodes, replication):
    namenode = NameNode(block_size=1000, replication=replication)
    for index in range(n_nodes):
        namenode.register_datanode(DataNode(f"n{index}", 10**8))
    return namenode


operation = st.one_of(
    st.tuples(st.just("create"), st.integers(0, 50), st.integers(0, 5000)),
    st.tuples(st.just("delete"), st.integers(0, 50), st.just(0)),
)


@given(n_nodes=st.integers(1, 8), replication=st.integers(1, 4),
       ops=st.lists(operation, max_size=60))
@settings(max_examples=60, deadline=None)
def test_capacity_accounting_and_replication(n_nodes, replication, ops):
    namenode = build_namenode(n_nodes, replication)
    live = {}
    for kind, key, size in ops:
        path = f"/f{key}"
        if kind == "create":
            if path in live:
                continue
            namenode.create(path, size)
            live[path] = size
        else:
            if path not in live:
                continue
            namenode.delete(path)
            del live[path]

    # Invariant 1: every live file is fully readable with its exact size.
    for path, size in live.items():
        assert namenode.file_size(path) == size

    # Invariant 2: replication = min(requested, cluster size) per block.
    expected_replication = min(replication, n_nodes)
    for path in live:
        for info in namenode.block_infos(path):
            assert info.replication == expected_replication
            assert len(info.replicas) == len(set(info.replicas))

    # Invariant 3: datanode usage sums to replication x live bytes
    # (block-level: zero-size files still occupy one zero-byte block).
    expected_bytes = sum(
        sum(info.size for info in namenode.block_infos(path))
        for path in live
    ) * expected_replication
    assert namenode.total_used_bytes() == expected_bytes

    # Invariant 4: the namespace lists exactly the live files.
    assert set(namenode.list_files()) == set(live)


@given(n_nodes=st.integers(2, 6), files=st.integers(1, 20),
       seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_decommission_preserves_files(n_nodes, files, seed):
    namenode = build_namenode(n_nodes, replication=2)
    for index in range(files):
        namenode.create(f"/f{index}", 100 + index,
                        writer=f"n{index % n_nodes}")
    victim = f"n{seed % n_nodes}"
    try:
        namenode.decommission(victim)
    except StorageError:
        # Legal when re-replication is impossible (e.g. 2 -> 1 nodes with
        # insufficient space); files must still be listed.
        pass
    for index in range(files):
        assert namenode.exists(f"/f{index}")
        for info in namenode.block_infos(f"/f{index}"):
            assert victim not in info.replicas
            assert info.replication >= 1
