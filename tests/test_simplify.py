"""Unit and property tests for the algebraic simplification pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompilerParams, compile_program
from repro.core.executor import run_program
from repro.core.expr import ScalarOp, Var, evaluate_with_numpy
from repro.core.physical import PhysicalContext
from repro.core.program import Program
from repro.core.rewrite import simplify

RNG = np.random.default_rng(101)


def var(rows=6, cols=6):
    return Var("A", (rows, cols))


class TestSimplify:
    def test_times_one_vanishes(self):
        assert simplify(var() * 1.0) is not None
        assert isinstance(simplify(var() * 1.0), Var)

    def test_plus_zero_vanishes(self):
        assert isinstance(simplify(var() + 0.0), Var)

    def test_scalar_mul_chain_folds(self):
        node = simplify((var() * 2.0) * 3.0)
        assert isinstance(node, ScalarOp)
        assert node.scalar == pytest.approx(6.0)
        assert isinstance(node.child, Var)

    def test_scalar_add_chain_folds(self):
        node = simplify((var() + 2.0) + 3.0)
        assert isinstance(node, ScalarOp)
        assert node.scalar == pytest.approx(5.0)

    def test_mixed_chain_partial_fold(self):
        # (A*2 + 1) * 1 -> A*2 + 1 (inner mixed ops preserved).
        node = simplify(((var() * 2.0) + 1.0) * 1.0)
        assert isinstance(node, ScalarOp)
        assert node.op == "add"

    def test_fold_then_identity(self):
        # (A*2)*0.5 -> A*1 -> A.
        node = simplify((var() * 2.0) * 0.5)
        assert isinstance(node, Var)

    def test_nested_in_matmul(self):
        expr = (var() * 1.0) @ (var() + 0.0)
        node = simplify(expr)
        assert isinstance(node.left, Var)
        assert isinstance(node.right, Var)

    def test_untouched_expression(self):
        expr = var() @ var()
        node = simplify(expr)
        assert node.shape == expr.shape

    def test_compiler_drops_identity_job(self):
        # X = A * 1.0 compiles to zero jobs (pure alias) with simplify on.
        program = Program("id")
        a = program.declare_input("A", 8, 8)
        program.assign("X", a * 1.0)
        compiled = compile_program(program, PhysicalContext(4))
        assert len(list(compiled.dag)) == 0
        off = Program("id")
        a = off.declare_input("A", 8, 8)
        off.assign("X", a * 1.0)
        compiled_off = compile_program(
            off, PhysicalContext(4),
            CompilerParams(simplify_enabled=False))
        assert len(list(compiled_off.dag)) == 1

    def test_execution_correct_with_simplification(self):
        data = RNG.random((12, 12))
        program = Program("s")
        a = program.declare_input("A", 12, 12)
        program.assign("X", ((a * 2.0) * 3.0 + 0.0) * 1.0)
        program.mark_output("X")
        result = run_program(program, {"A": data}, tile_size=4)
        np.testing.assert_allclose(result.output("X"), data * 6.0)


@given(scalars=st.lists(st.sampled_from([0.0, 0.5, 1.0, 2.0, -1.0]),
                        min_size=1, max_size=5),
       ops=st.lists(st.sampled_from(["add", "mul"]), min_size=1, max_size=5),
       seed=st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_property_simplify_preserves_semantics(scalars, ops, seed):
    expr = Var("A", (5, 5))
    for scalar, op in zip(scalars, ops):
        expr = expr + scalar if op == "add" else expr * scalar
    env = {"A": np.random.default_rng(seed).standard_normal((5, 5))}
    np.testing.assert_allclose(
        evaluate_with_numpy(simplify(expr), env),
        evaluate_with_numpy(expr, env),
        atol=1e-10,
    )
