"""Unit tests for checkpoint/restore of iterative programs."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpointer, IterativeRunner
from repro.core.program import Program
from repro.errors import ExecutionError, ValidationError
from repro.matrix.tiled import DenseBacking, TiledMatrix

RNG = np.random.default_rng(81)


def gd_iteration_factory(rows=24, features=4, learning_rate=0.05):
    """One gradient-descent step: w <- w - lr * X'(Xw - y)."""

    def factory() -> Program:
        program = Program("gd-step")
        x = program.declare_input("X", rows, features)
        y = program.declare_input("y", rows, 1)
        w = program.declare_input("w", features, 1)
        grad = program.assign("grad", x.T @ ((x @ w) - y))
        program.assign("w", w - grad * learning_rate)
        program.mark_output("w")
        return program

    return factory


def reference_gd(x, y, w, steps, learning_rate=0.05):
    for __ in range(steps):
        w = w - learning_rate * (x.T @ (x @ w - y))
    return w


@pytest.fixture
def problem():
    x = RNG.standard_normal((24, 4)) * 0.3
    y = RNG.standard_normal((24, 1))
    w0 = np.zeros((4, 1))
    return x, y, w0


class TestCheckpointer:
    def test_save_restore_roundtrip(self):
        backing = DenseBacking()
        checkpointer = Checkpointer(backing)
        matrix = TiledMatrix.from_numpy("W", RNG.random((8, 8)), 4, backing)
        checkpointer.save("iter-1", {"W": matrix})
        restored = checkpointer.restore("iter-1")
        np.testing.assert_array_equal(restored["W"], matrix.to_numpy())

    def test_snapshot_is_a_copy(self):
        backing = DenseBacking()
        checkpointer = Checkpointer(backing)
        matrix = TiledMatrix.from_numpy("W", np.ones((4, 4)), 2, backing)
        checkpointer.save("iter-1", {"W": matrix})
        matrix.put_tile(0, 0, np.zeros((2, 2)))  # mutate the original
        restored = checkpointer.restore("iter-1")
        np.testing.assert_array_equal(restored["W"], np.ones((4, 4)))

    def test_latest_follows_insertion(self):
        backing = DenseBacking()
        checkpointer = Checkpointer(backing)
        matrix = TiledMatrix.from_numpy("W", np.ones((2, 2)), 2, backing)
        assert checkpointer.latest() is None
        checkpointer.save("iter-1", {"W": matrix})
        checkpointer.save("iter-2", {"W": matrix})
        assert checkpointer.latest() == "iter-2"
        assert checkpointer.labels() == ["iter-1", "iter-2"]

    def test_restore_missing(self):
        checkpointer = Checkpointer(DenseBacking())
        with pytest.raises(ExecutionError):
            checkpointer.restore("nope")

    def test_validation(self):
        checkpointer = Checkpointer(DenseBacking())
        with pytest.raises(ValidationError):
            checkpointer.save("", {})
        with pytest.raises(ValidationError):
            checkpointer.save("x", {})


class TestIterativeRunner:
    def make_runner(self, x, y, checkpointer=None):
        return IterativeRunner(
            gd_iteration_factory(),
            static_inputs={"X": x, "y": y},
            state_variables=["w"],
            tile_size=8,
            checkpointer=checkpointer,
        )

    def test_matches_reference(self, problem):
        x, y, w0 = problem
        runner = self.make_runner(x, y)
        result = runner.run({"w": w0}, iterations=5)
        expected = reference_gd(x, y, w0, 5)
        np.testing.assert_allclose(result.state["w"], expected, rtol=1e-8)
        assert result.iteration == 5

    def test_crash_and_resume_equals_straight_run(self, problem):
        x, y, w0 = problem
        checkpointer = Checkpointer(DenseBacking())
        runner = self.make_runner(x, y, checkpointer)
        with pytest.raises(ExecutionError, match="simulated crash"):
            runner.run({"w": w0}, iterations=6, crash_after=3)
        assert checkpointer.latest() == "iter-3"
        resumed = runner.resume(iterations=3)
        expected = reference_gd(x, y, w0, 6)
        np.testing.assert_allclose(resumed.state["w"], expected, rtol=1e-8)
        assert resumed.iteration == 6

    def test_resume_without_checkpointer(self, problem):
        x, y, w0 = problem
        runner = self.make_runner(x, y)
        with pytest.raises(ExecutionError, match="checkpointer"):
            runner.resume(iterations=1)

    def test_resume_without_checkpoint(self, problem):
        x, y, __ = problem
        runner = self.make_runner(x, y, Checkpointer(DenseBacking()))
        with pytest.raises(ExecutionError, match="no checkpoint"):
            runner.resume(iterations=1)

    def test_checkpoint_every_iteration(self, problem):
        x, y, w0 = problem
        checkpointer = Checkpointer(DenseBacking())
        runner = self.make_runner(x, y, checkpointer)
        runner.run({"w": w0}, iterations=4)
        assert checkpointer.labels() == [f"iter-{i}" for i in range(1, 5)]

    def test_validation(self, problem):
        x, y, w0 = problem
        runner = self.make_runner(x, y)
        with pytest.raises(ValidationError):
            runner.run({"w": w0}, iterations=0)
        with pytest.raises(ValidationError):
            runner.run({}, iterations=2)
        with pytest.raises(ValidationError):
            IterativeRunner(gd_iteration_factory(), {}, [], tile_size=8)


class TestFaultInjectedResume:
    """Real crashes (injected at the executor layer, not the scripted
    ``crash_after`` hook) drive the checkpoint/resume path end to end."""

    class _CountingInjector:
        def __init__(self):
            self.calls = 0

        def before_attempt(self, task_id, attempt):
            self.calls += 1

    def test_injected_crash_then_resume_matches_straight_run(self, problem):
        from repro.core.checkpoint import IterativeRunner
        from repro.hadoop.local import CrashAfterCalls

        x, y, w0 = problem

        def make_runner(checkpointer, fault_injector=None):
            return IterativeRunner(
                gd_iteration_factory(),
                static_inputs={"X": x, "y": y},
                state_variables=["w"],
                tile_size=8,
                checkpointer=checkpointer,
                fault_injector=fault_injector,
            )

        # Measure how many task attempts one iteration costs, then budget
        # the crash to land inside iteration 3.
        probe = self._CountingInjector()
        make_runner(Checkpointer(DenseBacking()),
                    fault_injector=probe).run({"w": w0}, iterations=1)
        per_iteration = probe.calls
        assert per_iteration > 0

        checkpointer = Checkpointer(DenseBacking())
        crashy = make_runner(checkpointer,
                             CrashAfterCalls(2 * per_iteration + 1))
        with pytest.raises(ExecutionError, match="injected crash"):
            crashy.run({"w": w0}, iterations=6)
        assert checkpointer.latest() == "iter-2"

        resumed = make_runner(checkpointer).resume(iterations=4)
        expected = reference_gd(x, y, w0, 6)
        np.testing.assert_allclose(resumed.state["w"], expected, rtol=1e-8)
        assert resumed.iteration == 6

    def test_retry_policy_rides_through_to_executor(self, problem):
        from repro.core.checkpoint import IterativeRunner
        from repro.hadoop.local import RetryPolicy, ScriptedFaults

        x, y, w0 = problem
        # Kill the first attempt of every task; with retries allowed the
        # run must still converge to the fault-free answer.
        class FirstAttemptFails(ScriptedFaults):
            def __init__(self):
                super().__init__(set())

            def before_attempt(self, task_id, attempt):
                if attempt == 0:
                    from repro.errors import FaultInjectionError
                    raise FaultInjectionError(
                        f"injected fault: task {task_id} attempt 0")

        runner = IterativeRunner(
            gd_iteration_factory(),
            static_inputs={"X": x, "y": y},
            state_variables=["w"],
            tile_size=8,
            retry_policy=RetryPolicy(max_attempts=2),
            fault_injector=FirstAttemptFails(),
        )
        result = runner.run({"w": w0}, iterations=3)
        expected = reference_gd(x, y, w0, 3)
        np.testing.assert_allclose(result.state["w"], expected, rtol=1e-8)
