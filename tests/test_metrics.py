"""Unit tests for the simulation metrics and timeline rendering."""

import pytest

from repro.cloud import ClusterSpec, get_instance_type
from repro.errors import ValidationError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.metrics import (
    UtilizationReport,
    render_timeline,
    straggler_report,
    utilization,
)
from repro.hadoop.simulator import ClusterSimulator
from repro.hadoop.task import TaskWork, make_map_task
from repro.hadoop.timemodel import FixedTimeModel, TaskTimeModel


def spec(nodes=2, slots=2):
    return ClusterSpec(get_instance_type("m1.large"), nodes, slots)


def run_uniform(n_tasks=8, nodes=2, slots=2, seconds=2.0):
    tasks = [make_map_task(f"t{i}", TaskWork()) for i in range(n_tasks)]
    dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
    return ClusterSimulator(spec(nodes, slots),
                            FixedTimeModel(seconds)).run(dag)


class TestUtilization:
    def test_full_waves_high_utilization(self):
        result = run_uniform(n_tasks=8, nodes=2, slots=2)
        report = utilization(result)
        assert report.utilization == pytest.approx(1.0)

    def test_ragged_wave_lower_utilization(self):
        result = run_uniform(n_tasks=5, nodes=2, slots=2)
        report = utilization(result)
        assert report.utilization < 0.8

    def test_idle_plus_busy_equals_total(self):
        result = run_uniform(n_tasks=5)
        report = utilization(result)
        assert report.busy_slot_seconds + report.idle_slot_seconds \
            == pytest.approx(report.total_slot_seconds)

    def test_per_node_accounting(self):
        result = run_uniform(n_tasks=8, nodes=2, slots=2)
        report = utilization(result)
        assert set(report.per_node_busy) == set(result.spec.node_names())
        assert sum(report.per_node_busy.values()) \
            == pytest.approx(report.busy_slot_seconds)

    def test_loaded_nodes(self):
        result = run_uniform(n_tasks=5, nodes=2, slots=2)
        report = utilization(result)
        assert report.per_node_busy[report.most_loaded_node()] \
            >= report.per_node_busy[report.least_loaded_node()]

    def test_loaded_nodes_on_empty_report_raise_cleanly(self):
        report = UtilizationReport(0.0, 0.0, 0.0, {})
        with pytest.raises(ValidationError, match="no nodes"):
            report.most_loaded_node()
        with pytest.raises(ValidationError, match="no nodes"):
            report.least_loaded_node()


class TestStragglers:
    class SkewModel(TaskTimeModel):
        def task_duration(self, task, instance, concurrency, local):
            return 20.0 if task.task_id == "t0" else 1.0

        def job_overhead(self, job):
            return 0.0

    def run_skewed(self):
        tasks = [make_map_task(f"t{i}", TaskWork()) for i in range(8)]
        dag = JobDag([Job("j", JobKind.MAP_ONLY, tasks)])
        return ClusterSimulator(spec(), self.SkewModel()).run(dag)

    def test_detects_straggler(self):
        report = straggler_report(self.run_skewed())
        assert report
        assert report[0][1] == "t0"
        assert report[0][2] > 5.0

    def test_uniform_run_has_no_stragglers(self):
        assert straggler_report(run_uniform()) == []

    def test_threshold_validation(self):
        with pytest.raises(ValidationError):
            straggler_report(run_uniform(), threshold=0.0)


class TestTimeline:
    def test_one_row_per_node(self):
        result = run_uniform(nodes=3)
        text = render_timeline(result)
        for name in result.spec.node_names():
            assert name in text

    def test_occupancy_bounded_by_slots(self):
        result = run_uniform(n_tasks=16, nodes=2, slots=2)
        text = render_timeline(result)
        body = [line for line in text.splitlines() if "|" in line]
        for line in body:
            cells = line.split("|")[1]
            for cell in cells:
                assert cell in " 12"

    def test_scale_line_has_makespan(self):
        result = run_uniform()
        assert f"{result.makespan:.0f}s" in render_timeline(result)

    def test_width_validation(self):
        with pytest.raises(ValidationError):
            render_timeline(run_uniform(), width=0)

    def test_busy_cluster_renders_dense(self):
        result = run_uniform(n_tasks=32, nodes=1, slots=2)
        text = render_timeline(result, width=40)
        assert "2" in text


class TestChromeTrace:
    def test_event_per_attempt(self):
        from repro.hadoop.metrics import to_chrome_trace
        result = run_uniform(n_tasks=6, nodes=2, slots=2)
        events = to_chrome_trace(result)
        total_attempts = sum(len(t.attempts)
                             for t in result.job_timelines.values())
        assert len(events) == total_attempts

    def test_event_schema(self):
        from repro.hadoop.metrics import to_chrome_trace
        events = to_chrome_trace(run_uniform(n_tasks=4))
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert event["ts"] >= 0
            assert "status" in event["args"]

    def test_json_serializable(self):
        import json
        from repro.hadoop.metrics import to_chrome_trace
        text = json.dumps(to_chrome_trace(run_uniform(n_tasks=4)))
        assert '"ph": "X"' in text

    def test_lanes_never_overlap(self):
        from repro.hadoop.metrics import to_chrome_trace
        events = to_chrome_trace(run_uniform(n_tasks=16, nodes=2, slots=2))
        by_lane = {}
        for event in events:
            by_lane.setdefault((event["pid"], event["tid"]), []).append(
                (event["ts"], event["ts"] + event["dur"]))
        for intervals in by_lane.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-6

    def test_lane_count_bounded_by_slots(self):
        from repro.hadoop.metrics import to_chrome_trace
        result = run_uniform(n_tasks=20, nodes=2, slots=2)
        events = to_chrome_trace(result)
        lanes_per_node = {}
        for event in events:
            lanes_per_node.setdefault(event["pid"], set()).add(event["tid"])
        for lanes in lanes_per_node.values():
            assert len(lanes) <= 2
