#!/usr/bin/env python3
"""benchdiff: gate benchmark history against committed baselines.

The bench suite appends one compact line per run to
``benchmarks/history/<bench>.jsonl`` (see :func:`benchmarks.common.report`).
This tool compares the **latest** history entry of each bench against its
committed baseline in ``benchmarks/baselines/<bench>.json`` and fails when
a thresholded metric regresses — the continuous perf scoreboard CI runs on
every PR.

Baseline schema (one JSON file per bench)::

    {
      "bench": "e24",
      "params": {"tiny": true, "dimension": 96},
      "metrics": {"headline_speedup": 2.8, "process_exec_seconds": 0.04},
      "thresholds": {
        "process_exec_seconds": {"direction": "lower", "max_ratio": 3.0},
        "headline_speedup": {"direction": "higher", "max_ratio": 2.0}
      }
    }

``direction: lower`` means smaller is better; the gate fails when
``latest > baseline * max_ratio``.  ``direction: higher`` means bigger is
better; the gate fails when ``latest < baseline / max_ratio``.  Metrics
without a threshold entry are reported but never gate.  History entries
whose ``params`` do not exactly match the baseline's are skipped (a local
full-size run must not be judged against the CI tiny baseline).

Exit codes: 0 = no regression (including "nothing comparable"), 1 =
threshold regression, 2 = usage/configuration error (unreadable files,
bad schema).

Usage::

    python tools/benchdiff.py                   # compare all baselines
    python tools/benchdiff.py e24 e22           # just these benches
    python tools/benchdiff.py --update-baselines  # rewrite baselines from
                                                  # the latest history
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HISTORY_DIR = os.path.join(REPO_ROOT, "benchmarks", "history")
BASELINES_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")

DIRECTION_LOWER = "lower"
DIRECTION_HIGHER = "higher"

#: Width of the ASCII trajectory sparkline.
TRAJECTORY_POINTS = 12
_SPARK_LEVELS = " .:-=+*#%@"


class BenchdiffError(Exception):
    """Configuration/schema problem (exit code 2)."""


def read_history(bench: str, history_dir: str = HISTORY_DIR) -> list[dict]:
    """All history entries for ``bench``, oldest first."""
    path = os.path.join(history_dir, f"{bench}.jsonl")
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                raise BenchdiffError(
                    f"{path}:{line_no}: invalid JSON: {error}") from error
            if not isinstance(entry, dict):
                raise BenchdiffError(
                    f"{path}:{line_no}: history entry must be a JSON "
                    f"object, got {type(entry).__name__}")
            entries.append(entry)
    return entries


def read_baseline(bench: str, baselines_dir: str = BASELINES_DIR) -> dict:
    """The committed baseline document for ``bench``."""
    path = os.path.join(baselines_dir, f"{bench}.json")
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise BenchdiffError(f"cannot read baseline {path}: {error}") \
            from error
    except json.JSONDecodeError as error:
        raise BenchdiffError(f"{path}: invalid JSON: {error}") from error
    for key in ("bench", "metrics"):
        if key not in document:
            raise BenchdiffError(f"{path}: missing required key {key!r}")
    if not isinstance(document["metrics"], dict):
        raise BenchdiffError(f"{path}: 'metrics' must be a JSON object")
    if not isinstance(document.get("thresholds", {}), dict):
        raise BenchdiffError(f"{path}: 'thresholds' must be a JSON object")
    return document


def entry_metrics(entry: dict) -> dict:
    """An entry's metrics dict; tolerates missing/null/malformed fields."""
    metrics = entry.get("metrics")
    return metrics if isinstance(metrics, dict) else {}


def params_match(entry: dict, baseline: dict) -> bool:
    """Whether a history entry ran with the baseline's exact parameters."""
    return (entry.get("params") or {}) == (baseline.get("params") or {})


def latest_comparable(entries: list[dict], baseline: dict) -> dict | None:
    """The newest history entry whose params match the baseline's."""
    for entry in reversed(entries):
        if params_match(entry, baseline):
            return entry
    return None


def compare_metric(name: str, latest: float, base: float,
                   threshold: dict) -> tuple[bool, str]:
    """One metric's verdict: ``(regressed, human-readable line)``."""
    direction = threshold.get("direction", DIRECTION_LOWER)
    max_ratio = float(threshold.get("max_ratio", 1.5))
    if direction not in (DIRECTION_LOWER, DIRECTION_HIGHER):
        raise BenchdiffError(
            f"metric {name!r}: unknown direction {direction!r}")
    if max_ratio <= 1.0:
        raise BenchdiffError(
            f"metric {name!r}: max_ratio must be > 1.0, got {max_ratio}")
    if base == 0:
        # Can't form a ratio; only gate on sign-flips of "higher" metrics.
        regressed = direction == DIRECTION_HIGHER and latest < 0
        ratio = float("inf") if latest else 1.0
    elif direction == DIRECTION_LOWER:
        ratio = latest / base
        regressed = ratio > max_ratio
    else:
        ratio = base / latest if latest else float("inf")
        regressed = ratio > max_ratio
    verdict = "REGRESSED" if regressed else "ok"
    arrow = "<=" if direction == DIRECTION_LOWER else ">="
    return regressed, (
        f"    {name}: {latest:g} vs baseline {base:g} "
        f"(x{ratio:.2f}, must stay {arrow} x{max_ratio:g} "
        f"{'worse' if direction == DIRECTION_LOWER else 'of baseline'}) "
        f"[{verdict}]")


def trajectory(entries: list[dict], metric: str,
               points: int = TRAJECTORY_POINTS) -> str:
    """An ASCII sparkline of ``metric`` over the last ``points`` runs."""
    values = [entry_metrics(entry)[metric] for entry in entries
              if isinstance(entry_metrics(entry).get(metric),
                            (int, float))]
    values = values[-points:]
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return _SPARK_LEVELS[5] * len(values)
    scale = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((value - low) / (high - low) * scale)]
        for value in values)


def diff_bench(bench: str, history_dir: str = HISTORY_DIR,
               baselines_dir: str = BASELINES_DIR,
               out=sys.stdout) -> bool:
    """Diff one bench; prints the report, returns True if it regressed."""
    baseline = read_baseline(bench, baselines_dir)
    entries = read_history(bench, history_dir)
    print(f"{bench}:", file=out)
    if not entries:
        print(f"    no history yet — benchmarks/history/{bench}.jsonl is "
              f"missing or empty; run the bench to seed it (not a failure)",
              file=out)
        return False
    latest = latest_comparable(entries, baseline)
    if latest is None:
        print(f"    no history entry matches baseline params "
              f"{baseline.get('params')} — skipped (not a failure)",
              file=out)
        return False
    thresholds = baseline.get("thresholds", {})
    regressed = False
    for name, base_value in sorted(baseline["metrics"].items()):
        latest_value = entry_metrics(latest).get(name)
        if not isinstance(latest_value, (int, float)):
            print(f"    {name}: missing from latest run [REGRESSED]",
                  file=out)
            regressed = True
            continue
        if name in thresholds:
            bad, line = compare_metric(name, float(latest_value),
                                       float(base_value), thresholds[name])
            regressed = regressed or bad
        else:
            line = (f"    {name}: {latest_value:g} vs baseline "
                    f"{base_value:g} (untracked)")
        spark = trajectory(
            [e for e in entries if params_match(e, baseline)], name)
        if spark:
            line += f"  [{spark}]"
        print(line, file=out)
    sha = latest.get("git_sha", "?")
    stamp = latest.get("timestamp", "?")
    print(f"    latest: {sha} @ {stamp} "
          f"({len(entries)} run(s) in history)", file=out)
    return regressed


def update_baseline(bench: str, history_dir: str = HISTORY_DIR,
                    baselines_dir: str = BASELINES_DIR,
                    out=sys.stdout) -> None:
    """Rewrite ``bench``'s baseline metrics from its latest history entry.

    Thresholds and params are preserved; only the metric values move.
    """
    baseline = read_baseline(bench, baselines_dir)
    entries = read_history(bench, history_dir)
    latest = latest_comparable(entries, baseline)
    if latest is None:
        raise BenchdiffError(
            f"{bench}: no history entry matches baseline params; "
            f"run the bench with matching params first")
    for name in baseline["metrics"]:
        value = entry_metrics(latest).get(name)
        if isinstance(value, (int, float)):
            baseline["metrics"][name] = value
    baseline["git_sha"] = latest.get("git_sha", "unknown")
    baseline["timestamp"] = latest.get("timestamp", "")
    path = os.path.join(baselines_dir, f"{bench}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"{bench}: baseline updated from {baseline['git_sha']}",
          file=out)


def known_benches(baselines_dir: str = BASELINES_DIR) -> list[str]:
    """Benches with a committed baseline file."""
    if not os.path.isdir(baselines_dir):
        return []
    return sorted(name[:-5] for name in os.listdir(baselines_dir)
                  if name.endswith(".json"))


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        description="compare benchmark history against committed baselines")
    parser.add_argument("benches", nargs="*",
                        help="bench ids (default: every committed baseline)")
    parser.add_argument("--history-dir", default=HISTORY_DIR)
    parser.add_argument("--baselines-dir", default=BASELINES_DIR)
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite baseline metric values from the "
                             "latest matching history entries")
    args = parser.parse_args(argv)
    benches = args.benches or known_benches(args.baselines_dir)
    if not benches:
        print("no baselines found — nothing to compare", file=out)
        return 0
    try:
        if args.update_baselines:
            for bench in benches:
                update_baseline(bench, args.history_dir,
                                args.baselines_dir, out)
            return 0
        regressed = [bench for bench in benches
                     if diff_bench(bench, args.history_dir,
                                   args.baselines_dir, out)]
    except BenchdiffError as error:
        print(f"benchdiff: {error}", file=sys.stderr)
        return 2
    if regressed:
        print(f"REGRESSION in: {', '.join(regressed)}", file=out)
        return 1
    print("no regressions", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
