"""Documentation quality gate: docstring coverage + markdown link check.

Two checks, both stdlib-only so they run anywhere the tests run:

* **Docstring coverage** over ``src/repro/core`` and
  ``src/repro/observability`` — every module, public class, and public
  function/method counts, except ``__init__`` and ``@property`` accessors
  (matching interrogate's ``--ignore-init-method
  --ignore-property-decorators``); the gate fails below 80%.  CI
  additionally runs ``interrogate`` with the same flags and threshold;
  this module is the dependency-free equivalent that keeps the gate
  enforceable locally (tier-1, via ``tests/test_docs.py``).
* **Markdown links** in ``docs/`` and ``README.md`` — every relative link
  must point at an existing file, and every ``#anchor`` must match a
  heading in the target (GitHub-style slugs).  External ``http(s)``/
  ``mailto`` links are not fetched.
* **CLI references** — every ``repro <subcommand>`` phrase anywhere in
  the markdown tree must name a subcommand that actually exists in the
  argparse tree (:func:`repro.cli.make_parser`), so docs can never
  advertise a command the binary doesn't have.

Run directly for a report::

    python tools/doccheck.py

Exit status 0 iff all gates pass.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Packages the docstring gate covers, and the threshold it enforces.
COVERED_PACKAGES = ("src/repro/core", "src/repro/observability",
                    "src/repro/service")
FAIL_UNDER = 80.0

#: Markdown sources the link checker walks.
MARKDOWN_ROOTS = ("docs", "README.md")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


# -- docstring coverage ------------------------------------------------------

@dataclass
class CoverageReport:
    total: int = 0
    documented: int = 0
    missing: list[str] = field(default_factory=list)

    @property
    def percent(self) -> float:
        return 100.0 * self.documented / self.total if self.total else 100.0


#: Decorators whose defs are accessors, not API surface (interrogate's
#: ``--ignore-property-decorators``).
PROPERTY_DECORATORS = {"property", "cached_property", "setter", "deleter"}


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_property(node) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Name) \
                and decorator.id in PROPERTY_DECORATORS:
            return True
        if isinstance(decorator, ast.Attribute) \
                and decorator.attr in PROPERTY_DECORATORS:
            return True
    return False


def _count_node(report: CoverageReport, node, label: str) -> None:
    report.total += 1
    if ast.get_docstring(node):
        report.documented += 1
    else:
        report.missing.append(label)


def _walk_defs(report: CoverageReport, parent, prefix: str) -> None:
    for node in parent.body if hasattr(parent, "body") else []:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not _is_public(node.name) or _is_property(node):
                continue
            label = f"{prefix}{node.name}"
            _count_node(report, node, label)
            if isinstance(node, ast.ClassDef):
                _walk_defs(report, node, f"{label}.")


def docstring_coverage(packages=COVERED_PACKAGES,
                       root: Path = REPO_ROOT) -> CoverageReport:
    """Docstring coverage over every module/class/def in ``packages``."""
    report = CoverageReport()
    for package in packages:
        for path in sorted((root / package).rglob("*.py")):
            rel = path.relative_to(root)
            tree = ast.parse(path.read_text(encoding="utf-8"))
            _count_node(report, tree, f"{rel} (module)")
            _walk_defs(report, tree, f"{rel}:")
    return report


# -- markdown links ----------------------------------------------------------

def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->hyphens."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    without_code = CODE_FENCE_RE.sub("", markdown)
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(without_code)}


def _iter_markdown_files(root: Path):
    for entry in MARKDOWN_ROOTS:
        path = root / entry
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.exists():
            yield path


def check_links(root: Path = REPO_ROOT) -> list[str]:
    """Broken relative links/anchors in the markdown tree, as messages."""
    errors: list[str] = []
    for md_file in _iter_markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        source = CODE_FENCE_RE.sub("", text)
        for match in LINK_RE.finditer(source):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            rel = md_file.relative_to(root)
            if path_part:
                resolved = (md_file.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(f"{rel}: broken link -> {target}")
                    continue
            else:
                resolved = md_file
            if anchor and resolved.suffix == ".md":
                slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
                if anchor not in slugs:
                    errors.append(f"{rel}: missing anchor -> {target}")
    return errors


# -- CLI references ----------------------------------------------------------

#: ``repro <word>`` anywhere in the markdown (prose, backticks, fences).
CLI_REFERENCE_RE = re.compile(r"\brepro ([a-z][a-z0-9-]*)\b")


def cli_subcommands() -> set[str]:
    """The subcommand names the real argparse tree accepts."""
    import argparse

    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.cli import make_parser

    for action in make_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            return set(action.choices)
    return set()


def check_cli_references(root: Path = REPO_ROOT) -> list[str]:
    """``repro <subcommand>`` doc references that the parser rejects."""
    try:
        known = cli_subcommands()
    except Exception as error:  # import failure is itself a doc-gate fail
        return [f"cannot load the repro CLI parser: {error}"]
    errors = []
    for md_file in _iter_markdown_files(root):
        rel = md_file.relative_to(root)
        text = md_file.read_text(encoding="utf-8")
        for match in CLI_REFERENCE_RE.finditer(text):
            name = match.group(1)
            if name not in known:
                errors.append(f"{rel}: references nonexistent subcommand "
                              f"`repro {name}`")
    return errors


# -- entry point -------------------------------------------------------------

def main(argv=None) -> int:
    report = docstring_coverage()
    print(f"docstring coverage: {report.documented}/{report.total} "
          f"({report.percent:.1f}%), gate {FAIL_UNDER:.0f}%")
    failed = False
    if report.percent < FAIL_UNDER:
        failed = True
        for label in report.missing:
            print(f"  undocumented: {label}")
    link_errors = check_links()
    print(f"markdown links: {len(link_errors)} broken")
    for error in link_errors:
        failed = True
        print(f"  {error}")
    cli_errors = check_cli_references()
    print(f"cli references: {len(cli_errors)} stale")
    for error in cli_errors:
        failed = True
        print(f"  {error}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
