"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subsystems raise the most specific subclass available; invalid
arguments raise :class:`ValidationError` (a ``ValueError`` as well, so plain
``except ValueError`` also works).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument or configuration value failed validation."""


class ShapeError(ValidationError):
    """Matrix shapes are incompatible for the requested operation."""


class StorageError(ReproError):
    """A storage-layer (HDFS / tile store) operation failed."""


class FileNotFoundInHDFSError(StorageError, KeyError):
    """The requested HDFS path does not exist."""


class FileExistsInHDFSError(StorageError):
    """Attempted to create an HDFS path that already exists."""


class ReplicationError(StorageError):
    """A block could not be replicated as requested."""


class SchedulingError(ReproError):
    """The Hadoop scheduler/simulator reached an inconsistent state."""


class QuorumLostError(SchedulingError):
    """Node failures left fewer live nodes than the configured quorum."""


class CompilationError(ReproError):
    """A logical plan could not be compiled into physical jobs."""


class ExecutionError(ReproError):
    """A compiled job failed while executing."""


class FaultInjectionError(ExecutionError):
    """A deliberately injected fault (chaos/testing), not a real bug."""


class TaskTimeoutError(ExecutionError):
    """A task attempt exceeded its per-task time budget."""


class OptimizationError(ReproError):
    """The deployment optimizer could not produce a feasible plan."""


class ServiceError(ReproError):
    """The multi-tenant job service refused or lost a job."""


class AdmissionRejectedError(ServiceError):
    """Admission control turned a submission away (budget or deadline)."""


class JobCancelledError(ServiceError):
    """The job was cancelled before it produced a result."""


class UnknownJobError(ServiceError, ValidationError):
    """A job id the service has never seen (stable across replays).

    Subclasses :class:`ValidationError` for backwards compatibility —
    callers that caught ``ValidationError`` for unknown ids keep working —
    while giving journal replay and API clients one precise type to match.
    """


class ProtocolError(ServiceError):
    """A wire-protocol frame was malformed or invalid (stable ``code``).

    Carries a machine-readable ``code`` (one of the
    :mod:`repro.service.protocol` ``ERR_*`` constants) so servers can
    answer bad input with a structured error frame instead of dying.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class JournalError(ServiceError):
    """A durability-journal operation failed (I/O, schema, epoch)."""


class JournalCorruptionError(JournalError):
    """A journal record failed its checksum or framing mid-file."""


class RecoveryError(JournalError):
    """Journal/snapshot replay could not reconstruct the service state."""


class InfeasibleConstraintError(OptimizationError):
    """No deployment plan satisfies the given time/budget constraint."""
