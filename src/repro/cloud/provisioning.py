"""Provisioning: turn a :class:`ClusterSpec` into live simulation objects.

Builds the datanode fleet, registers it with a fresh namenode, and accounts
for cluster startup latency (instance boot + Hadoop daemon start), which the
paper's end-to-end times include.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import ClusterSpec
from repro.errors import ValidationError
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.placement import PlacementPolicy

#: Seconds from "provision" to "cluster usable": VM boot + daemon start.
DEFAULT_STARTUP_SECONDS = 90.0


@dataclass
class ProvisionedCluster:
    """A spec plus its live HDFS namenode; entry point for running jobs."""

    spec: ClusterSpec
    namenode: NameNode
    startup_seconds: float = DEFAULT_STARTUP_SECONDS

    @property
    def node_names(self) -> list[str]:
        return self.spec.node_names()

    @property
    def total_slots(self) -> int:
        return self.spec.total_slots


def provision(spec: ClusterSpec,
              replication: int = 3,
              placement: PlacementPolicy | None = None,
              startup_seconds: float = DEFAULT_STARTUP_SECONDS,
              nodes_per_rack: int | None = None) -> ProvisionedCluster:
    """Start a cluster: one datanode per instance, capacity from the catalog.

    ``nodes_per_rack`` splits the cluster into racks (contiguous by node
    index) for rack-aware placement; None puts everything on one rack.
    """
    if startup_seconds < 0:
        raise ValidationError("startup_seconds must be >= 0")
    if nodes_per_rack is not None and nodes_per_rack <= 0:
        raise ValidationError("nodes_per_rack must be positive")
    effective_replication = min(replication, spec.num_nodes)
    namenode = NameNode(replication=effective_replication, placement=placement)
    for index, name in enumerate(spec.node_names()):
        rack = ("default" if nodes_per_rack is None
                else f"rack-{index // nodes_per_rack}")
        namenode.register_datanode(
            DataNode(name, capacity_bytes=spec.instance_type.storage_bytes,
                     rack=rack)
        )
    return ProvisionedCluster(spec, namenode, startup_seconds)
