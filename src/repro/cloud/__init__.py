"""Cloud provisioning: instance catalog, cluster specs, billing."""

from repro.cloud.instances import (
    EC2_CATALOG,
    ClusterSpec,
    InstanceType,
    get_instance_type,
)
from repro.cloud.pricing import (
    DEFAULT_BILLING,
    BillingModel,
    HourlyBilling,
    PerSecondBilling,
)
from repro.cloud.spot import (
    SpotEstimate,
    SpotMarket,
    SpotRun,
    estimate_spot_deployment,
    on_demand_cost,
    simulate_spot_run,
)
from repro.cloud.provisioning import (
    DEFAULT_STARTUP_SECONDS,
    ProvisionedCluster,
    provision,
)

__all__ = [
    "EC2_CATALOG",
    "ClusterSpec",
    "InstanceType",
    "get_instance_type",
    "DEFAULT_BILLING",
    "BillingModel",
    "HourlyBilling",
    "PerSecondBilling",
    "DEFAULT_STARTUP_SECONDS",
    "SpotEstimate",
    "SpotMarket",
    "SpotRun",
    "estimate_spot_deployment",
    "on_demand_cost",
    "simulate_spot_run",
    "ProvisionedCluster",
    "provision",
]
