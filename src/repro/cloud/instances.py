"""Cloud instance types, modeled on the 2013-era Amazon EC2 catalog.

Cumulon's optimizer searches jointly over instance type, cluster size, and
per-node configuration (map slots).  The catalog below reproduces the shape
of that search space: types differ in cores, memory, sequential I/O and
network bandwidth, per-core compute speed, and hourly price, so no single
type dominates and the best choice depends on the workload and the deadline.

Prices and capacities are representative of 2013 us-east-1 on-demand rates;
the *ratios* between types are what the experiments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class InstanceType:
    """One purchasable VM flavor."""

    name: str
    cores: int
    memory_gb: float
    #: Sequential disk bandwidth shared by all slots on the node (bytes/s).
    disk_bandwidth: float
    #: Network bandwidth shared by all slots on the node (bytes/s).
    network_bandwidth: float
    #: Relative per-core compute speed (1.0 = the reference core used for
    #: fitting the cost model's flops coefficient).
    core_speed: float
    #: On-demand price, US dollars per instance-hour.
    price_per_hour: float
    #: Local storage available to HDFS (bytes).
    storage_bytes: int = 400 * 10**9

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValidationError(f"{self.name}: cores must be positive")
        if self.price_per_hour <= 0:
            raise ValidationError(f"{self.name}: price must be positive")
        if min(self.disk_bandwidth, self.network_bandwidth,
               self.core_speed, self.memory_gb) <= 0:
            raise ValidationError(f"{self.name}: capacities must be positive")

    @property
    def max_slots(self) -> int:
        """Hadoop admits configuring more slots than cores; cap at 2x cores."""
        return 2 * self.cores


_MB = 1024 * 1024

#: The catalog the optimizer searches.  m1 = general purpose, c1 = compute
#: optimized (fast cores, slim memory), m2 = memory optimized.
EC2_CATALOG: dict[str, InstanceType] = {
    instance.name: instance
    for instance in [
        InstanceType("m1.small", cores=1, memory_gb=1.7,
                     disk_bandwidth=60 * _MB, network_bandwidth=30 * _MB,
                     core_speed=0.5, price_per_hour=0.06,
                     storage_bytes=160 * 10**9),
        InstanceType("m1.medium", cores=1, memory_gb=3.75,
                     disk_bandwidth=80 * _MB, network_bandwidth=50 * _MB,
                     core_speed=1.0, price_per_hour=0.12,
                     storage_bytes=410 * 10**9),
        InstanceType("m1.large", cores=2, memory_gb=7.5,
                     disk_bandwidth=100 * _MB, network_bandwidth=80 * _MB,
                     core_speed=1.0, price_per_hour=0.24,
                     storage_bytes=840 * 10**9),
        InstanceType("m1.xlarge", cores=4, memory_gb=15.0,
                     disk_bandwidth=120 * _MB, network_bandwidth=100 * _MB,
                     core_speed=1.0, price_per_hour=0.48,
                     storage_bytes=1680 * 10**9),
        InstanceType("c1.medium", cores=2, memory_gb=1.7,
                     disk_bandwidth=80 * _MB, network_bandwidth=50 * _MB,
                     core_speed=1.25, price_per_hour=0.145,
                     storage_bytes=350 * 10**9),
        InstanceType("c1.xlarge", cores=8, memory_gb=7.0,
                     disk_bandwidth=120 * _MB, network_bandwidth=100 * _MB,
                     core_speed=1.25, price_per_hour=0.58,
                     storage_bytes=1680 * 10**9),
        InstanceType("m2.xlarge", cores=2, memory_gb=17.1,
                     disk_bandwidth=110 * _MB, network_bandwidth=80 * _MB,
                     core_speed=1.1, price_per_hour=0.41,
                     storage_bytes=420 * 10**9),
        InstanceType("m2.4xlarge", cores=8, memory_gb=68.4,
                     disk_bandwidth=140 * _MB, network_bandwidth=120 * _MB,
                     core_speed=1.1, price_per_hour=1.64,
                     storage_bytes=1680 * 10**9),
    ]
}


def get_instance_type(name: str) -> InstanceType:
    """Look up a catalog entry by name."""
    try:
        return EC2_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(EC2_CATALOG))
        raise ValidationError(f"unknown instance type {name!r}; known: {known}") \
            from None


@dataclass(frozen=True)
class ClusterSpec:
    """A provisioned cluster: one instance type, N nodes, S map slots each."""

    instance_type: InstanceType
    num_nodes: int
    slots_per_node: int

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValidationError(f"num_nodes must be positive, got {self.num_nodes}")
        if not 1 <= self.slots_per_node <= self.instance_type.max_slots:
            raise ValidationError(
                f"slots_per_node must be in [1, {self.instance_type.max_slots}] "
                f"for {self.instance_type.name}, got {self.slots_per_node}"
            )

    @property
    def total_slots(self) -> int:
        return self.num_nodes * self.slots_per_node

    @property
    def hourly_rate(self) -> float:
        """Total cluster rental rate in dollars per hour."""
        return self.num_nodes * self.instance_type.price_per_hour

    def node_names(self) -> list[str]:
        return [f"{self.instance_type.name}-{index}"
                for index in range(self.num_nodes)]

    def describe(self) -> str:
        return (f"{self.num_nodes} x {self.instance_type.name} "
                f"({self.slots_per_node} slots/node, "
                f"${self.hourly_rate:.2f}/h)")
