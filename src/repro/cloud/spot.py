"""Spot-market instances: the paper's future-work deployment dimension.

Cumulon's SIGMOD 2013 paper deploys on on-demand instances and names
auction-priced ("spot") markets as the natural extension — realized in the
authors' follow-up work.  This module implements that extension on the same
substrate: a seeded stochastic spot market, bid-based revocation semantics,
and an evaluator that turns (cluster, bid, checkpointing policy) into
expected completion time and cost so the deployment optimizer's time/cost
reasoning extends to risky instances.

Model (one price per instance-hour, the EC2-2013 granularity):

* The market price each hour is ``on_demand * max(floor, LN(mu, sigma))``
  — log-normal around a base discount, occasionally spiking above
  on-demand (the empirically observed shape).
* You run while ``market <= bid`` and pay the *market* price; the hour the
  market exceeds your bid, the whole cluster is revoked.
* Without checkpointing, a revocation loses all progress (restart from
  scratch); with checkpointing, only the current hour's progress is lost.
* Progress only accrues during hours that complete under the bid.

Everything is deterministic given seeds, so expectations are computed by
averaging an explicit list of seeded sample paths.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.cloud.instances import ClusterSpec
from repro.errors import ValidationError

#: Hours to give up after (guards against bids below the price floor).
MAX_SIMULATED_HOURS = 24 * 365


@dataclass(frozen=True)
class SpotMarket:
    """A stochastic hourly spot-price process for one instance type."""

    #: Long-run median price as a fraction of on-demand.
    base_discount: float = 0.3
    #: Log-space volatility; larger = spikier markets.
    volatility: float = 0.6
    #: Hard price floor as a fraction of on-demand.
    floor: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.base_discount <= 1.0:
            raise ValidationError("base_discount must be in (0, 1]")
        if self.volatility < 0:
            raise ValidationError("volatility must be >= 0")
        if not 0.0 < self.floor <= self.base_discount:
            raise ValidationError("floor must be in (0, base_discount]")

    def price_fraction(self, seed: int, hour: int) -> float:
        """Market price in hour ``hour`` as a fraction of on-demand."""
        rng = random.Random(f"spot:{seed}:{hour}")
        sample = self.base_discount * math.exp(
            rng.gauss(0.0, self.volatility) - self.volatility ** 2 / 2.0
        )
        return max(self.floor, sample)

    def price_per_hour(self, spec: ClusterSpec, seed: int, hour: int) -> float:
        """Dollar price of the whole cluster for one hour."""
        return (self.price_fraction(seed, hour)
                * spec.instance_type.price_per_hour * spec.num_nodes)


@dataclass(frozen=True)
class SpotRun:
    """Outcome of one sample path: completion time, cost, revocations."""

    completed: bool
    hours_elapsed: int
    cost: float
    revocations: int

    @property
    def seconds(self) -> float:
        return self.hours_elapsed * 3600.0


def simulate_spot_run(spec: ClusterSpec, work_seconds: float,
                      bid_fraction: float, market: SpotMarket, seed: int,
                      checkpointing: bool = False) -> SpotRun:
    """Run ``work_seconds`` of cluster work under one seeded price path.

    ``bid_fraction`` is the bid as a fraction of the on-demand price.
    """
    if work_seconds <= 0:
        raise ValidationError("work_seconds must be positive")
    if bid_fraction <= 0:
        raise ValidationError("bid_fraction must be positive")
    work_hours = max(1, math.ceil(work_seconds / 3600.0))
    progress = 0
    cost = 0.0
    revocations = 0
    for hour in range(MAX_SIMULATED_HOURS):
        price = market.price_fraction(seed, hour)
        if price > bid_fraction:
            # Revoked (or never acquired) this hour: no cost, no progress.
            if progress > 0:
                revocations += 1
                if not checkpointing:
                    progress = 0
            continue
        cost += price * spec.instance_type.price_per_hour * spec.num_nodes
        progress += 1
        if progress >= work_hours:
            return SpotRun(True, hour + 1, cost, revocations)
    return SpotRun(False, MAX_SIMULATED_HOURS, cost, revocations)


@dataclass
class SpotEstimate:
    """Expectation/extremes over sample paths for one (bid, policy)."""

    bid_fraction: float
    checkpointing: bool
    mean_cost: float
    mean_seconds: float
    p95_seconds: float
    completion_rate: float
    mean_revocations: float


def estimate_spot_deployment(spec: ClusterSpec, work_seconds: float,
                             bid_fraction: float, market: SpotMarket,
                             checkpointing: bool = False,
                             samples: int = 200,
                             seed: int = 0) -> SpotEstimate:
    """Monte-Carlo expectation over ``samples`` deterministic price paths."""
    if samples <= 0:
        raise ValidationError("samples must be positive")
    runs = [simulate_spot_run(spec, work_seconds, bid_fraction, market,
                              seed=seed + index, checkpointing=checkpointing)
            for index in range(samples)]
    completed = [run for run in runs if run.completed]
    times = sorted(run.seconds for run in runs)
    p95 = times[min(len(times) - 1, int(0.95 * len(times)))]
    return SpotEstimate(
        bid_fraction=bid_fraction,
        checkpointing=checkpointing,
        mean_cost=sum(run.cost for run in runs) / len(runs),
        mean_seconds=sum(run.seconds for run in runs) / len(runs),
        p95_seconds=p95,
        completion_rate=len(completed) / len(runs),
        mean_revocations=sum(run.revocations for run in runs) / len(runs),
    )


def on_demand_cost(spec: ClusterSpec, work_seconds: float) -> float:
    """Hourly-billed on-demand cost of the same work, for comparison."""
    hours = max(1, math.ceil(work_seconds / 3600.0))
    return hours * spec.hourly_rate
