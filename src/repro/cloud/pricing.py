"""Billing models.

2013 EC2 billed by the *instance-hour*, rounding usage up — which is exactly
why Cumulon's cost/deadline curves are step functions and why slightly
relaxing a deadline can massively cut cost.  A per-second model is included
for ablations (it smooths those steps away).
"""

from __future__ import annotations

import math

from repro.cloud.instances import ClusterSpec
from repro.errors import ValidationError


class BillingModel:
    """Interface: dollars charged for running ``spec`` for ``seconds``."""

    name = "abstract"

    def cost(self, spec: ClusterSpec, seconds: float) -> float:
        raise NotImplementedError

    @staticmethod
    def _check(seconds: float) -> None:
        if seconds < 0 or not math.isfinite(seconds):
            raise ValidationError(f"usage seconds must be finite and >= 0: {seconds}")


class HourlyBilling(BillingModel):
    """EC2-2013 semantics: every started instance-hour is charged in full."""

    name = "hourly"

    def cost(self, spec: ClusterSpec, seconds: float) -> float:
        self._check(seconds)
        hours = max(1, math.ceil(seconds / 3600)) if seconds > 0 else 1
        return hours * spec.hourly_rate


class PerSecondBilling(BillingModel):
    """Modern clouds: usage charged exactly, with a minimum of one minute."""

    name = "per-second"

    def __init__(self, minimum_seconds: float = 60.0):
        if minimum_seconds < 0:
            raise ValidationError("minimum_seconds must be >= 0")
        self.minimum_seconds = minimum_seconds

    def cost(self, spec: ClusterSpec, seconds: float) -> float:
        self._check(seconds)
        billed = max(seconds, self.minimum_seconds)
        return billed / 3600.0 * spec.hourly_rate


#: Billing model used throughout the reproduction unless stated otherwise.
DEFAULT_BILLING = HourlyBilling()
