"""Seeded synthetic matrix generators.

The paper's evaluation workloads are defined by matrix *shapes* and
*sparsity*, not by particular data values, so every experiment here runs on
reproducible synthetic matrices.  All generators take an explicit ``seed``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import ValidationError
from repro.matrix.tiled import DEFAULT_TILE_SIZE, TiledMatrix


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_dense(name: str, rows: int, cols: int, seed: int,
                 tile_size: int = DEFAULT_TILE_SIZE,
                 scale: float = 1.0) -> TiledMatrix:
    """Dense matrix with i.i.d. uniform entries in [0, scale)."""
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    array = _rng(seed).random((rows, cols)) * scale
    return TiledMatrix.from_numpy(name, array, tile_size)


def random_gaussian(name: str, rows: int, cols: int, seed: int,
                    tile_size: int = DEFAULT_TILE_SIZE) -> TiledMatrix:
    """Dense matrix with i.i.d. standard normal entries."""
    array = _rng(seed).standard_normal((rows, cols))
    return TiledMatrix.from_numpy(name, array, tile_size)


def random_sparse(name: str, rows: int, cols: int, density: float, seed: int,
                  tile_size: int = DEFAULT_TILE_SIZE) -> TiledMatrix:
    """Sparse matrix with the given nonzero density (values uniform [0,1))."""
    if not 0.0 <= density <= 1.0:
        raise ValidationError(f"density must be in [0, 1], got {density}")
    rng = _rng(seed)
    mat = sparse.random(rows, cols, density=density, random_state=rng,
                        format="csr", dtype=np.float64)
    return TiledMatrix.from_numpy(name, np.asarray(mat.todense()), tile_size)


def random_nonnegative(name: str, rows: int, cols: int, seed: int,
                       tile_size: int = DEFAULT_TILE_SIZE) -> TiledMatrix:
    """Strictly positive dense matrix (entries in (0.01, 1.01)); GNMF input."""
    array = _rng(seed).random((rows, cols)) + 0.01
    return TiledMatrix.from_numpy(name, array, tile_size)


def regression_dataset(rows: int, features: int, seed: int,
                       noise: float = 0.1,
                       tile_size: int = DEFAULT_TILE_SIZE
                       ) -> tuple[TiledMatrix, TiledMatrix, np.ndarray]:
    """A linear-regression instance: design matrix X, targets y, true weights.

    Returns ``(X, y, w_true)`` where ``y = X @ w_true + noise``.
    """
    if rows <= 0 or features <= 0:
        raise ValidationError("rows and features must be positive")
    rng = _rng(seed)
    x = rng.standard_normal((rows, features))
    w_true = rng.standard_normal(features)
    y = x @ w_true + noise * rng.standard_normal(rows)
    x_mat = TiledMatrix.from_numpy("X", x, tile_size)
    y_mat = TiledMatrix.from_numpy("y", y.reshape(-1, 1), tile_size)
    return x_mat, y_mat, w_true


def low_rank_plus_noise(name: str, rows: int, cols: int, rank: int, seed: int,
                        noise: float = 0.01,
                        tile_size: int = DEFAULT_TILE_SIZE) -> TiledMatrix:
    """A matrix with a planted low-rank structure; RSVD input."""
    if rank <= 0 or rank > min(rows, cols):
        raise ValidationError(f"rank must be in [1, min(shape)], got {rank}")
    rng = _rng(seed)
    left = rng.standard_normal((rows, rank))
    right = rng.standard_normal((rank, cols))
    array = left @ right + noise * rng.standard_normal((rows, cols))
    return TiledMatrix.from_numpy(name, array, tile_size)


def stochastic_adjacency(name: str, nodes: int, avg_degree: float, seed: int,
                         tile_size: int = DEFAULT_TILE_SIZE) -> TiledMatrix:
    """Column-stochastic adjacency matrix for power-iteration workloads."""
    if nodes <= 0:
        raise ValidationError("nodes must be positive")
    if avg_degree <= 0:
        raise ValidationError("avg_degree must be positive")
    density = min(1.0, avg_degree / nodes)
    rng = _rng(seed)
    adjacency = (rng.random((nodes, nodes)) < density).astype(np.float64)
    # Guarantee no dangling columns, then normalize columns to sum to 1.
    for col in range(nodes):
        if not adjacency[:, col].any():
            adjacency[rng.integers(nodes), col] = 1.0
    adjacency /= adjacency.sum(axis=0, keepdims=True)
    return TiledMatrix.from_numpy(name, adjacency, tile_size)
