"""Synthetic dataset generators for the evaluation workloads."""

from repro.data.generators import (
    low_rank_plus_noise,
    random_dense,
    random_gaussian,
    random_nonnegative,
    random_sparse,
    regression_dataset,
    stochastic_adjacency,
)

__all__ = [
    "low_rank_plus_noise",
    "random_dense",
    "random_gaussian",
    "random_nonnegative",
    "random_sparse",
    "regression_dataset",
    "stochastic_adjacency",
]
