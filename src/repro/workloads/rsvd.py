"""RSVD-1: the matrix pipeline at the heart of randomized SVD.

The paper's running optimization example ("RSVD-1") is the sampling stage of
Halko-Martinsson-Tropp randomized SVD: starting from a Gaussian sketch
``G``, compute

    B = (A A')^q  A  G

by alternating multiplies against A and A'.  The output spans the dominant
column space of A; downstream orthogonalization/SVD is a small local
computation outside the data-parallel part, so the cloud cost lives entirely
in this multiply chain.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import Program
from repro.errors import ValidationError


def build_rsvd_program(rows: int, cols: int, sketch_cols: int,
                       power_iterations: int = 1,
                       a_density: float = 1.0) -> Program:
    """RSVD-1: ``B = (A A')^q A G`` with ``q = power_iterations``."""
    if min(rows, cols, sketch_cols) <= 0:
        raise ValidationError("rows, cols, sketch_cols must be positive")
    if power_iterations < 0:
        raise ValidationError("power_iterations must be >= 0")
    program = Program(
        f"rsvd1-{rows}x{cols}-k{sketch_cols}-q{power_iterations}"
    )
    a = program.declare_input("A", rows, cols, density=a_density)
    g = program.declare_input("G", cols, sketch_cols)
    b = program.assign("B", a @ g)
    for index in range(power_iterations):
        atb = program.assign(f"AtB_{index}", a.T @ b)
        b = program.assign("B", a @ atb)
    program.mark_output("B")
    return program


def reference_rsvd(a: np.ndarray, g: np.ndarray,
                   power_iterations: int = 1) -> np.ndarray:
    """Plain-numpy RSVD-1 for cross-checking."""
    b = a @ g
    for __ in range(power_iterations):
        b = a @ (a.T @ b)
    return b


def sketch_quality(a: np.ndarray, b: np.ndarray) -> float:
    """Relative spectral coverage of the sketch: how much of ||A||_F the
    projection onto range(B) captures.  Close to 1 for a good sketch."""
    q, __ = np.linalg.qr(b)
    projected = q @ (q.T @ a)
    denom = np.linalg.norm(a)
    if denom == 0:
        return 1.0
    return float(np.linalg.norm(projected) / denom)
