"""Logistic regression by batch gradient descent.

A second iterative statistical workload mixing multiplies with a nonlinear
element function (sigmoid) — the kind of program the paper's abstract
motivates ("statistical data analysis"), stressing element-wise fusion
around matrix multiplies:

    w <- w + lr * X' (y - sigmoid(X w))
"""

from __future__ import annotations

import numpy as np

from repro.core.program import Program
from repro.errors import ValidationError


def build_logistic_program(rows: int, features: int, iterations: int,
                           learning_rate: float) -> Program:
    """Batch gradient ascent on the logistic log-likelihood."""
    if rows <= 0 or features <= 0:
        raise ValidationError("rows and features must be positive")
    if iterations <= 0:
        raise ValidationError("iterations must be positive")
    if learning_rate <= 0:
        raise ValidationError("learning_rate must be positive")
    program = Program(f"logistic-{rows}x{features}-it{iterations}")
    x = program.declare_input("X", rows, features)
    y = program.declare_input("y", rows, 1)
    w = program.declare_input("w0", features, 1)
    current = {"w": w}

    def iteration(index: int) -> None:
        w_cur = current["w"]
        margin = program.assign(f"margin_{index}", x @ w_cur)
        probability = program.assign(f"prob_{index}",
                                     margin.apply("sigmoid"))
        residual = program.assign(f"resid_{index}", y - probability)
        gradient = program.assign(f"grad_{index}", x.T @ residual)
        current["w"] = program.assign("w", w_cur + gradient * learning_rate)

    program.loop(iterations, iteration)
    program.mark_output("w")
    return program


def reference_logistic(x: np.ndarray, y: np.ndarray, w0: np.ndarray,
                       iterations: int, learning_rate: float) -> np.ndarray:
    """Plain-numpy logistic gradient ascent for cross-checking."""
    w = w0.copy()
    for __ in range(iterations):
        probability = 1.0 / (1.0 + np.exp(-(x @ w)))
        w = w + learning_rate * (x.T @ (y - probability))
    return w


def classification_dataset(rows: int, features: int, seed: int
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A separable-ish binary classification instance: X, y, true weights."""
    if rows <= 0 or features <= 0:
        raise ValidationError("rows and features must be positive")
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, features))
    w_true = rng.standard_normal((features, 1))
    probability = 1.0 / (1.0 + np.exp(-(x @ w_true)))
    y = (rng.random((rows, 1)) < probability).astype(np.float64)
    return x, y, w_true


def accuracy(x: np.ndarray, y: np.ndarray, w: np.ndarray) -> float:
    """Classification accuracy of weights ``w`` on (X, y)."""
    predictions = (x @ w > 0).astype(np.float64)
    return float((predictions == y).mean())
