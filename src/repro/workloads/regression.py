"""Ordinary least squares via the normal equations and gradient descent.

The data-parallel parts of linear regression are the Gram computations
``X'X`` and ``X'y``; solving the tiny ``k x k`` system happens locally.
A gradient-descent variant exercises iterative element-wise updates.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import Program
from repro.errors import ValidationError


def build_normal_equations_program(rows: int, features: int) -> Program:
    """Compute ``XtX = X'X`` and ``Xty = X'y`` (the heavy, cloud-side part)."""
    if rows <= 0 or features <= 0:
        raise ValidationError("rows and features must be positive")
    program = Program(f"ols-normal-{rows}x{features}")
    x = program.declare_input("X", rows, features)
    y = program.declare_input("y", rows, 1)
    program.assign("XtX", x.T @ x)
    program.assign("Xty", x.T @ y)
    program.mark_output("XtX", "Xty")
    return program


def solve_normal_equations(xtx: np.ndarray, xty: np.ndarray,
                           ridge: float = 0.0) -> np.ndarray:
    """Local solve of the (small) normal equations, optional ridge term."""
    if ridge < 0:
        raise ValidationError("ridge must be >= 0")
    k = xtx.shape[0]
    return np.linalg.solve(xtx + ridge * np.eye(k), xty)


def build_gradient_descent_program(rows: int, features: int,
                                   iterations: int,
                                   learning_rate: float) -> Program:
    """Batch gradient descent: ``w <- w - lr * X'(Xw - y)``."""
    if rows <= 0 or features <= 0:
        raise ValidationError("rows and features must be positive")
    if iterations <= 0:
        raise ValidationError("iterations must be positive")
    if not 0 < learning_rate:
        raise ValidationError("learning_rate must be positive")
    program = Program(f"ols-gd-{rows}x{features}-it{iterations}")
    x = program.declare_input("X", rows, features)
    y = program.declare_input("y", rows, 1)
    w = program.declare_input("w0", features, 1)
    current = {"w": w}

    def iteration(index: int) -> None:
        w_cur = current["w"]
        pred = program.assign(f"pred_{index}", x @ w_cur)
        resid = program.assign(f"resid_{index}", pred - y)
        grad = program.assign(f"grad_{index}", x.T @ resid)
        current["w"] = program.assign("w", w_cur - grad * learning_rate)

    program.loop(iterations, iteration)
    program.mark_output("w")
    return program


def reference_gradient_descent(x: np.ndarray, y: np.ndarray, w0: np.ndarray,
                               iterations: int,
                               learning_rate: float) -> np.ndarray:
    """Plain-numpy batch gradient descent for cross-checking."""
    w = w0.copy()
    for __ in range(iterations):
        w = w - learning_rate * (x.T @ (x @ w - y))
    return w
