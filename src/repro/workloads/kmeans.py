"""Soft k-means (fuzzy c-means flavored) — clustering in pure matrix algebra.

Hard k-means needs an argmin, which a matrix language cannot express; the
soft variant replaces it with exponential responsibilities and is exactly
the kind of statistical program Cumulon targets.  One iteration:

    D   = row_sums(X*X) + col_sums(C*C)' - 2 X C'     # squared distances
    R   = exp(-beta * D)                              # affinities
    R   = R / row_sums(R)                             # responsibilities
    C'  = (R' X) / col_sums(R)'                       # weighted centroids

Every line exercises a different language feature: Gram-style multiplies,
constant-matrix reductions, broadcasting along both axes, and a fused
element-function pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.expr import ones
from repro.core.program import Program
from repro.errors import ValidationError


def build_soft_kmeans_program(rows: int, features: int, clusters: int,
                              iterations: int,
                              beta: float = 2.0) -> Program:
    """``iterations`` soft k-means updates of the centroid matrix C."""
    if min(rows, features, clusters) <= 0:
        raise ValidationError("rows, features, clusters must be positive")
    if iterations <= 0:
        raise ValidationError("iterations must be positive")
    if beta <= 0:
        raise ValidationError("beta must be positive")
    program = Program(
        f"soft-kmeans-{rows}x{features}-k{clusters}-it{iterations}"
    )
    x = program.declare_input("X", rows, features)
    c = program.declare_input("C0", clusters, features)
    x_sq = program.assign("Xsq", (x * x).row_sums())       # rows x 1
    current = {"C": c}

    def iteration(index: int) -> None:
        c_cur = current["C"]
        c_sq = program.assign(f"Csq_{index}",
                              (c_cur * c_cur).row_sums())  # clusters x 1
        cross = program.assign(f"XCt_{index}", x @ c_cur.T)
        distances = program.assign(
            f"D_{index}",
            x_sq + (ones(rows, 1) @ c_sq.T) - cross * 2.0,
        )
        affinity = program.assign(f"Raw_{index}",
                                  (distances * (-beta)).apply("exp"))
        responsibilities = program.assign(
            f"R_{index}", affinity / affinity.row_sums())
        mass = program.assign(f"mass_{index}",
                              responsibilities.col_sums())  # 1 x clusters
        weighted = program.assign(f"RtX_{index}",
                                  responsibilities.T @ x)
        current["C"] = program.assign("C", weighted / mass.T)

    program.loop(iterations, iteration)
    program.mark_output("C")
    return program


def reference_soft_kmeans(x: np.ndarray, c0: np.ndarray, iterations: int,
                          beta: float = 2.0) -> np.ndarray:
    """Plain-numpy soft k-means for cross-checking."""
    centroids = c0.copy()
    x_sq = (x * x).sum(axis=1, keepdims=True)
    for __ in range(iterations):
        c_sq = (centroids * centroids).sum(axis=1, keepdims=True)
        distances = x_sq + c_sq.T - 2.0 * (x @ centroids.T)
        affinity = np.exp(-beta * distances)
        responsibilities = affinity / affinity.sum(axis=1, keepdims=True)
        mass = responsibilities.sum(axis=0, keepdims=True)
        centroids = (responsibilities.T @ x) / mass.T
    return centroids


def clustered_dataset(rows: int, features: int, clusters: int, seed: int,
                      spread: float = 0.1
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Points around well-separated true centers; returns (X, centers)."""
    if min(rows, features, clusters) <= 0:
        raise ValidationError("rows, features, clusters must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((clusters, features)) * 3.0
    labels = rng.integers(0, clusters, size=rows)
    x = centers[labels] + spread * rng.standard_normal((rows, features))
    return x, centers


def centroid_match_error(found: np.ndarray, truth: np.ndarray) -> float:
    """Mean distance from each true center to its nearest found centroid."""
    errors = []
    for center in truth:
        distances = np.linalg.norm(found - center, axis=1)
        errors.append(distances.min())
    return float(np.mean(errors))
