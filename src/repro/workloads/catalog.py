"""Named workloads at preset scales — the registry behind the CLI.

Both the CLI (``repro explain gnmf --scale small``) and the job-service
submission scripts (:mod:`repro.service.script`) refer to workloads by
``(name, scale)`` pairs; this module is the single place those spellings
resolve to :class:`~repro.core.program.Program` builders.
"""

from __future__ import annotations

from repro.core.program import Program
from repro.errors import ReproError
from repro.workloads.chains import (
    build_multiply_program,
    build_power_iteration_program,
)
from repro.workloads.gnmf import build_gnmf_program
from repro.workloads.kmeans import build_soft_kmeans_program
from repro.workloads.logistic import build_logistic_program
from repro.workloads.pca import build_pca_program
from repro.workloads.regression import build_normal_equations_program
from repro.workloads.rsvd import build_rsvd_program

#: scale name -> (rows-ish base dimension, tile size)
SCALES = {
    "tiny": (1024, 256),
    "small": (8192, 1024),
    "medium": (32768, 2048),
    "large": (131072, 4096),
}

#: The workload names :func:`build_workload` understands.
WORKLOAD_NAMES = ("multiply", "gnmf", "rsvd", "regression", "pagerank",
                  "logistic", "pca", "kmeans")


def build_workload(name: str, scale: str) -> tuple[Program, int]:
    """Instantiate a named workload at a preset scale.

    Returns ``(program, tile_size)`` — the tile size is the scale's
    preset, matched to the matrix dimensions.
    """
    if scale not in SCALES:
        raise ReproError(f"unknown scale {scale!r}; choose from {list(SCALES)}")
    base, tile = SCALES[scale]
    if name == "multiply":
        return build_multiply_program(base, base, base), tile
    if name == "gnmf":
        return build_gnmf_program(base, base // 2, 128, iterations=3), tile
    if name == "rsvd":
        return build_rsvd_program(base, base // 4, 2048,
                                  power_iterations=1), tile
    if name == "regression":
        return build_normal_equations_program(base * 8, 4096), tile
    if name == "pagerank":
        return build_power_iteration_program(base, iterations=5,
                                             adjacency_density=0.001), tile
    if name == "logistic":
        return build_logistic_program(base * 4, 2048, iterations=3,
                                      learning_rate=0.01), tile
    if name == "pca":
        return build_pca_program(base * 4, 4096, 512), tile
    if name == "kmeans":
        return build_soft_kmeans_program(base * 4, 2048, 64,
                                         iterations=3), tile
    raise ReproError(f"unknown workload {name!r}; choose from: "
                     f"{', '.join(WORKLOAD_NAMES)}")
