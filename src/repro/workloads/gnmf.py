"""GNMF: Gaussian non-negative matrix factorization.

The multiplicative-update workload used throughout the paper (and in the
SystemML line of work) to represent iterative statistical programs:

    W <- W * (V H') / (W H H')
    H <- H * (W' V) / (W' W H)

Each iteration is six matrix multiplies plus two fused element-wise
mult/divide passes — a dense mix of Cumulon's two physical templates.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import Program
from repro.errors import ValidationError


def build_gnmf_program(rows: int, cols: int, rank: int, iterations: int,
                       v_density: float = 1.0) -> Program:
    """GNMF on a ``rows x cols`` matrix V factored at the given rank."""
    _check(rows, cols, rank, iterations)
    program = Program(f"gnmf-{rows}x{cols}-r{rank}-it{iterations}")
    v = program.declare_input("V", rows, cols, density=v_density)
    w = program.declare_input("W0", rows, rank)
    h = program.declare_input("H0", rank, cols)
    current = {"W": w, "H": h}

    def iteration(index: int) -> None:
        w_cur, h_cur = current["W"], current["H"]
        # W update: W * (V H') / (W (H H'))
        hht = program.assign(f"HHt_{index}", h_cur @ h_cur.T)
        vht = program.assign(f"VHt_{index}", v @ h_cur.T)
        whht = program.assign(f"WHHt_{index}", w_cur @ hht)
        w_new = program.assign("W", w_cur * vht / whht)
        # H update: H * (W' V) / ((W' W) H)
        wtw = program.assign(f"WtW_{index}", w_new.T @ w_new)
        wtv = program.assign(f"WtV_{index}", w_new.T @ v)
        wtwh = program.assign(f"WtWH_{index}", wtw @ h_cur)
        h_new = program.assign("H", h_cur * wtv / wtwh)
        current["W"], current["H"] = w_new, h_new

    program.loop(iterations, iteration)
    program.mark_output("W", "H")
    return program


def reference_gnmf(v: np.ndarray, w0: np.ndarray, h0: np.ndarray,
                   iterations: int) -> tuple[np.ndarray, np.ndarray]:
    """Plain-numpy GNMF used to cross-check the compiled execution."""
    w, h = w0.copy(), h0.copy()
    for __ in range(iterations):
        w = w * (v @ h.T) / (w @ (h @ h.T))
        h = h * (w.T @ v) / ((w.T @ w) @ h)
    return w, h


def _check(rows: int, cols: int, rank: int, iterations: int) -> None:
    if min(rows, cols, rank) <= 0:
        raise ValidationError("rows, cols and rank must be positive")
    if rank > min(rows, cols):
        raise ValidationError(f"rank {rank} exceeds min(shape)")
    if iterations <= 0:
        raise ValidationError("iterations must be positive")
