"""PCA via standardization plus a randomized range sketch.

A composite workload exercising the whole language: column standardization
(broadcast element-wise ops over column statistics), the covariance Gram
matrix, and the randomized projection used by RSVD — the pipeline a data
scientist would actually run for large-scale PCA:

    Z = (X - mean(X)) / std(X)          # broadcast over columns
    C = Z' Z / n                        # covariance (features x features)
    S = C G                             # randomized range sketch of C

The principal subspace is then extracted locally from the small sketch.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import Program
from repro.errors import ValidationError


def build_pca_program(rows: int, features: int, sketch_cols: int) -> Program:
    """Standardize, form the covariance, and sketch its range."""
    if min(rows, features, sketch_cols) <= 0:
        raise ValidationError("all dimensions must be positive")
    if sketch_cols > features:
        raise ValidationError("sketch_cols must be <= features")
    program = Program(f"pca-{rows}x{features}-k{sketch_cols}")
    x = program.declare_input("X", rows, features)
    g = program.declare_input("G", features, sketch_cols)

    mean = program.assign("mean", x.col_sums() * (1.0 / rows))
    centered = program.assign("centered", x - mean)
    variance = program.assign(
        "variance", (centered * centered).col_sums() * (1.0 / rows))
    z = program.assign("Z", centered / variance.apply("sqrt"))
    covariance = program.assign("C", (z.T @ z) * (1.0 / rows))
    program.assign("S", covariance @ g)
    program.mark_output("S", "C")
    return program


def reference_pca(x: np.ndarray, g: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Plain-numpy version of the pipeline for cross-checking."""
    rows = x.shape[0]
    z = (x - x.mean(axis=0)) / x.std(axis=0)
    covariance = z.T @ z / rows
    return covariance @ g, covariance


def principal_components(sketch: np.ndarray, n_components: int) -> np.ndarray:
    """Local extraction: orthonormal basis of the sketched range."""
    if n_components <= 0 or n_components > sketch.shape[1]:
        raise ValidationError(
            f"n_components must be in [1, {sketch.shape[1]}]"
        )
    q, __ = np.linalg.qr(sketch)
    return q[:, :n_components]


def explained_variance_ratio(covariance: np.ndarray,
                             components: np.ndarray) -> float:
    """Fraction of total variance captured by the component subspace."""
    total = np.trace(covariance)
    if total <= 0:
        return 1.0
    captured = np.trace(components.T @ covariance @ components)
    return float(captured / total)
