"""The paper's evaluation workloads as Cumulon programs."""

from repro.workloads.catalog import (
    SCALES,
    WORKLOAD_NAMES,
    build_workload,
)
from repro.workloads.chains import (
    build_chain_program,
    build_multiply_program,
    build_power_iteration_program,
    reference_power_iteration,
)
from repro.workloads.gnmf import build_gnmf_program, reference_gnmf
from repro.workloads.kmeans import (
    build_soft_kmeans_program,
    centroid_match_error,
    clustered_dataset,
    reference_soft_kmeans,
)
from repro.workloads.logistic import (
    accuracy,
    build_logistic_program,
    classification_dataset,
    reference_logistic,
)
from repro.workloads.regression import (
    build_gradient_descent_program,
    build_normal_equations_program,
    reference_gradient_descent,
    solve_normal_equations,
)
from repro.workloads.pca import (
    build_pca_program,
    explained_variance_ratio,
    principal_components,
    reference_pca,
)
from repro.workloads.rsvd import (
    build_rsvd_program,
    reference_rsvd,
    sketch_quality,
)

__all__ = [
    "SCALES",
    "WORKLOAD_NAMES",
    "build_workload",
    "build_chain_program",
    "build_multiply_program",
    "build_power_iteration_program",
    "build_gnmf_program",
    "build_logistic_program",
    "classification_dataset",
    "accuracy",
    "reference_logistic",
    "build_gradient_descent_program",
    "build_normal_equations_program",
    "build_pca_program",
    "principal_components",
    "explained_variance_ratio",
    "reference_pca",
    "build_rsvd_program",
    "build_soft_kmeans_program",
    "centroid_match_error",
    "clustered_dataset",
    "reference_soft_kmeans",
    "reference_gnmf",
    "reference_gradient_descent",
    "reference_power_iteration",
    "reference_rsvd",
    "sketch_quality",
    "solve_normal_equations",
]
