"""Matrix-multiply chains and power iteration.

``build_multiply_program`` is the micro-workload behind the operator-level
experiments (E1, E2, E3, E10); ``build_power_iteration_program`` is a
PageRank-style workload mixing a sparse multiply with fused scalar ops.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import Program
from repro.errors import ValidationError


def build_multiply_program(rows: int, inner: int, cols: int,
                           left_density: float = 1.0,
                           right_density: float = 1.0) -> Program:
    """One ``C = A @ B`` with the given shapes and densities."""
    if min(rows, inner, cols) <= 0:
        raise ValidationError("all dimensions must be positive")
    program = Program(f"matmul-{rows}x{inner}x{cols}")
    a = program.declare_input("A", rows, inner, density=left_density)
    b = program.declare_input("B", inner, cols, density=right_density)
    program.assign("C", a @ b)
    program.mark_output("C")
    return program


def build_chain_program(dimension: int, length: int) -> Program:
    """``C = M_1 @ M_2 @ ... @ M_length`` over square matrices."""
    if dimension <= 0:
        raise ValidationError("dimension must be positive")
    if length < 2:
        raise ValidationError("chain length must be at least 2")
    program = Program(f"chain-{dimension}-len{length}")
    matrices = [program.declare_input(f"M{index}", dimension, dimension)
                for index in range(length)]
    accumulator = program.assign("C", matrices[0] @ matrices[1])
    for index in range(2, length):
        accumulator = program.assign("C", accumulator @ matrices[index])
    program.mark_output("C")
    return program


def build_power_iteration_program(nodes: int, iterations: int,
                                  damping: float = 0.85,
                                  adjacency_density: float = 0.01) -> Program:
    """PageRank-style power iteration: ``r <- d*(A r) + (1-d)/n``."""
    if nodes <= 0:
        raise ValidationError("nodes must be positive")
    if iterations <= 0:
        raise ValidationError("iterations must be positive")
    if not 0.0 < damping < 1.0:
        raise ValidationError("damping must be in (0, 1)")
    program = Program(f"pagerank-{nodes}-it{iterations}")
    adjacency = program.declare_input("A", nodes, nodes,
                                      density=adjacency_density)
    rank = program.declare_input("r0", nodes, 1)
    teleport = (1.0 - damping) / nodes
    current = {"r": rank}

    def iteration(index: int) -> None:
        spread = program.assign(f"Ar_{index}", adjacency @ current["r"])
        current["r"] = program.assign("r", spread * damping + teleport)

    program.loop(iterations, iteration)
    program.mark_output("r")
    return program


def reference_power_iteration(adjacency: np.ndarray, r0: np.ndarray,
                              iterations: int,
                              damping: float = 0.85) -> np.ndarray:
    """Plain-numpy power iteration for cross-checking."""
    rank = r0.copy()
    teleport = (1.0 - damping) / adjacency.shape[0]
    for __ in range(iterations):
        rank = damping * (adjacency @ rank) + teleport
    return rank
