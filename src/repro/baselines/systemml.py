"""SystemML-style matrix multiply on MapReduce: RMM and CPMM.

The paper's headline comparison pits Cumulon's map-only pipeline against
Hadoop-based linear algebra systems, of which SystemML is the canonical
example.  SystemML executes ``C = A @ B`` as genuine MapReduce jobs using
one of two strategies:

**RMM (replication-based matrix multiply)** — one MR job.  Mappers read
input tiles and *replicate* them into the shuffle: tile ``A[i,k]`` is sent
to every reducer ``(i, j)`` and ``B[k,j]`` to every ``(i, j)`` — a shuffle
volume of ``|A| * Nj + |B| * Ni`` — and each reducer assembles one C tile.

**CPMM (cross-product matrix multiply)** — two MR jobs.  Job 1 shuffles
``|A| + |B|`` grouped by the inner index ``k``; each reducer forms the
cross-product partials ``P_k = A[:,k] @ B[k,:]`` and writes ``Nk`` full-size
copies of C to HDFS.  Job 2 shuffles those partials (``|C| * Nk``) and sums
them.

Both pay what Cumulon avoids: a sort-based shuffle, materialization between
phases, and the larger per-job overhead of full MapReduce.  The tasks still
carry real compute closures (reducers read the tiles they *would* have
received and do the real math), so baseline results are bit-checkable
against Cumulon's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.physical import MatrixInfo, Operand, PhysicalContext
from repro.errors import ShapeError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task
from repro.matrix.tile import TileId, matmul_flops
from repro.matrix.tiled import TileGrid, TiledMatrix


@dataclass
class BaselineMultiply:
    """A planned baseline multiply: the job DAG plus the output descriptor."""

    dag: JobDag
    output: MatrixInfo
    strategy: str


def plan_rmm(left: Operand, right: Operand, output_name: str,
             context: PhysicalContext,
             job_prefix: str = "rmm") -> BaselineMultiply:
    """Replication-based multiply: one MapReduce job."""
    _check_conforming(left, right)
    grid = TileGrid(left.shape[0], right.shape[1], context.tile_size)
    output = MatrixInfo(output_name, grid)
    tile_rows, tile_cols = grid.tile_rows, grid.tile_cols
    k_tiles = left.tile_cols

    map_tasks = []
    # One mapper per input tile; it replicates its tile into the shuffle.
    for index, (operand, replication) in enumerate(
            ((left, tile_cols), (right, tile_rows))):
        # Mappers read the stored layout directly; use stored positions.
        for tile_index, (row, col) in enumerate(_operand_positions(operand)):
            tile_bytes = operand.info.tile_bytes(row, col)
            work = TaskWork(bytes_read=tile_bytes,
                            shuffle_bytes=tile_bytes * replication,
                            element_ops=tile_bytes // 8)
            map_tasks.append(make_map_task(
                task_id=f"{job_prefix}-m{index}-{tile_index}",
                work=work,
                preferred_nodes=context.preferred_nodes(
                    [TileId(operand.info.name, row, col)]),
                label=f"rmm map {operand.info.name}[{row},{col}] x{replication}",
            ))

    output_matrix = None
    if context.attach_run:
        output_matrix = TiledMatrix(output_name, grid, context.backing)

    reduce_tasks = []
    for reduce_index, (row, col) in enumerate(grid.positions()):
        incoming = (sum(left.tile_bytes(row, k) for k in range(k_tiles))
                    + sum(right.tile_bytes(k, col) for k in range(k_tiles)))
        out_rows, out_cols = grid.tile_shape(row, col)
        flops = sum(
            matmul_flops(out_rows, _inner_width(left, row, k), out_cols)
            for k in range(k_tiles)
        )
        # element_ops: deserializing/merging the sorted shuffle input.
        work = TaskWork(bytes_read=incoming,
                        bytes_written=output.tile_bytes(row, col),
                        flops=flops, element_ops=incoming // 8)
        run = None
        if context.attach_run:
            run = _reduce_runner(left, right, output_matrix, row, col,
                                 k_tiles, context)
        reduce_tasks.append(make_reduce_task(
            task_id=f"{job_prefix}-r{reduce_index}", work=work, run=run,
            label=f"rmm reduce C[{row},{col}]",
        ))

    job = Job(job_prefix, JobKind.MAPREDUCE, map_tasks, reduce_tasks,
              label=f"RMM {left.info.name}@{right.info.name} -> {output_name}")
    return BaselineMultiply(JobDag([job]), output, "RMM")


def plan_cpmm(left: Operand, right: Operand, output_name: str,
              context: PhysicalContext,
              job_prefix: str = "cpmm") -> BaselineMultiply:
    """Cross-product multiply: two MapReduce jobs."""
    _check_conforming(left, right)
    grid = TileGrid(left.shape[0], right.shape[1], context.tile_size)
    output = MatrixInfo(output_name, grid)
    k_tiles = left.tile_cols
    partials = [MatrixInfo(f"{output_name}#cp{k}", grid)
                for k in range(k_tiles)]

    partial_matrices: list[TiledMatrix | None] = [None] * k_tiles
    output_matrix = None
    if context.attach_run:
        partial_matrices = [TiledMatrix(info.name, grid, context.backing)
                            for info in partials]
        output_matrix = TiledMatrix(output_name, grid, context.backing)

    # --- Job 1: group by k, form cross products. ---
    map_tasks = []
    for index, operand in enumerate((left, right)):
        # Mappers read the stored layout directly; use stored positions.
        for tile_index, (row, col) in enumerate(_operand_positions(operand)):
            tile_bytes = operand.info.tile_bytes(row, col)
            work = TaskWork(bytes_read=tile_bytes, shuffle_bytes=tile_bytes,
                            element_ops=tile_bytes // 8)
            map_tasks.append(make_map_task(
                task_id=f"{job_prefix}1-m{index}-{tile_index}", work=work,
                preferred_nodes=context.preferred_nodes(
                    [TileId(operand.info.name, row, col)]),
                label=f"cpmm map {operand.info.name}[{row},{col}]",
            ))
    reduce_tasks = []
    for k in range(k_tiles):
        incoming = (sum(left.tile_bytes(i, k) for i in range(grid.tile_rows))
                    + sum(right.tile_bytes(k, j)
                          for j in range(grid.tile_cols)))
        flops = sum(
            matmul_flops(grid.tile_shape(i, j)[0], _inner_width(left, i, k),
                         grid.tile_shape(i, j)[1])
            for i in range(grid.tile_rows) for j in range(grid.tile_cols)
        )
        written = partials[k].total_bytes()
        run = None
        if context.attach_run:
            run = _cross_product_runner(left, right, partial_matrices[k],
                                        k, grid, context)
        reduce_tasks.append(make_reduce_task(
            task_id=f"{job_prefix}1-r{k}",
            work=TaskWork(bytes_read=incoming, bytes_written=written,
                          flops=flops, element_ops=incoming // 8),
            run=run, label=f"cpmm cross-product k={k}",
        ))
    job1 = Job(f"{job_prefix}1", JobKind.MAPREDUCE, map_tasks, reduce_tasks,
               label=f"CPMM-1 {left.info.name}@{right.info.name}")

    # --- Job 2: regroup by (i, j), sum the k partials. ---
    map_tasks2 = []
    for k, partial in enumerate(partials):
        for tile_index, (row, col) in enumerate(partial.grid.positions()):
            tile_bytes = partial.tile_bytes(row, col)
            work = TaskWork(bytes_read=tile_bytes, shuffle_bytes=tile_bytes,
                            element_ops=tile_bytes // 8)
            map_tasks2.append(make_map_task(
                task_id=f"{job_prefix}2-m{k}-{tile_index}", work=work,
                label=f"cpmm map partial k={k} [{row},{col}]",
            ))
    reduce_tasks2 = []
    for reduce_index, (row, col) in enumerate(grid.positions()):
        incoming = sum(partial.tile_bytes(row, col) for partial in partials)
        rows, cols = grid.tile_shape(row, col)
        run = None
        if context.attach_run:
            run = _sum_partials_runner(partials, output_matrix, row, col,
                                       context)
        reduce_tasks2.append(make_reduce_task(
            task_id=f"{job_prefix}2-r{reduce_index}",
            work=TaskWork(bytes_read=incoming,
                          bytes_written=output.tile_bytes(row, col),
                          element_ops=rows * cols * k_tiles + incoming // 8),
            run=run, label=f"cpmm sum C[{row},{col}]",
        ))
    job2 = Job(f"{job_prefix}2", JobKind.MAPREDUCE, map_tasks2, reduce_tasks2,
               depends_on={job1.job_id},
               label=f"CPMM-2 sum partials -> {output_name}")
    return BaselineMultiply(JobDag([job1, job2]), output, "CPMM")


def plan_best_systemml(left: Operand, right: Operand, output_name: str,
                       context: PhysicalContext) -> BaselineMultiply:
    """SystemML's strategy chooser: compare shuffle volumes.

    RMM shuffles ``|A| * Nj + |B| * Ni`` (input replication); CPMM shuffles
    ``|A| + |B|`` in job 1 and the partial products ``|C| * Nk`` in job 2.
    RMM wins when one side of the multiply is narrow (cheap to replicate),
    CPMM when both inputs span wide tile grids.
    """
    grid = TileGrid(left.shape[0], right.shape[1], context.tile_size)
    left_bytes = left.info.total_bytes()
    right_bytes = right.info.total_bytes()
    rmm_shuffle = left_bytes * grid.tile_cols + right_bytes * grid.tile_rows
    k_tiles = left.tile_cols
    output_bytes = MatrixInfo(output_name, grid).total_bytes()
    cpmm_shuffle = left_bytes + right_bytes + output_bytes * k_tiles
    if rmm_shuffle <= cpmm_shuffle:
        return plan_rmm(left, right, output_name, context)
    return plan_cpmm(left, right, output_name, context)


# ---------------------------------------------------------------------------
# Real-execution closures (reducers do the math Cumulon's tasks would).
# ---------------------------------------------------------------------------

def _reduce_runner(left: Operand, right: Operand, output_matrix: TiledMatrix,
                   row: int, col: int, k_tiles: int,
                   context: PhysicalContext):
    def run() -> None:
        total = None
        for k in range(k_tiles):
            left_payload = _dense_payload(left, row, k, context)
            right_payload = _dense_payload(right, k, col, context)
            product = left_payload @ right_payload
            total = product if total is None else total + product
        output_matrix.put_tile(row, col, total)

    return run


def _cross_product_runner(left: Operand, right: Operand,
                          partial_matrix: TiledMatrix, k: int,
                          grid: TileGrid, context: PhysicalContext):
    def run() -> None:
        for i in range(grid.tile_rows):
            left_payload = _dense_payload(left, i, k, context)
            for j in range(grid.tile_cols):
                right_payload = _dense_payload(right, k, j, context)
                partial_matrix.put_tile(i, j, left_payload @ right_payload)

    return run


def _sum_partials_runner(partials: list[MatrixInfo],
                         output_matrix: TiledMatrix, row: int, col: int,
                         context: PhysicalContext):
    def run() -> None:
        total = None
        for partial in partials:
            tile = context.read_tile(TileId(partial.name, row, col))
            payload = tile.to_dense()
            total = payload if total is None else total + payload
        output_matrix.put_tile(row, col, total)

    return run


def _dense_payload(operand: Operand, tile_row: int, tile_col: int,
                   context: PhysicalContext) -> np.ndarray:
    tile = context.read_tile(operand.tile_id(tile_row, tile_col))
    dense = tile.to_dense()
    return dense.T if operand.transposed else dense


# ---------------------------------------------------------------------------
# Shared helpers.
# ---------------------------------------------------------------------------

def _check_conforming(left: Operand, right: Operand) -> None:
    if left.shape[1] != right.shape[0]:
        raise ShapeError(
            f"cannot multiply shapes {left.shape} and {right.shape}"
        )
    if left.info.grid.tile_size != right.info.grid.tile_size:
        raise ShapeError("operands must share a tile size")


def _operand_positions(operand: Operand):
    """Stored tile positions of an operand (mapper reads stored layout)."""
    return operand.info.grid.positions()


def _inner_width(left: Operand, tile_row: int, k: int) -> int:
    stored_row, stored_col = left.stored_position(tile_row, k)
    rows, cols = left.info.grid.tile_shape(stored_row, stored_col)
    return rows if left.transposed else cols
