"""Naive baseline: single-node execution.

``plan_single_node`` models running the whole computation as one task on one
machine — the "just use a big server" strawman whose crossover against
cluster plans the time/cost experiments show.  (The other naive comparison,
one MapReduce job per element-wise operator, is reached by compiling with
``CompilerParams(fusion_enabled=False)`` — see experiment E11.)
"""

from __future__ import annotations

from repro.core.physical import MatrixInfo, Operand, PhysicalContext
from repro.errors import ShapeError
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.task import TaskWork, make_map_task
from repro.matrix.tile import matmul_flops
from repro.matrix.tiled import TileGrid


def plan_single_node(left: Operand, right: Operand, output_name: str,
                     context: PhysicalContext,
                     job_id: str = "single") -> tuple[JobDag, MatrixInfo]:
    """The whole multiply as one map task on one slot."""
    if left.shape[1] != right.shape[0]:
        raise ShapeError(
            f"cannot multiply shapes {left.shape} and {right.shape}"
        )
    grid = TileGrid(left.shape[0], right.shape[1], context.tile_size)
    output = MatrixInfo(output_name, grid)
    rows, inner = left.shape
    cols = right.shape[1]
    work = TaskWork(
        bytes_read=left.info.total_bytes() + right.info.total_bytes(),
        bytes_written=output.total_bytes(),
        flops=matmul_flops(rows, inner, cols),
        memory_bytes=(left.info.total_bytes() + right.info.total_bytes()
                      + output.total_bytes()),
    )
    task = make_map_task(f"{job_id}-m0", work,
                         label=f"single-node {output_name}")
    job = Job(job_id, JobKind.MAP_ONLY, [task],
              label=f"single-node multiply -> {output_name}")
    return JobDag([job]), output
