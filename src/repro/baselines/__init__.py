"""Baseline systems: SystemML-style MapReduce plans, single node."""

from repro.baselines.naive import plan_single_node
from repro.baselines.systemml import (
    BaselineMultiply,
    plan_best_systemml,
    plan_cpmm,
    plan_rmm,
)
from repro.baselines.systemml_program import (
    SystemMLCompiler,
    compile_systemml_program,
)

__all__ = [
    "BaselineMultiply",
    "SystemMLCompiler",
    "compile_systemml_program",
    "plan_best_systemml",
    "plan_cpmm",
    "plan_rmm",
    "plan_single_node",
]
