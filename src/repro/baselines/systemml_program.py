"""Whole-program SystemML-style compilation.

SystemML (2013) compiled linear-algebra scripts to MapReduce jobs: each
matrix multiply became an RMM or CPMM job and each element-wise operator its
own MR pass — binary operators need a join-by-key shuffle to align operand
blocks, so they are full MapReduce jobs.  This module reuses Cumulon's
compiler skeleton but swaps in those MapReduce templates, giving the
end-to-end GNMF/RSVD comparisons (E7, E8) a faithful whole-program
comparator on the identical substrate.
"""

from __future__ import annotations

from repro.baselines.systemml import plan_best_systemml
from repro.core.compiler import CompiledProgram, Compiler, CompilerParams
from repro.core.expr import MatMul
from repro.core.physical import (
    FusedKernel,
    MatrixInfo,
    PhysicalContext,
    broadcast_position,
)
from repro.core.program import Program
from repro.errors import CompilationError
from repro.hadoop.job import Job, JobKind
from repro.hadoop.task import TaskWork, make_map_task, make_reduce_task
from repro.matrix.tile import TileId
from repro.matrix.tiled import TileGrid, TiledMatrix


class SystemMLCompiler(Compiler):
    """Compiles programs the way a 2013 MapReduce-based system would."""

    def __init__(self, context: PhysicalContext):
        # Fusion off: every logical operator becomes its own job.
        super().__init__(context, CompilerParams(fusion_enabled=False))

    def _materialize_matmul(self, expr: MatMul, output_name: str):
        left, left_deps = self._as_operand(expr.left)
        right, right_deps = self._as_operand(expr.right)
        baseline = plan_best_systemml(left, right, output_name, self.context)
        deps = set(left_deps | right_deps)
        renamed = {}
        for job in baseline.dag.topological_order():
            new_id = self._job_id(f"sysml-{output_name}")
            renamed[job.job_id] = new_id
            job_deps = {renamed[d] for d in job.depends_on} | deps
            self._dag.add(Job(new_id, job.kind, job.map_tasks,
                              job.reduce_tasks, depends_on=job_deps,
                              label=job.label))
            final_id = new_id
        self._materialized[output_name] = baseline.output
        if self.context.attach_run:
            self._output_matrices[output_name] = TiledMatrix(
                baseline.output.name, baseline.output.grid,
                self.context.backing)
        return baseline.output, frozenset({final_id})

    def _emit_single_kernel(self, kernel: FusedKernel, expr, output_name: str,
                            deps):
        """One element-wise operator as a full MapReduce job."""
        grid = TileGrid(expr.shape[0], expr.shape[1], self.context.tile_size)
        output = MatrixInfo(output_name, grid, expr.density)
        output_matrix = None
        if self.context.attach_run:
            output_matrix = TiledMatrix(output_name, grid,
                                        self.context.backing)
            self._output_matrices[output_name] = output_matrix
        job_id = self._job_id(f"sysml-ew-{output_name}")
        job = elementwise_as_mapreduce(job_id, kernel, output, self.context,
                                       set(deps), output_matrix)
        self._dag.add(job)
        self._materialized[output_name] = output
        return output, frozenset({job.job_id})


def elementwise_as_mapreduce(job_id: str, kernel: FusedKernel,
                             output: MatrixInfo, context: PhysicalContext,
                             depends_on: set[str],
                             output_matrix: TiledMatrix | None) -> Job:
    """An element-wise operator as map (read + shuffle) -> reduce (compute).

    Mappers tag each operand tile with its grid position and shuffle it;
    reducers join the co-positioned tiles, apply the operator, and write the
    output — the block-alignment join SystemML's binary operators required.
    """
    grid = output.grid
    map_tasks = []
    for op_index, operand in enumerate(kernel.operands):
        for tile_index, (row, col) in enumerate(operand.info.grid.positions()):
            tile_bytes = operand.info.tile_bytes(row, col)
            map_tasks.append(make_map_task(
                task_id=f"{job_id}-m{op_index}-{tile_index}",
                work=TaskWork(bytes_read=tile_bytes,
                              shuffle_bytes=tile_bytes,
                              element_ops=tile_bytes // 8, tile_ops=2),
                preferred_nodes=context.preferred_nodes(
                    [TileId(operand.info.name, row, col)]),
                label=f"sysml ew map {operand.info.name}[{row},{col}]",
            ))

    reduce_tasks = []
    for reduce_index, (row, col) in enumerate(grid.positions()):
        incoming = sum(
            operand.tile_bytes(*broadcast_position(operand, row, col))
            for operand in kernel.operands)
        rows, cols = grid.tile_shape(row, col)
        run = None
        if context.attach_run:
            run = _reduce_elementwise_runner(kernel, row, col, output_matrix,
                                             context)
        reduce_tasks.append(make_reduce_task(
            task_id=f"{job_id}-r{reduce_index}",
            work=TaskWork(bytes_read=incoming,
                          bytes_written=output.tile_bytes(row, col),
                          element_ops=rows * cols * kernel.n_operators
                                      + incoming // 8,
                          tile_ops=len(kernel.operands) + 1),
            run=run,
            label=f"sysml ew reduce [{row},{col}]",
        ))
    return Job(job_id, JobKind.MAPREDUCE, map_tasks, reduce_tasks,
               depends_on=depends_on,
               label=f"sysml {kernel.label or 'ew'} -> {output.name}")


def _reduce_elementwise_runner(kernel: FusedKernel, row: int, col: int,
                               output_matrix: TiledMatrix,
                               context: PhysicalContext):
    if output_matrix is None:
        raise CompilationError("attach_run requires the output TiledMatrix")

    def run() -> None:
        payloads = []
        for operand in kernel.operands:
            position = broadcast_position(operand, row, col)
            tile = context.read_tile(operand.tile_id(*position))
            dense = tile.to_dense()
            payloads.append(dense.T if operand.transposed else dense)
        output_matrix.put_tile(row, col, kernel.fn(*payloads))

    return run


def compile_systemml_program(program: Program,
                             context: PhysicalContext) -> CompiledProgram:
    """Compile ``program`` into SystemML-style MapReduce jobs."""
    return SystemMLCompiler(context).compile(program)
