"""Replica placement policies.

HDFS's default policy writes the first replica on the writer's node and
spreads the rest across other nodes.  The policy only *chooses* nodes; the
namenode performs the actual stores and enforces invariants.
"""

from __future__ import annotations

import random

from repro.errors import ReplicationError
from repro.hdfs.datanode import DataNode


class PlacementPolicy:
    """Interface: pick the datanodes that receive a new block's replicas."""

    def choose(self, nodes: list[DataNode], size: int, replication: int,
               writer: str | None = None) -> list[DataNode]:
        raise NotImplementedError


class DefaultPlacement(PlacementPolicy):
    """HDFS-like rack-aware placement.

    Replica 1 goes to the writer's node (when given), replica 2 to a node on
    a *different* rack, replica 3 back on replica 2's rack on a different
    node, and any further replicas to the least-loaded remaining nodes —
    the classic HDFS trade of write cost vs rack-failure tolerance.  On a
    single-rack cluster this degrades to writer-local + least-loaded.

    Deterministic given the node list (ties broken by name) unless a seed is
    provided, in which case remote candidates are shuffled first — useful for
    exercising the locality-scheduling experiments with varied layouts.
    """

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed) if seed is not None else None

    def choose(self, nodes: list[DataNode], size: int, replication: int,
               writer: str | None = None) -> list[DataNode]:
        candidates = [node for node in nodes if node.free_bytes >= size]
        if len(candidates) < min(replication, 1):
            raise ReplicationError(
                f"no datanode has {size} free bytes for a new block"
            )
        remote = list(candidates)
        if self._rng is not None:
            self._rng.shuffle(remote)
        remote.sort(key=lambda node: (node.used_bytes, node.name))

        chosen: list[DataNode] = []

        def take(node: DataNode) -> None:
            chosen.append(node)
            remote.remove(node)

        # Replica 1: writer-local when possible, else least loaded.
        local = [node for node in remote if node.name == writer]
        take(local[0] if local else remote[0])

        # Replica 2: a different rack than replica 1, when one exists.
        if len(chosen) < replication and remote:
            off_rack = [node for node in remote
                        if node.rack != chosen[0].rack]
            take(off_rack[0] if off_rack else remote[0])

        # Replica 3: same rack as replica 2, different node — else anything.
        if len(chosen) < replication and remote:
            second_rack = [node for node in remote
                           if node.rack == chosen[1].rack]
            take(second_rack[0] if second_rack else remote[0])

        # Remaining replicas: least loaded of whatever is left.
        while len(chosen) < replication and remote:
            take(remote[0])

        return chosen
