"""TileStore: matrices as HDFS directories of tile files.

Cumulon stores each matrix as an HDFS directory with one file per tile.  A
:class:`TileStore` is a :class:`repro.matrix.tiled.TileBacking` whose payloads
live in the simulated namenode, so the scheduler can ask "which node holds
this tile?" and the cost model can ask "how many bytes does this job read?".

Two storage modes:

* **Object mode** (``codec=None``, the historical default): the live
  :class:`~repro.matrix.tile.Tile` is the namenode payload; reads hand the
  same object back.
* **Codec-at-rest mode** (``codec="zlib1"`` etc.): the namenode holds an
  :class:`~repro.matrix.compression.EncodedTile` blob — tiles are compressed
  at rest like the 2013 system's — and reads must decode.

Codec mode pairs with the **zero-copy fast path**: every ``put`` write-throughs
the decoded tile into a resident table (optionally backed by a shared-memory
:class:`~repro.matrix.arena.TileArena`, so the payload is a read-only view of
mmap-backed pages that other local processes can map by name), and ``get``
serves locally-resident tiles from it without touching the codec.  Only a
genuinely cold read — a tile this process never wrote or already evicted —
pays the decode.  :meth:`read_through_codec` deliberately bypasses the fast
path so tests and audits can prove both paths return equal tiles.

Metrics tell the two paths apart: ``tilestore.fastpath_hits`` counts reads
the fast path absorbed, ``tilestore.codec_decodes``/``codec_encodes`` count
real codec work (also mirrored on :attr:`codec_decodes`/:attr:`codec_encodes`
for registry-free tests).  The namenode-side accounting — file sizes, block
placement, ``tile_bytes``/``matrix_bytes`` — is identical in every mode, so
nothing downstream of the cost model can tell the fast path is there.
"""

from __future__ import annotations

from repro.errors import FileNotFoundInHDFSError, StorageError, ValidationError
from repro.hdfs.namenode import NameNode
from repro.matrix.arena import TileArena
from repro.matrix.compression import (
    Codec,
    EncodedTile,
    available_codecs,
    decode_tile,
    encode_tile,
)
from repro.matrix.tile import Tile, TileId
from repro.matrix.tiled import TileBacking
from repro.observability.metrics import NULL_METRICS, MetricsRegistry


def _resolve_codec(codec: "str | Codec | None") -> Codec | None:
    if codec is None or isinstance(codec, Codec):
        return codec
    try:
        return available_codecs()[codec]
    except KeyError:
        raise ValidationError(
            f"unknown codec {codec!r}; expected one of "
            f"{sorted(available_codecs())}") from None


class TileStore(TileBacking):
    """Tile backing that persists tiles as files in a (simulated) HDFS.

    With a recording :class:`MetricsRegistry`, the store counts tile hits
    and misses, HDFS block reads, and bytes moved — the storage-side
    telemetry behind locality and caching experiments.

    ``codec`` selects codec-at-rest storage (see module docstring);
    ``cache`` (default on) enables the resident fast path in codec mode;
    ``arena`` — ``True`` for a private arena, or a shared
    :class:`~repro.matrix.arena.TileArena` — additionally parks resident
    dense payloads in shared memory and serves reads as zero-copy views.
    """

    def __init__(self, namenode: NameNode, root: str = "/matrices",
                 metrics: MetricsRegistry = NULL_METRICS,
                 codec: "str | Codec | None" = None,
                 cache: bool = True,
                 arena: "TileArena | bool | None" = None):
        self.namenode = namenode
        self.root = root.rstrip("/")
        self.metrics = metrics
        self.codec = _resolve_codec(codec)
        self.cache_enabled = cache
        if arena is True:
            arena = TileArena()
        self.arena: TileArena | None = arena or None
        self._resident: dict[str, Tile] = {}
        #: Codec invocation counters (also mirrored into ``metrics``).
        self.codec_encodes = 0
        self.codec_decodes = 0

    def path_for(self, tile_id: TileId) -> str:
        return f"{self.root}/{tile_id.key()}"

    # -- codec + fast-path internals ---------------------------------------------

    def _encode(self, tile: Tile) -> EncodedTile:
        self.codec_encodes += 1
        if self.metrics.enabled:
            self.metrics.inc("tilestore.codec_encodes")
        return encode_tile(tile, self.codec)

    def _decode(self, encoded: EncodedTile, tile_id: TileId) -> Tile:
        self.codec_decodes += 1
        if self.metrics.enabled:
            self.metrics.inc("tilestore.codec_decodes")
        return decode_tile(encoded, self.codec, tile_id)

    def _make_resident(self, path: str, tile: Tile) -> None:
        """Write-through the fast path: pin ``tile`` for same-process reads."""
        if not self.cache_enabled:
            return
        if self.arena is not None and not tile.is_sparse:
            ref = self.arena.store(tile.data)
            if ref is not None:
                view_tile = Tile(tile.tile_id, self.arena.view(ref))
                view_tile.arena_ref = ref
                self._resident[path] = view_tile
                return
            # Arena full: fall through and pin the in-heap tile instead.
        self._resident[path] = tile

    def _evict(self, path: str) -> None:
        tile = self._resident.pop(path, None)
        if tile is not None and self.arena is not None:
            ref = getattr(tile, "arena_ref", None)
            if ref is not None:
                self.arena.release(ref)

    # -- TileBacking interface ---------------------------------------------------

    def get(self, tile_id: TileId) -> Tile:
        path = self.path_for(tile_id)
        resident = self._resident.get(path)
        if resident is not None:
            if self.metrics.enabled:
                self.metrics.inc("tilestore.fastpath_hits")
                self.metrics.inc("tilestore.hits")
                self.metrics.inc("tilestore.bytes_read", resident.nbytes())
                self.metrics.inc("tilestore.block_reads",
                                 len(self.namenode.block_infos(path)))
            return resident
        try:
            payload = self.namenode.read(path)
        except FileNotFoundInHDFSError:
            if self.metrics.enabled:
                self.metrics.inc("tilestore.misses")
            raise
        if isinstance(payload, EncodedTile):
            tile = self._decode(payload, tile_id)
            self._make_resident(path, tile)
            payload = self._resident.get(path, tile)
        if not isinstance(payload, Tile):
            if self.metrics.enabled:
                self.metrics.inc("tilestore.misses")
            raise StorageError(f"path {path} does not hold a tile")
        if self.metrics.enabled:
            self.metrics.inc("tilestore.hits")
            self.metrics.inc("tilestore.bytes_read", payload.nbytes())
            self.metrics.inc("tilestore.block_reads",
                             len(self.namenode.block_infos(path)))
        return payload

    def read_through_codec(self, tile_id: TileId) -> Tile:
        """Read a tile the slow way: decode the at-rest payload, bypassing
        the resident fast path.  In object mode this is a plain read.  Used
        to verify the fast path returns exactly what the codec would."""
        path = self.path_for(tile_id)
        payload = self.namenode.read(path)
        if isinstance(payload, EncodedTile):
            return self._decode(payload, tile_id)
        if not isinstance(payload, Tile):
            raise StorageError(f"path {path} does not hold a tile")
        return payload

    def put(self, tile: Tile, writer: str | None = None) -> None:
        """Write a tile, replacing any previous version (overwrite-on-put)."""
        path = self.path_for(tile.tile_id)
        self._evict(path)
        if self.namenode.exists(path):
            self.namenode.delete(path)
        if self.codec is not None:
            encoded = self._encode(tile)
            self.namenode.create(path, tile.nbytes(), payload=encoded,
                                 writer=writer)
            # Lossy codecs must pin what a decode would return, not the
            # original — the fast path may never diverge from the blob.
            resident = tile if self.codec.lossless \
                else self._decode(encoded, tile.tile_id)
            self._make_resident(path, resident)
        else:
            self.namenode.create(path, tile.nbytes(), payload=tile,
                                 writer=writer)
        if self.metrics.enabled:
            self.metrics.inc("tilestore.puts")
            self.metrics.inc("tilestore.bytes_written", tile.nbytes())

    def put_virtual(self, tile_id: TileId, nbytes: int,
                    writer: str | None = None) -> None:
        """Create a tile *file* (metadata + placement) without a payload.

        Used by the optimizer's simulations: jobs over terabyte-scale virtual
        matrices need real block placement for locality decisions but no
        actual numbers.
        """
        path = self.path_for(tile_id)
        self._evict(path)
        if self.namenode.exists(path):
            self.namenode.delete(path)
        self.namenode.create(path, nbytes, payload=None, writer=writer)
        if self.metrics.enabled:
            self.metrics.inc("tilestore.virtual_puts")

    # -- storage-aware queries ---------------------------------------------------

    def exists(self, tile_id: TileId) -> bool:
        return self.namenode.exists(self.path_for(tile_id))

    def tile_bytes(self, tile_id: TileId) -> int:
        return self.namenode.file_size(self.path_for(tile_id))

    def replica_nodes(self, tile_id: TileId) -> set[str]:
        """Datanodes holding a full replica of this tile."""
        path = self.path_for(tile_id)
        if self.metrics.enabled:
            self.metrics.inc("tilestore.replica_queries")
        try:
            infos = self.namenode.block_infos(path)
        except FileNotFoundInHDFSError:
            return set()
        if not infos:
            return set()
        nodes = set(infos[0].replicas)
        for info in infos[1:]:
            nodes &= info.replicas
        return nodes

    def matrix_bytes(self, matrix_name: str) -> int:
        """Total stored bytes across every tile of a matrix."""
        prefix = f"{self.root}/{matrix_name}/"
        return sum(self.namenode.file_size(path)
                   for path in self.namenode.list_files(prefix))

    def delete_matrix(self, matrix_name: str) -> int:
        """Delete all tiles of a matrix; returns how many files were removed."""
        prefix = f"{self.root}/{matrix_name}/"
        paths = self.namenode.list_files(prefix)
        for path in paths:
            self._evict(path)
            self.namenode.delete(path)
        return len(paths)

    # -- fast-path lifecycle -----------------------------------------------------

    def resident_tiles(self) -> int:
        """How many tiles the fast path currently pins."""
        return len(self._resident)

    def drop_resident(self) -> int:
        """Evict every resident tile (subsequent reads pay the codec);
        returns how many were dropped.  The arena keeps its segments —
        outstanding views stay valid — but their space becomes garbage."""
        count = len(self._resident)
        for path in list(self._resident):
            self._evict(path)
        return count

    def close(self) -> None:
        """Drop resident tiles and release the arena's shared memory."""
        self.drop_resident()
        if self.arena is not None:
            self.arena.close()
