"""TileStore: matrices as HDFS directories of tile files.

Cumulon stores each matrix as an HDFS directory with one file per tile.  A
:class:`TileStore` is a :class:`repro.matrix.tiled.TileBacking` whose payloads
live in the simulated namenode, so the scheduler can ask "which node holds
this tile?" and the cost model can ask "how many bytes does this job read?".
"""

from __future__ import annotations

from repro.errors import FileNotFoundInHDFSError, StorageError
from repro.hdfs.namenode import NameNode
from repro.matrix.tile import Tile, TileId
from repro.matrix.tiled import TileBacking
from repro.observability.metrics import NULL_METRICS, MetricsRegistry


class TileStore(TileBacking):
    """Tile backing that persists tiles as files in a (simulated) HDFS.

    With a recording :class:`MetricsRegistry`, the store counts tile hits
    and misses, HDFS block reads, and bytes moved — the storage-side
    telemetry behind locality and caching experiments.
    """

    def __init__(self, namenode: NameNode, root: str = "/matrices",
                 metrics: MetricsRegistry = NULL_METRICS):
        self.namenode = namenode
        self.root = root.rstrip("/")
        self.metrics = metrics

    def path_for(self, tile_id: TileId) -> str:
        return f"{self.root}/{tile_id.key()}"

    # -- TileBacking interface ---------------------------------------------------

    def get(self, tile_id: TileId) -> Tile:
        path = self.path_for(tile_id)
        try:
            payload = self.namenode.read(path)
        except FileNotFoundInHDFSError:
            if self.metrics.enabled:
                self.metrics.inc("tilestore.misses")
            raise
        if not isinstance(payload, Tile):
            if self.metrics.enabled:
                self.metrics.inc("tilestore.misses")
            raise StorageError(f"path {path} does not hold a tile")
        if self.metrics.enabled:
            self.metrics.inc("tilestore.hits")
            self.metrics.inc("tilestore.bytes_read", payload.nbytes())
            self.metrics.inc("tilestore.block_reads",
                             len(self.namenode.block_infos(path)))
        return payload

    def put(self, tile: Tile, writer: str | None = None) -> None:
        """Write a tile, replacing any previous version (overwrite-on-put)."""
        path = self.path_for(tile.tile_id)
        if self.namenode.exists(path):
            self.namenode.delete(path)
        self.namenode.create(path, tile.nbytes(), payload=tile, writer=writer)
        if self.metrics.enabled:
            self.metrics.inc("tilestore.puts")
            self.metrics.inc("tilestore.bytes_written", tile.nbytes())

    def put_virtual(self, tile_id: TileId, nbytes: int,
                    writer: str | None = None) -> None:
        """Create a tile *file* (metadata + placement) without a payload.

        Used by the optimizer's simulations: jobs over terabyte-scale virtual
        matrices need real block placement for locality decisions but no
        actual numbers.
        """
        path = self.path_for(tile_id)
        if self.namenode.exists(path):
            self.namenode.delete(path)
        self.namenode.create(path, nbytes, payload=None, writer=writer)
        if self.metrics.enabled:
            self.metrics.inc("tilestore.virtual_puts")

    # -- storage-aware queries ---------------------------------------------------

    def exists(self, tile_id: TileId) -> bool:
        return self.namenode.exists(self.path_for(tile_id))

    def tile_bytes(self, tile_id: TileId) -> int:
        return self.namenode.file_size(self.path_for(tile_id))

    def replica_nodes(self, tile_id: TileId) -> set[str]:
        """Datanodes holding a full replica of this tile."""
        path = self.path_for(tile_id)
        if self.metrics.enabled:
            self.metrics.inc("tilestore.replica_queries")
        try:
            infos = self.namenode.block_infos(path)
        except FileNotFoundInHDFSError:
            return set()
        if not infos:
            return set()
        nodes = set(infos[0].replicas)
        for info in infos[1:]:
            nodes &= info.replicas
        return nodes

    def matrix_bytes(self, matrix_name: str) -> int:
        """Total stored bytes across every tile of a matrix."""
        prefix = f"{self.root}/{matrix_name}/"
        return sum(self.namenode.file_size(path)
                   for path in self.namenode.list_files(prefix))

    def delete_matrix(self, matrix_name: str) -> int:
        """Delete all tiles of a matrix; returns how many files were removed."""
        prefix = f"{self.root}/{matrix_name}/"
        paths = self.namenode.list_files(prefix)
        for path in paths:
            self.namenode.delete(path)
        return len(paths)
