"""HDFS block metadata.

An HDFS file is a sequence of blocks; each block is replicated on several
datanodes.  Tiles are small relative to the 64 MB block size Cumulon used, so
in this simulation each tile file occupies exactly one block whose size equals
the tile's serialized size (capped at ``DEFAULT_BLOCK_SIZE``; larger payloads
split into multiple blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError

#: Default HDFS block size (64 MB, the Hadoop 1.x default Cumulon ran on).
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024

#: Default replication factor.
DEFAULT_REPLICATION = 3


@dataclass(frozen=True)
class BlockId:
    """Globally unique block identifier within a namenode."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValidationError(f"block id must be non-negative, got {self.value}")


@dataclass
class BlockInfo:
    """Metadata for one block: size and the datanodes holding replicas."""

    block_id: BlockId
    size: int
    replicas: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValidationError(f"block size must be non-negative, got {self.size}")

    @property
    def replication(self) -> int:
        return len(self.replicas)


def split_into_block_sizes(total_bytes: int,
                           block_size: int = DEFAULT_BLOCK_SIZE) -> list[int]:
    """Sizes of the blocks a file of ``total_bytes`` occupies."""
    if total_bytes < 0:
        raise ValidationError(f"file size must be non-negative, got {total_bytes}")
    if block_size <= 0:
        raise ValidationError(f"block size must be positive, got {block_size}")
    if total_bytes == 0:
        return [0]
    sizes = []
    remaining = total_bytes
    while remaining > 0:
        chunk = min(block_size, remaining)
        sizes.append(chunk)
        remaining -= chunk
    return sizes
