"""Simulated HDFS: namenode, datanodes, placement, and the tile store."""

from repro.hdfs.blocks import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_REPLICATION,
    BlockId,
    BlockInfo,
    split_into_block_sizes,
)
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import FileEntry, NameNode
from repro.hdfs.placement import DefaultPlacement, PlacementPolicy
from repro.hdfs.tilestore import TileStore

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_REPLICATION",
    "BlockId",
    "BlockInfo",
    "DataNode",
    "DefaultPlacement",
    "FileEntry",
    "NameNode",
    "PlacementPolicy",
    "TileStore",
    "split_into_block_sizes",
]
