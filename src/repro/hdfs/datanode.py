"""Datanodes: per-node block storage with a capacity budget."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError, ValidationError
from repro.hdfs.blocks import BlockId


@dataclass
class DataNode:
    """One storage node.  ``name`` doubles as the cluster hostname;
    ``rack`` places it in the network topology (rack-aware placement)."""

    name: str
    capacity_bytes: int
    rack: str = "default"
    _blocks: dict[BlockId, int] = field(default_factory=dict)
    _used: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("datanode name must be non-empty")
        if self.capacity_bytes <= 0:
            raise ValidationError(
                f"datanode capacity must be positive, got {self.capacity_bytes}"
            )

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def holds(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def block_ids(self) -> set[BlockId]:
        return set(self._blocks)

    def store(self, block_id: BlockId, size: int) -> None:
        """Accept a replica of ``block_id``; raises when out of space."""
        if self.holds(block_id):
            raise StorageError(
                f"datanode {self.name} already holds block {block_id.value}"
            )
        if size > self.free_bytes:
            raise StorageError(
                f"datanode {self.name} has {self.free_bytes} bytes free, "
                f"cannot store {size}-byte block {block_id.value}"
            )
        self._blocks[block_id] = size
        self._used += size

    def evict(self, block_id: BlockId) -> None:
        """Drop a replica (e.g. on file delete or rebalancing)."""
        try:
            size = self._blocks.pop(block_id)
        except KeyError:
            raise StorageError(
                f"datanode {self.name} does not hold block {block_id.value}"
            ) from None
        self._used -= size
