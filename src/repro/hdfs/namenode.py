"""The namenode: file namespace, block map, and replica management.

This is a metadata-faithful simulation of HDFS: files map to blocks, blocks
map to replica locations, and every byte of capacity is accounted for on the
datanodes.  Payload *contents* are stored in a side table keyed by path
(rather than shipped around), which keeps the simulation cheap while letting
read-after-write tests verify real data round-trips.

Like real HDFS, replication is *eventually* restored: losing a datanode
never fails the namespace.  Blocks that cannot reach their target
replication (no spare capacity, too few nodes) are tracked as
under-replicated and healed opportunistically when capacity returns —
a new datanode registers, or a delete frees space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    FileExistsInHDFSError,
    FileNotFoundInHDFSError,
    ReplicationError,
    ValidationError,
)
from repro.hdfs.blocks import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_REPLICATION,
    BlockId,
    BlockInfo,
    split_into_block_sizes,
)
from repro.hdfs.datanode import DataNode
from repro.hdfs.placement import DefaultPlacement, PlacementPolicy


@dataclass
class FileEntry:
    """Namespace entry: ordered blocks plus the (simulated) payload."""

    path: str
    blocks: list[BlockId] = field(default_factory=list)
    payload: object = None

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


class NameNode:
    """Single-namenode HDFS metadata service."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = DEFAULT_REPLICATION,
                 placement: PlacementPolicy | None = None):
        if block_size <= 0:
            raise ValidationError(f"block size must be positive, got {block_size}")
        if replication <= 0:
            raise ValidationError(f"replication must be positive, got {replication}")
        self.block_size = block_size
        self.replication = replication
        self.placement = placement if placement is not None else DefaultPlacement()
        self._datanodes: dict[str, DataNode] = {}
        self._files: dict[str, FileEntry] = {}
        self._blocks: dict[BlockId, BlockInfo] = {}
        self._next_block = 0
        #: Blocks below target replication, awaiting capacity to heal.
        self._under_replicated: set[BlockId] = set()

    # -- cluster membership ---------------------------------------------------

    def register_datanode(self, node: DataNode) -> None:
        if node.name in self._datanodes:
            raise ValidationError(f"datanode {node.name!r} already registered")
        self._datanodes[node.name] = node
        if self._under_replicated:
            self.heal()

    def has_datanode(self, name: str) -> bool:
        return name in self._datanodes

    def datanodes(self) -> list[DataNode]:
        return list(self._datanodes.values())

    def decommission(self, name: str) -> int:
        """Remove a datanode, re-replicating its blocks elsewhere.

        Returns the number of bytes copied to restore replication (the
        traffic a simulator should bill).  Blocks that cannot be fully
        restored — no spare node with capacity — are recorded as
        under-replicated rather than raising; they heal opportunistically
        when capacity returns.  Losing the *last* replica of a block is
        still an error: the data is gone, not merely under-replicated.
        """
        try:
            node = self._datanodes.pop(name)
        except KeyError:
            raise ValidationError(f"unknown datanode {name!r}") from None
        copied = 0
        for block_id in sorted(node.block_ids(), key=lambda b: b.value):
            info = self._blocks[block_id]
            info.replicas.discard(name)
            node.evict(block_id)
            if not info.replicas:
                raise ReplicationError(
                    f"block {info.block_id.value} lost its last replica "
                    f"with datanode {name!r}"
                )
            copied += self._restore_replication(info)
        return copied

    def under_replicated(self) -> list[BlockInfo]:
        """Blocks currently below their target replication, by block id."""
        return [self._blocks[block_id]
                for block_id in sorted(self._under_replicated,
                                       key=lambda b: b.value)]

    def heal(self) -> int:
        """Try to restore replication of every under-replicated block.

        Returns the bytes copied.  Called automatically when a datanode
        registers; safe to call any time.
        """
        copied = 0
        for block_id in sorted(self._under_replicated,
                               key=lambda b: b.value):
            copied += self._restore_replication(self._blocks[block_id])
        return copied

    def _restore_replication(self, info: BlockInfo) -> int:
        """Copy ``info`` toward target replication; never raises on a
        capacity shortfall — the block is tracked as under-replicated
        instead.  Returns bytes copied."""
        target = min(self.replication, len(self._datanodes))
        copied = 0
        while info.replication < target:
            holders = info.replicas
            spare = [node for node in self._datanodes.values()
                     if node.name not in holders and node.free_bytes >= info.size]
            if not spare:
                self._under_replicated.add(info.block_id)
                return copied
            spare.sort(key=lambda node: (node.used_bytes, node.name))
            chosen = spare[0]
            chosen.store(info.block_id, info.size)
            info.replicas.add(chosen.name)
            copied += info.size
        self._under_replicated.discard(info.block_id)
        return copied

    # -- namespace operations ---------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self, prefix: str = "") -> list[str]:
        return sorted(path for path in self._files if path.startswith(prefix))

    def create(self, path: str, size: int, payload: object = None,
               writer: str | None = None) -> FileEntry:
        """Create a file of ``size`` bytes, allocating and placing its blocks."""
        if not path:
            raise ValidationError("path must be non-empty")
        if self.exists(path):
            raise FileExistsInHDFSError(f"path already exists: {path}")
        if not self._datanodes:
            raise ReplicationError("no datanodes registered")
        entry = FileEntry(path=path, payload=payload)
        target = min(self.replication, len(self._datanodes))
        for chunk in split_into_block_sizes(size, self.block_size):
            block_id = BlockId(self._next_block)
            self._next_block += 1
            info = BlockInfo(block_id, chunk)
            nodes = self.placement.choose(self.datanodes(), chunk, target, writer)
            for node in nodes:
                node.store(block_id, chunk)
                info.replicas.add(node.name)
            if len(nodes) < target:
                self._under_replicated.add(block_id)
            self._blocks[block_id] = info
            entry.blocks.append(block_id)
        self._files[path] = entry
        return entry

    def delete(self, path: str) -> None:
        try:
            entry = self._files.pop(path)
        except KeyError:
            raise FileNotFoundInHDFSError(f"no such file: {path}") from None
        for block_id in entry.blocks:
            info = self._blocks.pop(block_id)
            self._under_replicated.discard(block_id)
            for holder in info.replicas:
                node = self._datanodes.get(holder)
                if node is not None:
                    node.evict(block_id)
        if self._under_replicated:
            self.heal()  # the freed capacity may unblock pending copies

    def read(self, path: str) -> object:
        """Return the payload stored at ``path``."""
        return self._entry(path).payload

    def file_size(self, path: str) -> int:
        entry = self._entry(path)
        return sum(self._blocks[block_id].size for block_id in entry.blocks)

    def block_infos(self, path: str) -> list[BlockInfo]:
        entry = self._entry(path)
        return [self._blocks[block_id] for block_id in entry.blocks]

    def replica_nodes(self, path: str) -> set[str]:
        """Union of datanode names holding any block of the file."""
        nodes: set[str] = set()
        for info in self.block_infos(path):
            nodes |= info.replicas
        return nodes

    def is_local(self, path: str, node_name: str) -> bool:
        """True when every block of ``path`` has a replica on ``node_name``."""
        infos = self.block_infos(path)
        return all(node_name in info.replicas for info in infos)

    def total_used_bytes(self) -> int:
        return sum(node.used_bytes for node in self._datanodes.values())

    def _entry(self, path: str) -> FileEntry:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInHDFSError(f"no such file: {path}") from None
