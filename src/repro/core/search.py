"""The unified deployment-search facade: one spec, one ``search()``.

The optimizer grew four imperative entry points — price one deployment
(``evaluate``), price it across failure scenarios (``evaluate_reliable``),
and the two grid solvers (``minimize_cost_under_deadline`` and its
``_reliable`` variant).  Each hard-coded one combination of objective,
constraint, and reliability handling, and none of them could say *how* to
search.  This module collapses them behind a declarative
:class:`SearchSpec`: what to optimize (``objective``), under which
constraint (``deadline_seconds`` / ``budget_dollars``), over which grid
(``space``), with which failure model (``reliability``), and — the new
axis — by which ``method``: the exhaustive grid scan, or the
surrogate-guided search from :mod:`repro.core.surrogate` that prices only
a fraction of the grid.

The old entry points keep working as deprecation shims (see
:mod:`repro.core.compat`) and return bit-identical results; new code goes
through ``search(optimizer, spec)`` and gets a :class:`SearchResult`
carrying the chosen plan, the reliability stress-test when one ran, the
three-objective reliability frontier the surrogate explored, and the
:class:`~repro.observability.search.SearchStats` for the whole search —
including ``simulations_avoided``, the surrogate's headline number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.instances import ClusterSpec
from repro.core.compiler import CompilerParams
from repro.core.optimizer import (
    DeploymentOptimizer,
    ReliabilityModel,
    ReliablePlan,
    SearchSpace,
)
from repro.core.plans import DeploymentPlan
from repro.core.surrogate import (
    SurrogateConfig,
    reliability_frontier,
    surrogate_minimize_cost_under_deadline,
    surrogate_minimize_time_under_budget,
)
from repro.errors import ValidationError
from repro.observability.search import SearchStats

#: Minimize dollar cost subject to a wall-clock deadline.
OBJECTIVE_MIN_COST = "min-cost"
#: Minimize wall-clock time subject to a dollar budget.
OBJECTIVE_MIN_TIME = "min-time"
#: Price one fixed deployment (no search).
OBJECTIVE_EVALUATE = "evaluate"
OBJECTIVES = (OBJECTIVE_MIN_COST, OBJECTIVE_MIN_TIME, OBJECTIVE_EVALUATE)

#: Scan the full type x count x slots grid (the ground-truth oracle).
METHOD_EXHAUSTIVE = "exhaustive"
#: Model-guided search pricing a fraction of the grid.
METHOD_SURROGATE = "surrogate"
METHODS = (METHOD_EXHAUSTIVE, METHOD_SURROGATE)


@dataclass(frozen=True)
class SearchSpec:
    """Declarative description of one deployment search.

    Exactly one constraint accompanies each objective: ``min-cost`` needs
    ``deadline_seconds``, ``min-time`` needs ``budget_dollars``, and
    ``evaluate`` needs a fixed ``cluster`` plus ``compiler_params``
    (it prices that single deployment instead of searching).  The
    optional ``reliability`` block switches the search to the
    scenario-stress-tested solvers; ``method`` picks between the
    exhaustive grid and the surrogate-guided search (``surrogate`` tunes
    the latter and is only legal with it).
    """

    objective: str = OBJECTIVE_MIN_COST
    method: str = METHOD_EXHAUSTIVE
    deadline_seconds: float | None = None
    budget_dollars: float | None = None
    space: SearchSpace | None = None
    cluster: ClusterSpec | None = None
    compiler_params: CompilerParams | None = None
    tile_size: int | None = None
    reliability: ReliabilityModel | None = None
    surrogate: SurrogateConfig | None = None

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValidationError(
                f"objective must be one of {OBJECTIVES}, "
                f"got {self.objective!r}")
        if self.method not in METHODS:
            raise ValidationError(
                f"method must be one of {METHODS}, got {self.method!r}")
        if self.surrogate is not None and self.method != METHOD_SURROGATE:
            raise ValidationError(
                "a surrogate config needs method=\"surrogate\"")
        if self.objective == OBJECTIVE_MIN_COST:
            if self.deadline_seconds is None:
                raise ValidationError(
                    "objective \"min-cost\" needs deadline_seconds")
            if self.budget_dollars is not None:
                raise ValidationError(
                    "objective \"min-cost\" takes no budget_dollars "
                    "(use objective \"min-time\")")
            self._reject_fixed_deployment()
        elif self.objective == OBJECTIVE_MIN_TIME:
            if self.budget_dollars is None:
                raise ValidationError(
                    "objective \"min-time\" needs budget_dollars")
            if self.deadline_seconds is not None:
                raise ValidationError(
                    "objective \"min-time\" takes no deadline_seconds "
                    "(use objective \"min-cost\")")
            if self.reliability is not None:
                raise ValidationError(
                    "objective \"min-time\" has no reliability-aware "
                    "solver yet; drop the reliability block")
            self._reject_fixed_deployment()
        else:  # evaluate
            if self.cluster is None or self.compiler_params is None:
                raise ValidationError(
                    "objective \"evaluate\" needs cluster and "
                    "compiler_params")
            if self.deadline_seconds is not None \
                    or self.budget_dollars is not None:
                raise ValidationError(
                    "objective \"evaluate\" prices one fixed deployment; "
                    "it takes no deadline or budget")
            if self.method != METHOD_EXHAUSTIVE:
                raise ValidationError(
                    "objective \"evaluate\" prices one fixed deployment; "
                    "method does not apply")

    def _reject_fixed_deployment(self) -> None:
        if self.cluster is not None or self.compiler_params is not None:
            raise ValidationError(
                f"objective {self.objective!r} searches the grid; "
                f"cluster/compiler_params only apply to \"evaluate\"")


@dataclass
class SearchResult:
    """What one ``search()`` call found.

    ``plan`` is always the failure-free deployment plan; ``reliable``
    carries the scenario stress-test when the spec had a reliability
    block.  ``reliable_frontier`` is the three-objective Pareto skyline
    (p95 time, mean cost, completion rate) over the reliable candidates
    the surrogate stress-tested — empty for exhaustive searches, which
    do not retain per-candidate scenario pricings.
    """

    plan: DeploymentPlan
    stats: SearchStats
    objective: str
    method: str
    reliable: ReliablePlan | None = None
    reliable_frontier: list[ReliablePlan] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-shaped summary (the CLI's ``--json`` building block)."""
        plan = self.plan
        document = {
            "objective": self.objective,
            "method": self.method,
            "instance_type": plan.spec.instance_type.name,
            "num_nodes": plan.spec.num_nodes,
            "slots_per_node": plan.spec.slots_per_node,
            "estimated_seconds": plan.estimated_seconds,
            "estimated_cost": plan.estimated_cost,
            "stats": self.stats.to_dict(),
        }
        if self.reliable is not None:
            document["reliable"] = {
                "completion_rate": self.reliable.completion_rate,
                "mean_seconds": self.reliable.mean_seconds,
                "p95_seconds": self.reliable.p95_seconds,
                "mean_cost": self.reliable.mean_cost,
                "scenarios": len(self.reliable.scenario_seconds),
            }
        return document


def search(optimizer: DeploymentOptimizer, spec: SearchSpec) -> SearchResult:
    """Run one declarative deployment search on ``optimizer``.

    Dispatches to the solver the spec describes and normalizes the
    result: whatever the combination of objective, constraint,
    reliability, and method, the caller gets the same
    :class:`SearchResult` shape back.  Solver behavior is identical to
    the legacy entry points — the exhaustive paths *are* the legacy
    solvers, minus the deprecation warning.

    Raises :class:`~repro.errors.InfeasibleConstraintError` when no
    deployment in the grid satisfies the constraint (both methods price
    the full grid before concluding that).
    """
    if spec.objective == OBJECTIVE_EVALUATE:
        return _evaluate(optimizer, spec)
    if spec.method == METHOD_SURROGATE:
        return _surrogate_search(optimizer, spec)
    return _exhaustive_search(optimizer, spec)


def _evaluate(optimizer: DeploymentOptimizer, spec: SearchSpec
              ) -> SearchResult:
    """Price the fixed deployment a spec with ``objective="evaluate"``."""
    baseline = optimizer._begin_search()
    reliable = None
    try:
        if spec.reliability is not None:
            reliable = optimizer._evaluate_reliable(
                spec.cluster, spec.compiler_params, spec.reliability,
                spec.tile_size)
            plan = reliable.plan
        else:
            plan = optimizer._evaluate(spec.cluster, spec.compiler_params,
                                       spec.tile_size)
    finally:
        stats = optimizer._finish_search(baseline)
    return SearchResult(plan=plan, stats=stats, objective=spec.objective,
                        method=spec.method, reliable=reliable)


def _exhaustive_search(optimizer: DeploymentOptimizer, spec: SearchSpec
                       ) -> SearchResult:
    reliable = None
    if spec.objective == OBJECTIVE_MIN_TIME:
        plan = optimizer.minimize_time_under_budget(
            spec.budget_dollars, spec.space)
    elif spec.reliability is not None:
        reliable = optimizer._minimize_cost_under_deadline_reliable(
            spec.deadline_seconds, spec.reliability, spec.space)
        plan = reliable.plan
    else:
        plan = optimizer._minimize_cost_under_deadline(
            spec.deadline_seconds, spec.space)
    assert optimizer.last_search_stats is not None
    return SearchResult(plan=plan, stats=optimizer.last_search_stats,
                        objective=spec.objective, method=spec.method,
                        reliable=reliable)


def _surrogate_search(optimizer: DeploymentOptimizer, spec: SearchSpec
                      ) -> SearchResult:
    if spec.objective == OBJECTIVE_MIN_TIME:
        outcome = surrogate_minimize_time_under_budget(
            optimizer, spec.budget_dollars, spec.space,
            config=spec.surrogate)
    else:
        outcome = surrogate_minimize_cost_under_deadline(
            optimizer, spec.deadline_seconds, spec.space,
            reliability=spec.reliability, config=spec.surrogate)
    assert optimizer.last_search_stats is not None
    return SearchResult(
        plan=outcome.plan, stats=optimizer.last_search_stats,
        objective=spec.objective, method=spec.method,
        reliable=outcome.reliable,
        reliable_frontier=reliability_frontier(outcome.reliable_candidates))
