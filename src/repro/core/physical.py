"""Physical operators: Cumulon's map-only multi-input job templates.

Two templates cover all of the paper's workloads:

**Fused element-wise job** — a chain/tree of element-wise, scalar, and
transpose operators collapses into one map-only job.  Each map task owns a
chunk of output tile positions; for each position it reads the matching tile
of every input matrix (transposing indices where needed), evaluates the fused
kernel once, and writes the output tile.  One pass over the data regardless
of how many logical operators were fused — this is where Cumulon beats
one-job-per-operator MapReduce plans.

**Tiled matrix multiply** — ``C = A @ B`` parameterized by
:class:`MatMulParams`: each *mult* task computes the partial products of a
``ci x cj`` block of C tiles over one of ``k_splits`` segments of the inner
dimension.  With ``k_splits == 1`` the mult job writes C directly; otherwise
a second map-only *add* job sums the partials.  The parameters trade
task-count (scheduling overhead, ragged waves) against input re-reading and
per-task memory — the trade-off experiment E2 sweeps.

Every task carries a declarative :class:`~repro.hadoop.task.TaskWork` (bytes,
flops) so the simulator can price it, and optionally a ``run`` closure doing
the real tile math so the local executor can execute it.  Both are built from
the same description.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CompilationError, ShapeError, ValidationError
from repro.hadoop import kernels
from repro.hadoop.job import Job, JobKind
from repro.hadoop.task import TaskWork, make_map_task
from repro.hdfs.tilestore import TileStore
from repro.matrix.tile import (
    DENSE_ELEMENT_BYTES,
    SPARSE_ELEMENT_BYTES,
    SPARSE_THRESHOLD,
    TileId,
    matmul_flops,
    tile_matmul,
)
from repro.matrix.tiled import TileBacking, TileGrid, TiledMatrix


@dataclass(frozen=True)
class MatrixInfo:
    """Descriptor of a stored (or to-be-stored) tiled matrix.

    ``bytes_scale`` models storage compression: a measured compressed/raw
    ratio (see :func:`repro.matrix.compression.compression_report`) applied
    to every tile's serialized size.
    """

    name: str
    grid: TileGrid
    density: float = 1.0
    bytes_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.density <= 1.0:
            raise ValidationError(f"density must be in [0, 1], got {self.density}")
        if self.bytes_scale <= 0:
            raise ValidationError(
                f"bytes_scale must be positive, got {self.bytes_scale}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return self.grid.shape

    def tile_bytes(self, tile_row: int, tile_col: int) -> int:
        """Estimated serialized size of one tile, given density/compression."""
        rows, cols = self.grid.tile_shape(tile_row, tile_col)
        if self.density >= SPARSE_THRESHOLD:
            raw = rows * cols * DENSE_ELEMENT_BYTES
        else:
            nnz = int(rows * cols * self.density)
            raw = nnz * SPARSE_ELEMENT_BYTES
        return max(64, int(raw * self.bytes_scale))

    def total_bytes(self) -> int:
        return sum(self.tile_bytes(row, col)
                   for row, col in self.grid.positions())


@dataclass(frozen=True)
class Operand:
    """A matrix input with an optional logical transpose."""

    info: MatrixInfo
    transposed: bool = False

    @property
    def shape(self) -> tuple[int, int]:
        rows, cols = self.info.shape
        return (cols, rows) if self.transposed else (rows, cols)

    @property
    def tile_rows(self) -> int:
        grid = self.info.grid
        return grid.tile_cols if self.transposed else grid.tile_rows

    @property
    def tile_cols(self) -> int:
        grid = self.info.grid
        return grid.tile_rows if self.transposed else grid.tile_cols

    def stored_position(self, tile_row: int, tile_col: int) -> tuple[int, int]:
        """Map a logical tile position to the stored tile position."""
        return (tile_col, tile_row) if self.transposed else (tile_row, tile_col)

    def tile_id(self, tile_row: int, tile_col: int) -> TileId:
        stored_row, stored_col = self.stored_position(tile_row, tile_col)
        return TileId(self.info.name, stored_row, stored_col)

    def tile_bytes(self, tile_row: int, tile_col: int) -> int:
        stored_row, stored_col = self.stored_position(tile_row, tile_col)
        return self.info.tile_bytes(stored_row, stored_col)


@dataclass(frozen=True)
class MatMulParams:
    """Granularity knobs of the tiled multiply (Cumulon's split factors)."""

    tiles_per_task_i: int = 1
    tiles_per_task_j: int = 1
    k_splits: int = 1

    def __post_init__(self) -> None:
        if min(self.tiles_per_task_i, self.tiles_per_task_j, self.k_splits) < 1:
            raise ValidationError(f"matmul parameters must be >= 1: {self}")


@dataclass(frozen=True)
class ElementwiseParams:
    """Output tiles handled by one map task of a fused element-wise job."""

    tiles_per_task: int = 4

    def __post_init__(self) -> None:
        if self.tiles_per_task < 1:
            raise ValidationError(
                f"tiles_per_task must be >= 1, got {self.tiles_per_task}"
            )


class FusedKernel:
    """An element-wise computation over K broadcast-aligned operands.

    ``fn`` receives one dense ndarray per operand (already transposed as
    needed) and returns the output ndarray.  ``n_operators`` counts the fused
    logical operators, used for flop accounting.  Operands whose shape is 1
    along a dimension broadcast along it (row/column vectors, scalars), with
    numpy doing the within-tile stretching.
    """

    def __init__(self, operands: list[Operand], fn, n_operators: int,
                 label: str = "", shape: tuple[int, int] | None = None):
        if not operands:
            raise CompilationError("fused kernel needs at least one operand")
        if shape is None:
            shape = operands[0].shape
            for operand in operands[1:]:
                shape = _broadcast(shape, operand.shape)
        self._shape = shape
        for operand in operands:
            for out_dim, op_dim in zip(shape, operand.shape):
                if op_dim != out_dim and op_dim != 1:
                    raise ShapeError(
                        f"operand shape {operand.shape} does not broadcast "
                        f"to kernel shape {shape}"
                    )
        self.operands = operands
        self.fn = fn
        self.n_operators = max(1, n_operators)
        self.label = label

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape


def _broadcast(left: tuple[int, int],
               right: tuple[int, int]) -> tuple[int, int]:
    dims = []
    for left_dim, right_dim in zip(left, right):
        if left_dim == right_dim or right_dim == 1:
            dims.append(left_dim)
        elif left_dim == 1:
            dims.append(right_dim)
        else:
            raise ShapeError(
                f"shapes {left} and {right} are not broadcastable"
            )
    return (dims[0], dims[1])


def broadcast_position(operand: Operand, tile_row: int,
                       tile_col: int) -> tuple[int, int]:
    """Logical tile position of ``operand`` feeding output tile (row, col):
    broadcast dimensions always read tile index 0."""
    row = tile_row if operand.tile_rows > 1 else 0
    col = tile_col if operand.tile_cols > 1 else 0
    return (row, col)


class PhysicalContext:
    """Everything job builders need to know about the target environment."""

    def __init__(self, tile_size: int,
                 backing: TileBacking | None = None,
                 attach_run: bool = False):
        if tile_size <= 0:
            raise ValidationError(f"tile size must be positive, got {tile_size}")
        if attach_run and backing is None:
            raise ValidationError("attach_run requires a tile backing")
        self.tile_size = tile_size
        self.backing = backing
        self.attach_run = attach_run

    # -- storage helpers ---------------------------------------------------------

    def preferred_nodes(self, tile_ids: list[TileId]) -> frozenset[str]:
        """Nodes holding replicas of *all* the given tiles (for locality)."""
        if not isinstance(self.backing, TileStore) or not tile_ids:
            return frozenset()
        nodes: set[str] | None = None
        for tile_id in tile_ids:
            replicas = self.backing.replica_nodes(tile_id)
            nodes = replicas if nodes is None else nodes & replicas
            if not nodes:
                return frozenset()
        return frozenset(nodes or ())

    def read_tile(self, tile_id: TileId):
        return self.backing.get(tile_id)

    def write_tile(self, output: TiledMatrix, tile_row: int, tile_col: int,
                   payload) -> None:
        output.put_tile(tile_row, tile_col, payload)


def _chunk_ranges(total: int, per_chunk: int):
    """Yield (start, stop) covering range(total) in per_chunk-sized pieces."""
    for start in range(0, total, per_chunk):
        yield (start, min(total, start + per_chunk))


# ---------------------------------------------------------------------------
# Fused element-wise job.
# ---------------------------------------------------------------------------

def build_elementwise_job(job_id: str, kernel: FusedKernel,
                          output: MatrixInfo, context: PhysicalContext,
                          params: ElementwiseParams,
                          depends_on: set[str] | None = None,
                          output_matrix: TiledMatrix | None = None) -> Job:
    """One map-only job evaluating ``kernel`` tile-by-tile into ``output``."""
    if kernel.shape != output.shape:
        raise ShapeError(
            f"kernel shape {kernel.shape} != output shape {output.shape}"
        )
    grid = output.grid
    positions = list(grid.positions())
    tasks = []
    for index, (start, stop) in enumerate(
            _chunk_ranges(len(positions), params.tiles_per_task)):
        chunk = positions[start:stop]
        input_ids = [operand.tile_id(*broadcast_position(operand, row, col))
                     for row, col in chunk for operand in kernel.operands]
        tile_elements = context.tile_size * context.tile_size
        work = TaskWork(
            bytes_read=sum(
                operand.tile_bytes(*broadcast_position(operand, row, col))
                for row, col in chunk
                for operand in kernel.operands),
            bytes_written=sum(output.tile_bytes(row, col) for row, col in chunk),
            element_ops=sum(rows * cols * kernel.n_operators
                            for rows, cols in (grid.tile_shape(row, col)
                                               for row, col in chunk)),
            tile_ops=len(chunk) * (len(kernel.operands) + 2),
            memory_bytes=(len(kernel.operands) + 1)
                         * tile_elements * DENSE_ELEMENT_BYTES,
        )
        run = None
        if context.attach_run:
            run = _elementwise_runner(kernel, chunk, context, output_matrix)
        tasks.append(make_map_task(
            task_id=f"{job_id}-m{index}",
            work=work,
            preferred_nodes=context.preferred_nodes(input_ids),
            run=run,
            label=f"{kernel.label or 'ew'} tiles[{start}:{stop}]",
        ))
    return Job(job_id, JobKind.MAP_ONLY, tasks,
               depends_on=set(depends_on or ()),
               label=kernel.label or f"elementwise -> {output.name}")


def _elementwise_runner(kernel: FusedKernel, chunk, context: PhysicalContext,
                        output_matrix: TiledMatrix):
    if output_matrix is None:
        raise CompilationError("attach_run requires the output TiledMatrix")

    def run() -> None:
        for row, col in chunk:
            payloads = []
            for operand in kernel.operands:
                position = broadcast_position(operand, row, col)
                tile = context.read_tile(operand.tile_id(*position))
                dense = tile.to_dense()
                payloads.append(dense.T if operand.transposed else dense)
            # numpy broadcasting stretches vector payloads within the tile.
            result = kernel.fn(*payloads)
            context.write_tile(output_matrix, row, col, result)

    return run


# ---------------------------------------------------------------------------
# Tiled matrix multiply: mult job (+ optional add job).
# ---------------------------------------------------------------------------

def partial_name(output_name: str, segment: int) -> str:
    """Name of the partial-product matrix for one inner-dimension segment."""
    return f"{output_name}#part{segment}"


@dataclass
class MatMulJobs:
    """Result of planning one multiply: 1 or 2 jobs plus the output info."""

    mult_job: Job
    add_job: Job | None
    output: MatrixInfo

    def jobs(self) -> list[Job]:
        return [self.mult_job] + ([self.add_job] if self.add_job else [])


def estimate_task_memory_bytes(left: Operand, right: Operand,
                               params: MatMulParams, tile_size: int) -> int:
    """Peak dense working-set of one mult task (inputs + accumulators)."""
    k_tiles = left.tile_cols
    seg = math.ceil(k_tiles / params.k_splits)
    tiles_held = (params.tiles_per_task_i * seg
                  + seg * params.tiles_per_task_j
                  + params.tiles_per_task_i * params.tiles_per_task_j)
    return tiles_held * tile_size * tile_size * DENSE_ELEMENT_BYTES


def build_matmul_jobs(job_id: str, left: Operand, right: Operand,
                      output_name: str, context: PhysicalContext,
                      params: MatMulParams,
                      depends_on: set[str] | None = None,
                      output_density: float = 1.0) -> MatMulJobs:
    """Plan ``output = left @ right`` with the given split parameters."""
    if left.shape[1] != right.shape[0]:
        raise ShapeError(
            f"cannot multiply shapes {left.shape} and {right.shape}"
        )
    grid = TileGrid(left.shape[0], right.shape[1], context.tile_size)
    output = MatrixInfo(output_name, grid, output_density)
    k_tiles = left.tile_cols
    k_splits = min(params.k_splits, k_tiles)
    segments = _segment_bounds(k_tiles, k_splits)
    deps = set(depends_on or ())

    # Partial outputs (one per segment) or the final output directly.
    if k_splits == 1:
        targets = [output]
    else:
        targets = [MatrixInfo(partial_name(output_name, seg_index), grid,
                              output_density)
                   for seg_index in range(k_splits)]

    target_matrices: list[TiledMatrix | None] = [None] * len(targets)
    if context.attach_run:
        target_matrices = [TiledMatrix(info.name, grid, context.backing)
                           for info in targets]

    mult_tasks = []
    task_index = 0
    i_chunks = list(_chunk_ranges(grid.tile_rows, params.tiles_per_task_i))
    j_chunks = list(_chunk_ranges(grid.tile_cols, params.tiles_per_task_j))
    for seg_index, (k_start, k_stop) in enumerate(segments):
        for i_start, i_stop in i_chunks:
            for j_start, j_stop in j_chunks:
                task = _build_mult_task(
                    f"{job_id}-m{task_index}", left, right,
                    targets[seg_index], target_matrices[seg_index],
                    (i_start, i_stop), (j_start, j_stop), (k_start, k_stop),
                    context,
                )
                mult_tasks.append(task)
                task_index += 1
    mult_job = Job(f"{job_id}", JobKind.MAP_ONLY, mult_tasks,
                   depends_on=deps,
                   label=f"mult {left.info.name}@{right.info.name}"
                         f" -> {output_name} (ks={k_splits})")

    add_job = None
    if k_splits > 1:
        output_matrix = None
        if context.attach_run:
            output_matrix = TiledMatrix(output.name, grid, context.backing)
        add_job = _build_add_job(f"{job_id}-add", targets, output,
                                 output_matrix, context,
                                 depends_on={mult_job.job_id})
    return MatMulJobs(mult_job, add_job, output)


def _segment_bounds(k_tiles: int, k_splits: int) -> list[tuple[int, int]]:
    """Split range(k_tiles) into k_splits near-equal contiguous segments."""
    bounds = []
    base = k_tiles // k_splits
    extra = k_tiles % k_splits
    start = 0
    for seg_index in range(k_splits):
        length = base + (1 if seg_index < extra else 0)
        bounds.append((start, start + length))
        start += length
    return bounds


def _build_mult_task(task_id: str, left: Operand, right: Operand,
                     target: MatrixInfo, target_matrix: TiledMatrix | None,
                     i_range: tuple[int, int], j_range: tuple[int, int],
                     k_range: tuple[int, int], context: PhysicalContext):
    i_start, i_stop = i_range
    j_start, j_stop = j_range
    k_start, k_stop = k_range
    grid = target.grid

    left_ids = [left.tile_id(i, k)
                for i in range(i_start, i_stop) for k in range(k_start, k_stop)]
    right_ids = [right.tile_id(k, j)
                 for k in range(k_start, k_stop) for j in range(j_start, j_stop)]

    bytes_read = (sum(left.tile_bytes(i, k)
                      for i in range(i_start, i_stop)
                      for k in range(k_start, k_stop))
                  + sum(right.tile_bytes(k, j)
                        for k in range(k_start, k_stop)
                        for j in range(j_start, j_stop)))
    bytes_written = sum(target.tile_bytes(i, j)
                        for i in range(i_start, i_stop)
                        for j in range(j_start, j_stop))
    flops = 0
    for i in range(i_start, i_stop):
        for j in range(j_start, j_stop):
            out_rows, out_cols = grid.tile_shape(i, j)
            for k in range(k_start, k_stop):
                inner = _inner_tile_width(left, i, k)
                flops += matmul_flops(out_rows, inner, out_cols)
    # Sparse inputs cut effective flops roughly with the density product.
    sparsity_scale = max(left.info.density * right.info.density, 1e-6)
    flops = int(flops * min(1.0, sparsity_scale * 4))

    # Working set: the ci x cj accumulator block plus the buffered A-strip
    # and B-strip of this task's k segment (Cumulon buffers whole strips).
    ci, cj = i_stop - i_start, j_stop - j_start
    seg_len = k_stop - k_start
    tiles_held = ci * cj + seg_len * (ci + cj)
    tile_size = target.grid.tile_size
    memory = tiles_held * tile_size * tile_size * DENSE_ELEMENT_BYTES
    # reads + per-tile multiplies/accumulations + writes
    tile_ops = seg_len * (ci + cj) + 2 * ci * cj * seg_len + ci * cj
    work = TaskWork(bytes_read=bytes_read, bytes_written=bytes_written,
                    flops=max(1, flops), tile_ops=tile_ops,
                    memory_bytes=memory)
    run = None
    if context.attach_run:
        run = _mult_runner(left, right, target_matrix, i_range, j_range,
                           k_range, context)
    return make_map_task(
        task_id=task_id, work=work,
        preferred_nodes=context.preferred_nodes(left_ids + right_ids),
        run=run,
        label=f"mult i[{i_start}:{i_stop}) j[{j_start}:{j_stop}) "
              f"k[{k_start}:{k_stop})",
    )


def _inner_tile_width(left: Operand, tile_row: int, tile_col: int) -> int:
    stored_row, stored_col = left.stored_position(tile_row, tile_col)
    rows, cols = left.info.grid.tile_shape(stored_row, stored_col)
    return rows if left.transposed else cols


def _mult_runner(left: Operand, right: Operand, target_matrix: TiledMatrix,
                 i_range, j_range, k_range, context: PhysicalContext):
    if target_matrix is None:
        raise CompilationError("attach_run requires the target TiledMatrix")

    def run() -> None:
        if _dispatch_mult(left, right, target_matrix,
                          i_range, j_range, k_range, context):
            return
        # Reference inline path: the thread backend and any task the active
        # dispatcher cannot take (sparse payloads) run exactly this.
        for i in range(*i_range):
            for j in range(*j_range):
                accumulator = None
                for k in range(*k_range):
                    left_payload = _operand_payload(left, i, k, context)
                    right_payload = _operand_payload(right, k, j, context)
                    product = tile_matmul(left_payload, right_payload)
                    if accumulator is None:
                        accumulator = product
                    else:
                        accumulator = accumulator + product
                target_matrix.put_tile(i, j, _to_array(accumulator))

    return run


def _dispatch_mult(left: Operand, right: Operand, target_matrix: TiledMatrix,
                   i_range, j_range, k_range,
                   context: PhysicalContext) -> bool:
    """Batch this task's whole (i, j, k) block into one kernel plan.

    Returns False (and computes nothing) when no dispatcher is installed or
    any input tile is sparse — the sparse*sparse kernel stays inline so its
    CSR arithmetic matches the reference path bit for bit.  Each input tile
    enters the payload table once, even though the inline loop would re-read
    it per output tile; results are identical, reads are fewer.
    """
    dispatcher = kernels.current_dispatcher()
    if dispatcher is None:
        return False
    left_payloads: list = []
    right_payloads: list = []
    for i in range(*i_range):
        for k in range(*k_range):
            tile = context.read_tile(left.tile_id(i, k))
            if tile.is_sparse:
                return False
            left_payloads.append(tile.data)
    for k in range(*k_range):
        for j in range(*j_range):
            tile = context.read_tile(right.tile_id(k, j))
            if tile.is_sparse:
                return False
            right_payloads.append(tile.data)
    positions = [(i, j)
                 for i in range(*i_range) for j in range(*j_range)]
    out_shapes = tuple(target_matrix.grid.tile_shape(i, j)
                       for i, j in positions)
    # The payload table already *is* the A block followed by the B block,
    # so when tile shapes are uniform per operand the whole task reduces
    # to grid geometry — backends then skip per-term plan encoding.
    a_shape = left_payloads[0].shape
    b_shape = right_payloads[0].shape
    if (all(p.shape == a_shape for p in left_payloads)
            and all(p.shape == b_shape for p in right_payloads)
            and all(shape == out_shapes[0] for shape in out_shapes)):
        plan = kernels.GridMultPlan(
            ni=i_range[1] - i_range[0], nj=j_range[1] - j_range[0],
            nk=k_range[1] - k_range[0],
            a_shape=(int(a_shape[0]), int(a_shape[1])),
            b_shape=(int(b_shape[0]), int(b_shape[1])),
            left_transposed=left.transposed,
            right_transposed=right.transposed,
            out_shape=out_shapes[0])
        results = dispatcher.run_grid_mult(left_payloads, right_payloads,
                                           plan)
    else:
        n_left = len(left_payloads)
        n_k = k_range[1] - k_range[0]
        n_j = j_range[1] - j_range[0]
        outputs = tuple(
            tuple(((i - i_range[0]) * n_k + (k - k_range[0]),
                   n_left + (k - k_range[0]) * n_j + (j - j_range[0]))
                  for k in range(*k_range))
            for i, j in positions)
        transposed = (left.transposed,) * n_left \
            + (right.transposed,) * len(right_payloads)
        plan = kernels.BlockPlan(transposed, outputs, out_shapes)
        results = dispatcher.run_plan(left_payloads + right_payloads, plan)
    for (i, j), (array, nnz) in zip(positions, results):
        target_matrix.put_tile(i, j, array, nnz=nnz)
    return True


def _operand_payload(operand: Operand, tile_row: int, tile_col: int,
                     context: PhysicalContext):
    tile = context.read_tile(operand.tile_id(tile_row, tile_col))
    payload = tile.data
    return payload.T if operand.transposed else payload


def _to_array(payload):
    if hasattr(payload, "todense"):
        return np.asarray(payload.todense())
    return payload


def _build_add_job(job_id: str, partials: list[MatrixInfo],
                   output: MatrixInfo, output_matrix: TiledMatrix | None,
                   context: PhysicalContext, depends_on: set[str]) -> Job:
    """Map-only job summing the per-segment partials into the final output."""
    grid = output.grid
    positions = list(grid.positions())
    # Small chunks keep add tasks cheap; the add phase is I/O bound anyway.
    chunk_size = 4
    tasks = []
    for index, (start, stop) in enumerate(
            _chunk_ranges(len(positions), chunk_size)):
        chunk = positions[start:stop]
        input_ids = [TileId(partial.name, row, col)
                     for row, col in chunk for partial in partials]
        work = TaskWork(
            bytes_read=sum(partial.tile_bytes(row, col)
                           for row, col in chunk for partial in partials),
            bytes_written=sum(output.tile_bytes(row, col)
                              for row, col in chunk),
            element_ops=sum(rows * cols * len(partials)
                            for rows, cols in (grid.tile_shape(row, col)
                                               for row, col in chunk)),
            tile_ops=len(chunk) * (len(partials) + 1),
            memory_bytes=2 * grid.tile_size * grid.tile_size
                         * DENSE_ELEMENT_BYTES,
        )
        run = None
        if context.attach_run:
            run = _add_runner(partials, chunk, output_matrix, context)
        tasks.append(make_map_task(
            task_id=f"{job_id}-m{index}", work=work,
            preferred_nodes=context.preferred_nodes(input_ids),
            run=run,
            label=f"add partials tiles[{start}:{stop}]",
        ))
    return Job(job_id, JobKind.MAP_ONLY, tasks, depends_on=depends_on,
               label=f"add {len(partials)} partials -> {output.name}")


def _add_runner(partials: list[MatrixInfo], chunk,
                output_matrix: TiledMatrix, context: PhysicalContext):
    if output_matrix is None:
        raise CompilationError("attach_run requires the output TiledMatrix")

    def run() -> None:
        if _dispatch_add(partials, chunk, output_matrix, context):
            return
        for row, col in chunk:
            total = None
            for partial in partials:
                tile = context.read_tile(TileId(partial.name, row, col))
                payload = tile.to_dense()
                total = payload if total is None else total + payload
            output_matrix.put_tile(row, col, total)

    return run


def _dispatch_add(partials: list[MatrixInfo], chunk,
                  output_matrix: TiledMatrix,
                  context: PhysicalContext) -> bool:
    """Batch a chunk of partial-sum positions into one kernel plan.

    Sparse partials are densified here exactly as the inline loop would
    (``tile.to_dense()``), so the summation the worker performs is the same
    operation sequence on the same floats.
    """
    dispatcher = kernels.current_dispatcher()
    if dispatcher is None:
        return False
    payloads: list = []
    outputs = []
    for row, col in chunk:
        terms = []
        for partial in partials:
            tile = context.read_tile(TileId(partial.name, row, col))
            terms.append((len(payloads), None))
            payloads.append(tile.to_dense())
        outputs.append(tuple(terms))
    grid = output_matrix.grid
    out_shapes = tuple(grid.tile_shape(row, col) for row, col in chunk)
    plan = kernels.BlockPlan((False,) * len(payloads), tuple(outputs),
                             out_shapes)
    for (row, col), (array, nnz) in zip(chunk,
                                        dispatcher.run_plan(payloads, plan)):
        output_matrix.put_tile(row, col, array, nnz=nnz)
    return True
