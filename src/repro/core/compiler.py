"""Compilation of logical programs into Cumulon job DAGs.

The pipeline per statement:

1. **Normalize transposes** — push every transpose down to the leaves
   (``(A+B)' -> A'+B'``, ``(AB)' -> B'A'``, ``A'' -> A``) so physical
   operators only ever see a per-input "read transposed" flag, never a
   materialized transpose.  Cumulon's storage reads tiles either way at the
   same cost.
2. **Fuse element-wise regions** — every maximal subtree of element-wise /
   scalar / element-function operators compiles into ONE map-only job
   evaluating the fused kernel in a single pass (the paper's answer to
   MapReduce's one-op-per-job overhead).  Fusion can be disabled for the
   E11 ablation.
3. **Plan matrix multiplies** — each ``@`` becomes a *mult* job (plus an
   *add* job when the inner dimension is split) with the
   :class:`~repro.core.physical.MatMulParams` chosen by the optimizer.

Variables use single-assignment storage names (``H@2`` is the binding of
``H`` after its second assignment), so rebinding in loops is safe and
aliasing (``B = A``) costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.expr import (
    BINARY_OPERATORS,
    ELEMENT_FUNCTIONS,
    Binary,
    Constant,
    ElementFunc,
    Expr,
    MatMul,
    ScalarOp,
    Transpose,
    Var,
)
from repro.core.physical import (
    ElementwiseParams,
    FusedKernel,
    MatMulParams,
    MatrixInfo,
    Operand,
    PhysicalContext,
    build_elementwise_job,
    build_matmul_jobs,
)
from repro.core.program import Program
from repro.core.rewrite import reorder_matmul_chains, simplify
from repro.errors import CompilationError
from repro.hadoop.job import JobDag
from repro.matrix.tiled import TileGrid, TiledMatrix
from repro.observability.metrics import NULL_METRICS, MetricsRegistry
from repro.observability.trace import NULL_RECORDER, TraceRecorder


@dataclass(frozen=True)
class CompilerParams:
    """Plan-level knobs the deployment optimizer searches over."""

    matmul: MatMulParams = MatMulParams()
    elementwise: ElementwiseParams = ElementwiseParams()
    #: E11 ablation: when False, every element-wise operator gets its own job.
    fusion_enabled: bool = True
    #: Common-subexpression elimination: structurally identical
    #: subexpressions over the same bindings compile once and are shared.
    cse_enabled: bool = True
    #: Matrix-chain reordering: re-associate multiply chains to minimize
    #: flops (logical plan optimization; E15 ablation).
    reorder_chains: bool = True
    #: Algebraic simplification (identity scalars, scalar-chain folding).
    simplify_enabled: bool = True


@dataclass
class CompiledProgram:
    """A job DAG plus the mapping from program variables to stored matrices."""

    program: Program
    dag: JobDag
    #: Final binding of each variable name -> stored matrix descriptor.
    bindings: dict[str, MatrixInfo]
    #: Descriptors of every matrix materialized by the program (temps too).
    materialized: dict[str, MatrixInfo]
    #: Output TiledMatrix handles (present only when compiled with attach_run).
    output_matrices: dict[str, TiledMatrix] = field(default_factory=dict)

    def output_info(self, name: str) -> MatrixInfo:
        try:
            return self.bindings[name]
        except KeyError:
            raise CompilationError(f"no binding for variable {name!r}") from None


# ---------------------------------------------------------------------------
# Transpose normalization.
# ---------------------------------------------------------------------------

def normalize_transposes(expr: Expr) -> Expr:
    """Rewrite so Transpose nodes appear only directly above Var leaves."""
    if isinstance(expr, (Var, Constant)):
        return expr
    if isinstance(expr, Transpose):
        return _push_transpose(expr.child)
    if isinstance(expr, MatMul):
        return MatMul(normalize_transposes(expr.left),
                      normalize_transposes(expr.right))
    if isinstance(expr, Binary):
        return Binary(expr.op, normalize_transposes(expr.left),
                      normalize_transposes(expr.right))
    if isinstance(expr, ScalarOp):
        return ScalarOp(normalize_transposes(expr.child), expr.op, expr.scalar)
    if isinstance(expr, ElementFunc):
        return ElementFunc(normalize_transposes(expr.child), expr.func_name)
    raise CompilationError(f"unknown node {type(expr).__name__}")


def _push_transpose(expr: Expr) -> Expr:
    """Return the normalized form of ``expr``-transposed."""
    if isinstance(expr, Var):
        return Transpose(expr)
    if isinstance(expr, Constant):
        # A constant fill is symmetric: transpose = swapped shape.
        return Constant(expr.value, (expr.shape[1], expr.shape[0]))
    if isinstance(expr, Transpose):
        return normalize_transposes(expr.child)
    if isinstance(expr, MatMul):
        return MatMul(_push_transpose(expr.right), _push_transpose(expr.left))
    if isinstance(expr, Binary):
        return Binary(expr.op, _push_transpose(expr.left),
                      _push_transpose(expr.right))
    if isinstance(expr, ScalarOp):
        return ScalarOp(_push_transpose(expr.child), expr.op, expr.scalar)
    if isinstance(expr, ElementFunc):
        return ElementFunc(_push_transpose(expr.child), expr.func_name)
    raise CompilationError(f"unknown node {type(expr).__name__}")


def _is_elementwise(expr: Expr) -> bool:
    return isinstance(expr, (Binary, ScalarOp, ElementFunc))


def _is_leaf_reference(expr: Expr) -> bool:
    """Var/Constant or a transposed Var — readable by a physical operator."""
    return isinstance(expr, (Var, Constant)) or (
        isinstance(expr, Transpose) and isinstance(expr.child, Var)
    )


# ---------------------------------------------------------------------------
# The compiler.
# ---------------------------------------------------------------------------

class Compiler:
    """Compiles one :class:`Program` into a :class:`CompiledProgram`."""

    def __init__(self, context: PhysicalContext,
                 params: CompilerParams | None = None,
                 recorder: TraceRecorder = NULL_RECORDER,
                 metrics: MetricsRegistry = NULL_METRICS):
        self.context = context
        self.params = params if params is not None else CompilerParams()
        self.recorder = recorder
        self.metrics = metrics
        self._dag = JobDag()
        self._env: dict[str, tuple[MatrixInfo, frozenset[str]]] = {}
        self._materialized: dict[str, MatrixInfo] = {}
        self._versions: dict[str, int] = {}
        self._job_counter = 0
        self._temp_counter = 0
        self._output_matrices: dict[str, TiledMatrix] = {}
        self._constants: dict[tuple[float, tuple[int, int]], MatrixInfo] = {}
        #: CSE memo: structural key -> (materialized info, producing jobs).
        self._cse: dict[tuple, tuple[MatrixInfo, frozenset[str]]] = {}

    # -- public entry -------------------------------------------------------

    def compile(self, program: Program) -> CompiledProgram:
        for name, var in program.inputs.items():
            grid = TileGrid(var.shape[0], var.shape[1], self.context.tile_size)
            info = MatrixInfo(name, grid, var.density)
            self._env[name] = (info, frozenset())
            self._materialized[name] = info
        with self.recorder.span(f"compile-statements:{program.name}",
                                "compiler"):
            for statement in program.statements:
                self._compile_statement(statement.target, statement.expr)
        if self.metrics.enabled:
            self.metrics.inc("compiler.programs")
            self.metrics.inc("compiler.statements",
                             len(program.statements))
            self.metrics.inc("compiler.jobs", len(self._dag))
            self.metrics.inc("compiler.tasks", self._dag.num_tasks())
        bindings = {name: info for name, (info, __) in self._env.items()}
        return CompiledProgram(
            program=program,
            dag=self._dag,
            bindings=bindings,
            materialized=dict(self._materialized),
            output_matrices=dict(self._output_matrices),
        )

    # -- naming -------------------------------------------------------------

    def _storage_name(self, target: str) -> str:
        version = self._versions.get(target, 0) + 1
        self._versions[target] = version
        return f"{target}@{version}"

    def _temp_name(self) -> str:
        self._temp_counter += 1
        return f"_tmp{self._temp_counter}"

    def _job_id(self, hint: str) -> str:
        self._job_counter += 1
        return f"j{self._job_counter}-{hint}"

    # -- statement compilation ----------------------------------------------

    def _compile_statement(self, target: str, expr: Expr) -> None:
        expr = normalize_transposes(expr)
        if self.params.simplify_enabled:
            expr = simplify(expr)
        if self.params.reorder_chains:
            expr = reorder_matmul_chains(expr)
        if isinstance(expr, Var):
            # Pure alias: matrices are immutable, so share the binding.
            self._env[target] = self._lookup(expr.name)
            return
        if self.params.cse_enabled:
            key = self._structural_key(expr)
            if key in self._cse:
                # The value was already computed: alias the binding.
                self._env[target] = self._cse[key]
                return
            info, deps = self._materialize(expr, self._storage_name(target))
            self._cse[key] = (info, deps)
        else:
            info, deps = self._materialize(expr, self._storage_name(target))
        self._env[target] = (info, deps)

    def _structural_key(self, expr: Expr) -> tuple:
        """Hashable identity of an expression *value* under current bindings.

        Variables key on their storage name (the specific version bound
        right now), so rebinding in a loop correctly invalidates reuse.
        """
        if isinstance(expr, Var):
            info, __ = self._lookup(expr.name)
            return ("var", info.name)
        if isinstance(expr, Constant):
            return ("const", expr.value, expr.shape)
        if isinstance(expr, Transpose):
            return ("t", self._structural_key(expr.child))
        if isinstance(expr, MatMul):
            return ("mm", self._structural_key(expr.left),
                    self._structural_key(expr.right))
        if isinstance(expr, Binary):
            return (expr.op, self._structural_key(expr.left),
                    self._structural_key(expr.right))
        if isinstance(expr, ScalarOp):
            return ("s" + expr.op, expr.scalar,
                    self._structural_key(expr.child))
        if isinstance(expr, ElementFunc):
            return (expr.func_name, self._structural_key(expr.child))
        raise CompilationError(f"unknown node {type(expr).__name__}")

    def _lookup(self, name: str) -> tuple[MatrixInfo, frozenset[str]]:
        try:
            return self._env[name]
        except KeyError:
            raise CompilationError(f"unbound variable {name!r}") from None

    # -- expression compilation ------------------------------------------------

    def _materialize(self, expr: Expr,
                     output_name: str) -> tuple[MatrixInfo, frozenset[str]]:
        """Emit jobs computing ``expr`` into a matrix named ``output_name``."""
        if isinstance(expr, MatMul):
            return self._materialize_matmul(expr, output_name)
        if _is_elementwise(expr):
            if self.params.fusion_enabled:
                return self._materialize_fused(expr, output_name)
            return self._materialize_unfused(expr, output_name)
        if _is_leaf_reference(expr):
            # A bare transposed reference must be physically re-tiled.
            return self._materialize_fused(expr, output_name)
        raise CompilationError(
            f"cannot materialize node {type(expr).__name__}"
        )

    def _materialize_matmul(self, expr: MatMul,
                            output_name: str) -> tuple[MatrixInfo, frozenset[str]]:
        left, left_deps = self._as_operand(expr.left)
        right, right_deps = self._as_operand(expr.right)
        jobs = build_matmul_jobs(
            self._job_id(f"mul-{output_name}"), left, right, output_name,
            self.context, self.params.matmul,
            depends_on=set(left_deps | right_deps),
            output_density=expr.density,
        )
        for job in jobs.jobs():
            self._dag.add(job)
        self._materialized[output_name] = jobs.output
        final_job = jobs.add_job or jobs.mult_job
        if self.context.attach_run:
            self._output_matrices[output_name] = TiledMatrix(
                jobs.output.name, jobs.output.grid, self.context.backing
            )
        return jobs.output, frozenset({final_job.job_id})

    def _as_operand(self, expr: Expr) -> tuple[Operand, frozenset[str]]:
        """Turn a subexpression into a readable operand, materializing if
        it is not already a stored matrix (or a transposed view of one)."""
        if isinstance(expr, Var):
            info, deps = self._lookup(expr.name)
            return Operand(info), deps
        if isinstance(expr, Constant):
            return Operand(self._constant_info(expr)), frozenset()
        if isinstance(expr, Transpose) and isinstance(expr.child, Var):
            info, deps = self._lookup(expr.child.name)
            return Operand(info, transposed=True), deps
        if self.params.cse_enabled:
            key = self._structural_key(expr)
            if key in self._cse:
                info, deps = self._cse[key]
                return Operand(info), deps
            info, deps = self._materialize(expr, self._temp_name())
            self._cse[key] = (info, deps)
            return Operand(info), deps
        info, deps = self._materialize(expr, self._temp_name())
        return Operand(info), deps

    def _constant_info(self, expr: Constant) -> MatrixInfo:
        """Materialize a constant matrix once per distinct (value, shape).

        Constants are written at compile time (no job needed): Cumulon
        generates them on the fly inside tasks; pre-writing them here keeps
        the execution path uniform while costing no cluster work in the
        simulated plans (their jobs read them like any HDFS input).
        """
        key = (expr.value, expr.shape)
        if key not in self._constants:
            name = f"_const{len(self._constants) + 1}"
            grid = TileGrid(expr.shape[0], expr.shape[1],
                            self.context.tile_size)
            info = MatrixInfo(name, grid, expr.density)
            if self.context.attach_run:
                matrix = TiledMatrix(name, grid, self.context.backing)
                for row, col in grid.positions():
                    shape = grid.tile_shape(row, col)
                    matrix.put_tile(row, col, np.full(shape, expr.value))
            self._materialized[name] = info
            self._constants[key] = info
        return self._constants[key]

    def _materialize_fused(self, expr: Expr,
                           output_name: str) -> tuple[MatrixInfo, frozenset[str]]:
        operands: list[Operand] = []
        deps: set[str] = set()
        evaluator, n_operators = self._build_kernel(expr, operands, deps)
        kernel = FusedKernel(operands, evaluator, n_operators,
                             label=f"ew -> {output_name}", shape=expr.shape)
        grid = TileGrid(expr.shape[0], expr.shape[1], self.context.tile_size)
        output = MatrixInfo(output_name, grid, expr.density)
        output_matrix = None
        if self.context.attach_run:
            output_matrix = TiledMatrix(output_name, grid, self.context.backing)
            self._output_matrices[output_name] = output_matrix
        job = build_elementwise_job(
            self._job_id(f"ew-{output_name}"), kernel, output, self.context,
            self.params.elementwise, depends_on=deps,
            output_matrix=output_matrix,
        )
        self._dag.add(job)
        self._materialized[output_name] = output
        return output, frozenset({job.job_id})

    def _build_kernel(self, expr: Expr, operands: list[Operand],
                      deps: set[str]):
        """Recursively build the fused evaluator.  Returns (fn, op_count)."""
        if _is_leaf_reference(expr) or isinstance(expr, MatMul):
            operand, operand_deps = self._as_operand(expr)
            deps |= operand_deps
            index = len(operands)
            operands.append(operand)
            return (lambda *args: args[index]), 0
        if isinstance(expr, Binary):
            left_fn, left_ops = self._build_kernel(expr.left, operands, deps)
            right_fn, right_ops = self._build_kernel(expr.right, operands, deps)
            func = BINARY_OPERATORS[expr.op]
            return (lambda *args: func(left_fn(*args), right_fn(*args)),
                    left_ops + right_ops + 1)
        if isinstance(expr, ScalarOp):
            child_fn, child_ops = self._build_kernel(expr.child, operands, deps)
            scalar = expr.scalar
            if expr.op == "add":
                return (lambda *args: child_fn(*args) + scalar), child_ops + 1
            return (lambda *args: child_fn(*args) * scalar), child_ops + 1
        if isinstance(expr, ElementFunc):
            child_fn, child_ops = self._build_kernel(expr.child, operands, deps)
            func = ELEMENT_FUNCTIONS[expr.func_name]
            return (lambda *args: func(child_fn(*args))), child_ops + 1
        if isinstance(expr, Transpose):
            # Normalization leaves transposes only on Var leaves, handled
            # by the leaf branch above; anything else is a compiler bug.
            raise CompilationError(
                "transpose survived normalization above a non-leaf"
            )
        raise CompilationError(f"unknown node {type(expr).__name__}")

    def _materialize_unfused(self, expr: Expr,
                             output_name: str) -> tuple[MatrixInfo, frozenset[str]]:
        """E11 ablation: one job per element-wise operator."""
        if isinstance(expr, Binary):
            left, left_deps = self._as_operand_unfused(expr.left)
            right, right_deps = self._as_operand_unfused(expr.right)
            func = BINARY_OPERATORS[expr.op]
            kernel = FusedKernel([left, right],
                                 lambda a, b: func(a, b), 1,
                                 label=f"{expr.op} -> {output_name}")
            return self._emit_single_kernel(kernel, expr, output_name,
                                            left_deps | right_deps)
        if isinstance(expr, ScalarOp):
            child, child_deps = self._as_operand_unfused(expr.child)
            scalar, op = expr.scalar, expr.op
            fn = ((lambda a: a + scalar) if op == "add"
                  else (lambda a: a * scalar))
            kernel = FusedKernel([child], fn, 1,
                                 label=f"scalar-{op} -> {output_name}")
            return self._emit_single_kernel(kernel, expr, output_name,
                                            child_deps)
        if isinstance(expr, ElementFunc):
            child, child_deps = self._as_operand_unfused(expr.child)
            func = ELEMENT_FUNCTIONS[expr.func_name]
            kernel = FusedKernel([child], lambda a: func(a), 1,
                                 label=f"{expr.func_name} -> {output_name}")
            return self._emit_single_kernel(kernel, expr, output_name,
                                            child_deps)
        if _is_leaf_reference(expr):
            operand, deps = self._as_operand(expr)
            kernel = FusedKernel([operand], lambda a: a, 1,
                                 label=f"copy -> {output_name}")
            return self._emit_single_kernel(kernel, expr, output_name, deps)
        raise CompilationError(
            f"unfused materialization got {type(expr).__name__}"
        )

    def _as_operand_unfused(self, expr: Expr) -> tuple[Operand, frozenset[str]]:
        """Operand for the unfused path: element-wise children become temps."""
        if _is_elementwise(expr):
            info, deps = self._materialize_unfused(expr, self._temp_name())
            return Operand(info), deps
        return self._as_operand(expr)

    def _emit_single_kernel(self, kernel: FusedKernel, expr: Expr,
                            output_name: str,
                            deps: frozenset[str] | set[str]
                            ) -> tuple[MatrixInfo, frozenset[str]]:
        grid = TileGrid(expr.shape[0], expr.shape[1], self.context.tile_size)
        output = MatrixInfo(output_name, grid, expr.density)
        output_matrix = None
        if self.context.attach_run:
            output_matrix = TiledMatrix(output_name, grid, self.context.backing)
            self._output_matrices[output_name] = output_matrix
        job = build_elementwise_job(
            self._job_id(f"op-{output_name}"), kernel, output, self.context,
            self.params.elementwise, depends_on=set(deps),
            output_matrix=output_matrix,
        )
        self._dag.add(job)
        self._materialized[output_name] = output
        return output, frozenset({job.job_id})


def compile_program(program: Program, context: PhysicalContext,
                    params: CompilerParams | None = None,
                    recorder: TraceRecorder = NULL_RECORDER,
                    metrics: MetricsRegistry = NULL_METRICS
                    ) -> CompiledProgram:
    """Convenience wrapper: compile ``program`` in one call."""
    return Compiler(context, params, recorder=recorder,
                    metrics=metrics).compile(program)
