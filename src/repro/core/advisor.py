"""Plan advisor: static warnings about a compiled plan on a cluster.

The cost model penalizes bad plans smoothly; the advisor *names* the
problems so a user (or a test) can see why a plan is slow before running
anything:

* tasks whose working set exceeds the per-slot memory budget;
* jobs with too few tasks to occupy the cluster;
* jobs whose tasks are dominated by fixed startup overhead;
* MapReduce jobs whose shuffle volume dwarfs their input.

It also bridges :mod:`repro.core.checkpoint` and :mod:`repro.cloud.spot`:
:func:`advise_checkpoint_interval` turns a seeded spot-market price path
into a revocation rate and a Young/Daly checkpoint interval, so an
iterative program knows how often to snapshot before bidding on spot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cloud.instances import ClusterSpec
from repro.cloud.spot import MAX_SIMULATED_HOURS, SpotMarket
from repro.core.compiler import CompiledProgram
from repro.core.costmodel import USABLE_MEMORY_FRACTION
from repro.errors import ValidationError
from repro.hadoop.job import Job, JobKind


@dataclass(frozen=True)
class Warning_:
    """One advisor finding."""

    job_id: str
    kind: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.kind}] {self.job_id}: {self.message}"


def validate_plan(compiled: CompiledProgram,
                  spec: ClusterSpec) -> list[Warning_]:
    """Inspect every job of a compiled program against a cluster spec."""
    warnings: list[Warning_] = []
    for job in compiled.dag.topological_order():
        warnings.extend(_check_memory(job, spec))
        warnings.extend(_check_parallelism(job, spec))
        warnings.extend(_check_granularity(job))
        warnings.extend(_check_shuffle(job))
    return warnings


def _check_memory(job: Job, spec: ClusterSpec) -> list[Warning_]:
    usable = (spec.instance_type.memory_gb * 1e9 * USABLE_MEMORY_FRACTION
              / spec.slots_per_node)
    findings = []
    worst = max((task.work.memory_bytes
                 for task in job.map_tasks + job.reduce_tasks), default=0)
    if worst > usable:
        findings.append(Warning_(
            job.job_id, "memory",
            f"peak task working set {worst / 1e9:.1f} GB exceeds the "
            f"{usable / 1e9:.1f} GB per-slot budget on "
            f"{spec.instance_type.name} with {spec.slots_per_node} slots "
            "— split the multiply deeper (k_splits) or use smaller tiles",
        ))
    return findings


def _check_parallelism(job: Job, spec: ClusterSpec) -> list[Warning_]:
    n_tasks = len(job.map_tasks)
    if 0 < n_tasks < spec.total_slots // 2:
        return [Warning_(
            job.job_id, "parallelism",
            f"only {n_tasks} map tasks for {spec.total_slots} slots "
            "— most of the cluster will idle; use finer chunking",
        )]
    return []


#: Tasks below this many bytes+flops-equivalents are overhead-dominated.
_TINY_TASK_BYTES = 4 * 1024 * 1024


def _check_granularity(job: Job) -> list[Warning_]:
    tiny = [task for task in job.map_tasks
            if task.work.bytes_read + task.work.bytes_written
            < _TINY_TASK_BYTES and task.work.flops < 10**8]
    if job.map_tasks and len(tiny) == len(job.map_tasks) \
            and len(job.map_tasks) > 8:
        return [Warning_(
            job.job_id, "granularity",
            f"all {len(job.map_tasks)} map tasks are tiny "
            "(startup-dominated) — coarsen tiles_per_task",
        )]
    return []


def _check_shuffle(job: Job) -> list[Warning_]:
    if job.kind is not JobKind.MAPREDUCE:
        return []
    # Compare against the map-side input only: reducers' bytes_read *are*
    # the shuffled data, so counting them would hide the amplification.
    read = sum(task.work.bytes_read for task in job.map_tasks)
    if read and job.shuffle_bytes > 4 * read:
        return [Warning_(
            job.job_id, "shuffle",
            f"shuffle volume {job.shuffle_bytes / 2**30:.1f} GB is "
            f"{job.shuffle_bytes / read:.0f}x the input "
            "— replication-based strategies explode here; prefer CPMM "
            "or a map-only plan",
        )]
    return []


# ---------------------------------------------------------------------------
# Checkpoint-interval advice for spot deployments.
# ---------------------------------------------------------------------------

def revocation_probability(market: SpotMarket, bid_fraction: float,
                           sample_hours: int = 2000,
                           seed: int = 0) -> float:
    """Fraction of sampled hours whose spot price exceeds the bid.

    This is the per-hour revocation hazard implied by the seeded price
    process — the empirical counterpart of the rate the Young/Daly formula
    needs.
    """
    if bid_fraction <= 0:
        raise ValidationError("bid_fraction must be positive")
    if sample_hours < 1:
        raise ValidationError("sample_hours must be >= 1")
    hours = min(sample_hours, MAX_SIMULATED_HOURS - 1)
    exceeded = sum(
        1 for hour in range(1, hours + 1)
        if market.price_fraction(seed, hour) > bid_fraction
    )
    return exceeded / hours


@dataclass(frozen=True)
class CheckpointAdvice:
    """Recommended checkpoint cadence for a spot deployment."""

    revocation_probability_per_hour: float
    mtbf_seconds: float
    interval_seconds: float
    checkpoint_seconds: float
    expected_overhead_fraction: float

    def describe(self) -> str:
        if math.isinf(self.mtbf_seconds):
            return ("revocation hazard ~0/hour at this bid — "
                    "checkpointing optional")
        return (
            f"revocation hazard {self.revocation_probability_per_hour:.3f}"
            f"/hour (MTBF {self.mtbf_seconds / 3600:.1f}h): checkpoint "
            f"every {self.interval_seconds:.0f}s "
            f"(snapshot costs {self.checkpoint_seconds:.0f}s, expected "
            f"overhead {self.expected_overhead_fraction * 100:.1f}%)"
        )


def advise_checkpoint_interval(market: SpotMarket, bid_fraction: float,
                               checkpoint_seconds: float,
                               work_seconds: float | None = None,
                               sample_hours: int = 2000,
                               seed: int = 0) -> CheckpointAdvice:
    """Young/Daly checkpoint interval for a bid on a seeded spot market.

    ``interval = sqrt(2 * C * MTBF)`` with the MTBF read off the market's
    empirical hourly revocation hazard.  ``work_seconds`` (total run
    length, when known) clamps the interval — checkpointing less than once
    per run is just "checkpoint at the end".
    """
    if checkpoint_seconds <= 0:
        raise ValidationError("checkpoint_seconds must be positive")
    if work_seconds is not None and work_seconds <= 0:
        raise ValidationError("work_seconds must be positive")
    hazard = revocation_probability(market, bid_fraction,
                                    sample_hours=sample_hours, seed=seed)
    if hazard == 0:
        return CheckpointAdvice(
            revocation_probability_per_hour=0.0,
            mtbf_seconds=float("inf"),
            interval_seconds=(work_seconds if work_seconds is not None
                              else float("inf")),
            checkpoint_seconds=checkpoint_seconds,
            expected_overhead_fraction=0.0,
        )
    mtbf = 3600.0 / hazard
    interval = math.sqrt(2.0 * checkpoint_seconds * mtbf)
    if work_seconds is not None:
        interval = min(interval, work_seconds)
    overhead = checkpoint_seconds / interval + interval / (2.0 * mtbf)
    return CheckpointAdvice(
        revocation_probability_per_hour=hazard,
        mtbf_seconds=mtbf,
        interval_seconds=interval,
        checkpoint_seconds=checkpoint_seconds,
        expected_overhead_fraction=overhead,
    )
