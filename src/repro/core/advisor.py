"""Plan advisor: static warnings about a compiled plan on a cluster.

The cost model penalizes bad plans smoothly; the advisor *names* the
problems so a user (or a test) can see why a plan is slow before running
anything:

* tasks whose working set exceeds the per-slot memory budget;
* jobs with too few tasks to occupy the cluster;
* jobs whose tasks are dominated by fixed startup overhead;
* MapReduce jobs whose shuffle volume dwarfs their input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import ClusterSpec
from repro.core.compiler import CompiledProgram
from repro.core.costmodel import USABLE_MEMORY_FRACTION
from repro.hadoop.job import Job, JobKind


@dataclass(frozen=True)
class Warning_:
    """One advisor finding."""

    job_id: str
    kind: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.kind}] {self.job_id}: {self.message}"


def validate_plan(compiled: CompiledProgram,
                  spec: ClusterSpec) -> list[Warning_]:
    """Inspect every job of a compiled program against a cluster spec."""
    warnings: list[Warning_] = []
    for job in compiled.dag.topological_order():
        warnings.extend(_check_memory(job, spec))
        warnings.extend(_check_parallelism(job, spec))
        warnings.extend(_check_granularity(job))
        warnings.extend(_check_shuffle(job))
    return warnings


def _check_memory(job: Job, spec: ClusterSpec) -> list[Warning_]:
    usable = (spec.instance_type.memory_gb * 1e9 * USABLE_MEMORY_FRACTION
              / spec.slots_per_node)
    findings = []
    worst = max((task.work.memory_bytes
                 for task in job.map_tasks + job.reduce_tasks), default=0)
    if worst > usable:
        findings.append(Warning_(
            job.job_id, "memory",
            f"peak task working set {worst / 1e9:.1f} GB exceeds the "
            f"{usable / 1e9:.1f} GB per-slot budget on "
            f"{spec.instance_type.name} with {spec.slots_per_node} slots "
            "— split the multiply deeper (k_splits) or use smaller tiles",
        ))
    return findings


def _check_parallelism(job: Job, spec: ClusterSpec) -> list[Warning_]:
    n_tasks = len(job.map_tasks)
    if 0 < n_tasks < spec.total_slots // 2:
        return [Warning_(
            job.job_id, "parallelism",
            f"only {n_tasks} map tasks for {spec.total_slots} slots "
            "— most of the cluster will idle; use finer chunking",
        )]
    return []


#: Tasks below this many bytes+flops-equivalents are overhead-dominated.
_TINY_TASK_BYTES = 4 * 1024 * 1024


def _check_granularity(job: Job) -> list[Warning_]:
    tiny = [task for task in job.map_tasks
            if task.work.bytes_read + task.work.bytes_written
            < _TINY_TASK_BYTES and task.work.flops < 10**8]
    if job.map_tasks and len(tiny) == len(job.map_tasks) \
            and len(job.map_tasks) > 8:
        return [Warning_(
            job.job_id, "granularity",
            f"all {len(job.map_tasks)} map tasks are tiny "
            "(startup-dominated) — coarsen tiles_per_task",
        )]
    return []


def _check_shuffle(job: Job) -> list[Warning_]:
    if job.kind is not JobKind.MAPREDUCE:
        return []
    # Compare against the map-side input only: reducers' bytes_read *are*
    # the shuffled data, so counting them would hide the amplification.
    read = sum(task.work.bytes_read for task in job.map_tasks)
    if read and job.shuffle_bytes > 4 * read:
        return [Warning_(
            job.job_id, "shuffle",
            f"shuffle volume {job.shuffle_bytes / 2**30:.1f} GB is "
            f"{job.shuffle_bytes / read:.0f}x the input "
            "— replication-based strategies explode here; prefer CPMM "
            "or a map-only plan",
        )]
    return []
