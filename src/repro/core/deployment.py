"""End-to-end deployment estimation: startup + data load + compute.

The optimizer's plans price the *compute* phase; a real deployment also
pays cluster startup and the initial load of the input matrices from text
into tiled HDFS.  :func:`estimate_deployment` composes all three phases on
one cluster and itemizes the bill — the number an analyst actually
compares against running locally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.pricing import DEFAULT_BILLING, BillingModel
from repro.cloud.provisioning import DEFAULT_STARTUP_SECONDS
from repro.core.compiler import CompilerParams, compile_program
from repro.core.costmodel import CumulonCostModel
from repro.core.physical import PhysicalContext
from repro.core.plans import DeploymentPlan
from repro.core.program import Program
from repro.core.simcost import simulate_program
from repro.errors import ValidationError
from repro.hadoop.job import JobDag
from repro.ingest import plan_ingest_job


@dataclass(frozen=True)
class CostBreakdown:
    """Itemized end-to-end estimate for one deployment."""

    startup_seconds: float
    load_seconds: float
    compute_seconds: float
    dollars: float

    @property
    def total_seconds(self) -> float:
        return self.startup_seconds + self.load_seconds + self.compute_seconds

    def describe(self) -> str:
        def line(label: str, seconds: float) -> str:
            share = seconds / self.total_seconds if self.total_seconds else 0
            return f"  {label:<10} {seconds:8.0f}s  ({share:5.1%})"

        return "\n".join([
            f"total {self.total_seconds:.0f}s, ${self.dollars:.2f}",
            line("startup", self.startup_seconds),
            line("load", self.load_seconds),
            line("compute", self.compute_seconds),
        ])


def estimate_deployment(program: Program, plan: DeploymentPlan,
                        tile_size: int | None = None,
                        billing: BillingModel | None = None,
                        model: CumulonCostModel | None = None,
                        startup_seconds: float = DEFAULT_STARTUP_SECONDS,
                        include_load: bool = True) -> CostBreakdown:
    """Itemize startup + input load + compute for ``program`` under ``plan``.

    ``tile_size`` defaults to the plan's tile size (which must then be set).
    The load phase ingests every declared input matrix from text.
    """
    tile_size = tile_size if tile_size is not None else plan.tile_size
    if tile_size <= 0:
        raise ValidationError(
            "tile_size must be given (or recorded in the plan)"
        )
    billing = billing if billing is not None else DEFAULT_BILLING
    model = model if model is not None else CumulonCostModel()
    context = PhysicalContext(tile_size)

    load_seconds = 0.0
    if include_load and program.inputs:
        load_dag = JobDag()
        for name, var in program.inputs.items():
            job, __ = plan_ingest_job(f"load-{name}", name,
                                      var.shape[0], var.shape[1], context,
                                      density=var.density)
            load_dag.add(job)
        load_seconds = simulate_program(load_dag, plan.spec, model).seconds

    params = plan.compiler_params
    compiled = compile_program(program, context, params)
    compute_seconds = simulate_program(compiled.dag, plan.spec,
                                       model).seconds

    total = startup_seconds + load_seconds + compute_seconds
    return CostBreakdown(
        startup_seconds=startup_seconds,
        load_seconds=load_seconds,
        compute_seconds=compute_seconds,
        dollars=billing.cost(plan.spec, total),
    )


def amortized_breakdown(program: Program, plan: DeploymentPlan,
                        runs: int,
                        tile_size: int | None = None,
                        billing: BillingModel | None = None) -> CostBreakdown:
    """Amortize startup and load over ``runs`` executions of the program.

    Iterative analysis reuses the loaded data: startup and ingestion are
    paid once, compute ``runs`` times — which is why keeping a warm cluster
    beats re-provisioning per run.
    """
    if runs <= 0:
        raise ValidationError("runs must be positive")
    billing = billing if billing is not None else DEFAULT_BILLING
    single = estimate_deployment(program, plan, tile_size, billing)
    total = (single.startup_seconds + single.load_seconds
             + runs * single.compute_seconds)
    return CostBreakdown(
        startup_seconds=single.startup_seconds / runs,
        load_seconds=single.load_seconds / runs,
        compute_seconds=single.compute_seconds,
        dollars=billing.cost(plan.spec, total) / runs,
    )


def compare_breakdown(program: Program, plan: DeploymentPlan,
                      params_variants: dict[str, CompilerParams],
                      tile_size: int | None = None
                      ) -> dict[str, CostBreakdown]:
    """Breakdowns of the same deployment under different compiler params."""
    results = {}
    for label, params in params_variants.items():
        variant = DeploymentPlan(plan.spec, params, plan.estimated_seconds,
                                 plan.estimated_cost, plan.tile_size)
        results[label] = estimate_deployment(program, variant, tile_size)
    return results
