"""Program completion-time estimation: simulation and analytic cross-check.

This is the "simulation" stage of Cumulon's optimizer pipeline: a compiled
job DAG is priced on a candidate cluster by replaying slot scheduling with
the fitted cost model.  The analytic wave model (``overhead + ceil(tasks /
slots) * mean task time`` per job) is a cheaper first-order estimate used to
sanity-check the simulator (experiment E9) — it ignores ragged waves,
heterogeneous task times, and cross-job overlap, which is precisely what the
simulation adds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.instances import ClusterSpec
from repro.core.evalcache import CachedEstimate, EvalCache, eval_key, \
    model_fingerprint
from repro.errors import QuorumLostError, SchedulingError, ValidationError
from repro.hadoop.faults import FailureModel, NodeFailureModel
from repro.hadoop.job import Job, JobDag, JobKind
from repro.hadoop.simulator import ClusterSimulator, SimulationResult, \
    dag_fingerprint
from repro.hadoop.timemodel import TaskTimeModel
from repro.hdfs.namenode import NameNode
from repro.hdfs.tilestore import TileStore
from repro.observability.cost import CostMeter
from repro.observability.metrics import NULL_METRICS, MetricsRegistry
from repro.observability.trace import NULL_RECORDER, TraceRecorder
from repro.matrix.tile import TileId

from repro.core.physical import MatrixInfo


@dataclass
class ProgramEstimate:
    """Predicted execution profile of a job DAG on one cluster spec."""

    spec: ClusterSpec
    seconds: float
    job_seconds: dict[str, float] = field(default_factory=dict)
    simulation: SimulationResult | None = None

    def describe(self) -> str:
        parts = [f"{self.spec.describe()}: {self.seconds:.1f}s total"]
        parts += [f"  {job_id}: {seconds:.1f}s"
                  for job_id, seconds in self.job_seconds.items()]
        return "\n".join(parts)


def simulate_program(dag: JobDag, spec: ClusterSpec, model: TaskTimeModel,
                     locality_aware: bool = True,
                     recorder: TraceRecorder = NULL_RECORDER,
                     metrics: MetricsRegistry = NULL_METRICS,
                     cost_meter: CostMeter | None = None,
                     failures: FailureModel | None = None,
                     node_failures: NodeFailureModel | None = None,
                     min_live_nodes: int = 1,
                     namenode: NameNode | None = None,
                     cache: EvalCache | None = None
                     ) -> ProgramEstimate:
    """Estimate wall-clock of ``dag`` on ``spec`` by event simulation.

    Pass an :class:`~repro.observability.trace.InMemoryRecorder` to capture
    the predicted per-task trace alongside the aggregate estimate, a
    :class:`~repro.observability.metrics.MetricsRegistry` for time-series
    metrics on the virtual clock, and/or a
    :class:`~repro.observability.cost.CostMeter` to watch dollars accrue
    (and budgets blow) live during the simulation.

    ``failures`` / ``node_failures`` inject seeded task- and node-level
    faults (see :mod:`repro.hadoop.faults`); give a ``namenode`` to bill
    HDFS re-replication traffic when a node dies.

    ``cache`` memoizes the simulation on its content-addressed key (see
    :mod:`repro.core.evalcache`).  The memo is consulted only when the run
    has no observable side effects (no recorder/metrics/cost meter/
    namenode), no task-level failures, and every remaining input — DAG,
    cost model, node-failure model *including seeds* — can prove its
    identity; otherwise the simulation runs for real.  A cached abort
    (quorum lost / retries exhausted) replays as the same exception.
    """
    key = None
    if cache is not None and cache.enabled and not recorder.enabled \
            and not metrics.enabled and cost_meter is None \
            and namenode is None and failures is None:
        failures_fp = (node_failures.fingerprint()
                       if node_failures is not None else "none")
        key = eval_key(dag_fingerprint(dag), spec, model_fingerprint(model),
                       locality_aware=locality_aware,
                       min_live_nodes=min_live_nodes,
                       failures_fp=failures_fp)
        cached = cache.get(key)
        if cached is not None:
            if cached.aborted:
                kind = (QuorumLostError if cached.abort_quorum
                        else SchedulingError)
                raise kind(cached.abort_message)
            return ProgramEstimate(spec, cached.seconds,
                                   dict(cached.job_seconds))
    simulator = ClusterSimulator(spec, model, locality_aware=locality_aware,
                                 recorder=recorder, metrics=metrics,
                                 cost_meter=cost_meter,
                                 failures=failures,
                                 node_failures=node_failures,
                                 min_live_nodes=min_live_nodes,
                                 namenode=namenode)
    try:
        result = simulator.run(dag)
    except SchedulingError as error:
        if key is not None:
            cache.put(key, CachedEstimate(
                seconds=float("inf"), aborted=True, abort_message=str(error),
                abort_quorum=isinstance(error, QuorumLostError)))
        raise
    job_seconds = {job_id: timeline.duration
                   for job_id, timeline in result.job_timelines.items()}
    if key is not None:
        cache.put(key, CachedEstimate(
            seconds=result.makespan,
            job_seconds=tuple(sorted(job_seconds.items()))))
    return ProgramEstimate(spec, result.makespan, job_seconds, result)


def analytic_wave_estimate(dag: JobDag, spec: ClusterSpec,
                           model: TaskTimeModel) -> float:
    """First-order estimate: sequential jobs, whole waves, mean task time."""
    total = 0.0
    for job in dag.topological_order():
        total += analytic_job_time(job, spec, model)
    return total


def analytic_job_time(job: Job, spec: ClusterSpec,
                      model: TaskTimeModel) -> float:
    """Wave-model time of one job in isolation."""
    seconds = model.job_overhead(job)
    seconds += _phase_time(job.map_tasks, spec, model)
    if job.kind is JobKind.MAPREDUCE:
        bandwidth = spec.num_nodes * spec.instance_type.network_bandwidth
        seconds += model.shuffle_duration(job, bandwidth)
        seconds += _phase_time(job.reduce_tasks, spec, model)
    return seconds


def _phase_time(tasks, spec: ClusterSpec, model: TaskTimeModel) -> float:
    if not tasks:
        return 0.0
    # Every slot on a node is assumed busy (worst-case contention), matching
    # how the middle waves of a large job behave.
    concurrency = spec.slots_per_node
    mean = sum(model.task_duration(task, spec.instance_type, concurrency, True)
               for task in tasks) / len(tasks)
    waves = math.ceil(len(tasks) / spec.total_slots)
    return waves * mean


def place_virtual_inputs(store: TileStore, infos: list[MatrixInfo],
                         node_names: list[str]) -> None:
    """Create metadata-only tiles for input matrices, spread across nodes.

    Tiles are written round-robin so the writer-local first replica spreads
    evenly — the layout a previous job's map wave would leave behind.
    """
    if not node_names:
        raise ValidationError("need at least one node to place inputs")
    writer_index = 0
    for info in infos:
        for tile_row, tile_col in info.grid.positions():
            tile_id = TileId(info.name, tile_row, tile_col)
            writer = node_names[writer_index % len(node_names)]
            store.put_virtual(tile_id, info.tile_bytes(tile_row, tile_col),
                              writer=writer)
            writer_index += 1
