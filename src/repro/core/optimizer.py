"""The deployment optimizer: benchmarking + simulation + modeling + search.

Given a program and a time or money constraint, the optimizer chooses —
jointly, as the paper emphasizes — the physical plan parameters (matmul
split factors, element-wise task granularity), the instance type, the
cluster size, and the slots-per-node configuration.

The pipeline mirrors the paper:

1. coefficients fitted by **benchmarking** (:mod:`repro.core.benchmarking`);
2. each candidate deployment priced by **modeling** each task and
   **simulating** the slot scheduler (:mod:`repro.core.simcost`);
3. **search** over the deployment space — exhaustive over the (pruned) grid,
   with physical parameters tuned *per cluster spec* (a split factor good on
   4 fat nodes is bad on 32 thin ones), plus a hill-climbing variant for
   larger spaces.

Costs follow the billing model (hourly by default), which is what makes the
cost-versus-deadline curve a step function (E6).
"""

from __future__ import annotations


import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.instances import EC2_CATALOG, ClusterSpec, InstanceType
from repro.cloud.pricing import DEFAULT_BILLING, BillingModel
from repro.cloud.spot import SpotMarket
from repro.cloud.provisioning import DEFAULT_STARTUP_SECONDS
from repro.core.benchmarking import HardwareCoefficients
from repro.core.compiler import CompiledProgram, CompilerParams, compile_program
from repro.core.costmodel import CostModelConfig, CumulonCostModel
from repro.core.evalcache import EvalCache
from repro.core.compat import resolve_renamed_kwarg, warn_deprecated_entry_point
from repro.core.physical import ElementwiseParams, MatMulParams, PhysicalContext
from repro.core.plans import (
    DeploymentPlan,
    cheapest_within_deadline,
    fastest_within_budget,
    skyline,
)
from repro.core.program import Program
from repro.core.simcost import simulate_program
from repro.errors import (
    InfeasibleConstraintError,
    SchedulingError,
    ValidationError,
)
from repro.hadoop.faults import (
    CompositeNodeFailures,
    NodeFailureModel,
    NoNodeFailures,
    RandomNodeFailures,
    SpotRevocationWaves,
)
from repro.observability.metrics import NULL_METRICS, MetricsRegistry
from repro.observability.search import (
    NULL_SEARCH_TRACE,
    ORIGIN_ADHOC,
    ORIGIN_GRID,
    ORIGIN_HILL_CLIMB,
    SearchStats,
    SearchTrace,
)
from repro.observability.trace import NULL_RECORDER, TraceRecorder

#: Default search grid.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 32)
DEFAULT_MATMUL_OPTIONS = (
    MatMulParams(1, 1, 1),
    MatMulParams(2, 2, 1),
    MatMulParams(1, 1, 2),
    MatMulParams(2, 2, 2),
    MatMulParams(4, 4, 1),
    # Deep inner-dimension splits: essential for Gram-matrix shapes
    # (X'X with a tall X), where an unsplit task would buffer an entire
    # tile strip and blow past slot memory.
    MatMulParams(1, 1, 8),
    MatMulParams(1, 1, 32),
    MatMulParams(1, 1, 128),
)


@dataclass
class SearchSpace:
    """The grid of deployment choices the optimizer enumerates."""

    instance_types: tuple[InstanceType, ...] = tuple(EC2_CATALOG.values())
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS
    #: None = try 1..max_slots for each type; else explicit options.
    slots_options: tuple[int, ...] | None = None
    matmul_options: tuple[MatMulParams, ...] = DEFAULT_MATMUL_OPTIONS
    elementwise: ElementwiseParams = ElementwiseParams()
    #: Storage tile sides to consider; None = the optimizer's default only.
    tile_size_options: tuple[int, ...] | None = None

    def slots_for(self, instance: InstanceType) -> list[int]:
        """Slot counts to try on ``instance`` (clamped to its max)."""
        if self.slots_options is not None:
            return [slots for slots in self.slots_options
                    if 1 <= slots <= instance.max_slots]
        return list(range(1, instance.max_slots + 1))

    def tile_sizes_for(self, default: int) -> list[int]:
        """Tile sides to try (just ``default`` unless overridden)."""
        if self.tile_size_options is not None:
            return list(self.tile_size_options)
        return [default]


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    index = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[index]


@dataclass(frozen=True)
class ReliabilityModel:
    """The failure environment a deployment must survive.

    Each scenario index derives its own seed, so N scenarios are N distinct
    (but individually reproducible) failure draws: independent node crashes
    at ``crash_rate_per_hour``, plus — when a ``market`` is given —
    correlated spot-revocation waves whenever the market price crosses
    ``bid_fraction``.  ``failure_factory`` overrides the built-in
    composition entirely (scenario index in, model out).
    """

    crash_rate_per_hour: float = 0.0
    market: SpotMarket | None = None
    bid_fraction: float = 0.35
    victim_fraction: float = 0.5
    hour_seconds: float = 3600.0
    scenarios: int = 5
    seed: int = 0
    min_live_nodes: int = 1
    failure_factory: Callable[[int], NodeFailureModel] | None = None

    def __post_init__(self) -> None:
        if self.scenarios < 1:
            raise ValidationError(
                f"scenarios must be >= 1, got {self.scenarios}")
        if self.crash_rate_per_hour < 0:
            raise ValidationError("crash_rate_per_hour must be >= 0")

    def node_failures(self, index: int) -> NodeFailureModel:
        """The node-failure model for scenario ``index``."""
        if self.failure_factory is not None:
            return self.failure_factory(index)
        models: list[NodeFailureModel] = []
        if self.crash_rate_per_hour > 0:
            models.append(RandomNodeFailures(self.crash_rate_per_hour,
                                             seed=self.seed + index))
        if self.market is not None:
            models.append(SpotRevocationWaves(
                self.market, bid_fraction=self.bid_fraction,
                seed=self.seed + index,
                victim_fraction=self.victim_fraction,
                hour_seconds=self.hour_seconds))
        if not models:
            return NoNodeFailures()
        if len(models) == 1:
            return models[0]
        return CompositeNodeFailures(models)


@dataclass
class ReliablePlan:
    """A deployment plan priced across seeded failure scenarios.

    ``plan`` holds the failure-free estimate; the scenario lists hold one
    entry per seeded scenario, with ``inf`` marking runs that aborted
    (quorum lost or retries exhausted).  Summary statistics ignore aborted
    scenarios — ``completion_rate`` tells you how many there were.
    """

    plan: DeploymentPlan
    scenario_seconds: list[float] = field(default_factory=list)
    scenario_costs: list[float] = field(default_factory=list)
    min_live_nodes: int = 1

    @property
    def spec(self) -> ClusterSpec:
        return self.plan.spec

    @property
    def completion_rate(self) -> float:
        if not self.scenario_seconds:
            return 1.0
        done = sum(1 for s in self.scenario_seconds if math.isfinite(s))
        return done / len(self.scenario_seconds)

    def _finite_seconds(self) -> list[float]:
        return [s for s in self.scenario_seconds if math.isfinite(s)]

    def _finite_costs(self) -> list[float]:
        return [c for c in self.scenario_costs if math.isfinite(c)]

    @property
    def mean_seconds(self) -> float:
        finite = self._finite_seconds()
        if not finite:
            return float("inf")
        return sum(finite) / len(finite)

    @property
    def p95_seconds(self) -> float:
        finite = self._finite_seconds()
        if not finite:
            return float("inf")
        return _percentile(finite, 0.95)

    @property
    def mean_cost(self) -> float:
        finite = self._finite_costs()
        if not finite:
            return float("inf")
        return sum(finite) / len(finite)

    @property
    def p95_cost(self) -> float:
        finite = self._finite_costs()
        if not finite:
            return float("inf")
        return _percentile(finite, 0.95)

    def expected_overrun(self, deadline_seconds: float) -> float:
        """Mean seconds past the deadline across completed scenarios."""
        finite = self._finite_seconds()
        if not finite:
            return float("inf")
        return sum(max(0.0, s - deadline_seconds)
                   for s in finite) / len(finite)

    def p95_overrun(self, deadline_seconds: float) -> float:
        """Seconds the p95 completion time exceeds the deadline by."""
        finite = self._finite_seconds()
        if not finite:
            return float("inf")
        return max(0.0, _percentile(finite, 0.95) - deadline_seconds)

    def expected_cost_overrun(self, budget_dollars: float) -> float:
        """Mean dollars spent past the budget across scenarios."""
        finite = self._finite_costs()
        if not finite:
            return float("inf")
        return sum(max(0.0, c - budget_dollars)
                   for c in finite) / len(finite)

    def p95_cost_overrun(self, budget_dollars: float) -> float:
        """Dollars the p95 scenario cost exceeds the budget by."""
        finite = self._finite_costs()
        if not finite:
            return float("inf")
        return max(0.0, _percentile(finite, 0.95) - budget_dollars)

    def describe(self) -> str:
        """Human-readable reliability summary of this plan."""
        n = len(self.scenario_seconds)
        lines = [
            f"{self.spec.describe()} under {n} failure scenario(s):",
            f"  failure-free:  {self.plan.estimated_seconds:.1f}s  "
            f"${self.plan.estimated_cost:.2f}",
            f"  completion:    {self.completion_rate * 100:.0f}%",
        ]
        if self.completion_rate > 0:
            lines += [
                f"  time (mean):   {self.mean_seconds:.1f}s",
                f"  time (p95):    {self.p95_seconds:.1f}s",
                f"  cost (mean):   ${self.mean_cost:.2f}",
                f"  cost (p95):    ${self.p95_cost:.2f}",
            ]
        return "\n".join(lines)


class DeploymentOptimizer:
    """Searches the deployment space for one program.

    ``cache`` memoizes candidate simulations on a content-addressed key
    (see :mod:`repro.core.evalcache`); the default is a fresh enabled
    cache, so repeated solver calls and the reliability-aware search reuse
    earlier pricings.  Pass :data:`~repro.core.evalcache.NULL_EVAL_CACHE`
    to price every candidate from scratch (the sequential baseline the
    differential tests and the E22 bench compare against).

    ``workers`` sizes a thread pool for candidate pricing (0 or 1 =
    sequential).  Parallel pricing is deterministic: workers only *price*
    (pure simulation + billing), while the main thread folds results and
    records telemetry in submission order, so the chosen plan, the Pareto
    frontier, and the search trace are bit-identical to a sequential run.
    """

    def __init__(self, program: Program, tile_size: int,
                 coefficients: HardwareCoefficients | None = None,
                 cost_config: CostModelConfig | None = None,
                 billing: BillingModel | None = None,
                 startup_seconds: float = DEFAULT_STARTUP_SECONDS,
                 locality_aware: bool = True,
                 recorder: TraceRecorder = NULL_RECORDER,
                 metrics: MetricsRegistry = NULL_METRICS,
                 search_trace: SearchTrace = NULL_SEARCH_TRACE,
                 cache: EvalCache | None = None,
                 workers: int = 0):
        if workers < 0:
            raise ValidationError(f"workers must be >= 0, got {workers}")
        self.program = program
        self.tile_size = tile_size
        self.model = CumulonCostModel(coefficients, cost_config)
        self.billing = billing if billing is not None else DEFAULT_BILLING
        self.startup_seconds = startup_seconds
        self.locality_aware = locality_aware
        self.recorder = recorder
        self.metrics = metrics
        self.search_trace = search_trace
        self.cache = cache if cache is not None else EvalCache(metrics=metrics)
        self.workers = workers
        self._compiled_cache: dict[tuple[CompilerParams, int],
                                   CompiledProgram] = {}
        #: Search-performance accounting (see :class:`SearchStats`).
        self._stats_lock = threading.Lock()
        self._sim_requests = 0
        self._scenarios_skipped = 0
        #: Search-context for candidate records (set by the solvers).
        self._origin = ORIGIN_ADHOC
        self._step: int | None = None
        self._parent: int | None = None
        self._climb_result: DeploymentPlan | None = None
        #: Stats of the most recent solver call, kept even when no
        #: :class:`SearchTrace` is attached (what ``search()`` reports).
        self.last_search_stats: SearchStats | None = None

    # -- plan evaluation -----------------------------------------------------

    def compile_with(self, params: CompilerParams,
                     tile_size: int | None = None) -> CompiledProgram:
        """Compile (simulation-only) once per distinct (params, tile size)."""
        tile_size = tile_size if tile_size is not None else self.tile_size
        key = (params, tile_size)
        if key not in self._compiled_cache:
            if self.metrics.enabled:
                self.metrics.inc("optimizer.compile_cache_misses")
            context = PhysicalContext(tile_size)
            with self.recorder.span(
                    f"compile:tile={tile_size}:{params.matmul}", "optimizer"):
                self._compiled_cache[key] = compile_program(
                    self.program, context, params
                )
        elif self.metrics.enabled:
            self.metrics.inc("optimizer.compile_cache_hits")
        return self._compiled_cache[key]

    def _price(self, compiled: CompiledProgram,
               spec: ClusterSpec) -> tuple[float, float]:
        """Pure pricing of one compiled program on one spec: (seconds, $).

        Thread-safe (no trace/metrics/recorder side effects beyond the
        lock-protected counters), so parallel workers may call it
        concurrently; all recording happens later on the main thread.
        """
        with self._stats_lock:
            self._sim_requests += 1
        estimate = simulate_program(compiled.dag, spec, self.model,
                                    locality_aware=self.locality_aware,
                                    cache=self.cache)
        seconds = estimate.seconds + self.startup_seconds
        return seconds, self.billing.cost(spec, seconds)

    def evaluate(self, spec: ClusterSpec,
                 compiler_params: CompilerParams | None = None,
                 tile_size: int | None = None,
                 priced: tuple[float, float] | None = None,
                 params: CompilerParams | None = None) -> DeploymentPlan:
        """Deprecated entry point: price one deployment combination.

        Superseded by the declarative facade —
        ``search(SearchSpec(objective="evaluate", cluster=spec,
        compiler_params=...))`` — but kept as a warning shim returning the
        exact same plan.  ``params`` is the (doubly) deprecated spelling
        of ``compiler_params``.
        """
        warn_deprecated_entry_point(
            "DeploymentOptimizer.evaluate",
            "repro.api.search(SearchSpec(objective=\"evaluate\", ...))")
        compiler_params = resolve_renamed_kwarg(
            "DeploymentOptimizer.evaluate", "params", "compiler_params",
            params, compiler_params)
        if compiler_params is None:
            raise ValidationError(
                "DeploymentOptimizer.evaluate needs compiler_params")
        return self._evaluate(spec, compiler_params, tile_size,
                              priced=priced)

    def _evaluate(self, spec: ClusterSpec,
                  compiler_params: CompilerParams,
                  tile_size: int | None = None,
                  priced: tuple[float, float] | None = None
                  ) -> DeploymentPlan:
        """Price one (cluster, physical-plan, tile-size) combination.

        ``priced`` short-circuits the simulation with a pre-computed
        ``(seconds, cost)`` pair — how parallel workers' results are folded
        back in without re-simulating — while trace/metrics recording
        still happens here, on the calling (main) thread.
        """
        tile_size = tile_size if tile_size is not None else self.tile_size
        compiled = self.compile_with(compiler_params, tile_size)
        if priced is None:
            with self.recorder.span(f"simulate:{spec.describe()}",
                                    "optimizer"):
                priced = self._price(compiled, spec)
        seconds, cost = priced
        plan = DeploymentPlan(spec, compiler_params, seconds, cost,
                              tile_size=tile_size)
        if self.metrics.enabled:
            self.metrics.inc("optimizer.candidates_evaluated")
        if self.search_trace.enabled:
            self.search_trace.add(plan, origin=self._origin,
                                  step=self._step, parent=self._parent)
        return plan

    def _combos(self, space: SearchSpace) -> list[tuple[int, CompilerParams]]:
        """The per-spec physical tuning grid, in deterministic order."""
        return [(tile_size, CompilerParams(matmul=matmul,
                                           elementwise=space.elementwise))
                for tile_size in space.tile_sizes_for(self.tile_size)
                for matmul in space.matmul_options]

    def price_spec_combos(self, spec: ClusterSpec,
                          space: SearchSpace) -> list[tuple[float, float]]:
        """Price every physical-parameter combo for one fixed spec.

        Returns ``(seconds, cost)`` pairs in :meth:`_combos` order — the
        shape :meth:`best_params_for` accepts as ``priced=``.  With
        ``workers > 1`` the pure pricing fans out across the thread pool
        (compilation happens up front on the calling thread, like
        :meth:`_price_specs`); results are folded in submission order, so
        the output is bit-identical to the sequential path.  This is the
        entry point the multi-tenant job service uses to price one
        admission on its shared cluster.
        """
        combos = self._combos(space)
        compiled = [self.compile_with(params, tile_size)
                    for tile_size, params in combos]
        if self.workers <= 1 or len(compiled) <= 1:
            return [self._price(program, spec) for program in compiled]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(
                lambda program: self._price(program, spec), compiled))

    def best_params_for(self, spec: ClusterSpec, space: SearchSpace,
                        priced: list[tuple[float, float]] | None = None
                        ) -> DeploymentPlan:
        """Tune physical parameters and tile size for a fixed cluster spec.

        ``priced`` supplies pre-computed ``(seconds, cost)`` pairs in
        ``_combos`` order (from the parallel pricing pass); folding —
        sibling pruning, trace records — always happens here sequentially.
        """
        trace = self.search_trace
        combos = self._combos(space)
        if trace.enabled and len(combos) > 1:
            trace.pruning_applicable = True
        best: DeploymentPlan | None = None
        best_index: int | None = None
        for position, (tile_size, params) in enumerate(combos):
            plan = self._evaluate(
                spec, params, tile_size,
                priced=priced[position] if priced is not None else None)
            index = len(trace) - 1 if trace.enabled else None
            if (best is None
                    or plan.estimated_seconds < best.estimated_seconds):
                if best_index is not None:
                    trace.prune(best_index,
                                "slower sibling physical plan")
                best, best_index = plan, index
            elif index is not None:
                trace.prune(index, "slower sibling physical plan")
        assert best is not None  # space.matmul_options is non-empty
        return best

    def _set_context(self, origin: str, step: int | None = None,
                     parent: int | None = None) -> None:
        """Tag subsequent evaluations for the search trace."""
        self._origin = origin
        self._step = step
        self._parent = parent

    # -- search-performance accounting ----------------------------------------

    def _begin_search(self) -> dict:
        """Snapshot the counters a search's :class:`SearchStats` diff against."""
        return {"started": time.perf_counter(),
                "requests": self._sim_requests,
                "hits": self.cache.hits,
                "skipped": self._scenarios_skipped}

    def _finish_search(self, baseline: dict,
                       surrogate_rounds: int = 0,
                       grid_requests: int | None = None) -> SearchStats:
        """Attach this search's :class:`SearchStats` to the trace/metrics.

        ``grid_requests`` is the number of simulation requests a full
        no-early-abort grid search would have issued for the same problem;
        when given, the gap to this search's actual requests is recorded
        as ``simulations_avoided`` (the surrogate's headline number).  The
        stats also land on :attr:`last_search_stats` unconditionally, so
        callers get them without wiring up a :class:`SearchTrace`, and on
        the ``search.simulations`` / ``search.simulations_avoided``
        metrics so the registry round-trips what ``--json`` reports.
        """
        requests = self._sim_requests - baseline["requests"]
        hits = self.cache.hits - baseline["hits"]
        avoided = 0
        if grid_requests is not None:
            avoided = max(0, grid_requests - requests)
        stats = SearchStats(
            sim_requests=requests,
            sims_executed=requests - hits,
            cache_hits=hits,
            scenarios_skipped=self._scenarios_skipped - baseline["skipped"],
            workers=self.workers,
            wall_seconds=time.perf_counter() - baseline["started"],
            simulations_avoided=avoided,
            surrogate_rounds=surrogate_rounds)
        self.last_search_stats = stats
        if self.search_trace.enabled:
            self.search_trace.set_stats(stats)
        if self.metrics.enabled:
            self.metrics.set_gauge("optimizer.search_wall_seconds",
                                   stats.wall_seconds)
            self.metrics.set_gauge("optimizer.search_hit_rate",
                                   stats.hit_rate)
            self.metrics.set_gauge("search.simulations",
                                   stats.sim_requests)
            self.metrics.set_gauge("search.simulations_avoided",
                                   stats.simulations_avoided)
            self.metrics.set_gauge("search.surrogate_rounds",
                                   stats.surrogate_rounds)
        return stats

    def _note_scenarios_skipped(self, count: int) -> None:
        """Account reliability scenarios proven irrelevant without running."""
        if count <= 0:
            return
        self._scenarios_skipped += count
        if self.metrics.enabled:
            self.metrics.inc("optimizer.scenarios_skipped", count)

    # -- exhaustive search -----------------------------------------------------

    def _grid_specs(self, space: SearchSpace) -> list[ClusterSpec]:
        """The grid's cluster specs, in deterministic enumeration order."""
        return [ClusterSpec(instance, num_nodes, slots)
                for instance in space.instance_types
                for num_nodes in space.node_counts
                for slots in space.slots_for(instance)]

    def _price_specs(self, specs: list[ClusterSpec], space: SearchSpace
                     ) -> list[list[tuple[float, float]] | None]:
        """Price every (spec, combo) pair, fanning out across the pool.

        Sequential mode (``workers <= 1``) returns ``None`` per spec, which
        makes :meth:`best_params_for` price inline — the baseline path.
        Parallel mode precompiles every combo on the main thread (the
        compile cache is not thread-safe), then workers run only the pure
        :meth:`_price`; results come back in submission order, so the
        downstream fold is deterministic.
        """
        if self.workers <= 1 or len(specs) <= 1:
            return [None] * len(specs)
        combos = self._combos(space)
        compiled = [self.compile_with(params, tile_size)
                    for tile_size, params in combos]

        def price_spec(spec: ClusterSpec) -> list[tuple[float, float]]:
            return [self._price(program, spec) for program in compiled]

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(price_spec, specs))

    def enumerate_plans(self, space: SearchSpace | None = None
                        ) -> list[DeploymentPlan]:
        """Evaluate the full grid: every spec with its best physical params."""
        space = space if space is not None else SearchSpace()
        baseline = self._begin_search()
        plans = []
        self._set_context(ORIGIN_GRID)
        try:
            with self.recorder.span("grid-search", "optimizer"):
                specs = self._grid_specs(space)
                priced_by_spec = self._price_specs(specs, space)
                for spec, priced in zip(specs, priced_by_spec):
                    plans.append(self.best_params_for(spec, space,
                                                      priced=priced))
        finally:
            self._set_context(ORIGIN_ADHOC)
        self._finish_search(baseline)
        if self.metrics.enabled:
            self.metrics.inc("optimizer.grid_searches")
            self.metrics.set_gauge("optimizer.grid_plans", len(plans))
        return plans

    def skyline(self, space: SearchSpace | None = None) -> list[DeploymentPlan]:
        """The Pareto time/cost frontier of the enumerated grid."""
        frontier = skyline(self.enumerate_plans(space))
        if self.search_trace.enabled:
            self.search_trace.mark_frontier(frontier)
        if self.metrics.enabled:
            self.metrics.set_gauge("optimizer.frontier_size", len(frontier))
        return frontier

    def grid_sim_requests(self, space: SearchSpace | None = None,
                          scenarios: int = 0) -> int:
        """Simulation requests a full no-early-abort grid search issues.

        The exhaustive baseline prices every spec across every physical
        combo, and — in reliable mode — stress-tests every spec across
        ``scenarios`` failure draws.  This is the denominator behind
        ``SearchStats.simulations_avoided``.
        """
        space = space if space is not None else SearchSpace()
        specs = len(self._grid_specs(space))
        return specs * (len(self._combos(space)) + max(0, scenarios))

    def minimize_cost_under_deadline(self, deadline_seconds: float,
                                     space: SearchSpace | None = None
                                     ) -> DeploymentPlan:
        """Deprecated entry point: cheapest grid plan within a deadline.

        Superseded by ``search(SearchSpec(objective="min-cost",
        deadline_seconds=...))``; kept as a warning shim returning the
        same plan.
        """
        warn_deprecated_entry_point(
            "DeploymentOptimizer.minimize_cost_under_deadline",
            "repro.api.search(SearchSpec(objective=\"min-cost\", ...))")
        return self._minimize_cost_under_deadline(deadline_seconds, space)

    def _minimize_cost_under_deadline(self, deadline_seconds: float,
                                      space: SearchSpace | None = None
                                      ) -> DeploymentPlan:
        """Cheapest grid plan finishing within ``deadline_seconds``."""
        if deadline_seconds <= 0:
            raise ValidationError("deadline must be positive")
        plans = self.enumerate_plans(space)
        if self.search_trace.enabled:
            self.search_trace.mark_deadline(deadline_seconds)
        plan = cheapest_within_deadline(plans, deadline_seconds)
        if plan is None:
            raise InfeasibleConstraintError(
                f"no deployment finishes within {deadline_seconds:.0f}s"
            )
        return plan

    def minimize_time_under_budget(self, budget_dollars: float,
                                   space: SearchSpace | None = None
                                   ) -> DeploymentPlan:
        """Fastest grid plan costing at most ``budget_dollars``.

        (Also reachable as ``search(SearchSpec(objective="min-time",
        budget_dollars=...))``; unlike the four shimmed entry points this
        one is not deprecated.)
        """
        if budget_dollars <= 0:
            raise ValidationError("budget must be positive")
        plans = self.enumerate_plans(space)
        if self.search_trace.enabled:
            self.search_trace.mark_budget(budget_dollars)
        plan = fastest_within_budget(plans, budget_dollars)
        if plan is None:
            raise InfeasibleConstraintError(
                f"no deployment costs at most ${budget_dollars:.2f}"
            )
        return plan

    # -- reliability-aware search ------------------------------------------------

    def evaluate_reliable(self, spec: ClusterSpec, params: CompilerParams,
                          reliability: ReliabilityModel,
                          tile_size: int | None = None) -> ReliablePlan:
        """Deprecated entry point: price one deployment across scenarios.

        Superseded by ``search(SearchSpec(objective="evaluate",
        cluster=spec, reliability=...))``; kept as a warning shim
        returning the same :class:`ReliablePlan`.
        """
        warn_deprecated_entry_point(
            "DeploymentOptimizer.evaluate_reliable",
            "repro.api.search(SearchSpec(objective=\"evaluate\", "
            "reliability=...))")
        return self._evaluate_reliable(spec, params, reliability, tile_size)

    def _evaluate_reliable(self, spec: ClusterSpec, params: CompilerParams,
                           reliability: ReliabilityModel,
                           tile_size: int | None = None) -> ReliablePlan:
        """Price one deployment across the model's N failure scenarios.

        Each scenario re-simulates the DAG under that scenario's seeded
        node-failure draw; a run that aborts (quorum lost, retries
        exhausted) records ``inf``.  The failure-free estimate rides along
        as ``plan``.
        """
        tile_size = tile_size if tile_size is not None else self.tile_size
        plan = self._evaluate(spec, params, tile_size)
        reliable = self._stress_test(plan, reliability)
        assert reliable is not None  # never aborts early without a deadline
        if self.metrics.enabled:
            self.metrics.inc("optimizer.reliable_evaluations")
        return reliable

    def _stress_test(self, plan: DeploymentPlan,
                     reliability: ReliabilityModel,
                     deadline_seconds: float | None = None,
                     early_abort: bool = False) -> ReliablePlan | None:
        """Run ``plan`` through the model's scenarios; None = provably out.

        With ``early_abort`` (requires a deadline), scenario pricing stops
        — returning ``None`` — the moment the candidate is *provably*
        infeasible for :meth:`minimize_cost_under_deadline_reliable`:

        * any scenario aborts (quorum lost / retries exhausted), since the
          solver requires every scenario to complete; or
        * enough scenarios exceed the deadline that the nearest-rank p95
          must — out of ``n``, that takes ``n - ceil(0.95 n) + 1``
          exceedances (one, for n <= 20).

        Both proofs hold unconditionally (they never guess about the
        scenarios they skip), so early abort rejects exactly the
        candidates a full evaluation would.
        """
        n = reliability.scenarios
        exceed_limit = n - math.ceil(0.95 * n) + 1
        compiled = self.compile_with(plan.compiler_params,
                                     plan.tile_size or self.tile_size)
        seconds: list[float] = []
        costs: list[float] = []
        exceeded = 0
        for index in range(n):
            node_failures = reliability.node_failures(index)
            with self._stats_lock:
                self._sim_requests += 1
            try:
                estimate = simulate_program(
                    compiled.dag, plan.spec, self.model,
                    locality_aware=self.locality_aware,
                    node_failures=node_failures,
                    min_live_nodes=reliability.min_live_nodes,
                    cache=self.cache)
            except SchedulingError:
                if self.metrics.enabled:
                    self.metrics.inc("optimizer.scenario_aborts")
                if early_abort:
                    self._note_scenarios_skipped(n - index - 1)
                    return None
                seconds.append(float("inf"))
                costs.append(float("inf"))
                continue
            total = estimate.seconds + self.startup_seconds
            seconds.append(total)
            costs.append(self.billing.cost(plan.spec, total))
            if deadline_seconds is not None and total > deadline_seconds:
                exceeded += 1
                if early_abort and exceeded >= exceed_limit:
                    self._note_scenarios_skipped(n - index - 1)
                    return None
        return ReliablePlan(plan=plan, scenario_seconds=seconds,
                            scenario_costs=costs,
                            min_live_nodes=reliability.min_live_nodes)

    def minimize_cost_under_deadline_reliable(
            self, deadline_seconds: float, reliability: ReliabilityModel,
            space: SearchSpace | None = None,
            early_abort: bool = True) -> ReliablePlan:
        """Deprecated entry point: cheapest reliable plan within a deadline.

        Superseded by ``search(SearchSpec(objective="min-cost",
        deadline_seconds=..., reliability=...))``; kept as a warning shim
        returning the same :class:`ReliablePlan`.
        """
        warn_deprecated_entry_point(
            "DeploymentOptimizer.minimize_cost_under_deadline_reliable",
            "repro.api.search(SearchSpec(objective=\"min-cost\", "
            "reliability=...))")
        return self._minimize_cost_under_deadline_reliable(
            deadline_seconds, reliability, space, early_abort=early_abort)

    def _minimize_cost_under_deadline_reliable(
            self, deadline_seconds: float, reliability: ReliabilityModel,
            space: SearchSpace | None = None,
            early_abort: bool = True) -> ReliablePlan:
        """Cheapest deployment whose *p95* time (not just the failure-free
        estimate) meets the deadline, with every scenario completing.

        Physical parameters are tuned failure-free per spec (failures do
        not change which split factors are good), then the winning
        configuration is stress-tested across the scenarios.  This is what
        makes the reliability-aware optimizer pick bigger/safer clusters
        than the failure-free one: a 1-node plan that is cheapest on paper
        aborts the moment its only node is revoked.

        ``early_abort`` skips scenario simulations the search can prove
        irrelevant.  Two of the prunes (see :meth:`_stress_test`) are
        unconditional; two more lean on *failure monotonicity* — injected
        failures never make a run faster or cheaper, which holds for every
        failure model in this simulator (failures only re-execute work):

        * a candidate whose failure-free time already exceeds the deadline
          cannot meet it at p95 under failures;
        * a candidate whose failure-free cost already matches or exceeds
          the incumbent's mean scenario cost cannot beat it.

        The chosen plan is identical with or without ``early_abort``
        (locked by the differential test in ``tests/test_fast_search.py``);
        only the number of scenario simulations differs.
        """
        if deadline_seconds <= 0:
            raise ValidationError("deadline must be positive")
        space = space if space is not None else SearchSpace()
        baseline = self._begin_search()
        best: ReliablePlan | None = None
        n = reliability.scenarios
        with self.recorder.span("reliable-search", "optimizer"):
            specs = self._grid_specs(space)
            priced_by_spec = self._price_specs(specs, space)
            for spec, priced in zip(specs, priced_by_spec):
                tuned = self.best_params_for(spec, space, priced=priced)
                if early_abort and tuned.estimated_seconds > deadline_seconds:
                    self._note_scenarios_skipped(n)
                    continue
                if early_abort and best is not None \
                        and tuned.estimated_cost >= best.mean_cost:
                    self._note_scenarios_skipped(n)
                    continue
                reliable = self._stress_test(tuned, reliability,
                                             deadline_seconds=deadline_seconds,
                                             early_abort=early_abort)
                if reliable is None:  # provably infeasible, aborted early
                    continue
                if reliable.completion_rate < 1.0:
                    continue
                if reliable.p95_seconds > deadline_seconds:
                    continue
                if best is None or reliable.mean_cost < best.mean_cost:
                    best = reliable
        self._finish_search(baseline)
        if best is None:
            raise InfeasibleConstraintError(
                f"no deployment meets the {deadline_seconds:.0f}s deadline "
                f"at p95 across {reliability.scenarios} failure scenario(s)"
            )
        if self.metrics.enabled:
            self.metrics.inc("optimizer.reliable_searches")
        return best

    # -- hill climbing (for large spaces) ----------------------------------------

    def hill_climb_under_deadline(self, deadline_seconds: float,
                                  space: SearchSpace | None = None,
                                  seed_spec: ClusterSpec | None = None,
                                  max_steps: int = 50) -> DeploymentPlan:
        """Local search: much cheaper than the grid, usually near-optimal.

        Starts from ``seed_spec`` (default: the largest cluster of the first
        type, which is almost always feasible) and greedily moves to the
        cheapest feasible neighbor until no neighbor improves.
        """
        space = space if space is not None else SearchSpace()
        if seed_spec is None:
            instance = space.instance_types[0]
            seed_spec = ClusterSpec(instance, max(space.node_counts),
                                    min(instance.cores, instance.max_slots))
        baseline = self._begin_search()
        with self.recorder.span("hill-climb", "optimizer"):
            current = self._hill_climb(deadline_seconds, space, seed_spec,
                                       max_steps)
        self._finish_search(baseline)
        if self.search_trace.enabled:
            self.search_trace.mark_deadline(deadline_seconds)
        if self.metrics.enabled:
            self.metrics.inc("optimizer.hill_climbs")
        if current.estimated_seconds > deadline_seconds:
            raise InfeasibleConstraintError(
                f"hill climbing found no plan within {deadline_seconds:.0f}s"
            )
        return current

    def _hill_climb(self, deadline_seconds: float, space: SearchSpace,
                    seed_spec: ClusterSpec, max_steps: int) -> DeploymentPlan:
        trace = self.search_trace
        self._set_context(ORIGIN_HILL_CLIMB, step=0)
        try:
            current = self.best_params_for(seed_spec, space)
            self._climb_result = current
            current_index = trace.index_of(current) if trace.enabled else None
            visited = {self._spec_key(seed_spec)}
            for step in range(1, max_steps + 1):
                candidates = []
                for neighbor in self._neighbors(current.spec, space):
                    key = self._spec_key(neighbor)
                    if key in visited:
                        if trace.enabled:
                            trace.add_skipped(
                                neighbor.instance_type.name,
                                neighbor.num_nodes,
                                neighbor.slots_per_node,
                                reason="already visited",
                                origin=ORIGIN_HILL_CLIMB,
                                step=step, parent=current_index)
                        continue
                    visited.add(key)
                    self._set_context(ORIGIN_HILL_CLIMB, step=step,
                                      parent=current_index)
                    candidates.append(self.best_params_for(neighbor, space))
                current = self._climb_step(current, candidates,
                                           deadline_seconds)
                if current is None:
                    break
                if trace.enabled:
                    current_index = trace.index_of(current)
            return self._climb_result
        finally:
            self._set_context(ORIGIN_ADHOC)

    def _climb_step(self, current: DeploymentPlan,
                    candidates: list[DeploymentPlan],
                    deadline_seconds: float) -> DeploymentPlan | None:
        """One greedy move; returns the new current plan, or None to stop.

        The chosen plan (current if the climb stops) is also stored on
        ``self._climb_result`` so ``_hill_climb`` can return it after a
        ``None`` (terminate) verdict.
        """
        self._climb_result = current
        feasible = [plan for plan in candidates
                    if plan.estimated_seconds <= deadline_seconds]
        current_feasible = current.estimated_seconds <= deadline_seconds
        if current_feasible:
            better = [plan for plan in feasible
                      if plan.estimated_cost < current.estimated_cost]
            if not better:
                return None
            chosen = min(better, key=lambda plan: plan.estimated_cost)
        else:
            # Not yet feasible: chase time downwards.
            if not candidates:
                return None
            fastest = min(candidates,
                          key=lambda plan: plan.estimated_seconds)
            if fastest.estimated_seconds >= current.estimated_seconds:
                return None
            chosen = fastest
        self._climb_result = chosen
        return chosen

    @staticmethod
    def _spec_key(spec: ClusterSpec) -> tuple[str, int, int]:
        return (spec.instance_type.name, spec.num_nodes, spec.slots_per_node)

    def _neighbors(self, spec: ClusterSpec,
                   space: SearchSpace) -> list[ClusterSpec]:
        neighbors = []
        counts = sorted(space.node_counts)
        if spec.num_nodes in counts:
            index = counts.index(spec.num_nodes)
            adjacent_counts = [counts[i] for i in (index - 1, index + 1)
                               if 0 <= i < len(counts)]
        else:
            adjacent_counts = counts[:1]
        for count in adjacent_counts:
            neighbors.append(ClusterSpec(spec.instance_type, count,
                                         min(spec.slots_per_node,
                                             spec.instance_type.max_slots)))
        for delta in (-1, 1):
            slots = spec.slots_per_node + delta
            if 1 <= slots <= spec.instance_type.max_slots:
                neighbors.append(ClusterSpec(spec.instance_type,
                                             spec.num_nodes, slots))
        for instance in space.instance_types:
            if instance.name != spec.instance_type.name:
                slots = min(spec.slots_per_node, instance.max_slots)
                neighbors.append(ClusterSpec(instance, spec.num_nodes, slots))
        return neighbors
