"""Deployment plans and the time/cost skyline.

A *deployment plan* fixes everything Cumulon must decide before running a
program: the physical plan parameters, the instance type, the number of
nodes, and the slots-per-node configuration.  Each plan maps to a point in
the time/cost plane; the optimizer reasons over the skyline (Pareto
frontier) of those points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import ClusterSpec
from repro.core.compiler import CompilerParams
from repro.errors import ValidationError


@dataclass(frozen=True)
class DeploymentPlan:
    """One evaluated point in the deployment space."""

    spec: ClusterSpec
    compiler_params: CompilerParams
    #: Wall-clock estimate including cluster startup, seconds.
    estimated_seconds: float
    #: Dollar cost under the optimizer's billing model.
    estimated_cost: float
    #: Storage tile side chosen for the plan (0 = optimizer default).
    tile_size: int = 0

    def __post_init__(self) -> None:
        if self.estimated_seconds <= 0:
            raise ValidationError("estimated_seconds must be positive")
        if self.estimated_cost < 0:
            raise ValidationError("estimated_cost must be >= 0")
        if self.tile_size < 0:
            raise ValidationError("tile_size must be >= 0")

    def dominates(self, other: "DeploymentPlan") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        no_worse = (self.estimated_seconds <= other.estimated_seconds
                    and self.estimated_cost <= other.estimated_cost)
        better = (self.estimated_seconds < other.estimated_seconds
                  or self.estimated_cost < other.estimated_cost)
        return no_worse and better

    def describe(self) -> str:
        return (f"{self.spec.describe()} "
                f"time={self.estimated_seconds:.0f}s "
                f"cost=${self.estimated_cost:.2f}")


def skyline(plans: list[DeploymentPlan]) -> list[DeploymentPlan]:
    """Pareto-optimal plans, ordered by increasing time."""
    ordered = sorted(plans, key=lambda plan: (plan.estimated_seconds,
                                              plan.estimated_cost))
    frontier: list[DeploymentPlan] = []
    best_cost = float("inf")
    for plan in ordered:
        if plan.estimated_cost < best_cost:
            frontier.append(plan)
            best_cost = plan.estimated_cost
    return frontier


def cheapest_within_deadline(plans: list[DeploymentPlan],
                             deadline_seconds: float) -> DeploymentPlan | None:
    """Lowest-cost plan finishing within the deadline, or None."""
    feasible = [plan for plan in plans
                if plan.estimated_seconds <= deadline_seconds]
    if not feasible:
        return None
    return min(feasible, key=lambda plan: (plan.estimated_cost,
                                           plan.estimated_seconds))


def fastest_within_budget(plans: list[DeploymentPlan],
                          budget_dollars: float) -> DeploymentPlan | None:
    """Fastest plan costing at most the budget, or None."""
    feasible = [plan for plan in plans
                if plan.estimated_cost <= budget_dollars]
    if not feasible:
        return None
    return min(feasible, key=lambda plan: (plan.estimated_seconds,
                                           plan.estimated_cost))
