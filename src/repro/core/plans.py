"""Deployment plans and the time/cost skyline.

A *deployment plan* fixes everything Cumulon must decide before running a
program: the physical plan parameters, the instance type, the number of
nodes, and the slots-per-node configuration.  Each plan maps to a point in
the time/cost plane; the optimizer reasons over the skyline (Pareto
frontier) of those points.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable

from repro.cloud.instances import ClusterSpec
from repro.core.compiler import CompilerParams
from repro.errors import ValidationError


@dataclass(frozen=True)
class DeploymentPlan:
    """One evaluated point in the deployment space."""

    spec: ClusterSpec
    compiler_params: CompilerParams
    #: Wall-clock estimate including cluster startup, seconds.
    estimated_seconds: float
    #: Dollar cost under the optimizer's billing model.
    estimated_cost: float
    #: Storage tile side chosen for the plan (0 = optimizer default).
    tile_size: int = 0

    def __post_init__(self) -> None:
        if self.estimated_seconds <= 0:
            raise ValidationError("estimated_seconds must be positive")
        if self.estimated_cost < 0:
            raise ValidationError("estimated_cost must be >= 0")
        if self.tile_size < 0:
            raise ValidationError("tile_size must be >= 0")

    def dominates(self, other: "DeploymentPlan") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        no_worse = (self.estimated_seconds <= other.estimated_seconds
                    and self.estimated_cost <= other.estimated_cost)
        better = (self.estimated_seconds < other.estimated_seconds
                  or self.estimated_cost < other.estimated_cost)
        return no_worse and better

    def describe(self) -> str:
        return (f"{self.spec.describe()} "
                f"time={self.estimated_seconds:.0f}s "
                f"cost=${self.estimated_cost:.2f}")


class ParetoFrontier:
    """Incremental time/cost skyline: insert candidates as they arrive.

    The classic batch skyline sorts all N candidates and scans; maintained
    incrementally during a search, every insertion would naively re-scan the
    whole candidate set.  This structure keeps the frontier as a list sorted
    by time with strictly decreasing cost, so one insertion is a binary
    search plus removal of the (amortized O(1)) newly dominated suffix —
    the optimizer's frontier stays current per candidate without per-
    insertion re-scans.

    Semantics are locked to :func:`skyline` (which is implemented on top of
    this class, and property-tested against a brute-force reference): ties
    on both axes keep the earlier arrival.
    """

    def __init__(self, plans: Iterable[DeploymentPlan] = ()):
        #: Sorted (seconds, cost) keys, parallel to ``_plans``.
        self._keys: list[tuple[float, float]] = []
        self._plans: list[DeploymentPlan] = []
        self.extend(plans)

    def __len__(self) -> int:
        return len(self._plans)

    def __iter__(self):
        return iter(self._plans)

    def add(self, plan: DeploymentPlan) -> bool:
        """Insert one candidate; returns True iff it joins the frontier.

        A rejected candidate is dominated (or tied) by an existing member;
        an accepted one may evict the members it now dominates.
        """
        key = (plan.estimated_seconds, plan.estimated_cost)
        index = bisect_right(self._keys, key)
        # Everything before `index` is no slower; costs there decrease
        # strictly, so the immediate predecessor holds their minimum cost.
        if index > 0 and self._keys[index - 1][1] <= key[1]:
            return False
        self._keys.insert(index, key)
        self._plans.insert(index, plan)
        # Evict the suffix this plan dominates: later (slower) entries
        # whose cost is no longer strictly below ours.
        end = index + 1
        while end < len(self._keys) and self._keys[end][1] >= key[1]:
            end += 1
        del self._keys[index + 1:end]
        del self._plans[index + 1:end]
        return True

    def extend(self, plans: Iterable[DeploymentPlan]) -> None:
        for plan in plans:
            self.add(plan)

    def plans(self) -> list[DeploymentPlan]:
        """Frontier members, ordered by increasing time."""
        return list(self._plans)

    def dominates(self, plan: DeploymentPlan) -> bool:
        """Would ``plan`` be rejected if offered right now?"""
        key = (plan.estimated_seconds, plan.estimated_cost)
        index = bisect_right(self._keys, key)
        return index > 0 and self._keys[index - 1][1] <= key[1]


def skyline(plans: list[DeploymentPlan]) -> list[DeploymentPlan]:
    """Pareto-optimal plans, ordered by increasing time."""
    return ParetoFrontier(sorted(
        plans, key=lambda plan: (plan.estimated_seconds,
                                 plan.estimated_cost))).plans()


def cheapest_within_deadline(plans: list[DeploymentPlan],
                             deadline_seconds: float) -> DeploymentPlan | None:
    """Lowest-cost plan finishing within the deadline, or None."""
    feasible = [plan for plan in plans
                if plan.estimated_seconds <= deadline_seconds]
    if not feasible:
        return None
    return min(feasible, key=lambda plan: (plan.estimated_cost,
                                           plan.estimated_seconds))


def fastest_within_budget(plans: list[DeploymentPlan],
                          budget_dollars: float) -> DeploymentPlan | None:
    """Fastest plan costing at most the budget, or None."""
    feasible = [plan for plan in plans
                if plan.estimated_cost <= budget_dollars]
    if not feasible:
        return None
    return min(feasible, key=lambda plan: (plan.estimated_seconds,
                                           plan.estimated_cost))
