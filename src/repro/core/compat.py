"""Back-compat shims for renamed keyword arguments.

PR 5 unified the divergent spellings for the physical-plan knobs
(``params`` vs tuned params) on the single name ``compiler_params``
across :class:`~repro.core.session.CumulonSession`,
:class:`~repro.core.executor.CumulonExecutor`, and
:class:`~repro.core.optimizer.DeploymentOptimizer`.  The old spellings
keep working through :func:`resolve_renamed_kwarg`, which emits a
:class:`DeprecationWarning` pointing at the new name.
"""

from __future__ import annotations

import warnings

from repro.errors import ValidationError

#: Sentinel distinguishing "caller omitted the kwarg" from "caller passed
#: None" (None is a meaningful value for most of the renamed kwargs).
_UNSET = object()


def warn_renamed(where: str, old_name: str, new_name: str) -> None:
    """Emit the standard deprecation warning for a renamed kwarg."""
    warnings.warn(
        f"{where}: the {old_name!r} argument is deprecated; "
        f"use {new_name!r} instead",
        DeprecationWarning, stacklevel=3)


def warn_deprecated_entry_point(where: str, replacement: str) -> None:
    """Emit the standard deprecation warning for a superseded entry point.

    This is the shim behind the four legacy optimizer solvers
    (``minimize_cost_under_deadline``, its ``_reliable`` variant,
    ``evaluate``, and ``evaluate_reliable``): they keep working and keep
    returning the exact same results, but each call points the caller at
    the unified :func:`repro.core.search.search` facade.
    """
    warnings.warn(
        f"{where} is deprecated; use {replacement} instead",
        DeprecationWarning, stacklevel=3)


def resolve_renamed_kwarg(where: str, old_name: str, new_name: str,
                          old_value, new_value, default=None):
    """Pick between a renamed kwarg's old and new spellings.

    ``old_value``/``new_value`` are what the caller passed (``default``
    meaning "not passed" — callers use ``None`` when ``None`` is not
    itself meaningful).  Passing both spellings is an error; passing the
    old one warns and is honored.
    """
    if old_value is default:
        return new_value
    if new_value is not default:
        raise ValidationError(
            f"{where}: pass {new_name!r} or the deprecated {old_name!r}, "
            f"not both")
    warn_renamed(where, old_name, new_name)
    return old_value
