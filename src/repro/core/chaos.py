"""Chaos harness: run a workload under a named, seeded failure scenario.

The fault-injection machinery lives in :mod:`repro.hadoop.faults` (what can
break) and :mod:`repro.hadoop.simulator` (how the cluster degrades); this
module packages it into reproducible *scenarios* — kill one node mid-run,
revoke half the cluster in a correlated spot wave, make tasks flaky — and
measures the damage against a clean baseline of the same workload on the
same cluster.  ``repro chaos`` on the command line is a thin wrapper over
:func:`run_chaos`.

Recovery modes mirror :mod:`repro.cloud.spot`'s pricing policies, executed
rather than approximated:

* ``resume`` — the run continues on the survivors.  Outputs of *finished*
  jobs live in replicated HDFS and survive (this is exactly what
  checkpointing-to-HDFS buys); only unfinished work is redone.
* ``restart`` — no usable intermediate state: the time until the first
  loss is wasted, and the whole workload reruns on the surviving smaller
  cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.instances import ClusterSpec
from repro.cloud.pricing import DEFAULT_BILLING, BillingModel
from repro.cloud.spot import SpotMarket
from repro.errors import SchedulingError, ValidationError
from repro.hadoop.faults import (
    FailureModel,
    NodeFailure,
    NodeFailureModel,
    RandomFailures,
    SpotRevocationWaves,
    TargetedNodeFailures,
)
from repro.hadoop.job import JobDag
from repro.hadoop.simulator import LOST, SimulationResult
from repro.hadoop.timemodel import TaskTimeModel
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.observability.metrics import NULL_METRICS, MetricsRegistry
from repro.observability.trace import NULL_RECORDER, TraceRecorder

from repro.core.simcost import simulate_program

#: Named scenarios ``repro chaos`` accepts.
SCENARIO_NODE_CRASH = "node-crash"
SCENARIO_REVOCATION_WAVE = "revocation-wave"
SCENARIO_FLAKY_TASKS = "flaky-tasks"
SCENARIOS = (SCENARIO_NODE_CRASH, SCENARIO_REVOCATION_WAVE,
             SCENARIO_FLAKY_TASKS)

#: Recovery modes.
RECOVERY_RESUME = "resume"
RECOVERY_RESTART = "restart"


def _busy_instant(baseline: SimulationResult | None, seed: int,
                  default: float) -> tuple[float, str | None]:
    """A (time, node) pair at which the baseline run had an attempt in
    flight — dying there is guaranteed to hurt.  Falls back to ``default``
    (and no node preference) when no baseline detail is available."""
    if baseline is None:
        return default, None
    attempts = sorted(
        (attempt for timeline in baseline.job_timelines.values()
         for attempt in timeline.attempts),
        key=lambda a: (a.start, a.end, a.task.task_id, a.node))
    if not attempts:
        return default, None
    chosen = attempts[(len(attempts) // 2 + seed) % len(attempts)]
    return (chosen.start + chosen.end) / 2.0, chosen.node


def build_scenario(name: str, seed: int, spec: ClusterSpec,
                   baseline_seconds: float,
                   baseline: SimulationResult | None = None
                   ) -> tuple[FailureModel | None, NodeFailureModel | None]:
    """Instantiate a named scenario sized to actually hit this run.

    Failure times are scaled to the clean baseline makespan so the
    scenario lands *mid-run* regardless of workload or cluster — a chaos
    scenario whose failure fires after the job finished tests nothing.
    Given the baseline :class:`SimulationResult`, the failure is aimed at
    an instant when a task attempt was actually in flight (overhead- and
    shuffle-dominated runs idle much of the time; a crash in an idle gap
    tests only HDFS re-replication).  Returns ``(task_failures,
    node_failures)``.
    """
    if baseline_seconds <= 0:
        raise ValidationError("baseline_seconds must be positive")
    if name == SCENARIO_NODE_CRASH:
        at, victim = _busy_instant(baseline, seed, 0.3 * baseline_seconds)
        if victim is None:
            names = sorted(spec.node_names())
            victim = names[seed % len(names)]
        return None, TargetedNodeFailures({victim: at})
    if name == SCENARIO_REVOCATION_WAVE:
        waves = SpotRevocationWaves(SpotMarket(), bid_fraction=0.35,
                                    seed=seed, victim_fraction=0.5)
        hour = waves.first_wave_hour()
        if hour is None:  # pragma: no cover - needs a pathological seed
            hour = 1
        # Compress market hours so the first price spike lands on a busy
        # instant (default: 40% of the clean run).
        at, __ = _busy_instant(baseline, seed, 0.4 * baseline_seconds)
        return None, SpotRevocationWaves(
            SpotMarket(), bid_fraction=0.35, seed=seed, victim_fraction=0.5,
            hour_seconds=at / hour)
    if name == SCENARIO_FLAKY_TASKS:
        return RandomFailures(0.1, seed=seed, max_attempts=10), None
    raise ValidationError(
        f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}")


def build_hdfs(spec: ClusterSpec,
               input_files: dict[str, int] | None = None) -> NameNode:
    """A namenode matching the cluster, with inputs spread across nodes.

    Replication is capped at the node count (and at HDFS's default 3);
    input files are written round-robin so every node holds some blocks —
    the layout a prior ingest job would leave behind.
    """
    namenode = NameNode(replication=min(3, spec.num_nodes))
    names = spec.node_names()
    for name in names:
        namenode.register_datanode(
            DataNode(name, spec.instance_type.storage_bytes))
    for index, (path, size) in enumerate(sorted((input_files or {}).items())):
        namenode.create(path, size, writer=names[index % len(names)])
    return namenode


@dataclass
class ChaosReport:
    """Damage report: one workload, one scenario, one seed."""

    scenario: str
    seed: int
    recovery: str
    spec: ClusterSpec
    baseline_seconds: float
    makespan_seconds: float
    completed: bool
    nodes_lost: list[NodeFailure] = field(default_factory=list)
    attempts_lost: int = 0
    reexecuted_tasks: int = 0
    rereplicated_bytes: int = 0
    baseline_cost: float = 0.0
    cost: float = 0.0
    abort_reason: str = ""

    @property
    def overhead_seconds(self) -> float:
        if not self.completed:
            return float("inf")
        return self.makespan_seconds - self.baseline_seconds

    @property
    def overhead_fraction(self) -> float:
        if not self.completed:
            return float("inf")
        return self.overhead_seconds / self.baseline_seconds

    def describe(self) -> str:
        lines = [
            f"chaos scenario {self.scenario!r} (seed {self.seed}, "
            f"recovery={self.recovery}) on {self.spec.describe()}:",
            f"  clean baseline:   {self.baseline_seconds:.1f}s  "
            f"${self.baseline_cost:.2f}",
        ]
        if self.completed:
            lines.append(
                f"  under failures:   {self.makespan_seconds:.1f}s  "
                f"${self.cost:.2f}  "
                f"(+{self.overhead_fraction * 100:.0f}% time)")
        else:
            lines.append(f"  under failures:   ABORTED — {self.abort_reason}")
        if self.nodes_lost:
            losses = ", ".join(f"{f.node}@{f.at:.0f}s ({f.cause})"
                               for f in self.nodes_lost)
            lines.append(f"  nodes lost:       {losses}")
        lines.append(f"  attempts lost:    {self.attempts_lost}")
        lines.append(f"  tasks re-run:     {self.reexecuted_tasks}")
        if self.rereplicated_bytes:
            lines.append(f"  re-replicated:    "
                         f"{self.rereplicated_bytes / 2**20:.1f} MiB")
        return "\n".join(lines)


def run_chaos(dag: JobDag, spec: ClusterSpec, model: TaskTimeModel,
              scenario: str, seed: int = 0,
              recovery: str = RECOVERY_RESUME,
              with_hdfs: bool = True,
              input_files: dict[str, int] | None = None,
              min_live_nodes: int = 1,
              billing: BillingModel | None = None,
              recorder: TraceRecorder = NULL_RECORDER,
              metrics: MetricsRegistry = NULL_METRICS) -> ChaosReport:
    """Simulate ``dag`` under a named failure scenario and report damage.

    A clean run establishes the baseline (and sizes the scenario's failure
    times); the chaos run replays the same DAG with the scenario's seeded
    faults injected.  All failure events flow through ``recorder`` and
    ``metrics``, so ``repro trace`` / ``repro metrics`` show the recovery.
    """
    if recovery not in (RECOVERY_RESUME, RECOVERY_RESTART):
        raise ValidationError(
            f"recovery must be {RECOVERY_RESUME!r} or {RECOVERY_RESTART!r},"
            f" got {recovery!r}")
    billing = billing if billing is not None else DEFAULT_BILLING
    baseline = simulate_program(dag, spec, model)
    failures, node_failures = build_scenario(scenario, seed, spec,
                                             baseline.seconds,
                                             baseline=baseline.simulation)
    report = ChaosReport(
        scenario=scenario, seed=seed, recovery=recovery, spec=spec,
        baseline_seconds=baseline.seconds,
        makespan_seconds=float("inf"), completed=False,
        baseline_cost=billing.cost(spec, baseline.seconds))

    if recovery == RECOVERY_RESTART and node_failures is not None:
        return _restart_analysis(dag, spec, model, node_failures, billing,
                                 report)

    namenode = build_hdfs(spec, input_files) if with_hdfs else None
    try:
        estimate = simulate_program(
            dag, spec, model, recorder=recorder, metrics=metrics,
            failures=failures, node_failures=node_failures,
            min_live_nodes=min_live_nodes, namenode=namenode)
    except SchedulingError as error:  # includes QuorumLostError
        report.abort_reason = str(error)
        return report
    result = estimate.simulation
    report.makespan_seconds = estimate.seconds
    report.completed = True
    report.nodes_lost = list(result.lost_nodes)
    report.attempts_lost = result.count_attempts(LOST)
    report.reexecuted_tasks = result.reexecuted_tasks
    report.rereplicated_bytes = result.rereplicated_bytes
    report.cost = billing.cost(spec, estimate.seconds)
    return report


def _restart_analysis(dag: JobDag, spec: ClusterSpec, model: TaskTimeModel,
                      node_failures: NodeFailureModel, billing: BillingModel,
                      report: ChaosReport) -> ChaosReport:
    """Price restart-from-scratch recovery: time to first loss is wasted,
    then the whole DAG reruns on the surviving smaller cluster."""
    events = node_failures.failures(spec.node_names())
    relevant = [event for event in events
                if event.at < report.baseline_seconds]
    if not relevant:
        # Nothing fires during the run; the baseline stands.
        report.makespan_seconds = report.baseline_seconds
        report.completed = True
        report.cost = report.baseline_cost
        return report
    first_loss = min(event.at for event in relevant)
    survivors = spec.num_nodes - len(relevant)
    report.nodes_lost = sorted(relevant, key=lambda e: (e.at, e.node))
    if survivors < 1:
        report.abort_reason = "no survivors to restart on"
        return report
    surviving_spec = ClusterSpec(spec.instance_type, survivors,
                                 spec.slots_per_node)
    rerun = simulate_program(dag, surviving_spec, model)
    report.makespan_seconds = first_loss + rerun.seconds
    report.completed = math.isfinite(report.makespan_seconds)
    report.cost = (billing.cost(spec, first_loss)
                   + billing.cost(surviving_spec, rerun.seconds))
    return report
