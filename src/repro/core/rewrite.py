"""Logical plan rewrites: matrix-chain reordering and simplification.

Choosing the association order of a multiply chain is a *logical* plan
choice with enormous cost consequences — ``(A @ B) @ v`` versus
``A @ (B @ v)`` differ by a factor of the matrix width when ``v`` is a
vector.  Cumulon's optimizer covers logical alternatives like this ahead of
the physical/provisioning search; here the classic O(n^3) dynamic program
minimizes estimated dense flops over each maximal multiply chain, treating
every non-multiply subexpression as an opaque chain element (recursively
rewritten first).

The rewrite is semantics-preserving (matrix multiplication is associative)
and enabled by default; ``CompilerParams.reorder_chains=False`` disables it
for the E15 ablation.
"""

from __future__ import annotations

from repro.core.expr import (
    Binary,
    Constant,
    ElementFunc,
    Expr,
    MatMul,
    ScalarOp,
    Transpose,
    Var,
)
from repro.errors import CompilationError


def reorder_matmul_chains(expr: Expr) -> Expr:
    """Rewrite every maximal multiply chain into its flop-optimal order."""
    if isinstance(expr, (Var, Constant)):
        return expr
    if isinstance(expr, MatMul):
        factors = _collect_chain(expr)
        factors = [reorder_matmul_chains(factor) for factor in factors]
        if len(factors) == 2:
            return MatMul(factors[0], factors[1])
        return _optimal_order(factors)
    if isinstance(expr, Transpose):
        return Transpose(reorder_matmul_chains(expr.child))
    if isinstance(expr, Binary):
        return Binary(expr.op, reorder_matmul_chains(expr.left),
                      reorder_matmul_chains(expr.right))
    if isinstance(expr, ScalarOp):
        return ScalarOp(reorder_matmul_chains(expr.child), expr.op,
                        expr.scalar)
    if isinstance(expr, ElementFunc):
        return ElementFunc(reorder_matmul_chains(expr.child), expr.func_name)
    raise CompilationError(f"unknown node {type(expr).__name__}")


def _collect_chain(expr: MatMul) -> list[Expr]:
    """Flatten a left/right-nested multiply tree into its factor list."""
    factors: list[Expr] = []

    def visit(node: Expr) -> None:
        if isinstance(node, MatMul):
            visit(node.left)
            visit(node.right)
        else:
            factors.append(node)

    visit(expr)
    return factors


def chain_flops(dimensions: list[int], split: list[list[int]],
                i: int, j: int) -> int:
    """Flops of the DP-chosen parenthesization over factors i..j."""
    if i == j:
        return 0
    k = split[i][j]
    return (chain_flops(dimensions, split, i, k)
            + chain_flops(dimensions, split, k + 1, j)
            + 2 * dimensions[i] * dimensions[k + 1] * dimensions[j + 1])


def _optimal_order(factors: list[Expr]) -> Expr:
    """Classic matrix-chain-order DP over the factors' dense dimensions."""
    n = len(factors)
    dims = [factors[0].shape[0]] + [factor.shape[1] for factor in factors]
    INF = float("inf")
    cost = [[0.0] * n for __ in range(n)]
    split = [[0] * n for __ in range(n)]
    for length in range(2, n + 1):
        for i in range(n - length + 1):
            j = i + length - 1
            cost[i][j] = INF
            for k in range(i, j):
                candidate = (cost[i][k] + cost[k + 1][j]
                             + 2.0 * dims[i] * dims[k + 1] * dims[j + 1])
                if candidate < cost[i][j]:
                    cost[i][j] = candidate
                    split[i][j] = k

    def build(i: int, j: int) -> Expr:
        if i == j:
            return factors[i]
        k = split[i][j]
        return MatMul(build(i, k), build(k + 1, j))

    return build(0, n - 1)


def naive_chain_flops(factors_shapes: list[tuple[int, int]]) -> int:
    """Flops of strict left-to-right association (for comparisons)."""
    total = 0
    rows = factors_shapes[0][0]
    inner = factors_shapes[0][1]
    for shape in factors_shapes[1:]:
        total += 2 * rows * inner * shape[1]
        inner = shape[1]
    return total


# ---------------------------------------------------------------------------
# Algebraic simplification.
# ---------------------------------------------------------------------------

def simplify(expr: Expr) -> Expr:
    """Conservative algebraic cleanup (semantics-preserving):

    * identity scalars vanish: ``X * 1 -> X``, ``X + 0 -> X``;
    * scalar chains fold: ``(X * a) * b -> X * (a*b)``,
      ``(X + a) + b -> X + (a+b)``;
    * double negation folds through the multiplicative chain.

    Machine-generated programs (loop unrolling, desugared updates) produce
    these patterns constantly; every one eliminated is a fused operator —
    or a whole job, when it was the statement root — that never runs.
    """
    if isinstance(expr, (Var, Constant)):
        return expr
    if isinstance(expr, Transpose):
        return Transpose(simplify(expr.child))
    if isinstance(expr, MatMul):
        return MatMul(simplify(expr.left), simplify(expr.right))
    if isinstance(expr, Binary):
        return Binary(expr.op, simplify(expr.left), simplify(expr.right))
    if isinstance(expr, ElementFunc):
        return ElementFunc(simplify(expr.child), expr.func_name)
    if isinstance(expr, ScalarOp):
        child = simplify(expr.child)
        # Identity element: nothing to compute.
        if expr.op == "mul" and expr.scalar == 1.0:
            return child
        if expr.op == "add" and expr.scalar == 0.0:
            return child
        # Fold chains of the same scalar operation.
        if isinstance(child, ScalarOp) and child.op == expr.op:
            if expr.op == "mul":
                return simplify(ScalarOp(child.child, "mul",
                                         child.scalar * expr.scalar))
            return simplify(ScalarOp(child.child, "add",
                                     child.scalar + expr.scalar))
        return ScalarOp(child, expr.op, expr.scalar)
    raise CompilationError(f"unknown node {type(expr).__name__}")
