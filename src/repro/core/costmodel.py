"""The Cumulon task-time cost model.

Per-task time decomposes as

    t = startup + read + compute + write

where

* ``read``    — bytes in over the node's disk bandwidth, which is *shared*
  by all concurrently running slots on the node; a non-local read is further
  limited by the node's (shared) network bandwidth;
* ``compute`` — dense flops and element ops over the instance's per-core
  rate (each slot gets one core's worth);
* ``write``   — bytes out with HDFS pipeline replication amplification;
* memory pressure — when the working sets of co-resident tasks exceed node
  memory, I/O and compute degrade smoothly (buffer-cache loss + GC), which
  is what bends the slots-per-node curve (E3) past its sweet spot.

The coefficients come from :mod:`repro.core.benchmarking`; per-instance
bandwidths and core speeds come from the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import InstanceType
from repro.core.benchmarking import REFERENCE_COEFFICIENTS, HardwareCoefficients
from repro.errors import ValidationError
from repro.hadoop.job import Job, JobKind
from repro.hadoop.task import Task
from repro.hadoop.timemodel import TaskTimeModel

#: HDFS pipeline replication: each written byte traverses the local disk and
#: is forwarded to (replication - 1) peers; the local node pays roughly this
#: amplification on its write path with replication 3.
WRITE_AMPLIFICATION = 1.5

#: Fraction of node memory available to task working sets (rest is OS,
#: daemons, and the distributed cache).
USABLE_MEMORY_FRACTION = 0.75


@dataclass(frozen=True)
class CostModelConfig:
    """Tunables of the cost model beyond the fitted coefficients."""

    write_amplification: float = WRITE_AMPLIFICATION
    usable_memory_fraction: float = USABLE_MEMORY_FRACTION
    #: Penalty slope once working sets exceed usable memory: effective
    #: slowdown = 1 + slope * (overflow ratio).
    memory_penalty_slope: float = 3.0
    #: MapReduce shuffle amplification: every shuffled byte is spilled to
    #: disk at the map side, moved over the network, and merge-sorted at the
    #: reduce side, so effective shuffle time is a multiple of the pure
    #: network transfer (Hadoop 1.x sort was notoriously expensive).
    shuffle_sort_factor: float = 2.5

    def __post_init__(self) -> None:
        if self.write_amplification < 1.0:
            raise ValidationError("write amplification must be >= 1")
        if not 0.0 < self.usable_memory_fraction <= 1.0:
            raise ValidationError("usable_memory_fraction must be in (0, 1]")
        if self.memory_penalty_slope < 0:
            raise ValidationError("memory_penalty_slope must be >= 0")
        if self.shuffle_sort_factor < 1.0:
            raise ValidationError("shuffle_sort_factor must be >= 1")


class CumulonCostModel(TaskTimeModel):
    """Fitted task-time model; plugs into the cluster simulator."""

    def __init__(self, coefficients: HardwareCoefficients | None = None,
                 config: CostModelConfig | None = None):
        self.coefficients = (coefficients if coefficients is not None
                             else REFERENCE_COEFFICIENTS)
        self.config = config if config is not None else CostModelConfig()

    # -- TaskTimeModel interface ---------------------------------------------

    def task_duration(self, task: Task, instance: InstanceType,
                      concurrency: int, local: bool) -> float:
        if concurrency < 1:
            raise ValidationError(f"concurrency must be >= 1, got {concurrency}")
        work = task.work
        coeff = self.coefficients

        disk_share = instance.disk_bandwidth / concurrency
        read_bandwidth = disk_share
        if not local:
            network_share = instance.network_bandwidth / concurrency
            read_bandwidth = min(disk_share, network_share)
        read_seconds = work.bytes_read / read_bandwidth
        write_seconds = (work.bytes_written * self.config.write_amplification
                         / disk_share)

        compute_seconds = (
            work.flops * coeff.seconds_per_flop
            + work.element_ops * coeff.seconds_per_element_op
            + work.tile_ops * coeff.seconds_per_tile_op
        ) / instance.core_speed

        penalty = self._memory_penalty(work.memory_bytes, instance, concurrency)
        duration = (coeff.task_startup_seconds
                    + (read_seconds + write_seconds + compute_seconds) * penalty)
        return max(duration, 1e-6)

    def job_overhead(self, job: Job) -> float:
        if job.kind is JobKind.MAPREDUCE:
            return self.coefficients.mapreduce_job_overhead
        return self.coefficients.map_only_job_overhead

    def shuffle_duration(self, job: Job, total_network_bandwidth: float) -> float:
        base = super().shuffle_duration(job, total_network_bandwidth)
        return base * self.config.shuffle_sort_factor

    # -- helpers ----------------------------------------------------------------

    def _memory_penalty(self, memory_bytes: int, instance: InstanceType,
                        concurrency: int) -> float:
        """Slowdown from co-resident working sets exceeding node memory."""
        usable = (instance.memory_gb * 1e9
                  * self.config.usable_memory_fraction)
        demand = memory_bytes * concurrency
        if demand <= usable or usable <= 0:
            return 1.0
        overflow_ratio = (demand - usable) / usable
        return 1.0 + self.config.memory_penalty_slope * overflow_ratio

    # -- single-task prediction (used by E4 and the optimizer's reports) --------

    def predict_task_seconds(self, task: Task, instance: InstanceType,
                             concurrency: int = 1, local: bool = True) -> float:
        return self.task_duration(task, instance, concurrency, local)
