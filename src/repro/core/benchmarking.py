"""Benchmarking: fitting the cost model's coefficients.

Cumulon fits per-operator time models from benchmark runs on the target
hardware, then reuses them inside the optimizer.  We do the same: tiny timed
numpy kernels measure the local machine's dense-multiply flop rate and
element-wise throughput, producing a :class:`HardwareCoefficients` that the
cost model combines with the per-instance-type catalog figures.

Two profiles matter:

* :func:`fit_local_coefficients` — measured on *this* machine; used by the
  model-accuracy experiment (E4) where predictions are compared against real
  local executions.
* :data:`REFERENCE_COEFFICIENTS` — fixed constants calibrated to a 2013-era
  cloud core (a JVM doing tile multiplies at roughly 1.5 GFLOP/s sustained).
  All simulation experiments use these so results are deterministic across
  machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class HardwareCoefficients:
    """Fitted per-reference-core compute rates plus fixed overheads."""

    #: Seconds per dense-multiply floating point operation.
    seconds_per_flop: float
    #: Seconds per element-wise operation (memory-bandwidth bound).
    seconds_per_element_op: float
    #: Fixed seconds per tile-level kernel invocation (framework overhead:
    #: (de)serialization, buffer management, bookkeeping per tile touched).
    seconds_per_tile_op: float
    #: Fixed seconds to launch one task (JVM reuse made this ~1s in Hadoop).
    task_startup_seconds: float
    #: Fixed seconds to submit/tear down one map-only job.
    map_only_job_overhead: float
    #: Fixed seconds for a full MapReduce job (adds sort/reduce setup).
    mapreduce_job_overhead: float

    def __post_init__(self) -> None:
        values = (self.seconds_per_flop, self.seconds_per_element_op)
        if min(values) <= 0:
            raise ValidationError("compute rates must be positive")
        overheads = (self.seconds_per_tile_op, self.task_startup_seconds,
                     self.map_only_job_overhead, self.mapreduce_job_overhead)
        if min(overheads) < 0:
            raise ValidationError("overheads must be >= 0")


#: Calibrated to 2013 cloud hardware running JVM linear algebra: ~1.5 GFLOP/s
#: dense multiply per core, ~350M element ops/s, ~5ms of bookkeeping per tile
#: touched, 1s task start, 6s/12s job submission for map-only/MapReduce jobs.
REFERENCE_COEFFICIENTS = HardwareCoefficients(
    seconds_per_flop=1.0 / 1.5e9,
    seconds_per_element_op=1.0 / 3.5e8,
    seconds_per_tile_op=0.005,
    task_startup_seconds=1.0,
    map_only_job_overhead=6.0,
    mapreduce_job_overhead=12.0,
)


def measure_matmul_rate(tile_size: int = 256, repeats: int = 3,
                        seed: int = 7) -> float:
    """Measured seconds-per-flop of a dense tile multiply on this machine."""
    if tile_size <= 0 or repeats <= 0:
        raise ValidationError("tile_size and repeats must be positive")
    rng = np.random.default_rng(seed)
    left = rng.random((tile_size, tile_size))
    right = rng.random((tile_size, tile_size))
    left @ right  # warm up BLAS
    total = 0.0
    for __ in range(repeats):
        started = time.perf_counter()
        left @ right
        total += time.perf_counter() - started
    flops = 2 * tile_size ** 3
    return max(total / repeats / flops, 1e-13)


def measure_elementwise_rate(tile_size: int = 512, repeats: int = 3,
                             seed: int = 7) -> float:
    """Measured seconds-per-element of a fused a*b+c pass on this machine."""
    if tile_size <= 0 or repeats <= 0:
        raise ValidationError("tile_size and repeats must be positive")
    rng = np.random.default_rng(seed)
    a = rng.random((tile_size, tile_size))
    b = rng.random((tile_size, tile_size))
    c = rng.random((tile_size, tile_size))
    a * b + c  # warm up
    total = 0.0
    for __ in range(repeats):
        started = time.perf_counter()
        a * b + c
        total += time.perf_counter() - started
    ops = 2 * tile_size ** 2
    return max(total / repeats / ops, 1e-13)


def measure_tile_op_overhead(tile_size: int = 64, repeats: int = 50,
                             seed: int = 7) -> float:
    """Measured fixed cost of one tile-level operation on this machine.

    Times the real tile hot path — backing read, kernel dispatch, tile
    construction and write-back — for a single-tile multiply, then subtracts
    the pure BLAS time so only the framework overhead remains.
    """
    if tile_size <= 0 or repeats <= 0:
        raise ValidationError("tile_size and repeats must be positive")
    # Imported here to avoid a cycle (tiled -> tile -> benchmarking users).
    from repro.matrix.tile import Tile, TileId, tile_matmul
    from repro.matrix.tiled import DenseBacking

    rng = np.random.default_rng(seed)
    backing = DenseBacking()
    left_id, right_id = TileId("bl", 0, 0), TileId("br", 0, 0)
    backing.put(Tile(left_id, rng.random((tile_size, tile_size))))
    backing.put(Tile(right_id, rng.random((tile_size, tile_size))))
    started = time.perf_counter()
    for index in range(repeats):
        left = backing.get(left_id)
        right = backing.get(right_id)
        product = tile_matmul(left.data, right.data)
        backing.put(Tile(TileId("bo", 0, 0), product).compacted())
    elapsed = time.perf_counter() - started
    blas_seconds = repeats * 2 * tile_size ** 3 * measure_matmul_rate(
        tile_size, repeats=1, seed=seed)
    # 4 tile ops per cycle: two reads, one multiply, one write.
    per_op = max(0.0, (elapsed - blas_seconds)) / (repeats * 4)
    return per_op


def fit_local_coefficients(tile_size: int = 256,
                           repeats: int = 3) -> HardwareCoefficients:
    """Benchmark this machine and return coefficients for E4 predictions.

    Task/job overheads are zero because the local executor has no JVM or
    job-submission latency to model; per-tile framework overhead is fitted
    because the Python tile path has real bookkeeping costs.
    """
    return HardwareCoefficients(
        seconds_per_flop=measure_matmul_rate(tile_size, repeats),
        seconds_per_element_op=measure_elementwise_rate(2 * tile_size, repeats),
        seconds_per_tile_op=measure_tile_op_overhead(min(tile_size, 128)),
        task_startup_seconds=0.0,
        map_only_job_overhead=0.0,
        mapreduce_job_overhead=0.0,
    )
