"""EXPLAIN for Cumulon plans: human-readable and graphviz renderings.

``explain_program`` prints the job DAG the way a database EXPLAIN prints an
operator tree — per job: template, task count, bytes in/out, flops, and
dependencies.  ``dag_to_dot`` emits Graphviz source for papers/notebooks.
``explain_plan`` summarizes a deployment plan end to end.  ``explain_trace``
and ``explain_trace_diff`` do the same for execution traces and
predicted-vs-actual comparisons, and ``explain_search`` for the optimizer's
deployment-space search telemetry.
"""

from __future__ import annotations

from repro.core.compiler import CompiledProgram
from repro.core.plans import DeploymentPlan
from repro.hadoop.job import Job, JobDag, JobKind
from repro.observability.diff import TraceDiff
from repro.observability.search import SearchTrace
from repro.observability.trace import STATUS_SUCCESS, Trace


def _human_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}TB"  # pragma: no cover - loop always returns


def _human_flops(count: int) -> str:
    value = float(count)
    for unit in ("", "K", "M", "G", "T"):
        if value < 1000 or unit == "T":
            return f"{value:.1f}{unit}F" if unit else f"{int(value)}F"
        value /= 1000
    return f"{value:.1f}TF"  # pragma: no cover - loop always returns


def explain_job(job: Job) -> str:
    """One-line summary of a job's shape and resource demands."""
    kind = "MAP" if job.kind is JobKind.MAP_ONLY else "MR "
    parts = [
        f"[{kind}] {job.job_id}",
        f"maps={len(job.map_tasks)}",
    ]
    if job.reduce_tasks:
        parts.append(f"reduces={len(job.reduce_tasks)}")
    if job.shuffle_bytes:
        parts.append(f"shuffle={_human_bytes(job.shuffle_bytes)}")
    parts.append(f"read={_human_bytes(job.total_bytes_read())}")
    parts.append(f"write={_human_bytes(job.total_bytes_written())}")
    parts.append(f"compute={_human_flops(job.total_flops())}")
    if job.label:
        parts.append(f"({job.label})")
    return " ".join(parts)


def explain_program(compiled: CompiledProgram) -> str:
    """Multi-line EXPLAIN of a compiled program."""
    lines = [f"program {compiled.program.name}: "
             f"{len(list(compiled.dag))} jobs, "
             f"{compiled.dag.num_tasks()} tasks"]
    for job in compiled.dag.topological_order():
        indent = "  " if not job.depends_on else "    "
        deps = (f" <- {', '.join(sorted(job.depends_on))}"
                if job.depends_on else "")
        lines.append(f"{indent}{explain_job(job)}{deps}")
    for name in compiled.program.outputs:
        info = compiled.output_info(name)
        lines.append(f"  output {name}: {info.shape[0]}x{info.shape[1]} "
                     f"as {info.name} ({_human_bytes(info.total_bytes())})")
    return "\n".join(lines)


def explain_plan(plan: DeploymentPlan) -> str:
    """Summary of a deployment decision."""
    lines = [
        f"deploy on {plan.spec.describe()}",
        f"  estimated time: {plan.estimated_seconds:.0f}s "
        f"({plan.estimated_seconds / 3600:.2f}h)",
        f"  estimated cost: ${plan.estimated_cost:.2f}",
        f"  multiply split: {plan.compiler_params.matmul}",
        f"  elementwise tiles/task: "
        f"{plan.compiler_params.elementwise.tiles_per_task}",
    ]
    if plan.tile_size:
        lines.append(f"  storage tile size: {plan.tile_size}")
    return "\n".join(lines)


def explain_trace(trace: Trace) -> str:
    """Multi-line summary of one execution trace (simulated or actual)."""
    task_events = trace.task_events()
    lines = [
        f"trace [{trace.source}]: {len(trace.events)} events, "
        f"{len(task_events)} task attempts, "
        f"makespan {trace.makespan:.3f}s"
    ]
    by_job: dict[str, list] = {}
    for event in task_events:
        by_job.setdefault(event.job_id, []).append(event)
    for job_id in sorted(by_job):
        events = by_job[job_id]
        ok = sum(1 for event in events if event.status == STATUS_SUCCESS)
        span_start = min(event.start for event in events)
        span_end = max(event.end for event in events)
        read = sum(event.bytes_read for event in events)
        written = sum(event.bytes_written for event in events)
        parts = [
            f"  {job_id}: {len(events)} attempts ({ok} ok)",
            f"span {span_end - span_start:.3f}s",
            f"read {_human_bytes(read)}",
            f"write {_human_bytes(written)}",
        ]
        lines.append(" ".join(parts))
    spans = trace.span_events()
    if spans:
        lines.append(f"  {len(spans)} profiling spans:")
        for event in sorted(spans, key=lambda item: item.start):
            lines.append(f"    {event.job_id}/{event.task_id}: "
                         f"{event.duration:.3f}s")
    return "\n".join(lines)


def explain_search(trace: SearchTrace) -> str:
    """Every candidate the deployment optimizer looked at, one per line.

    Candidates print in evaluation order with their predicted time/cost and
    verdict (frontier / dominated / pruned / skipped, plus feasibility when
    a constraint solver annotated them); the Pareto frontier, when marked,
    is listed again at the bottom in full, followed by the search's
    performance accounting (memo hit rate, scenarios skipped, wall clock)
    when the optimizer attached it.

    The header distinguishes "0 pruned" (pruning ran, nothing lost) from
    "pruning n/a" (no candidate ever had a sibling to lose to — e.g. a
    single-matmul search space).
    """
    evaluated = trace.evaluated()
    pruned = trace.pruned()
    if not pruned and not getattr(trace, "pruning_applicable", True):
        pruned_part = "pruning n/a"
    else:
        pruned_part = f"{len(pruned)} pruned"
    lines = [
        f"search: {len(trace.records)} candidates "
        f"({len(evaluated)} priced, {pruned_part}, "
        f"{len(trace.skipped())} skipped)"
    ]
    for record in trace.records:
        where = f"{record.instance} x{record.nodes} nodes x{record.slots} slots"
        label = f"  #{record.index:03d} [{record.origin}] {where}"
        if record.step is not None:
            suffix = (f" <- #{record.parent:03d}"
                      if record.parent is not None else "")
            label += f" step={record.step}{suffix}"
        if record.predicted_seconds is None:
            lines.append(f"{label}: {record.annotation()}")
            continue
        label += (f" tile={record.tile_size} matmul={record.matmul}: "
                  f"{record.predicted_seconds:.1f}s "
                  f"${record.predicted_cost:.2f}")
        lines.append(f"{label} [{record.annotation()}]")
    frontier = trace.frontier_plans()
    if frontier:
        lines.append(f"pareto frontier ({len(frontier)} plans):")
        for plan in frontier:
            lines.append(f"  {plan.spec.describe()}: "
                         f"{plan.estimated_seconds:.1f}s "
                         f"${plan.estimated_cost:.2f}")
    stats = getattr(trace, "stats", None)
    if stats is not None:
        lines.append(
            f"search performance: {stats.sims_executed}/{stats.sim_requests}"
            f" simulations run, {stats.cache_hits} memo hits "
            f"({stats.hit_rate * 100.0:.0f}% hit rate), "
            f"{stats.scenarios_skipped} scenarios skipped")
        lines.append(
            f"  workers={stats.workers} wall={stats.wall_seconds:.2f}s "
            f"~{stats.estimated_speedup:.1f}x vs uncached sequential")
        if stats.surrogate_rounds or stats.simulations_avoided:
            lines.append(
                f"  surrogate: {stats.surrogate_rounds} model-guided "
                f"rounds, {stats.simulations_avoided} simulations avoided "
                f"vs the full grid")
    return "\n".join(lines)


def explain_trace_diff(diff: TraceDiff) -> str:
    """Predicted-vs-actual comparison, one line per job plus totals."""
    return diff.describe()


def dag_to_dot(dag: JobDag, name: str = "plan") -> str:
    """Graphviz source for a job DAG (render with ``dot -Tpng``)."""
    lines = [f'digraph "{name}" {{', "  rankdir=TB;",
             "  node [shape=box, fontname=monospace];"]
    for job in dag.topological_order():
        shape_color = ("lightblue" if job.kind is JobKind.MAP_ONLY
                       else "lightsalmon")
        label = (f"{job.job_id}\\n{len(job.map_tasks)}m"
                 + (f"+{len(job.reduce_tasks)}r" if job.reduce_tasks else ""))
        lines.append(f'  "{job.job_id}" [label="{label}", '
                     f'style=filled, fillcolor={shape_color}];')
    for job in dag.topological_order():
        for dep in sorted(job.depends_on):
            lines.append(f'  "{dep}" -> "{job.job_id}";')
    lines.append("}")
    return "\n".join(lines)
