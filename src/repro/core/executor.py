"""End-to-end execution of Cumulon programs on real data.

``CumulonExecutor`` is the high-level entry point used by the examples and
the correctness tests: give it a :class:`~repro.core.program.Program` and
numpy inputs, it loads them into a tile backing, compiles the program into a
job DAG with real tile-kernel closures, runs the DAG on the local executor,
and hands back the outputs as numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compat import resolve_renamed_kwarg, warn_renamed
from repro.core.compiler import CompiledProgram, CompilerParams, compile_program
from repro.core.physical import PhysicalContext
from repro.core.program import Program
from repro.errors import ExecutionError, ValidationError
from repro.hadoop.local import (
    BACKEND_THREAD,
    FaultInjector,
    LocalExecutor,
    LocalRunReport,
    RetryPolicy,
)
from repro.matrix.tiled import DEFAULT_TILE_SIZE, DenseBacking, TileBacking, TiledMatrix
from repro.observability.metrics import NULL_METRICS, MetricsRegistry
from repro.observability.trace import NULL_RECORDER, Trace, TraceRecorder


@dataclass
class ExecutionResult:
    """Outputs plus execution provenance."""

    outputs: dict[str, np.ndarray]
    report: LocalRunReport
    compiled: CompiledProgram
    tiled_outputs: dict[str, TiledMatrix] = field(default_factory=dict)
    #: Unified execution trace (None unless a recording recorder was given).
    trace: Trace | None = None

    def output(self, name: str) -> np.ndarray:
        try:
            return self.outputs[name]
        except KeyError:
            raise ExecutionError(f"program produced no output {name!r}") from None


class CumulonExecutor:
    """Compile-and-run front end over the local execution engine."""

    def __init__(self, tile_size: int = DEFAULT_TILE_SIZE,
                 max_workers: int = 4,
                 compiler_params: CompilerParams | None = None,
                 backing: TileBacking | None = None,
                 recorder: TraceRecorder = NULL_RECORDER,
                 metrics: MetricsRegistry = NULL_METRICS,
                 retry_policy: RetryPolicy | None = None,
                 fault_injector: FaultInjector | None = None,
                 backend: str = BACKEND_THREAD,
                 params: CompilerParams | None = None):
        compiler_params = resolve_renamed_kwarg(
            "CumulonExecutor", "params", "compiler_params",
            params, compiler_params)
        self.tile_size = tile_size
        self.max_workers = max_workers
        self.backend = backend
        self.compiler_params = (compiler_params if compiler_params is not None
                                else CompilerParams())
        self.backing = backing if backing is not None else DenseBacking()
        self.recorder = recorder
        self.metrics = metrics
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self._local: LocalExecutor | None = None

    @property
    def params(self) -> CompilerParams:
        """Deprecated alias for :attr:`compiler_params`."""
        warn_renamed("CumulonExecutor", "params", "compiler_params")
        return self.compiler_params

    def _local_executor(self) -> LocalExecutor:
        # Reused across runs so the process backend's worker pool survives
        # between programs instead of respawning per run.
        if self._local is None:
            self._local = LocalExecutor(max_workers=self.max_workers,
                                        recorder=self.recorder,
                                        metrics=self.metrics,
                                        retry_policy=self.retry_policy,
                                        fault_injector=self.fault_injector,
                                        backend=self.backend)
        return self._local

    def close(self) -> None:
        """Release backend resources (the process backend's worker pool)."""
        if self._local is not None:
            self._local.close()
            self._local = None

    def __enter__(self) -> "CumulonExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, program: Program,
            inputs: dict[str, np.ndarray] | None = None) -> ExecutionResult:
        """Execute ``program`` with the given numpy inputs."""
        inputs = inputs or {}
        recorder = self.recorder
        with recorder.span(f"load-inputs:{program.name}", "executor"):
            self._load_inputs(program, inputs)
        context = PhysicalContext(self.tile_size, self.backing, attach_run=True)
        with recorder.span(f"compile:{program.name}", "executor"):
            compiled = compile_program(program, context, self.compiler_params,
                                       recorder=recorder,
                                       metrics=self.metrics)
        executor = self._local_executor()
        with recorder.span(f"execute:{program.name}", "executor"):
            report = executor.run(compiled.dag)
        with recorder.span(f"collect-outputs:{program.name}", "executor"):
            outputs, tiled = self._collect_outputs(program, compiled)
        trace = recorder.trace() if recorder.enabled else None
        return ExecutionResult(outputs, report, compiled, tiled, trace=trace)

    # -- helpers -----------------------------------------------------------------

    def _load_inputs(self, program: Program,
                     inputs: dict[str, np.ndarray]) -> None:
        missing = set(program.inputs) - set(inputs)
        if missing:
            raise ValidationError(
                f"program {program.name!r} is missing inputs: {sorted(missing)}"
            )
        extra = set(inputs) - set(program.inputs)
        if extra:
            raise ValidationError(
                f"unknown inputs for program {program.name!r}: {sorted(extra)}"
            )
        for name, array in inputs.items():
            declared = program.inputs[name].shape
            array = np.atleast_2d(np.asarray(array, dtype=np.float64))
            if array.shape != declared:
                raise ValidationError(
                    f"input {name!r} has shape {array.shape}, "
                    f"declared {declared}"
                )
            TiledMatrix.from_numpy(name, array, self.tile_size, self.backing)

    def _collect_outputs(self, program: Program, compiled: CompiledProgram
                         ) -> tuple[dict[str, np.ndarray], dict[str, TiledMatrix]]:
        names = program.outputs or [
            statement.target for statement in program.statements[-1:]
        ]
        outputs: dict[str, np.ndarray] = {}
        tiled: dict[str, TiledMatrix] = {}
        for name in names:
            info = compiled.output_info(name)
            matrix = TiledMatrix(info.name, info.grid, self.backing)
            tiled[name] = matrix
            outputs[name] = matrix.to_numpy()
        return outputs, tiled


def run_program(program: Program, inputs: dict[str, np.ndarray] | None = None,
                tile_size: int = DEFAULT_TILE_SIZE,
                max_workers: int = 4,
                compiler_params: CompilerParams | None = None,
                recorder: TraceRecorder = NULL_RECORDER,
                backend: str = BACKEND_THREAD,
                params: CompilerParams | None = None) -> ExecutionResult:
    """One-shot convenience: execute ``program`` and return its results."""
    compiler_params = resolve_renamed_kwarg(
        "run_program", "params", "compiler_params", params, compiler_params)
    with CumulonExecutor(tile_size=tile_size, max_workers=max_workers,
                         compiler_params=compiler_params,
                         recorder=recorder, backend=backend) as executor:
        return executor.run(program, inputs)
