"""Cumulon's logical plan language: matrix expressions.

Programs are written against :class:`Expr` nodes with natural operators::

    w = (x.T @ x).inverse_free_solve(...)      # no — see workloads for solvers
    h_new = h * (w.T @ v) / (w.T @ (w @ h))    # GNMF update, as in the paper

Supported logical operators: matrix multiply (``@``), element-wise ``+ - * /``,
transpose (``.T``), scalar combinations, and element functions
(``exp``/``log``/``sqrt``/``abs``/``pow``).  Shapes are inferred and checked
at construction; an estimated nonzero density is propagated for the cost
model's sparse-input experiments.

The logical layer is deliberately small: everything the paper's workloads
(matrix-multiply chains, GNMF, RSVD, regression, power iteration) need, and
nothing more.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, ValidationError

def _sigmoid(array):
    return 1.0 / (1.0 + np.exp(-array))


#: Element functions usable with :meth:`Expr.apply`.
ELEMENT_FUNCTIONS = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "square": np.square,
    "sigmoid": _sigmoid,
}

#: Binary element-wise operators and their numpy implementations.
BINARY_OPERATORS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "min": np.minimum,
    "max": np.maximum,
}


class Expr:
    """Base class of all logical-plan nodes."""

    #: (rows, cols) — set by every subclass constructor.
    shape: tuple[int, int]
    #: Estimated fraction of nonzero elements in [0, 1].
    density: float

    # -- operator sugar -----------------------------------------------------

    def __matmul__(self, other: "Expr") -> "MatMul":
        return MatMul(self, _as_expr(other))

    def __add__(self, other) -> "Expr":
        if _is_scalar(other):
            return ScalarOp(self, "add", float(other))
        return Binary("add", self, _as_expr(other))

    def __radd__(self, other) -> "Expr":
        return self.__add__(other)

    def __sub__(self, other) -> "Expr":
        if _is_scalar(other):
            return ScalarOp(self, "add", -float(other))
        return Binary("sub", self, _as_expr(other))

    def __mul__(self, other) -> "Expr":
        if _is_scalar(other):
            return ScalarOp(self, "mul", float(other))
        return Binary("mul", self, _as_expr(other))

    def __rmul__(self, other) -> "Expr":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Expr":
        if _is_scalar(other):
            if other == 0:
                raise ValidationError("division by scalar zero")
            return ScalarOp(self, "mul", 1.0 / float(other))
        return Binary("div", self, _as_expr(other))

    def __neg__(self) -> "Expr":
        return ScalarOp(self, "mul", -1.0)

    @property
    def T(self) -> "Expr":  # noqa: N802 - matches numpy convention
        return Transpose(self)

    def apply(self, func_name: str) -> "ElementFunc":
        return ElementFunc(self, func_name)

    def minimum(self, other: "Expr") -> "Binary":
        """Element-wise minimum (broadcasting like the other operators)."""
        return Binary("min", self, _as_expr(other))

    def maximum(self, other: "Expr") -> "Binary":
        """Element-wise maximum; ``X.maximum(zeros)`` is ReLU-style clipping."""
        return Binary("max", self, _as_expr(other))

    # -- aggregations (desugared to multiplies with constant matrices) -------

    def row_sums(self) -> "MatMul":
        """Column vector of per-row sums: ``X @ ones(cols, 1)``."""
        return MatMul(self, Constant(1.0, (self.shape[1], 1)))

    def col_sums(self) -> "MatMul":
        """Row vector of per-column sums: ``ones(1, rows) @ X``."""
        return MatMul(Constant(1.0, (1, self.shape[0])), self)

    def sum_all(self) -> "MatMul":
        """Grand total as a 1x1 matrix."""
        return self.row_sums().col_sums()

    def mean_all(self) -> "Expr":
        """Grand mean as a 1x1 matrix."""
        rows, cols = self.shape
        return self.sum_all() * (1.0 / (rows * cols))

    # -- traversal ----------------------------------------------------------

    def children(self) -> tuple["Expr", ...]:
        return ()

    def free_variables(self) -> set[str]:
        """Names of :class:`Var` leaves under this expression."""
        names: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                names.add(node.name)
            stack.extend(node.children())
        return names

    def describe(self) -> str:
        """Compact single-line rendering for logs and error messages."""
        raise NotImplementedError


def _is_scalar(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _as_expr(value) -> "Expr":
    if isinstance(value, Expr):
        return value
    raise ValidationError(
        f"expected a matrix expression, got {type(value).__name__}; "
        "wrap scalars via scalar operators (A * 2.0)"
    )


@dataclass(frozen=True)
class Constant(Expr):
    """A matrix filled with one value, materialized lazily by the compiler.

    Constants make aggregations expressible as multiplies — ``row_sums(X)``
    is ``X @ ones(cols, 1)`` — which is how Cumulon-style engines reuse the
    multiply template for reductions.
    """

    value: float
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if rows <= 0 or cols <= 0:
            raise ShapeError(f"constant has invalid shape {self.shape}")
        if not math.isfinite(self.value):
            raise ValidationError(f"constant value must be finite: {self.value}")

    @property
    def density(self) -> float:  # type: ignore[override]
        return 1.0 if self.value != 0 else 0.0

    def describe(self) -> str:
        rows, cols = self.shape
        return f"const({self.value:g}, {rows}x{cols})"


def ones(rows: int, cols: int) -> Constant:
    """An all-ones matrix (the reduction workhorse)."""
    return Constant(1.0, (rows, cols))


@dataclass(frozen=True)
class Var(Expr):
    """Reference to a named matrix bound in the program environment."""

    name: str
    shape: tuple[int, int]
    density: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("variable name must be non-empty")
        rows, cols = self.shape
        if rows <= 0 or cols <= 0:
            raise ShapeError(f"variable {self.name!r} has invalid shape {self.shape}")
        if not 0.0 <= self.density <= 1.0:
            raise ValidationError(
                f"density must be in [0, 1], got {self.density}"
            )

    def describe(self) -> str:
        return self.name


class Transpose(Expr):
    """Logical transpose; physical layer folds it into tile reads."""

    def __init__(self, child: Expr):
        self.child = child
        self.shape = (child.shape[1], child.shape[0])
        self.density = child.density

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"({self.child.describe()})'"


class MatMul(Expr):
    """Matrix product."""

    def __init__(self, left: Expr, right: Expr):
        if left.shape[1] != right.shape[0]:
            raise ShapeError(
                f"cannot multiply {left.describe()} {left.shape} by "
                f"{right.describe()} {right.shape}"
            )
        self.left = left
        self.right = right
        self.shape = (left.shape[0], right.shape[1])
        self.density = estimate_matmul_density(
            left.density, right.density, left.shape[1]
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"({self.left.describe()} @ {self.right.describe()})"


def broadcast_shapes(left: tuple[int, int],
                     right: tuple[int, int]) -> tuple[int, int]:
    """Numpy-style broadcast of two 2-D shapes (dims must match or be 1)."""
    result = []
    for left_dim, right_dim in zip(left, right):
        if left_dim == right_dim or right_dim == 1:
            result.append(left_dim)
        elif left_dim == 1:
            result.append(right_dim)
        else:
            raise ShapeError(
                f"shapes {left} and {right} are not broadcastable"
            )
    return (result[0], result[1])


class Binary(Expr):
    """Element-wise binary operation, with numpy-style broadcasting.

    Row vectors (1 x c), column vectors (r x 1), and scalars-as-matrices
    (1 x 1) broadcast against (r x c) operands — how centering and
    normalization are written (``X - mu`` with a row-vector mu).
    """

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in BINARY_OPERATORS:
            raise ValidationError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self.shape = broadcast_shapes(left.shape, right.shape)
        self.density = estimate_binary_density(op, left.density, right.density)

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        symbol = {"add": "+", "sub": "-", "mul": ".*", "div": "./",
                  "min": "min", "max": "max"}[self.op]
        if symbol in ("min", "max"):
            return (f"{symbol}({self.left.describe()}, "
                    f"{self.right.describe()})")
        return f"({self.left.describe()} {symbol} {self.right.describe()})"


class ScalarOp(Expr):
    """Element-wise combination with a scalar: ``A + c`` or ``A * c``."""

    def __init__(self, child: Expr, op: str, scalar: float):
        if op not in ("add", "mul"):
            raise ValidationError(f"scalar op must be add or mul, got {op!r}")
        if not math.isfinite(scalar):
            raise ValidationError(f"scalar must be finite, got {scalar}")
        self.child = child
        self.op = op
        self.scalar = scalar
        self.shape = child.shape
        if op == "mul":
            self.density = child.density if scalar != 0 else 0.0
        else:
            self.density = 1.0 if scalar != 0 else child.density

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def describe(self) -> str:
        symbol = "+" if self.op == "add" else "*"
        return f"({self.child.describe()} {symbol} {self.scalar:g})"


class ElementFunc(Expr):
    """Element function applied to every entry (exp, log, sqrt, ...)."""

    def __init__(self, child: Expr, func_name: str):
        if func_name not in ELEMENT_FUNCTIONS:
            known = ", ".join(sorted(ELEMENT_FUNCTIONS))
            raise ValidationError(
                f"unknown element function {func_name!r}; known: {known}"
            )
        self.child = child
        self.func_name = func_name
        self.shape = child.shape
        # exp(0) = 1 and sigmoid(0) = 0.5 densify; the others preserve the
        # zero pattern.
        densifying = ("exp", "sigmoid")
        self.density = 1.0 if func_name in densifying else child.density

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"{self.func_name}({self.child.describe()})"


# ---------------------------------------------------------------------------
# Density estimation (standard independence assumptions).
# ---------------------------------------------------------------------------

def estimate_matmul_density(left: float, right: float, inner_dim: int) -> float:
    """P(C[i,j] != 0) assuming independent nonzero positions."""
    hit = left * right
    if hit <= 0.0:
        return 0.0
    return min(1.0, 1.0 - (1.0 - hit) ** max(1, inner_dim))


def estimate_binary_density(op: str, left: float, right: float) -> float:
    if op in ("add", "sub", "min", "max"):
        # Union of the two patterns (min/max of a nonzero and a zero can go
        # either way; union is the safe upper bound).
        return min(1.0, left + right - left * right)
    if op == "mul":
        # Intersection.
        return left * right
    # Division: conservatively treat as dense (0/0 and x/0 handled at exec).
    return 1.0


def evaluate_with_numpy(expr: Expr, env: dict[str, np.ndarray]) -> np.ndarray:
    """Reference interpreter: evaluate an expression on plain numpy arrays.

    Used by tests to cross-check the compiled tile-level execution.
    """
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise ValidationError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, Constant):
        return np.full(expr.shape, expr.value)
    if isinstance(expr, Transpose):
        return evaluate_with_numpy(expr.child, env).T
    if isinstance(expr, MatMul):
        return (evaluate_with_numpy(expr.left, env)
                @ evaluate_with_numpy(expr.right, env))
    if isinstance(expr, Binary):
        func = BINARY_OPERATORS[expr.op]
        return func(evaluate_with_numpy(expr.left, env),
                    evaluate_with_numpy(expr.right, env))
    if isinstance(expr, ScalarOp):
        child = evaluate_with_numpy(expr.child, env)
        return child + expr.scalar if expr.op == "add" else child * expr.scalar
    if isinstance(expr, ElementFunc):
        func = ELEMENT_FUNCTIONS[expr.func_name]
        return func(evaluate_with_numpy(expr.child, env))
    raise ValidationError(f"unknown expression node {type(expr).__name__}")
