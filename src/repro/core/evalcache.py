"""Content-addressed memoization of candidate-deployment simulations.

The deployment optimizer prices every candidate by *re-simulating* the
compiled job DAG on the candidate cluster — and the reliability-aware
search multiplies that by N seeded failure scenarios.  Most of those
simulations are exact repeats: the same plan fingerprint on the same
cluster under the same failure draw always yields the same timeline
(the simulator is deterministic by design), so pricing it twice is pure
waste.  An :class:`EvalCache` is a content-addressed memo over those
simulations, which is what makes deadline sweeps, repeated solver calls,
and the reliability search cheap (see ``docs/optimizer.md``,
"Search performance").

Cache-coherence invariant
-------------------------

A memo entry may be reused **only** when every input that can change the
simulated timeline is part of the key:

* the compiled DAG (via :func:`repro.hadoop.simulator.dag_fingerprint` —
  content-addressed, so two optimizers compiling identical programs share
  entries when handed the same cache);
* the cluster spec (instance type, node count, slots per node);
* scheduler options (``locality_aware``, ``min_live_nodes``);
* the cost model (coefficients + config, via :func:`model_fingerprint`);
* the failure model, **including its seeds**, via
  ``NodeFailureModel.fingerprint()``.  A model that cannot prove its
  identity (a user subclass without a fingerprint) returns ``None`` and
  the simulation **bypasses the cache entirely** — a stale hit across
  chaos seeds would silently corrupt the reliability search, so the
  failure mode is "slower", never "wrong".

Hits and misses are counted on the cache and, when a
:class:`~repro.observability.metrics.MetricsRegistry` is attached, mirrored
into ``optimizer.evalcache_hits`` / ``optimizer.evalcache_misses``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, fields, is_dataclass
from pathlib import Path

from repro.errors import ValidationError

#: Persistence-document schema version (see :meth:`EvalCache.to_document`).
CACHE_SCHEMA_VERSION = 1

#: Default bound on memo entries; oldest entries are evicted FIFO beyond it.
DEFAULT_MAX_ENTRIES = 65536

#: Key component marking "no node failures injected".
NO_FAILURES_FP = "none"


def model_fingerprint(model) -> str | None:
    """Stable identity of a task-time model, or ``None`` if unprovable.

    A :class:`~repro.core.costmodel.CumulonCostModel` is identified by the
    field values of its coefficients and config dataclasses.  Any model
    shape this function does not recognize yields ``None``, which makes
    callers bypass the cache rather than risk a stale hit.
    """
    parts: list[str] = [type(model).__name__]
    for attr in ("coefficients", "config"):
        value = getattr(model, attr, None)
        if value is None:
            continue
        if not is_dataclass(value):
            return None
        parts.append(":".join(
            f"{f.name}={getattr(value, f.name)!r}" for f in fields(value)))
    if len(parts) == 1:  # nothing recognizable to fingerprint
        return None
    return "|".join(parts)


@dataclass(frozen=True)
class EvalKey:
    """The full identity of one candidate simulation.

    Two simulations with equal keys are guaranteed to produce the same
    timeline; any differing component — plan, hardware, configuration, or
    failure seed — produces a different key (property-tested in
    ``tests/test_props_evalcache.py``).
    """

    dag_fp: str
    instance: str
    nodes: int
    slots: int
    locality_aware: bool
    min_live_nodes: int
    model_fp: str
    failures_fp: str = NO_FAILURES_FP


def eval_key(dag_fp: str | None, spec, model_fp: str | None,
             locality_aware: bool = True, min_live_nodes: int = 1,
             failures_fp: str | None = NO_FAILURES_FP) -> EvalKey | None:
    """Build the memo key for one simulation, or ``None`` to bypass.

    ``None`` for any fingerprint means that component cannot prove its
    identity; the only safe answer is "don't cache this simulation".
    """
    if dag_fp is None or model_fp is None or failures_fp is None:
        return None
    return EvalKey(
        dag_fp=dag_fp,
        instance=spec.instance_type.name,
        nodes=spec.num_nodes,
        slots=spec.slots_per_node,
        locality_aware=locality_aware,
        min_live_nodes=min_live_nodes,
        model_fp=model_fp,
        failures_fp=failures_fp,
    )


@dataclass(frozen=True)
class CachedEstimate:
    """The slim, immutable payload stored per key.

    Only what the optimizer consumes is kept — the makespan and per-job
    durations — not the full :class:`SimulationResult` with its attempt
    lists, so a long search holds bounded memory per entry.  ``aborted``
    records scenarios that raised (quorum lost / retries exhausted), so a
    deterministic failure replays as the same exception without re-running
    the simulation.
    """

    seconds: float
    job_seconds: tuple[tuple[str, float], ...] = ()
    aborted: bool = False
    abort_message: str = ""
    #: True when the abort was a quorum loss (so the replayed exception
    #: keeps its type).
    abort_quorum: bool = False


class EvalCache:
    """Thread-safe content-addressed memo of candidate simulations.

    Shared freely: parallel evaluation workers consult it concurrently,
    and several optimizers over the same program may share one instance
    (keys are content-addressed, so cross-optimizer hits are sound).
    """

    enabled = True

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 metrics=None):
        if max_entries <= 0:
            raise ValidationError("max_entries must be positive")
        self.max_entries = max_entries
        self.metrics = metrics
        self._entries: dict[EvalKey, CachedEstimate] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: EvalKey | None) -> CachedEstimate | None:
        """Look up one simulation; counts a hit or miss."""
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
            else:
                self.misses += 1
        if self.metrics is not None and self.metrics.enabled:
            name = ("optimizer.evalcache_hits" if entry is not None
                    else "optimizer.evalcache_misses")
            self.metrics.inc(name)
        return entry

    def put(self, key: EvalKey | None, entry: CachedEstimate) -> None:
        """Store one simulation result (no-op for uncacheable keys)."""
        if key is None:
            return
        with self._lock:
            if key not in self._entries and \
                    len(self._entries) >= self.max_entries:
                # FIFO eviction: dicts preserve insertion order.
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = entry

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0.0 when unused)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-able counters snapshot."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries),
                "hit_rate": self.hit_rate}

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    # -- persistence (the durable admission memo) ------------------------------

    def to_document(self) -> dict:
        """JSON-able dump of every memo entry.

        Keys are content-addressed, so a dumped cache can be reloaded (or
        merged into another cache) on any process: equal keys are
        guaranteed to describe the same simulation.  This is what lets a
        restarted job service skip re-pricing everything it already
        decided (see :mod:`repro.service.durability`).
        """
        with self._lock:
            entries = [{"key": asdict(key), "estimate": asdict(entry)}
                       for key, entry in self._entries.items()]
        return {"schema_version": CACHE_SCHEMA_VERSION, "entries": entries}

    def merge_document(self, document: dict) -> int:
        """Load entries from :meth:`to_document` output; returns the count.

        Existing entries win on key collisions (they describe the same
        simulation anyway); malformed documents raise
        :class:`~repro.errors.ValidationError`.
        """
        if not isinstance(document, dict) or "entries" not in document:
            raise ValidationError("eval-cache document needs an "
                                  "'entries' list")
        version = document.get("schema_version")
        if version != CACHE_SCHEMA_VERSION:
            raise ValidationError(
                f"eval-cache document schema {version!r} is not "
                f"{CACHE_SCHEMA_VERSION}")
        loaded = 0
        for item in document["entries"]:
            try:
                key_doc = dict(item["key"])
                est_doc = dict(item["estimate"])
                key = EvalKey(
                    dag_fp=str(key_doc["dag_fp"]),
                    instance=str(key_doc["instance"]),
                    nodes=int(key_doc["nodes"]),
                    slots=int(key_doc["slots"]),
                    locality_aware=bool(key_doc["locality_aware"]),
                    min_live_nodes=int(key_doc["min_live_nodes"]),
                    model_fp=str(key_doc["model_fp"]),
                    failures_fp=str(key_doc["failures_fp"]),
                )
                entry = CachedEstimate(
                    seconds=float(est_doc["seconds"]),
                    job_seconds=tuple(
                        (str(name), float(seconds))
                        for name, seconds in est_doc.get("job_seconds", ())),
                    aborted=bool(est_doc.get("aborted", False)),
                    abort_message=str(est_doc.get("abort_message", "")),
                    abort_quorum=bool(est_doc.get("abort_quorum", False)),
                )
            except (KeyError, TypeError, ValueError) as error:
                raise ValidationError(
                    f"malformed eval-cache entry: {error}") from error
            with self._lock:
                if key not in self._entries:
                    if len(self._entries) >= self.max_entries:
                        self._entries.pop(next(iter(self._entries)))
                    self._entries[key] = entry
                    loaded += 1
        return loaded

    def save(self, path: str | Path) -> None:
        """Persist the memo as JSON (atomic: tmp file + rename)."""
        target = Path(path)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_document(), sort_keys=True))
        tmp.replace(target)

    @classmethod
    def load(cls, path: str | Path,
             max_entries: int = DEFAULT_MAX_ENTRIES,
             metrics=None) -> "EvalCache":
        """Rebuild a cache from :meth:`save` output."""
        cache = cls(max_entries=max_entries, metrics=metrics)
        try:
            document = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ValidationError(
                f"cannot load eval cache from {path}: {error}") from error
        cache.merge_document(document)
        return cache


class NullEvalCache(EvalCache):
    """Disabled cache: every lookup misses, nothing is stored.

    The sequential-baseline object: an optimizer holding this prices every
    candidate from scratch, which is what the differential tests and the
    E22 bench compare the memoized search against.
    """

    enabled = False

    def __init__(self):
        """No configuration; nothing is ever stored."""
        super().__init__()

    def get(self, key):
        """Always a miss (uncounted)."""
        return None

    def put(self, key, entry):
        """No-op."""


#: Shared disabled instance (stateless, so sharing is safe).
NULL_EVAL_CACHE = NullEvalCache()
