"""CumulonSession: the one-object front door.

Wires together the pieces a user otherwise assembles by hand — a provisioned
(simulated) cluster with its tile store, the executor, the optimizer, and
ingestion — behind one object::

    session = CumulonSession(tile_size=256)
    session.ingest_csv("X", csv_text)
    session.ingest_array("G", g)
    result = session.run(program)          # executes on the session store
    plan = session.optimize(big_program).minimize_cost_under_deadline(3600)

Everything the session stores lives in one simulated HDFS cluster, so
storage accounting, locality, and replication are consistent across calls.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.instances import ClusterSpec, get_instance_type
from repro.cloud.provisioning import ProvisionedCluster, provision
from repro.core.compiler import CompilerParams
from repro.core.executor import CumulonExecutor, ExecutionResult
from repro.core.optimizer import DeploymentOptimizer
from repro.core.program import Program
from repro.errors import ValidationError
from repro.hdfs.tilestore import TileStore
from repro.ingest.loader import ingest_array as _ingest_array
from repro.ingest.loader import ingest_csv as _ingest_csv
from repro.matrix.tiled import TiledMatrix


class CumulonSession:
    """A working context: one storage cluster, one executor, one optimizer."""

    def __init__(self, tile_size: int = 256, max_workers: int = 4,
                 storage_nodes: int = 3, replication: int = 2,
                 instance: str = "m1.large",
                 params: CompilerParams | None = None):
        if storage_nodes <= 0:
            raise ValidationError("storage_nodes must be positive")
        self.tile_size = tile_size
        self.params = params if params is not None else CompilerParams()
        spec = ClusterSpec(get_instance_type(instance), storage_nodes,
                           slots_per_node=1)
        self.cluster: ProvisionedCluster = provision(spec,
                                                     replication=replication)
        self.store = TileStore(self.cluster.namenode)
        self._executor = CumulonExecutor(
            tile_size=tile_size, max_workers=max_workers,
            params=self.params, backing=self.store,
        )

    # -- data in -------------------------------------------------------------

    def ingest_array(self, name: str, array: np.ndarray) -> TiledMatrix:
        """Tile an in-memory array into the session store."""
        return _ingest_array(name, np.asarray(array, dtype=np.float64),
                             self.tile_size, self.store)

    def ingest_csv(self, name: str, text: str,
                   delimiter: str = ",") -> TiledMatrix:
        """Parse delimited text and tile it into the session store."""
        return _ingest_csv(name, text, self.tile_size, self.store,
                           delimiter=delimiter)

    def get_matrix(self, name: str, rows: int, cols: int) -> np.ndarray:
        """Read a stored matrix back as numpy (by its declared shape)."""
        from repro.matrix.tiled import TileGrid
        grid = TileGrid(rows, cols, self.tile_size)
        return TiledMatrix(name, grid, self.store).to_numpy()

    # -- execute -------------------------------------------------------------

    def run(self, program: Program,
            inputs: dict[str, np.ndarray] | None = None) -> ExecutionResult:
        """Execute a program.  Inputs already ingested under their declared
        names may be omitted; any provided arrays are (re)ingested first."""
        inputs = dict(inputs or {})
        for name, var in program.inputs.items():
            if name in inputs:
                continue
            if self._has_matrix(name, var.shape):
                grid_rows, grid_cols = var.shape
                inputs[name] = self.get_matrix(name, grid_rows, grid_cols)
            # else: the executor will raise a clear missing-input error.
        return self._executor.run(program, inputs)

    def _has_matrix(self, name: str, shape: tuple[int, int]) -> bool:
        from repro.matrix.tile import TileId
        from repro.matrix.tiled import TileGrid
        grid = TileGrid(shape[0], shape[1], self.tile_size)
        return all(self.store.exists(TileId(name, row, col))
                   for row, col in grid.positions())

    # -- plan ----------------------------------------------------------------

    def optimize(self, program: Program,
                 tile_size: int | None = None) -> DeploymentOptimizer:
        """An optimizer for (usually a scaled-up version of) a program."""
        return DeploymentOptimizer(
            program,
            tile_size=tile_size if tile_size is not None else self.tile_size,
        )

    # -- introspection ---------------------------------------------------------

    def storage_used_bytes(self) -> int:
        """Total bytes (including replication) used in the session store."""
        return self.cluster.namenode.total_used_bytes()

    def stored_matrices(self) -> list[str]:
        """Names of matrices with at least one tile in the store."""
        names = set()
        for path in self.cluster.namenode.list_files(self.store.root + "/"):
            relative = path[len(self.store.root) + 1:]
            names.add(relative.split("/")[0])
        return sorted(names)
