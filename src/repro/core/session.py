"""CumulonSession: the one-object front door.

Wires together the pieces a user otherwise assembles by hand — a provisioned
(simulated) cluster with its tile store, the executor, the optimizer, and
ingestion — behind one object::

    session = CumulonSession(tile_size=256, nodes=4, slots_per_node=2)
    session.ingest_csv("X", csv_text)
    session.ingest_array("G", g)
    result = session.run(program)          # executes on the session store
    handle = session.submit(program)       # async: a service JobHandle
    plan = search(session.optimize(big_program),
                  SearchSpec(deadline_seconds=3600)).plan
    print(session.trace, session.metrics.snapshot())

Everything the session stores lives in one simulated HDFS cluster, so
storage accounting, locality, and replication are consistent across calls.
Internally the session is a thin client of the multi-tenant
:class:`~repro.service.jobs.JobService`: every ``run``/``submit`` goes
through the same admission, scheduling, and accounting path a shared
deployment uses, with the session as the sole tenant.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.instances import ClusterSpec, get_instance_type
from repro.cloud.provisioning import ProvisionedCluster, provision
from repro.core.compat import resolve_renamed_kwarg, warn_renamed
from repro.core.compiler import CompilerParams
from repro.core.executor import CumulonExecutor, ExecutionResult
from repro.core.optimizer import DeploymentOptimizer
from repro.core.program import Program
from repro.errors import ValidationError
from repro.hdfs.tilestore import TileStore
from repro.ingest.loader import ingest_array as _ingest_array
from repro.ingest.loader import ingest_csv as _ingest_csv
from repro.matrix.tiled import TiledMatrix
from repro.observability.metrics import NULL_METRICS, MetricsRegistry
from repro.observability.trace import (
    NULL_RECORDER,
    SOURCE_ACTUAL,
    InMemoryRecorder,
    Trace,
)

#: The tenant name a session registers for itself on its private service.
SESSION_TENANT = "session"


class CumulonSession:
    """A working context: one storage cluster, one executor, one service.

    The cluster is described either by a full ``cluster``
    :class:`~repro.cloud.instances.ClusterSpec` or by the
    ``instance``/``nodes``/``slots_per_node`` pieces (not both).
    ``storage_nodes`` and ``params`` are the deprecated spellings of
    ``nodes`` and ``compiler_params``.  ``telemetry`` (default on) keeps
    an in-memory trace recorder and metrics registry wired through every
    run — :attr:`trace` and :attr:`metrics` expose them.  ``backend``
    selects the local execution backend (``"thread"`` or ``"process"`` —
    see :mod:`repro.hadoop.local`); ``codec`` stores tiles compressed at
    rest (see :mod:`repro.hdfs.tilestore`).  Sessions are context managers;
    use ``with`` (or call :meth:`close`) when running the process backend
    so its worker pool is torn down deterministically.
    """

    def __init__(self, tile_size: int = 256, max_workers: int = 4,
                 cluster: ClusterSpec | None = None,
                 nodes: int | None = None, replication: int = 2,
                 instance: str | None = None,
                 slots_per_node: int | None = None,
                 compiler_params: CompilerParams | None = None,
                 telemetry: bool = True,
                 backend: str = "thread",
                 codec: str | None = None,
                 storage_nodes: int | None = None,
                 params: CompilerParams | None = None):
        nodes = resolve_renamed_kwarg("CumulonSession", "storage_nodes",
                                      "nodes", storage_nodes, nodes)
        compiler_params = resolve_renamed_kwarg(
            "CumulonSession", "params", "compiler_params",
            params, compiler_params)
        if cluster is not None:
            if nodes is not None or instance is not None \
                    or slots_per_node is not None:
                raise ValidationError(
                    "pass either cluster= or instance/nodes/slots_per_node, "
                    "not both")
            spec = cluster
        else:
            nodes = 3 if nodes is None else nodes
            if nodes <= 0:
                raise ValidationError("nodes must be positive")
            spec = ClusterSpec(
                get_instance_type(instance or "m1.large"), nodes,
                slots_per_node=1 if slots_per_node is None
                else slots_per_node)
        self.tile_size = tile_size
        self.spec = spec
        self.compiler_params = (compiler_params if compiler_params is not None
                                else CompilerParams())
        self._recorder = (InMemoryRecorder(source=SOURCE_ACTUAL)
                          if telemetry else NULL_RECORDER)
        self._registry = MetricsRegistry() if telemetry else NULL_METRICS
        self.cluster: ProvisionedCluster = provision(spec,
                                                     replication=replication)
        self.store = TileStore(self.cluster.namenode, codec=codec,
                               metrics=self._registry)
        self._executor = CumulonExecutor(
            tile_size=tile_size, max_workers=max_workers,
            compiler_params=self.compiler_params, backing=self.store,
            recorder=self._recorder, metrics=self._registry,
            backend=backend,
        )
        # Lazily built: most sessions only ingest + optimize, and building
        # the service pulls in the whole admission/scheduling stack.
        self._service = None

    # -- deprecated spellings -------------------------------------------------

    @property
    def params(self) -> CompilerParams:
        """Deprecated alias for :attr:`compiler_params`."""
        warn_renamed("CumulonSession", "params", "compiler_params")
        return self.compiler_params

    # -- telemetry ------------------------------------------------------------

    @property
    def trace(self) -> Trace:
        """Everything the session's executor has recorded so far."""
        return self._recorder.trace()

    @property
    def metrics(self) -> MetricsRegistry:
        """The session's metrics registry (``.snapshot()`` to dump it)."""
        return self._registry

    # -- the backing job service ----------------------------------------------

    @property
    def service(self):
        """The single-tenant job service every run goes through."""
        if self._service is None:
            from repro.service.jobs import JobService
            self._service = JobService(
                self.spec, tile_size=self.tile_size,
                tune_physical=False,  # sessions run the plan they were given
                executor=self._executor,
                metrics=self._registry, recorder=self._recorder,
            )
            self._service.add_tenant(SESSION_TENANT)
        return self._service

    # -- data in -------------------------------------------------------------

    def ingest_array(self, name: str, array: np.ndarray) -> TiledMatrix:
        """Tile an in-memory array into the session store."""
        return _ingest_array(name, np.asarray(array, dtype=np.float64),
                             self.tile_size, self.store)

    def ingest_csv(self, name: str, text: str,
                   delimiter: str = ",") -> TiledMatrix:
        """Parse delimited text and tile it into the session store."""
        return _ingest_csv(name, text, self.tile_size, self.store,
                           delimiter=delimiter)

    def get_matrix(self, name: str, rows: int, cols: int) -> np.ndarray:
        """Read a stored matrix back as numpy (by its declared shape)."""
        from repro.matrix.tiled import TileGrid
        grid = TileGrid(rows, cols, self.tile_size)
        return TiledMatrix(name, grid, self.store).to_numpy()

    # -- execute -------------------------------------------------------------

    def submit(self, program: Program,
               inputs: dict[str, np.ndarray] | None = None):
        """Enqueue a program on the session's service; returns its handle.

        The async spelling of :meth:`run`: the returned
        :class:`~repro.service.jobs.JobHandle` resolves (executing the
        program for real) when its ``result()`` is awaited or the service
        is drained.
        """
        return self.service.submit(program, SESSION_TENANT,
                                   inputs=self._resolve_inputs(program,
                                                               inputs))

    def run(self, program: Program,
            inputs: dict[str, np.ndarray] | None = None) -> ExecutionResult:
        """Execute a program.  Inputs already ingested under their declared
        names may be omitted; any provided arrays are (re)ingested first."""
        result = self.submit(program, inputs).result()
        return result.execution

    def _resolve_inputs(self, program: Program,
                        inputs: dict[str, np.ndarray] | None
                        ) -> dict[str, np.ndarray]:
        inputs = dict(inputs or {})
        for name, var in program.inputs.items():
            if name in inputs:
                continue
            if self._has_matrix(name, var.shape):
                grid_rows, grid_cols = var.shape
                inputs[name] = self.get_matrix(name, grid_rows, grid_cols)
            # else: the executor will raise a clear missing-input error.
        return inputs

    def _has_matrix(self, name: str, shape: tuple[int, int]) -> bool:
        from repro.matrix.tile import TileId
        from repro.matrix.tiled import TileGrid
        grid = TileGrid(shape[0], shape[1], self.tile_size)
        return all(self.store.exists(TileId(name, row, col))
                   for row, col in grid.positions())

    # -- plan ----------------------------------------------------------------

    def optimize(self, program: Program,
                 tile_size: int | None = None,
                 **optimizer_kwargs) -> DeploymentOptimizer:
        """An optimizer for (usually a scaled-up version of) a program.

        Extra keyword arguments pass straight through to
        :class:`~repro.core.optimizer.DeploymentOptimizer` (``workers``,
        ``cache``, ``billing``, ``search_trace``, ...); the session's
        metrics registry is wired in unless overridden.
        """
        optimizer_kwargs.setdefault("metrics", self._registry)
        return DeploymentOptimizer(
            program,
            tile_size=tile_size if tile_size is not None else self.tile_size,
            **optimizer_kwargs,
        )

    # -- introspection ---------------------------------------------------------

    def storage_used_bytes(self) -> int:
        """Total bytes (including replication) used in the session store."""
        return self.cluster.namenode.total_used_bytes()

    def stored_matrices(self) -> list[str]:
        """Names of matrices with at least one tile in the store."""
        names = set()
        for path in self.cluster.namenode.list_files(self.store.root + "/"):
            relative = path[len(self.store.root) + 1:]
            names.add(relative.split("/")[0])
        return sorted(names)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release executor backend resources and the store's fast path."""
        self._executor.close()
        self.store.close()

    def __enter__(self) -> "CumulonSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
