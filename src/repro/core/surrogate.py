"""Surrogate-guided deployment search: a model instead of the grid.

The exhaustive optimizer prices every ``(instance type, node count,
slots)`` spec in the search space — and the reliability-aware solver
multiplies that by N failure scenarios.  This module replaces the grid
scan with the Lynceus/UDAO recipe: price a handful of *seed* candidates,
fit a cheap regressor from hand-rolled features of the cluster shape to
log(time) and log(cost), and pick each next candidate by **constrained
expected improvement** — minimize cost subject to the deadline (or
minimize time subject to the budget), weighting the improvement by the
model's probability that the candidate is feasible at all.

The model is deliberately light ("ridge/GP-lite"): ridge regression on
standardized features, with a distance-inflated residual uncertainty
standing in for a GP posterior — no dependencies beyond numpy, fully
deterministic, and refit from scratch every round (the training set never
exceeds a few dozen rows).

Three properties the exhaustive oracle tests lean on:

* **Feasibility is never guessed.**  The search only returns candidates
  it actually priced (and, in reliable mode, stress-tested across every
  scenario); an infeasible plan can never be returned.
* **Infeasibility is never guessed either.**  While no feasible incumbent
  exists the search keeps pricing (best predicted-feasibility first), so
  :class:`~repro.errors.InfeasibleConstraintError` is raised only after
  the whole grid was priced — exactly when the exhaustive search raises.
* **Local optimality.**  A final *polish* pass walks the grid neighbors
  of the incumbent until none improves, so the returned plan is a local
  optimum of the true (priced) objective, not of the model.

In reliable mode the candidates the search stress-tests also extend the
Pareto story beyond (time, cost): :func:`reliability_frontier` computes
the three-objective skyline over (p95 time, mean cost, completion rate).

``SearchStats.simulations_avoided`` reports the gap to the full
no-early-abort grid (see
:meth:`~repro.core.optimizer.DeploymentOptimizer.grid_sim_requests`), and
``surrogate_rounds`` counts the model-guided pricings after seeding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.instances import ClusterSpec
from repro.core.optimizer import (
    DeploymentOptimizer,
    ReliabilityModel,
    ReliablePlan,
    SearchSpace,
)
from repro.core.plans import DeploymentPlan
from repro.errors import InfeasibleConstraintError, ValidationError
from repro.observability.search import ORIGIN_ADHOC, ORIGIN_SURROGATE


@dataclass(frozen=True)
class SurrogateConfig:
    """Knobs of the model-guided search (defaults suit grids of 20-200).

    ``seeds`` candidates are priced up front to give the model something
    to fit; each of up to ``max_rounds`` acquisition rounds prices the
    candidate maximizing constrained expected improvement, stopping early
    when the best acquisition score falls below ``ei_tolerance``; the
    polish pass then walks at most ``max_polish_steps`` neighbor
    descents.  ``tolerance`` is the documented plan-quality target the
    oracle differential suite asserts: the surrogate's objective value
    stays within ``(1 + tolerance)`` of the exhaustive optimum.
    """

    seeds: int = 5
    max_rounds: int = 12
    max_polish_steps: int = 8
    ridge_lambda: float = 1e-2
    ei_tolerance: float = 1e-4
    #: Floor on predictive sigma in log space (keeps EI exploring).
    sigma_floor: float = 0.02
    #: How strongly distance from the training set inflates sigma.
    explore_weight: float = 1.0
    #: Documented quality target vs the exhaustive optimum (fractional).
    tolerance: float = 0.10

    def __post_init__(self) -> None:
        if self.seeds < 2:
            raise ValidationError(f"seeds must be >= 2, got {self.seeds}")
        if self.max_rounds < 0:
            raise ValidationError("max_rounds must be >= 0")
        if self.ridge_lambda <= 0:
            raise ValidationError("ridge_lambda must be positive")
        if not 0 <= self.tolerance:
            raise ValidationError("tolerance must be >= 0")


@dataclass
class SurrogateResult:
    """What one surrogate search found (``search()`` wraps this)."""

    #: The chosen failure-free plan (``reliable.plan`` in reliable mode).
    plan: DeploymentPlan
    #: The stress-tested plan in reliable mode, else None.
    reliable: ReliablePlan | None = None
    #: Every reliable candidate that was stress-tested (reliable mode).
    reliable_candidates: list[ReliablePlan] = field(default_factory=list)
    #: Model-guided pricings after the seed phase (== stats field).
    rounds: int = 0
    #: Cluster specs actually priced, in pricing order.
    priced_specs: list[ClusterSpec] = field(default_factory=list)


def reliability_frontier(plans: list[ReliablePlan]) -> list[ReliablePlan]:
    """Three-objective Pareto skyline: (p95 time, mean cost, completion).

    Extends the optimizer's (time, cost) frontier with the reliability
    completion rate as a third objective — a plan that is slower *and*
    dearer may still be undominated because more of its failure scenarios
    finish.  Dominance: no worse on all three axes, strictly better on
    one; ties on all three keep the earlier arrival.
    """
    frontier: list[ReliablePlan] = []
    for candidate in plans:
        dominated = False
        for other in plans:
            if other is candidate:
                continue
            no_worse = (other.p95_seconds <= candidate.p95_seconds
                        and other.mean_cost <= candidate.mean_cost
                        and other.completion_rate >= candidate.completion_rate)
            better = (other.p95_seconds < candidate.p95_seconds
                      or other.mean_cost < candidate.mean_cost
                      or other.completion_rate > candidate.completion_rate)
            if no_worse and better:
                dominated = True
                break
            if no_worse and not better and other in frontier:
                dominated = True  # exact tie: earlier arrival already kept
                break
        if not dominated:
            frontier.append(candidate)
    return frontier


def _phi(z: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)


def _Phi(z: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _spec_features(spec: ClusterSpec) -> list[float]:
    """Hand-rolled feature vector of one cluster spec (no bias term).

    Log features capture the power laws the cost model is built from
    (time ~ work / parallelism, cost ~ nodes x price x hours); the
    reciprocal total-slots term lets the model express the serial
    fraction that keeps big clusters from scaling linearly.
    """
    instance = spec.instance_type
    total_slots = spec.num_nodes * spec.slots_per_node
    return [
        math.log2(spec.num_nodes),
        math.log2(spec.slots_per_node),
        math.log2(total_slots),
        1.0 / total_slots,
        float(spec.num_nodes),
        instance.core_speed,
        math.log2(instance.price_per_hour),
        math.log2(instance.disk_bandwidth),
        math.log2(instance.network_bandwidth),
        instance.memory_gb,
    ]


class _RidgeModel:
    """Ridge regression with distance-inflated uncertainty (GP-lite).

    Fit on standardized features against a scalar log-target.  The
    predictive sigma is the training residual RMS inflated by the
    candidate's distance to its nearest training row — far from the data
    the model admits it is guessing, which is what drives exploration.
    """

    def __init__(self, rows: np.ndarray, targets: np.ndarray,
                 ridge_lambda: float, sigma_floor: float,
                 explore_weight: float):
        self._mean = rows.mean(axis=0)
        std = rows.std(axis=0)
        self._std = np.where(std > 1e-12, std, 1.0)
        normalized = (rows - self._mean) / self._std
        self._train = normalized
        design = np.hstack([normalized,
                            np.ones((normalized.shape[0], 1))])
        gram = design.T @ design
        gram += ridge_lambda * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ targets)
        residuals = design @ self._weights - targets
        self._residual_rms = float(np.sqrt(np.mean(residuals ** 2)))
        self._sigma_floor = sigma_floor
        self._explore_weight = explore_weight

    def predict(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(mu, sigma)`` per row, both in the target's (log) space."""
        normalized = (rows - self._mean) / self._std
        design = np.hstack([normalized,
                            np.ones((normalized.shape[0], 1))])
        mu = design @ self._weights
        # Distance of each candidate to its nearest training row.
        deltas = normalized[:, None, :] - self._train[None, :, :]
        nearest = np.sqrt((deltas ** 2).sum(axis=2)).min(axis=1)
        scale = math.sqrt(self._train.shape[1])
        sigma = np.maximum(
            self._sigma_floor,
            self._residual_rms * (1.0 + self._explore_weight
                                  * nearest / scale))
        return mu, sigma


#: Surrogate objectives (which axis is minimized, which is constrained).
_MODE_DEADLINE = "deadline"  # minimize cost s.t. time <= deadline
_MODE_BUDGET = "budget"      # minimize time s.t. cost <= budget


class _SurrogateSearch:
    """One surrogate search over one optimizer's grid (internal)."""

    def __init__(self, optimizer: DeploymentOptimizer, space: SearchSpace,
                 config: SurrogateConfig, mode: str, limit: float,
                 reliability: ReliabilityModel | None):
        self.optimizer = optimizer
        self.space = space
        self.config = config
        self.mode = mode
        self.limit = limit
        self.reliability = reliability
        self.specs = optimizer._grid_specs(space)
        self.features = np.array([_spec_features(spec)
                                  for spec in self.specs])
        #: index -> tuned DeploymentPlan for priced specs.
        self.plans: dict[int, DeploymentPlan] = {}
        #: index -> ReliablePlan | None for stress-tested specs.
        self.reliable_plans: dict[int, ReliablePlan] = {}
        self.rounds = 0
        self.incumbent: int | None = None

    # -- objective/constraint accessors (mode-dependent) -------------------

    def _objective(self, index: int) -> float:
        """The value being minimized, for a priced spec."""
        if self.reliability is not None:
            reliable = self.reliable_plans.get(index)
            if reliable is not None:
                return reliable.mean_cost
        plan = self.plans[index]
        return (plan.estimated_cost if self.mode == _MODE_DEADLINE
                else plan.estimated_seconds)

    def _rank(self, index: int) -> tuple:
        """Total order matching the exhaustive solvers' tie-breaks.

        ``cheapest_within_deadline`` breaks cost ties on time (and
        ``fastest_within_budget`` vice versa); the reliable solver keeps
        the first grid-order plan among mean-cost ties.  Ranking priced
        candidates the same way keeps both methods agreeing whenever the
        surrogate priced the exhaustive winner.
        """
        if self.reliability is not None:
            return (self._objective(index), index)
        plan = self.plans[index]
        if self.mode == _MODE_DEADLINE:
            return (plan.estimated_cost, plan.estimated_seconds, index)
        return (plan.estimated_seconds, plan.estimated_cost, index)

    def _feasible(self, index: int) -> bool:
        """Whether a priced spec satisfies the constraint (proven)."""
        plan = self.plans[index]
        if self.reliability is not None:
            reliable = self.reliable_plans.get(index)
            return (reliable is not None
                    and reliable.completion_rate >= 1.0
                    and reliable.p95_seconds <= self.limit)
        if self.mode == _MODE_DEADLINE:
            return plan.estimated_seconds <= self.limit
        return plan.estimated_cost <= self.limit

    # -- pricing -----------------------------------------------------------

    def price(self, index: int, step: int) -> None:
        """Price (and in reliable mode stress-test) one grid spec."""
        optimizer = self.optimizer
        spec = self.specs[index]
        optimizer._set_context(ORIGIN_SURROGATE, step=step)
        try:
            priced = optimizer.price_spec_combos(spec, self.space)
            tuned = optimizer.best_params_for(spec, self.space,
                                              priced=priced)
        finally:
            optimizer._set_context(ORIGIN_SURROGATE)
        self.plans[index] = tuned
        if self.reliability is not None:
            self._stress(index, tuned)
        if not self._feasible(index):
            return
        if self.incumbent is None \
                or self._rank(index) < self._rank(self.incumbent):
            self.incumbent = index

    def _stress(self, index: int, tuned: DeploymentPlan) -> None:
        """Scenario-price one tuned spec, reusing the exhaustive prunes."""
        n = self.reliability.scenarios
        if self.mode == _MODE_DEADLINE \
                and tuned.estimated_seconds > self.limit:
            # Failure monotonicity: already too slow failure-free.
            self.optimizer._note_scenarios_skipped(n)
            return
        incumbent = (self.reliable_plans.get(self.incumbent)
                     if self.incumbent is not None else None)
        if incumbent is not None \
                and tuned.estimated_cost >= incumbent.mean_cost:
            # Cannot beat the incumbent's mean cost (monotonicity) -- but
            # an exact tie at a lower grid index could still *tie* it and
            # win the exhaustive solver's first-in-grid-order tie-break,
            # so only a strictly-worse (or later-index) candidate skips.
            if tuned.estimated_cost > incumbent.mean_cost \
                    or index > self.incumbent:
                self.optimizer._note_scenarios_skipped(n)
                return
        deadline = self.limit if self.mode == _MODE_DEADLINE else None
        reliable = self.optimizer._stress_test(
            tuned, self.reliability, deadline_seconds=deadline,
            early_abort=deadline is not None)
        if reliable is not None:
            self.reliable_plans[index] = reliable

    # -- model + acquisition ----------------------------------------------

    def _fit(self) -> tuple[_RidgeModel, _RidgeModel]:
        """(time model, cost model) over everything priced so far."""
        indices = sorted(self.plans)
        rows = self.features[indices]
        seconds = np.log([self.plans[i].estimated_seconds for i in indices])
        costs = np.log([self.plans[i].estimated_cost for i in indices])
        config = self.config
        make = lambda target: _RidgeModel(  # noqa: E731 - tiny local factory
            rows, target, config.ridge_lambda, config.sigma_floor,
            config.explore_weight)
        return make(seconds), make(costs)

    def _acquisition(self) -> tuple[int, float] | None:
        """Best unpriced candidate by constrained EI: ``(index, score)``.

        With a feasible incumbent the score is expected improvement on
        the objective times the probability of feasibility; without one
        it is the probability of feasibility alone (find *any* feasible
        point first).  Returns None when the grid is exhausted.
        """
        unpriced = [i for i in range(len(self.specs))
                    if i not in self.plans]
        if not unpriced:
            return None
        time_model, cost_model = self._fit()
        rows = self.features[unpriced]
        mu_t, sig_t = time_model.predict(rows)
        mu_c, sig_c = cost_model.predict(rows)
        if self.mode == _MODE_DEADLINE:
            mu_obj, sig_obj = mu_c, sig_c
            z_feas = (math.log(self.limit) - mu_t) / sig_t
        else:
            mu_obj, sig_obj = mu_t, sig_t
            z_feas = (math.log(self.limit) - mu_c) / sig_c
        p_feasible = np.array([_Phi(z) for z in z_feas])
        if self.incumbent is None:
            scores = p_feasible
        else:
            best = math.log(self._objective(self.incumbent))
            z = (best - mu_obj) / sig_obj
            ei = sig_obj * np.array([z_i * _Phi(z_i) + _phi(z_i)
                                     for z_i in z])
            scores = ei * p_feasible
        winner = max(range(len(unpriced)),
                     key=lambda pos: (scores[pos], -unpriced[pos]))
        return unpriced[winner], float(scores[winner])

    # -- polish ------------------------------------------------------------

    def _grid_index(self, spec: ClusterSpec) -> int | None:
        key = (spec.instance_type.name, spec.num_nodes, spec.slots_per_node)
        for index, candidate in enumerate(self.specs):
            if (candidate.instance_type.name, candidate.num_nodes,
                    candidate.slots_per_node) == key:
                return index
        return None

    def polish(self, step: int) -> int:
        """Greedy neighbor descent from the incumbent; returns steps used.

        Certifies the incumbent as a local optimum of the *priced*
        objective: every grid neighbor of the final plan has been priced
        and none improves on it.
        """
        steps = 0
        while self.incumbent is not None \
                and steps < self.config.max_polish_steps:
            spec = self.specs[self.incumbent]
            fresh = []
            for neighbor in self.optimizer._neighbors(spec, self.space):
                index = self._grid_index(neighbor)
                if index is not None and index not in self.plans:
                    fresh.append(index)
            if not fresh:
                break
            before = self.incumbent
            for index in fresh:
                self.price(index, step=step + steps)
                self.rounds += 1
            steps += 1
            if self.incumbent == before:
                break
        return steps

    # -- driver ------------------------------------------------------------

    def run(self) -> SurrogateResult:
        """Seed, acquire, polish; raises when the grid holds no answer."""
        config = self.config
        for index in self._seed_indices():
            self.price(index, step=0)
        step = 1
        while True:
            exhausted_budget = self.rounds >= config.max_rounds
            if self.incumbent is not None and exhausted_budget:
                break
            pick = self._acquisition()
            if pick is None:
                break  # whole grid priced
            index, score = pick
            if self.incumbent is not None \
                    and score < config.ei_tolerance:
                break  # model sees nothing left to gain
            self.price(index, step=step)
            self.rounds += 1
            step += 1
        self.polish(step)
        if self.incumbent is None:
            raise self._infeasible_error()
        plan = self.plans[self.incumbent]
        reliable = self.reliable_plans.get(self.incumbent)
        return SurrogateResult(
            plan=plan,
            reliable=reliable,
            reliable_candidates=[self.reliable_plans[i]
                                 for i in sorted(self.reliable_plans)],
            rounds=self.rounds,
            priced_specs=[self.specs[i] for i in sorted(self.plans)])

    def _seed_indices(self) -> list[int]:
        """Quantile-spread seeds over the grid, ordered by parallelism.

        Sorting by total slots (then hourly rate) and taking evenly
        spaced quantiles covers tiny-to-huge clusters and, with multiple
        instance types interleaved by size, usually covers every type.
        Deterministic by construction.
        """
        order = sorted(
            range(len(self.specs)),
            key=lambda i: (self.specs[i].num_nodes
                           * self.specs[i].slots_per_node,
                           self.specs[i].instance_type.price_per_hour
                           * self.specs[i].num_nodes, i))
        count = min(self.config.seeds, len(order))
        if count == len(order):
            return order
        picks = []
        for position in range(count):
            offset = round(position * (len(order) - 1) / (count - 1))
            if order[offset] not in picks:
                picks.append(order[offset])
        return picks

    def _infeasible_error(self) -> InfeasibleConstraintError:
        if self.reliability is not None:
            return InfeasibleConstraintError(
                f"no deployment meets the {self.limit:.0f}s deadline at "
                f"p95 across {self.reliability.scenarios} failure "
                f"scenario(s)")
        if self.mode == _MODE_DEADLINE:
            return InfeasibleConstraintError(
                f"no deployment finishes within {self.limit:.0f}s")
        return InfeasibleConstraintError(
            f"no deployment costs at most ${self.limit:.2f}")


def _run(optimizer: DeploymentOptimizer, space: SearchSpace | None,
         config: SurrogateConfig | None, mode: str, limit: float,
         reliability: ReliabilityModel | None) -> SurrogateResult:
    """Shared driver: wraps the search in the optimizer's stats window."""
    if limit <= 0:
        raise ValidationError(
            "deadline must be positive" if mode == _MODE_DEADLINE
            else "budget must be positive")
    space = space if space is not None else SearchSpace()
    config = config if config is not None else SurrogateConfig()
    scenarios = reliability.scenarios if reliability is not None else 0
    baseline = optimizer._begin_search()
    search = _SurrogateSearch(optimizer, space, config, mode, limit,
                              reliability)
    try:
        with optimizer.recorder.span("surrogate-search", "optimizer"):
            result = search.run()
    finally:
        optimizer._set_context(ORIGIN_ADHOC)
        optimizer._finish_search(
            baseline, surrogate_rounds=search.rounds,
            grid_requests=optimizer.grid_sim_requests(
                space, scenarios=scenarios))
    if optimizer.search_trace.enabled:
        if mode == _MODE_DEADLINE:
            optimizer.search_trace.mark_deadline(limit)
        else:
            optimizer.search_trace.mark_budget(limit)
    if optimizer.metrics.enabled:
        optimizer.metrics.inc("optimizer.surrogate_searches")
    return result


def surrogate_minimize_cost_under_deadline(
        optimizer: DeploymentOptimizer, deadline_seconds: float,
        space: SearchSpace | None = None,
        reliability: ReliabilityModel | None = None,
        config: SurrogateConfig | None = None) -> SurrogateResult:
    """Model-guided counterpart of the deadline solvers.

    Without ``reliability`` this matches
    ``minimize_cost_under_deadline``; with it, the reliable variant
    (every scenario completes, p95 within the deadline, mean scenario
    cost minimized).  The returned plan is always priced (and
    stress-tested) for real — feasibility is never inferred from the
    model.
    """
    return _run(optimizer, space, config, _MODE_DEADLINE,
                deadline_seconds, reliability)


def surrogate_minimize_time_under_budget(
        optimizer: DeploymentOptimizer, budget_dollars: float,
        space: SearchSpace | None = None,
        config: SurrogateConfig | None = None) -> SurrogateResult:
    """Model-guided counterpart of ``minimize_time_under_budget``."""
    return _run(optimizer, space, config, _MODE_BUDGET,
                budget_dollars, None)
