"""Cumulon core: language, compiler, cost model, simulator glue, optimizer."""

from repro.core.benchmarking import (
    REFERENCE_COEFFICIENTS,
    HardwareCoefficients,
    fit_local_coefficients,
)
from repro.core.compiler import (
    CompiledProgram,
    Compiler,
    CompilerParams,
    compile_program,
    normalize_transposes,
)
from repro.core.advisor import (
    CheckpointAdvice,
    Warning_,
    advise_checkpoint_interval,
    revocation_probability,
    validate_plan,
)
from repro.core.chaos import (
    RECOVERY_RESTART,
    RECOVERY_RESUME,
    SCENARIOS,
    ChaosReport,
    build_hdfs,
    build_scenario,
    run_chaos,
)
from repro.core.checkpoint import Checkpointer, IterativeRunner
from repro.core.costmodel import CostModelConfig, CumulonCostModel
from repro.core.deployment import (
    CostBreakdown,
    amortized_breakdown,
    estimate_deployment,
)
from repro.core.explain import dag_to_dot, explain_plan, explain_program
from repro.core.executor import CumulonExecutor, ExecutionResult, run_program
from repro.core.expr import (
    Binary,
    Constant,
    ElementFunc,
    Expr,
    MatMul,
    ScalarOp,
    Transpose,
    Var,
    broadcast_shapes,
    evaluate_with_numpy,
    ones,
)
from repro.core.optimizer import (
    DeploymentOptimizer,
    ReliabilityModel,
    ReliablePlan,
    SearchSpace,
)
from repro.core.physical import (
    ElementwiseParams,
    MatMulParams,
    MatrixInfo,
    Operand,
    PhysicalContext,
)
from repro.core.plans import (
    DeploymentPlan,
    cheapest_within_deadline,
    fastest_within_budget,
    skyline,
)
from repro.core.program import Program, Statement
from repro.core.rewrite import naive_chain_flops, reorder_matmul_chains
from repro.core.search import SearchResult, SearchSpec, search
from repro.core.surrogate import (
    SurrogateConfig,
    SurrogateResult,
    reliability_frontier,
)
from repro.core.session import CumulonSession
from repro.core.workflow import (
    WorkflowOptimizer,
    WorkflowPlan,
    WorkflowStage,
)
from repro.core.simcost import (
    ProgramEstimate,
    analytic_wave_estimate,
    place_virtual_inputs,
    simulate_program,
)

__all__ = [
    "REFERENCE_COEFFICIENTS",
    "HardwareCoefficients",
    "fit_local_coefficients",
    "CompiledProgram",
    "Compiler",
    "CompilerParams",
    "compile_program",
    "normalize_transposes",
    "CheckpointAdvice",
    "Warning_",
    "advise_checkpoint_interval",
    "revocation_probability",
    "validate_plan",
    "CumulonSession",
    "WorkflowOptimizer",
    "WorkflowPlan",
    "WorkflowStage",
    "RECOVERY_RESTART",
    "RECOVERY_RESUME",
    "SCENARIOS",
    "ChaosReport",
    "build_hdfs",
    "build_scenario",
    "run_chaos",
    "Checkpointer",
    "IterativeRunner",
    "CostBreakdown",
    "amortized_breakdown",
    "estimate_deployment",
    "CostModelConfig",
    "CumulonCostModel",
    "CumulonExecutor",
    "ExecutionResult",
    "run_program",
    "Binary",
    "Constant",
    "ElementFunc",
    "Expr",
    "MatMul",
    "ScalarOp",
    "Transpose",
    "Var",
    "broadcast_shapes",
    "dag_to_dot",
    "explain_plan",
    "explain_program",
    "evaluate_with_numpy",
    "ones",
    "naive_chain_flops",
    "reorder_matmul_chains",
    "DeploymentOptimizer",
    "ReliabilityModel",
    "ReliablePlan",
    "SearchSpace",
    "SearchResult",
    "SearchSpec",
    "search",
    "SurrogateConfig",
    "SurrogateResult",
    "reliability_frontier",
    "ElementwiseParams",
    "MatMulParams",
    "MatrixInfo",
    "Operand",
    "PhysicalContext",
    "DeploymentPlan",
    "cheapest_within_deadline",
    "fastest_within_budget",
    "skyline",
    "Program",
    "Statement",
    "ProgramEstimate",
    "analytic_wave_estimate",
    "place_virtual_inputs",
    "simulate_program",
]
