"""Workflow optimization: multi-stage analyses on rented clusters.

Real analyses are pipelines — load, factorize, post-process — and the
deployment question compounds: rent **one** cluster for the whole workflow
(pay its rate even for stages that cannot use it) or provision **per
stage** (right-size each stage but pay startup and billing minimums per
stage).  This module prices both strategies over the same search space:

* ``optimize_shared`` — one spec for every stage; each stage still gets its
  own tuned physical parameters on that spec.
* ``optimize_per_stage`` — each stage gets its own cluster; the total
  deadline is apportioned to stages in proportion to their best achievable
  times (a documented heuristic — the true joint problem is a knapsack).

The crossover is the interesting output: homogeneous pipelines favor one
shared cluster (startup amortizes), while pipelines mixing heavy and light
stages favor right-sizing (an 8-node hour for a 2-minute cleanup stage is
pure waste under hourly billing).
"""

from __future__ import annotations


from dataclasses import dataclass

from repro.cloud.instances import ClusterSpec
from repro.cloud.pricing import DEFAULT_BILLING, BillingModel
from repro.cloud.provisioning import DEFAULT_STARTUP_SECONDS
from repro.core.optimizer import DeploymentOptimizer, SearchSpace
from repro.core.plans import DeploymentPlan
from repro.core.program import Program
from repro.errors import InfeasibleConstraintError, ValidationError


@dataclass
class WorkflowStage:
    """One pipeline stage: a named program."""

    name: str
    program: Program

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("stage name must be non-empty")


@dataclass
class StageAssignment:
    """A stage with its chosen plan (shared plans repeat the same spec)."""

    stage: WorkflowStage
    plan: DeploymentPlan


@dataclass
class WorkflowPlan:
    """A priced strategy for the whole workflow."""

    strategy: str
    assignments: list[StageAssignment]
    total_seconds: float
    total_cost: float

    def describe(self) -> str:
        lines = [f"{self.strategy}: {self.total_seconds:.0f}s, "
                 f"${self.total_cost:.2f}"]
        for assignment in self.assignments:
            lines.append(
                f"  {assignment.stage.name:<12} on "
                f"{assignment.plan.spec.describe()}  "
                f"{assignment.plan.estimated_seconds:.0f}s"
            )
        return "\n".join(lines)


class WorkflowOptimizer:
    """Prices shared-cluster vs per-stage deployment of a pipeline."""

    def __init__(self, stages: list[WorkflowStage], tile_size: int,
                 billing: BillingModel | None = None,
                 startup_seconds: float = DEFAULT_STARTUP_SECONDS):
        if not stages:
            raise ValidationError("workflow needs at least one stage")
        self.stages = list(stages)
        self.tile_size = tile_size
        self.billing = billing if billing is not None else DEFAULT_BILLING
        self.startup_seconds = startup_seconds
        self._optimizers = {
            stage.name: DeploymentOptimizer(
                stage.program, tile_size,
                billing=self.billing, startup_seconds=0.0,
            )
            for stage in self.stages
        }

    # -- shared cluster -----------------------------------------------------

    def evaluate_shared(self, spec: ClusterSpec,
                        space: SearchSpace) -> WorkflowPlan:
        """One cluster for everything; per-stage physical tuning."""
        assignments = []
        stage_seconds = 0.0
        for stage in self.stages:
            plan = self._optimizers[stage.name].best_params_for(spec, space)
            assignments.append(StageAssignment(stage, plan))
            stage_seconds += plan.estimated_seconds
        total = self.startup_seconds + stage_seconds
        return WorkflowPlan(
            strategy="shared",
            assignments=assignments,
            total_seconds=total,
            total_cost=self.billing.cost(spec, total),
        )

    def optimize_shared(self, deadline_seconds: float,
                        space: SearchSpace | None = None) -> WorkflowPlan:
        """Cheapest single cluster completing the workflow in time."""
        space = space if space is not None else SearchSpace()
        best: WorkflowPlan | None = None
        for instance in space.instance_types:
            for num_nodes in space.node_counts:
                for slots in space.slots_for(instance):
                    spec = ClusterSpec(instance, num_nodes, slots)
                    plan = self.evaluate_shared(spec, space)
                    if plan.total_seconds > deadline_seconds:
                        continue
                    if best is None or plan.total_cost < best.total_cost:
                        best = plan
        if best is None:
            raise InfeasibleConstraintError(
                f"no shared cluster finishes within {deadline_seconds:.0f}s"
            )
        return best

    # -- per-stage clusters ---------------------------------------------------

    def optimize_per_stage(self, deadline_seconds: float,
                           space: SearchSpace | None = None) -> WorkflowPlan:
        """Each stage on its own right-sized cluster.

        Deadline apportionment: each stage receives a share of the total
        deadline proportional to its fastest achievable time (including its
        own startup), then gets its min-cost plan under that share.
        """
        space = space if space is not None else SearchSpace()
        fastest = {}
        for stage in self.stages:
            plans = self._optimizers[stage.name].enumerate_plans(space)
            fastest[stage.name] = min(plan.estimated_seconds
                                      for plan in plans)
        total_fastest = sum(fastest[stage.name] + self.startup_seconds
                            for stage in self.stages)
        if total_fastest > deadline_seconds:
            raise InfeasibleConstraintError(
                f"even the fastest per-stage plans need "
                f"{total_fastest:.0f}s > {deadline_seconds:.0f}s"
            )
        assignments = []
        total_seconds = 0.0
        total_cost = 0.0
        for stage in self.stages:
            share = ((fastest[stage.name] + self.startup_seconds)
                     / total_fastest) * deadline_seconds
            stage_deadline = max(1.0, share - self.startup_seconds)
            stage_optimizer = self._optimizers[stage.name]
            plan = stage_optimizer._minimize_cost_under_deadline(
                stage_deadline, space)
            assignments.append(StageAssignment(stage, plan))
            stage_total = plan.estimated_seconds + self.startup_seconds
            total_seconds += stage_total
            total_cost += self.billing.cost(plan.spec, stage_total)
        return WorkflowPlan(
            strategy="per-stage",
            assignments=assignments,
            total_seconds=total_seconds,
            total_cost=total_cost,
        )

    def recommend(self, deadline_seconds: float,
                  space: SearchSpace | None = None) -> WorkflowPlan:
        """The cheaper of the two strategies under the deadline."""
        candidates = []
        for solver in (self.optimize_shared, self.optimize_per_stage):
            try:
                candidates.append(solver(deadline_seconds, space))
            except InfeasibleConstraintError:
                continue
        if not candidates:
            raise InfeasibleConstraintError(
                f"no strategy meets the {deadline_seconds:.0f}s deadline"
            )
        return min(candidates, key=lambda plan: plan.total_cost)
