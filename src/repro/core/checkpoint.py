"""Checkpointing iterative programs.

Iterative statistical programs (GNMF, gradient descent) carry a small live
state between iterations — exactly what must survive a spot revocation or a
cluster loss.  A :class:`Checkpointer` snapshots named matrices into a tile
backing under a reserved namespace; :class:`IterativeRunner` drives a
per-iteration program factory, checkpointing after every iteration, and can
resume from the latest snapshot after a crash.

This is the executable counterpart of the ``checkpointing=True`` recovery
policy in :mod:`repro.cloud.spot`: there it is priced, here it really runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.executor import CumulonExecutor
from repro.core.program import Program
from repro.errors import ExecutionError, ValidationError
from repro.hadoop.local import FaultInjector, RetryPolicy
from repro.matrix.tile import Tile, TileId
from repro.matrix.tiled import TileBacking, TiledMatrix

#: Matrices are snapshotted under this name prefix in the backing store.
CHECKPOINT_PREFIX = "_ckpt"


class Checkpointer:
    """Snapshots and restores named matrices in a tile backing."""

    def __init__(self, backing: TileBacking):
        self.backing = backing
        self._index: dict[str, dict[str, TiledMatrix]] = {}

    def snapshot_name(self, label: str, variable: str) -> str:
        return f"{CHECKPOINT_PREFIX}/{label}/{variable}"

    def save(self, label: str,
             matrices: dict[str, TiledMatrix]) -> None:
        """Copy every matrix's tiles under the checkpoint namespace."""
        if not label:
            raise ValidationError("checkpoint label must be non-empty")
        if not matrices:
            raise ValidationError("nothing to checkpoint")
        saved: dict[str, TiledMatrix] = {}
        for variable, matrix in matrices.items():
            copy_name = self.snapshot_name(label, variable)
            copy = TiledMatrix(copy_name, matrix.grid, self.backing)
            for tile in matrix.tiles():
                copy.backing.put(Tile(
                    TileId(copy_name, tile.tile_id.row, tile.tile_id.col),
                    tile.to_dense(),
                ))
            saved[variable] = copy
        self._index[label] = saved

    def has(self, label: str) -> bool:
        return label in self._index

    def labels(self) -> list[str]:
        return sorted(self._index)

    def restore(self, label: str) -> dict[str, np.ndarray]:
        """Return the checkpointed matrices as numpy arrays."""
        try:
            saved = self._index[label]
        except KeyError:
            raise ExecutionError(f"no checkpoint labeled {label!r}") from None
        return {variable: matrix.to_numpy()
                for variable, matrix in saved.items()}

    def latest(self) -> str | None:
        """Most recent label by insertion order (None when empty)."""
        if not self._index:
            return None
        return list(self._index)[-1]


@dataclass
class IterationResult:
    """State after one driven iteration."""

    iteration: int
    state: dict[str, np.ndarray]


class IterativeRunner:
    """Drives a per-iteration program with checkpoint/resume semantics.

    ``program_factory(state_shapes)`` must return a one-iteration
    :class:`Program` whose inputs are the state variables (plus any static
    inputs) and whose outputs are the new state variables of the same names.
    """

    def __init__(self, program_factory: Callable[[], Program],
                 static_inputs: dict[str, np.ndarray],
                 state_variables: list[str],
                 tile_size: int = 64,
                 checkpointer: Checkpointer | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fault_injector: FaultInjector | None = None,
                 backend: str = "thread"):
        if not state_variables:
            raise ValidationError("state_variables must be non-empty")
        self.program_factory = program_factory
        self.static_inputs = dict(static_inputs)
        self.state_variables = list(state_variables)
        self.tile_size = tile_size
        self.checkpointer = checkpointer
        #: Forwarded to the executor so *real* injected crashes (not just
        #: the scripted ``crash_after``) exercise the resume path.
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        #: Local execution backend forwarded to the per-run executor.
        self.backend = backend

    def run(self, initial_state: dict[str, np.ndarray], iterations: int,
            crash_after: int | None = None) -> IterationResult:
        """Run ``iterations`` iterations from ``initial_state``.

        ``crash_after`` simulates a mid-run failure: an
        :class:`ExecutionError` is raised after that many iterations have
        been checkpointed — call :meth:`resume` afterwards.
        """
        if iterations <= 0:
            raise ValidationError("iterations must be positive")
        missing = set(self.state_variables) - set(initial_state)
        if missing:
            raise ValidationError(f"initial state missing: {sorted(missing)}")
        state = {name: np.atleast_2d(np.asarray(value, dtype=np.float64))
                 for name, value in initial_state.items()}
        return self._iterate(state, start=0, iterations=iterations,
                             crash_after=crash_after)

    def resume(self, iterations: int) -> IterationResult:
        """Continue from the latest checkpoint for ``iterations`` more."""
        if self.checkpointer is None:
            raise ExecutionError("resume requires a checkpointer")
        label = self.checkpointer.latest()
        if label is None:
            raise ExecutionError("no checkpoint to resume from")
        start = int(label.rsplit("-", 1)[-1])
        state = self.checkpointer.restore(label)
        return self._iterate(state, start=start, iterations=iterations,
                             crash_after=None)

    # -- internals ---------------------------------------------------------------

    def _iterate(self, state, start: int, iterations: int,
                 crash_after: int | None) -> IterationResult:
        with CumulonExecutor(tile_size=self.tile_size,
                             retry_policy=self.retry_policy,
                             fault_injector=self.fault_injector,
                             backend=self.backend) as executor:
            iteration = start
            for step in range(iterations):
                program = self.program_factory()
                inputs = dict(self.static_inputs)
                inputs.update(state)
                result = executor.run(program, inputs)
                state = {name: result.output(name)
                         for name in self.state_variables}
                iteration += 1
                if self.checkpointer is not None:
                    self.checkpointer.save(
                        f"iter-{iteration}",
                        {name: result.tiled_outputs[name]
                         for name in self.state_variables},
                    )
                if crash_after is not None and step + 1 >= crash_after:
                    raise ExecutionError(
                        f"simulated crash after iteration {iteration}"
                    )
            return IterationResult(iteration=iteration, state=state)
