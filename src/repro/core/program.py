"""Programs: ordered matrix assignments, with bounded loops.

A Cumulon program is a straight-line sequence of matrix assignments; loops
with statically known trip counts (the common case for iterative statistical
methods — run K iterations of GNMF, T power iterations of RSVD) are unrolled
before compilation, exactly as Cumulon submits one job DAG per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.expr import Expr, Var
from repro.errors import ValidationError


@dataclass(frozen=True)
class Statement:
    """``target = expr``.  Rebinding an existing name is allowed."""

    target: str
    expr: Expr

    def __post_init__(self) -> None:
        if not self.target:
            raise ValidationError("assignment target must be non-empty")


@dataclass
class Program:
    """A named program over declared input matrices."""

    name: str
    inputs: dict[str, Var] = field(default_factory=dict)
    statements: list[Statement] = field(default_factory=list)
    #: Variables whose final values are the program's results.
    outputs: list[str] = field(default_factory=list)

    def declare_input(self, name: str, rows: int, cols: int,
                      density: float = 1.0) -> Var:
        """Declare an input matrix; returns the Var to build expressions with."""
        if name in self.inputs:
            raise ValidationError(f"input {name!r} already declared")
        var = Var(name, (rows, cols), density)
        self.inputs[name] = var
        return var

    def assign(self, target: str, expr: Expr) -> Var:
        """Append ``target = expr``; returns a Var referencing the result."""
        self._check_bound(expr)
        self.statements.append(Statement(target, expr))
        return Var(target, expr.shape, expr.density)

    def loop(self, times: int, body) -> None:
        """Unroll ``times`` repetitions of ``body``.

        ``body`` is a callable invoked once per iteration with the iteration
        index; it should issue :meth:`assign` calls.  This mirrors how
        Cumulon handles iterative programs: each iteration contributes its
        own jobs to the DAG.
        """
        if times < 0:
            raise ValidationError(f"loop count must be >= 0, got {times}")
        for iteration in range(times):
            body(iteration)

    def mark_output(self, *names: str) -> None:
        for name in names:
            if name not in self.bound_names():
                raise ValidationError(
                    f"cannot mark unbound variable {name!r} as output"
                )
            if name not in self.outputs:
                self.outputs.append(name)

    def bound_names(self) -> set[str]:
        """All names with a binding at the end of the program."""
        names = set(self.inputs)
        names.update(statement.target for statement in self.statements)
        return names

    def _check_bound(self, expr: Expr) -> None:
        bound = self.bound_names()
        unbound = expr.free_variables() - bound
        if unbound:
            raise ValidationError(
                f"expression {expr.describe()} references unbound "
                f"variables: {sorted(unbound)}"
            )

    def describe(self) -> str:
        lines = [f"program {self.name}"]
        for name, var in self.inputs.items():
            lines.append(f"  input {name}: {var.shape} density={var.density:g}")
        for statement in self.statements:
            lines.append(f"  {statement.target} = {statement.expr.describe()}")
        if self.outputs:
            lines.append(f"  output {', '.join(self.outputs)}")
        return "\n".join(lines)
